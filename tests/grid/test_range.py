"""Unit tests for Range geometry and algebra."""

import pytest

from repro.grid.range import Range, cell_range, column_span, row_span


class TestConstruction:
    def test_basic(self):
        rng = Range(1, 2, 3, 4)
        assert rng.head == (1, 2)
        assert rng.tail == (3, 4)
        assert rng.width == 3
        assert rng.height == 3
        assert rng.size == 9

    def test_cell(self):
        rng = Range.cell(5, 7)
        assert rng.is_cell
        assert rng.size == 1

    def test_invalid_corners(self):
        with pytest.raises(ValueError):
            Range(3, 1, 2, 1)
        with pytest.raises(ValueError):
            Range(1, 3, 1, 2)

    def test_out_of_sheet(self):
        with pytest.raises(ValueError):
            Range(0, 1, 2, 2)
        with pytest.raises(ValueError):
            Range(1, 0, 2, 2)

    def test_immutable(self):
        rng = Range(1, 1, 2, 2)
        with pytest.raises(AttributeError):
            rng.c1 = 5

    def test_helpers(self):
        assert cell_range(2, 3) == Range(2, 3, 2, 3)
        assert column_span(2, 1, 5) == Range(2, 1, 2, 5)
        assert row_span(3, 1, 5) == Range(1, 3, 5, 3)


class TestA1:
    def test_parse_cell(self):
        assert Range.from_a1("B3") == Range(2, 3, 2, 3)

    def test_parse_range(self):
        assert Range.from_a1("A1:B2") == Range(1, 1, 2, 2)

    def test_parse_reversed_corners(self):
        assert Range.from_a1("B2:A1") == Range(1, 1, 2, 2)

    def test_parse_with_dollars(self):
        assert Range.from_a1("$A$1:B2") == Range(1, 1, 2, 2)

    def test_to_a1(self):
        assert Range(1, 1, 2, 2).to_a1() == "A1:B2"
        assert Range.cell(2, 3).to_a1() == "B3"

    def test_round_trip(self):
        for text in ("A1", "A1:C9", "AA10:AB20"):
            assert Range.from_a1(text).to_a1() == text


class TestGeometry:
    def test_contains_cell(self):
        rng = Range(2, 2, 4, 4)
        assert rng.contains_cell(2, 2)
        assert rng.contains_cell(4, 4)
        assert not rng.contains_cell(1, 2)
        assert not rng.contains_cell(5, 4)

    def test_contains_range(self):
        outer = Range(1, 1, 5, 5)
        assert outer.contains(Range(2, 2, 3, 3))
        assert outer.contains(outer)
        assert not outer.contains(Range(2, 2, 6, 3))

    def test_overlaps(self):
        a = Range(1, 1, 3, 3)
        assert a.overlaps(Range(3, 3, 5, 5))
        assert not a.overlaps(Range(4, 1, 5, 3))
        assert not a.overlaps(Range(1, 4, 3, 5))

    def test_intersect(self):
        a = Range(1, 1, 4, 4)
        b = Range(3, 2, 6, 6)
        assert a.intersect(b) == Range(3, 2, 4, 4)
        assert a.intersect(Range(5, 5, 6, 6)) is None

    def test_bounding(self):
        # The paper's example: A1:A3 (+) A2:A5 = A1:A5.
        assert Range.from_a1("A1:A3").bounding(Range.from_a1("A2:A5")) == Range.from_a1("A1:A5")

    def test_shift(self):
        assert Range(1, 1, 2, 2).shift(2, 3) == Range(3, 4, 4, 5)

    def test_expand_clamps_at_origin(self):
        assert Range(1, 1, 2, 2).expand(1) == Range(1, 1, 3, 3)
        assert Range(3, 3, 4, 4).expand(2) == Range(1, 1, 6, 6)

    def test_adjacency(self):
        a = Range(1, 1, 1, 3)
        assert a.is_adjacent_to(Range.cell(1, 4))
        assert a.is_adjacent_to(Range.cell(2, 2))
        assert a.is_adjacent_to(Range.cell(2, 4))  # diagonal counts as touch
        assert not a.is_adjacent_to(Range.cell(1, 5))
        assert not a.is_adjacent_to(Range.cell(1, 2))  # overlap, not adjacency


class TestSubtract:
    def test_disjoint(self):
        a = Range(1, 1, 2, 2)
        assert a.subtract(Range(5, 5, 6, 6)) == [a]

    def test_full_cover(self):
        assert Range(2, 2, 3, 3).subtract(Range(1, 1, 5, 5)) == []

    def test_middle_of_column(self):
        pieces = Range(1, 1, 1, 10).subtract(Range(1, 4, 1, 6))
        assert sorted(p.to_a1() for p in pieces) == ["A1:A3", "A7:A10"]

    def test_corner(self):
        pieces = Range(1, 1, 4, 4).subtract(Range(3, 3, 6, 6))
        total = sum(p.size for p in pieces)
        assert total == 16 - 4
        # Pieces must be disjoint.
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert not p.overlaps(q)

    def test_hole_in_middle(self):
        pieces = Range(1, 1, 5, 5).subtract(Range(3, 3, 3, 3))
        assert sum(p.size for p in pieces) == 24
        assert all(not p.contains_cell(3, 3) for p in pieces)

    def test_row_slice(self):
        pieces = Range(1, 1, 10, 1).subtract(Range.cell(1, 1))
        assert pieces == [Range(2, 1, 10, 1)]


class TestIterationAndDunder:
    def test_cells_row_major(self):
        assert list(Range(1, 1, 2, 2).cells()) == [(1, 1), (2, 1), (1, 2), (2, 2)]

    def test_cell_ranges(self):
        assert [r.to_a1() for r in Range(1, 1, 1, 2).cell_ranges()] == ["A1", "A2"]

    def test_contains_dunder(self):
        rng = Range(1, 1, 3, 3)
        assert (2, 2) in rng
        assert Range.cell(2, 2) in rng
        assert "not a range" not in rng

    def test_ordering_and_hash(self):
        a, b = Range(1, 1, 2, 2), Range(1, 1, 2, 3)
        assert a < b
        assert len({a, b, Range(1, 1, 2, 2)}) == 2

    def test_slices(self):
        assert Range(1, 1, 1, 5).is_column_slice
        assert Range(1, 1, 5, 1).is_row_slice
        assert Range.cell(1, 1).is_column_slice and Range.cell(1, 1).is_row_slice
        assert not Range(1, 1, 2, 5).is_column_slice
