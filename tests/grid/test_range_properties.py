"""Property-based tests for the range algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.range import Range

MAX_COORD = 40


@st.composite
def ranges(draw) -> Range:
    c1 = draw(st.integers(1, MAX_COORD))
    r1 = draw(st.integers(1, MAX_COORD))
    c2 = draw(st.integers(c1, min(MAX_COORD, c1 + 10)))
    r2 = draw(st.integers(r1, min(MAX_COORD, r1 + 10)))
    return Range(c1, r1, c2, r2)


def cells_of(rng: Range) -> set:
    return set(rng.cells())


@given(ranges(), ranges())
def test_intersect_matches_cell_sets(a, b):
    inter = a.intersect(b)
    expected = cells_of(a) & cells_of(b)
    if inter is None:
        assert expected == set()
    else:
        assert cells_of(inter) == expected


@given(ranges(), ranges())
def test_overlaps_consistent_with_intersect(a, b):
    assert a.overlaps(b) == (a.intersect(b) is not None)
    assert a.overlaps(b) == b.overlaps(a)


@given(ranges(), ranges())
def test_bounding_contains_both(a, b):
    box = a.bounding(b)
    assert box.contains(a) and box.contains(b)
    # Minimality: the box is no larger than needed on each axis.
    assert box.c1 == min(a.c1, b.c1) and box.c2 == max(a.c2, b.c2)
    assert box.r1 == min(a.r1, b.r1) and box.r2 == max(a.r2, b.r2)


@given(ranges(), ranges())
def test_subtract_partitions_cells(a, b):
    pieces = a.subtract(b)
    expected = cells_of(a) - cells_of(b)
    got = set()
    for piece in pieces:
        piece_cells = cells_of(piece)
        assert not (piece_cells & got), "pieces must be disjoint"
        got |= piece_cells
    assert got == expected


@given(ranges())
def test_subtract_self_is_empty(a):
    assert a.subtract(a) == []


@given(ranges(), ranges())
def test_contains_matches_cell_sets(a, b):
    assert a.contains(b) == (cells_of(b) <= cells_of(a))


@given(ranges())
@settings(max_examples=50)
def test_a1_round_trip(a):
    assert Range.from_a1(a.to_a1()) == a


@given(ranges(), st.integers(0, 5), st.integers(0, 5))
def test_shift_preserves_shape(a, dc, dr):
    shifted = a.shift(dc, dr)
    assert shifted.width == a.width and shifted.height == a.height
