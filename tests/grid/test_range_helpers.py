"""Unit tests for small Range helpers and the io convenience API."""

import io

from repro.grid.range import Range
from repro.grid.range import describe_span, format_column
from repro.io.xlsx_reader import read_xlsx_dependencies
from repro.io.xlsx_writer import write_xlsx
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet


class TestRangeHelpers:
    def test_corner_distance(self):
        a = Range.from_a1("B2:C4")
        assert a.corner_distance(Range.from_a1("B2")) == 0
        assert a.corner_distance(Range.from_a1("E2")) == 3
        assert a.corner_distance(Range.from_a1("C9")) == 7

    def test_describe_span(self):
        assert describe_span(Range.from_a1("B2:D9")) == "B2:D9 (3 cols x 8 rows)"
        assert describe_span(Range.from_a1("B2")) == "B2 (1 col x 1 row)"

    def test_format_column(self):
        assert format_column(28) == "AB"

    def test_as_tuple(self):
        assert Range.from_a1("B2:C4").as_tuple() == (2, 2, 3, 4)


class TestReadDependenciesHelper:
    def test_per_sheet_dependency_map(self):
        sheet = Sheet("Data")
        for r in range(1, 6):
            sheet.set_value((1, r), float(r))
        fill_formula_column(sheet, 2, 1, 5, "=A1*2")
        buffer = io.BytesIO()
        write_xlsx(sheet, buffer)
        buffer.seek(0)
        workbook, deps = read_xlsx_dependencies(buffer)
        assert set(deps) == {"Data"}
        assert len(deps["Data"]) == 5
        assert workbook["Data"].formula_count == 5
