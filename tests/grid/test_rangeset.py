"""Unit tests for RangeSet coverage queries."""

from hypothesis import given
from hypothesis import strategies as st

from repro.grid.range import Range
from repro.grid.rangeset import RangeSet


class TestBasics:
    def test_empty(self):
        rs = RangeSet()
        assert len(rs) == 0
        assert not rs.overlaps(Range.cell(1, 1))
        assert rs.subtract_covered(Range(1, 1, 2, 2)) == [Range(1, 1, 2, 2)]

    def test_add_and_overlap(self):
        rs = RangeSet([Range.from_a1("B2:C4")])
        assert rs.overlaps(Range.from_a1("C4:D5"))
        assert not rs.overlaps(Range.from_a1("D5"))
        assert rs.covers_cell(2, 2)

    def test_covers(self):
        rs = RangeSet([Range.from_a1("A1:B2"), Range.from_a1("C1:D2")])
        assert rs.covers(Range.from_a1("A1:D2"))
        assert not rs.covers(Range.from_a1("A1:E2"))

    def test_subtract_covered_splits(self):
        rs = RangeSet([Range.from_a1("A3:A5")])
        pieces = rs.subtract_covered(Range.from_a1("A1:A8"))
        assert sorted(p.to_a1() for p in pieces) == ["A1:A2", "A6:A8"]

    def test_add_new_returns_fresh_only(self):
        rs = RangeSet()
        first = rs.add_new(Range.from_a1("A1:A5"))
        assert first == [Range.from_a1("A1:A5")]
        second = rs.add_new(Range.from_a1("A4:A8"))
        assert second == [Range.from_a1("A6:A8")]
        assert rs.covers(Range.from_a1("A1:A8"))

    def test_add_new_fully_covered(self):
        rs = RangeSet([Range.from_a1("A1:B9")])
        assert rs.add_new(Range.from_a1("A2:B3")) == []

    def test_cell_count_of_disjoint_members(self):
        rs = RangeSet()
        rs.add_new(Range.from_a1("A1:A5"))
        rs.add_new(Range.from_a1("A3:B8"))
        assert rs.cell_count == len(rs.expand_cells())


@st.composite
def small_ranges(draw):
    c1 = draw(st.integers(1, 12))
    r1 = draw(st.integers(1, 12))
    return Range(c1, r1, draw(st.integers(c1, c1 + 4)), draw(st.integers(r1, r1 + 4)))


@given(st.lists(small_ranges(), max_size=8), small_ranges())
def test_subtract_covered_matches_brute_force(members, probe):
    rs = RangeSet()
    for member in members:
        rs.add(member)
    pieces = rs.subtract_covered(probe)
    covered = set()
    for member in members:
        covered |= set(member.cells())
    expected = set(probe.cells()) - covered
    got = set()
    for piece in pieces:
        got |= set(piece.cells())
    assert got == expected


@given(st.lists(small_ranges(), min_size=1, max_size=10))
def test_add_new_members_are_disjoint(ranges_list):
    rs = RangeSet()
    for rng in ranges_list:
        rs.add_new(rng)
    members = rs.ranges
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            assert not a.overlaps(b)
    expected = set()
    for rng in ranges_list:
        expected |= set(rng.cells())
    assert rs.expand_cells() == expected
