"""Unit tests for A1 addressing and cell references."""

import pytest

from repro.grid.ref import (
    MAX_COL,
    MAX_ROW,
    CellRef,
    col_to_letters,
    format_cell,
    letters_to_col,
    parse_cell,
)


class TestColumnLetters:
    @pytest.mark.parametrize(
        "index,letters",
        [(1, "A"), (2, "B"), (26, "Z"), (27, "AA"), (28, "AB"), (52, "AZ"),
         (53, "BA"), (702, "ZZ"), (703, "AAA"), (16384, "XFD")],
    )
    def test_round_trip(self, index, letters):
        assert col_to_letters(index) == letters
        assert letters_to_col(letters) == index

    def test_lower_case_letters_accepted(self):
        assert letters_to_col("aa") == 27

    def test_zero_index_rejected(self):
        with pytest.raises(ValueError):
            col_to_letters(0)

    def test_bad_letters_rejected(self):
        with pytest.raises(ValueError):
            letters_to_col("A1")
        with pytest.raises(ValueError):
            letters_to_col("")

    def test_exhaustive_round_trip_small(self):
        for i in range(1, 1000):
            assert letters_to_col(col_to_letters(i)) == i


class TestParseCell:
    def test_simple(self):
        assert parse_cell("B3") == (2, 3)

    def test_dollars_ignored(self):
        assert parse_cell("$B$3") == (2, 3)
        assert parse_cell("B$3") == (2, 3)

    def test_whitespace_tolerated(self):
        assert parse_cell("  C7 ") == (3, 7)

    @pytest.mark.parametrize("bad", ["", "3B", "B", "7", "B0", "B-1", "ABCD1"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_cell(bad)

    def test_out_of_bounds_row(self):
        with pytest.raises(ValueError):
            parse_cell(f"A{MAX_ROW + 1}")

    def test_max_bounds_accepted(self):
        assert parse_cell(f"XFD{MAX_ROW}") == (MAX_COL, MAX_ROW)


class TestFormatCell:
    def test_plain(self):
        assert format_cell(2, 3) == "B3"

    def test_fixed_markers(self):
        assert format_cell(2, 3, col_fixed=True) == "$B3"
        assert format_cell(2, 3, row_fixed=True) == "B$3"
        assert format_cell(2, 3, True, True) == "$B$3"

    def test_invalid_row(self):
        with pytest.raises(ValueError):
            format_cell(1, 0)


class TestCellRef:
    def test_from_a1_relative(self):
        ref = CellRef.from_a1("C5")
        assert ref == CellRef(3, 5, False, False)
        assert ref.pos == (3, 5)
        assert not ref.is_fixed

    def test_from_a1_fixed(self):
        ref = CellRef.from_a1("$C$5")
        assert ref.col_fixed and ref.row_fixed
        assert ref.is_fixed

    def test_from_a1_mixed(self):
        assert CellRef.from_a1("$C5") == CellRef(3, 5, True, False)
        assert CellRef.from_a1("C$5") == CellRef(3, 5, False, True)

    def test_to_a1_round_trip(self):
        for text in ("A1", "$A1", "A$1", "$A$1", "ZZ99", "$XFD$1048576"):
            assert CellRef.from_a1(text).to_a1() == text

    def test_shifted_relative(self):
        assert CellRef.from_a1("B2").shifted(2, 3) == CellRef.from_a1("D5")

    def test_shifted_respects_fixed_axes(self):
        assert CellRef.from_a1("$B2").shifted(2, 3) == CellRef.from_a1("$B5")
        assert CellRef.from_a1("B$2").shifted(2, 3) == CellRef.from_a1("D$2")
        assert CellRef.from_a1("$B$2").shifted(2, 3) == CellRef.from_a1("$B$2")

    def test_shifted_off_sheet_raises(self):
        with pytest.raises(ReferenceError):
            CellRef.from_a1("B2").shifted(0, -5)
        with pytest.raises(ReferenceError):
            CellRef.from_a1("B2").shifted(-5, 0)

    def test_invalid_ref(self):
        with pytest.raises(ValueError):
            CellRef.from_a1("NOT A REF")
