"""Differential suite: post-edit recalculation is observationally
identical across evaluation modes and against a full rebuild.

For any generated sheet and any structural edit, the values left by the
end-to-end pipeline (``RecalcEngine.insert_rows`` and friends) with
``evaluation="auto"`` must equal bit-for-bit those with
``evaluation="interpreter"`` — and both must equal a from-scratch
oracle: edit a clone through the sheet-level rewriter, build a fresh
graph, recalculate everything.  ``#REF!`` propagation is covered by
deletes striking referenced bands.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.formula.errors import ExcelError
from repro.sheet import structural as sheet_structural
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.spatial.registry import available_indexes

BACKENDS = available_indexes()
OPS = ("insert_rows", "delete_rows", "insert_columns", "delete_columns")

TEMPLATES = (
    "=SUM($A$1:A1)",          # growing window (FR)
    "=SUM(A1:A4)",            # sliding window (RR)
    "=SUM(A1:$A$20)",         # shrinking window (RF)
    "=MIN(A1:B2)",
    "=A1*2+B1",
    "=IF(A1>B1,A1-B1,B1+1)",
    "=XOR(A1>5,B1>5)",        # interpreter-fallback builtin
    "=ROWS($A$1:A1)",         # size-sensitive: changes on pure inserts
    "=ROW(A1)*10+B1",         # position-sensitive: changes on pure shifts
)

ROWS = 20


@st.composite
def sheets(draw):
    sheet = Sheet("S")
    for r in range(1, ROWS + 1):
        sheet.set_value((1, r), float(draw(st.integers(-30, 30))))
        sheet.set_value((2, r), float(draw(st.integers(1, 9))))
    for i in range(draw(st.integers(1, 3))):
        template = draw(st.sampled_from(TEMPLATES))
        fill_formula_column(sheet, 3 + i, 1, ROWS, template)
    # A couple of point references so deletes reliably strike #REF!.
    sheet.set_formula((8, 1), f"=A{draw(st.integers(1, ROWS))}+1")
    sheet.set_formula((8, 2), "=H1*2")       # dependent of the strikable cell
    return sheet


def clone(sheet: Sheet) -> Sheet:
    copy = Sheet(sheet.name)
    for pos, cell in sheet.items():
        if cell.is_formula:
            copy.set_formula(pos, cell.formula_text)
        else:
            copy.set_value(pos, cell.value)
    return copy


def assert_same_values(got_sheet: Sheet, want_sheet: Sheet) -> None:
    positions = set(got_sheet.positions()) | set(want_sheet.positions())
    for pos in positions:
        got = got_sheet.get_value(pos)
        want = want_sheet.get_value(pos)
        if isinstance(want, ExcelError):
            assert isinstance(got, ExcelError) and got.code == want.code, pos
        else:
            assert type(got) is type(want) and got == want, pos


def engine_for(sheet: Sheet, mode: str, index: str) -> RecalcEngine:
    graph = TacoGraph.full(index=index)
    graph.build(dependencies_column_major(sheet))
    return RecalcEngine(sheet, graph, evaluation=mode)


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_auto_interpreter_rebuild_agree(index, data):
    base = data.draw(sheets())
    op = data.draw(st.sampled_from(OPS))
    at = data.draw(st.integers(1, ROWS + 2))
    count = data.draw(st.integers(1, 3))

    auto = engine_for(clone(base), "auto", index)
    auto.recalculate_all()
    interp = engine_for(clone(base), "interpreter", index)
    interp.recalculate_all()
    getattr(auto, op)(at, count)
    getattr(interp, op)(at, count)

    # From-scratch oracle: sheet-level edit, fresh graph, full recalc.
    oracle_sheet = clone(base)
    getattr(sheet_structural, op)(oracle_sheet, at, count)
    oracle = engine_for(oracle_sheet, "interpreter", index)
    oracle.recalculate_all()

    assert_same_values(auto.sheet, oracle_sheet)
    assert_same_values(interp.sheet, oracle_sheet)


@pytest.mark.parametrize("index", BACKENDS)
def test_ref_strike_propagates_in_both_modes(index):
    base = Sheet("S")
    for r in range(1, 11):
        base.set_value((1, r), float(r))
    base.set_formula("B1", "=A5")
    base.set_formula("C1", "=B1+1")
    fill_formula_column(base, 4, 1, 10, "=SUM($A$1:A1)")
    for mode in ("auto", "interpreter"):
        engine = engine_for(clone(base), mode, index)
        engine.recalculate_all()
        result = engine.delete_rows(5, 1)
        assert result.ref_errors == 1
        assert isinstance(engine.sheet.get_value("B1"), ExcelError)
        assert isinstance(engine.sheet.get_value("C1"), ExcelError)
        # The running total shrank past the deleted value.
        assert engine.sheet.get_value((4, 9)) == sum(range(1, 11)) - 5.0
