"""The workbook-level structural-edit pipeline, end-to-end.

Covers the engine entry points (``RecalcEngine.insert_rows`` and
friends): sheet rewrite + incremental graph maintenance + dirty
recalculation in one call, cross-sheet rewriting via ``workbook=``, the
guards against structural edits under open batch sessions or deferred
maintenance windows, and structural ops recorded through
``BatchEditSession``.
"""

import pytest

from repro.core.taco_graph import TacoGraph, build_from_sheet, dependencies_column_major
from repro.engine.batch import BatchEditSession
from repro.engine.recalc import RecalcEngine
from repro.formula.errors import REF_ERROR
from repro.graphs.nocomp import NoCompGraph
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


def ledger(rows: int = 20) -> Sheet:
    sheet = Sheet("Ledger")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r))
    sheet.set_formula("B1", "=A1")
    fill_formula_column(sheet, 2, 2, rows, "=B1+A2")   # running balance chain
    fill_formula_column(sheet, 3, 1, rows, "=SUM($A$1:A1)")
    sheet.set_formula("D1", "=SUM(A1:A9999)" if rows > 9999 else f"=SUM(A1:A{rows})")
    return sheet


def maintained_equals_rebuilt(engine: RecalcEngine) -> bool:
    rebuilt = TacoGraph.full()
    rebuilt.build(dependencies_column_major(engine.sheet))
    mine = {(d.prec.as_tuple(), d.dep.head) for d in engine.graph.decompress()}
    theirs = {(d.prec.as_tuple(), d.dep.head) for d in rebuilt.decompress()}
    return mine == theirs


class TestEndToEnd:
    def test_insert_rows_values_and_graph(self):
        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        before_total = sheet.get_value("D1")
        result = engine.insert_rows(10, 3)
        assert result.op == "insert_rows"
        assert maintained_equals_rebuilt(engine)
        # Blank rows contribute nothing: every surviving value is intact.
        assert sheet.get_value("D1") == before_total
        assert sheet.get_value((2, 23)) == sum(range(1, 21))  # last balance moved
        assert result.moved_cells > 0 and result.recomputed > 0

    def test_delete_rows_values_and_ref_propagation(self):
        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        engine.set_formula("E1", "=A5*2")
        engine.set_formula("F1", "=E1+1")
        result = engine.delete_rows(5, 1)
        assert maintained_equals_rebuilt(engine)
        assert result.removed_cells > 0
        # E1 referenced the deleted row: #REF!, propagated to F1.
        assert sheet.get_value("E1") is REF_ERROR
        assert sheet.get_value("F1") is REF_ERROR
        # The straddling SUM shrank and was recomputed.
        assert sheet.get_value("D1") == sum(range(1, 21)) - 5.0

    def test_insert_and_delete_columns(self):
        sheet = Sheet("s")
        for c in range(1, 5):
            sheet.set_value((c, 1), float(c))
        sheet.set_formula("A2", "=SUM(A1:D1)")
        sheet.set_formula("B2", "=C1")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        engine.insert_columns(2, 1)
        assert maintained_equals_rebuilt(engine)
        assert sheet.get_value("A2") == 10.0
        engine.delete_columns(4, 1)   # the old column C
        assert maintained_equals_rebuilt(engine)
        assert sheet.get_value("A2") == 7.0
        assert sheet.get_value("C2") is REF_ERROR

    def test_cross_sheet_rewrite_through_workbook(self):
        workbook = Workbook("w")
        sheet = workbook.attach_sheet(ledger())
        other = workbook.add_sheet("Summary")
        other.set_formula("A1", "=Ledger!A15")
        other.set_formula("A2", "=Ledger!A3")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        result = engine.insert_rows(10, 2, workbook=workbook)
        assert result.cross_sheet_rewrites == 1
        assert other.cell_at("A1").formula_text == "Ledger!A17"
        assert other.cell_at("A2").formula_text == "Ledger!A3"
        # The affected sibling cells are enumerable (their cached values
        # stay stale until Summary's own engine recalculates).
        assert set(result.sibling_reports) == {"Summary"}
        assert result.sibling_reports["Summary"].rewritten == {(1, 1)}

    def test_dirty_set_is_incremental(self):
        # An insert near the bottom leaves formulas above the edit alone.
        sheet = ledger(100)
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        result = engine.insert_rows(99, 1)
        # Only the moved tail cells (and the stretched whole-column SUM
        # plus its dependents) are recomputed, not all ~300 formulas.
        assert result.recomputed < 50

    def test_windowed_runs_survive_the_edit(self):
        # The auto evaluation path still dispatches rolling-window runs
        # over the shifted running-total column after the edit.
        sheet = Sheet("s")
        rows = 60
        for r in range(1, rows + 1):
            sheet.set_value((1, r), float(r))
        fill_formula_column(sheet, 2, 1, rows, "=SUM($A$1:A1)")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        windowed_before = engine.eval_stats.windowed_cells
        engine.insert_rows(5, 2)
        assert engine.eval_stats.windowed_cells > windowed_before
        assert sheet.get_value((2, rows + 2)) == sum(range(1, rows + 1))

    def test_position_sensitive_functions_recompute(self):
        # ROW()/COLUMN() read position, not values: a wholesale shift
        # changes their result, so they must seed the dirty set even
        # though no referenced value changed.
        sheet = Sheet("s")
        for r in range(1, 13):
            sheet.set_value((1, r), float(r))
        sheet.set_formula("B1", "=ROW(A10)")
        sheet.set_formula("C8", "=ROW()")
        sheet.set_formula("D1", "=B1+1")         # dependent of the volatile cell
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        assert sheet.get_value("B1") == 10.0 and sheet.get_value("C8") == 8.0
        engine.insert_rows(3, 2)
        assert sheet.get_value("B1") == 12.0     # ROW(A12) now
        assert sheet.get_value("C10") == 10.0    # moved, re-asked its row
        assert sheet.get_value("D1") == 13.0
        result = engine.insert_columns(1, 3)
        assert sheet.get_value((5, 1)) == 12.0   # B1 -> E1, ROW unchanged
        assert sheet.get_value((6, 10)) == 10.0  # C10 -> F10, row unchanged
        assert result.recomputed >= 0

    def test_invalid_op_and_args(self):
        engine = RecalcEngine(Sheet("s"))
        from repro.engine.structural import apply_structural_edit

        with pytest.raises(ValueError):
            apply_structural_edit(engine, "transpose", 1, 1)
        with pytest.raises(ValueError):
            engine.insert_rows(0)

    def test_nocomp_graph_falls_back_to_rebuild(self):
        sheet = ledger()
        graph = NoCompGraph()
        graph.build(dependencies_column_major(sheet))
        engine = RecalcEngine(sheet, graph)
        engine.recalculate_all()
        result = engine.insert_rows(10, 3)
        assert isinstance(engine.graph, NoCompGraph)
        assert engine.graph is not graph          # rebuilt instance
        assert result.maintenance.edges_touched == 0
        assert sheet.get_value((2, 23)) == sum(range(1, 21))

    def test_unsupported_graph_backend_raises_cleanly(self):
        class Opaque:
            def find_dependents(self, rng, budget=None):
                return []

        engine = RecalcEngine(ledger(), Opaque())
        with pytest.raises(TypeError, match="neither"):
            engine.insert_rows(5)


class TestGuards:
    def test_structural_edit_with_open_batch_raises(self):
        engine = RecalcEngine(ledger())
        engine.recalculate_all()
        batch = engine.begin_batch()
        batch.set_value("A1", 99.0)
        with pytest.raises(RuntimeError, match="open batch"):
            engine.insert_rows(5)
        batch.discard()
        engine.insert_rows(5)      # fine once the session is closed

    def test_batch_on_same_sheet_via_other_engine_blocks(self):
        # Sessions register on the *sheet*: a batch opened through a
        # throwaway engine (sheet.begin_batch) must still block
        # structural edits issued through a different engine.
        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        batch = sheet.begin_batch(graph=engine.graph)
        batch.set_value("A9", 5.0)
        with pytest.raises(RuntimeError, match="open batch"):
            engine.insert_rows(5, 2)
        batch.discard()
        engine.insert_rows(5, 2)

    def test_mismatched_workbook_rejected_before_mutation(self):
        # A workbook holding a *different* sheet with the same name must
        # be rejected up front, leaving sheet and graph untouched.
        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        stranger = Workbook("w")
        stranger.attach_sheet(ledger())   # same name, different object
        with pytest.raises(ValueError, match="not part of workbook"):
            engine.insert_rows(3, 2, workbook=stranger)
        assert sheet.get_value((1, 20)) == 20.0   # nothing moved
        assert maintained_equals_rebuilt(engine)

    def test_structural_edit_in_deferred_window_raises(self):
        engine = RecalcEngine(ledger())
        engine.graph.begin_deferred_maintenance()
        with pytest.raises(RuntimeError, match="deferred-maintenance"):
            engine.delete_rows(3)
        engine.graph.end_deferred_maintenance()
        engine.delete_rows(3)

    def test_structural_after_cell_edits_in_batch_raises(self):
        engine = RecalcEngine(ledger())
        engine.recalculate_all()
        with pytest.raises(RuntimeError, match="structural ops first"):
            with engine.begin_batch() as batch:
                batch.set_value("A1", 99.0)
                batch.insert_rows(5)
        # The failed batch rolled back: nothing moved.
        assert engine.sheet.get_value("A1") == 1.0

    def test_discarded_batch_applies_nothing(self):
        engine = RecalcEngine(ledger())
        engine.recalculate_all()
        batch = engine.begin_batch()
        batch.insert_rows(5, 2)
        batch.discard()
        assert engine.sheet.get_value((1, 20)) == 20.0
        assert maintained_equals_rebuilt(engine)


class TestBatchComposition:
    def test_structural_then_cell_edits_commit_together(self):
        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            batch.insert_rows(10, 2)
            # Post-edit addresses: A12 is the old A10.
            batch.set_value("A12", 100.0)
        result = batch.result
        assert result.structural_ops == 1
        assert sheet.get_value("A12") == 100.0
        assert maintained_equals_rebuilt(engine)
        # Values equal a from-scratch recalculation of the edited sheet.
        oracle = RecalcEngine(clone_sheet(sheet), evaluation="interpreter")
        oracle.recalculate_all()
        for pos, cell in sheet.items():
            if cell.is_formula:
                assert oracle.sheet.get_value(pos) == cell.value, pos

    def test_multiple_structural_ops_in_one_batch(self):
        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            batch.insert_rows(5, 1)
            batch.delete_rows(12, 2)
            batch.insert_columns(1, 1)
        assert batch.result.structural_ops == 3
        assert maintained_equals_rebuilt(engine)
        oracle = RecalcEngine(clone_sheet(sheet), evaluation="interpreter")
        oracle.recalculate_all()
        for pos, cell in sheet.items():
            if cell.is_formula:
                assert oracle.sheet.get_value(pos) == cell.value, pos

    def test_workbook_begin_batch_inherits_workbook(self):
        # A batch opened *on the workbook* must rewrite sibling sheets'
        # references when structural ops commit — same as the non-batch
        # workbook.insert_rows path.
        workbook = Workbook("w")
        sheet = workbook.attach_sheet(ledger())
        other = workbook.add_sheet("Summary")
        other.set_formula("A1", "=Ledger!A7*10")
        with workbook.begin_batch() as batch:
            batch.insert_rows(5, 2)
        assert other.cell_at("A1").formula_text == "(Ledger!A9*10)"

    def test_abandoned_batch_does_not_lock_the_sheet(self):
        # Sessions register weakly: an abandoned (never committed or
        # discarded) session must not block structural edits forever.
        import gc

        sheet = ledger()
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        batch = engine.begin_batch()
        batch.set_value("A1", 0.0)
        batch = None
        gc.collect()
        engine.insert_rows(5, 2)          # no RuntimeError
        assert sheet.get_value((1, 22)) == 20.0

    def test_batch_workbook_threads_through(self):
        workbook = Workbook("w")
        sheet = workbook.attach_sheet(ledger())
        other = workbook.add_sheet("Summary")
        other.set_formula("A1", "=Ledger!A15")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        with engine.begin_batch(workbook=workbook) as batch:
            batch.insert_rows(10, 2)
        assert other.cell_at("A1").formula_text == "Ledger!A17"


def clone_sheet(sheet: Sheet) -> Sheet:
    copy = Sheet(sheet.name)
    for pos, cell in sheet.items():
        if cell.is_formula:
            copy.set_formula(pos, cell.formula_text)
        else:
            copy.set_value(pos, cell.value)
    return copy
