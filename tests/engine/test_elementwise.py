"""The elementwise array-sweep fast path, shape by shape.

Same discipline as ``test_vectorized.py``: build the sheet twice,
recalculate once with ``evaluation="auto"`` (asserting via ``eval_stats``
that the sweep actually dispatched) and once with the tree-walking
interpreter, then compare every cell bitwise.  The sweep mirrors the
compiled closure operation for operation in IEEE-754 float64, so no
tolerance is needed — equality is exact or the path is broken.
"""

import pytest

from repro.engine import vectorized
from repro.engine.recalc import RecalcEngine
from repro.formula.compile import compile_template, elementwise_ir
from repro.formula.errors import ExcelError
from repro.formula.parser import parse_formula
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

sweeps_available = pytest.mark.skipif(
    vectorized._np is None, reason="elementwise sweeps require numpy"
)

ROWS = 80


def data_sheet(rows=ROWS, noise=True):
    s = Sheet("S", store="columnar")
    for r in range(1, rows + 1):
        s.set_value((1, r), float((r * 37) % 101) / 3.0)
        s.set_value((2, r), float(r % 13) - 6.0)
    if noise:
        s.set_value((1, 7), "text")
        s.set_value((1, 13), True)
        s.set_value((1, 21), None)           # hole
        s.set_value((2, 30), "x")
    s.set_value((6, 1), 1.5)                 # $F$1 broadcast scalar
    return s


def compare(build, *, expect_swept=None):
    sa, sb = build(), build()
    ea = RecalcEngine(sa, evaluation="interpreter")
    eb = RecalcEngine(sb)
    ea.recalculate_all()
    eb.recalculate_all()
    for pos, cell in sa.items():
        got = sb.get_value(pos)
        want = cell.value
        if isinstance(want, ExcelError):
            assert isinstance(got, ExcelError) and got.code == want.code, pos
        else:
            assert type(got) is type(want) and got == want, pos
    if expect_swept is not None:
        assert eb.eval_stats.elementwise_cells == expect_swept, eb.eval_stats
    return eb


TEMPLATES = {
    "double": "=A1*2",
    "affine-broadcast": "=A1*$F$1+B1",
    "ratio": "=A1/B1",
    "negate-percent": "=-A1*10%",
    "chained": "=(A1+B1)*(A1-B1)/2",
}


@sweeps_available
@pytest.mark.parametrize("name", sorted(TEMPLATES))
def test_template_shapes_match_interpreter(name):
    formula = TEMPLATES[name]

    def build():
        s = data_sheet()
        fill_formula_column(s, 3, 1, ROWS, formula)
        return s

    engine = compare(build)
    stats = engine.eval_stats
    assert stats.elementwise_runs >= 1
    # The clean lanes swept; the noisy lanes (string inputs, div-by-zero)
    # fell back — together they cover the run.
    assert stats.elementwise_cells > 0
    assert stats.elementwise_cells + stats.compiled_cells \
        + stats.interpreted_cells == ROWS


@sweeps_available
def test_masked_lanes_carry_interpreter_errors():
    def build():
        s = data_sheet()
        fill_formula_column(s, 3, 1, ROWS, "=A1/B1")
        return s

    engine = compare(build)
    # B6, B19, ... hold 0.0 (r % 13 == 6): those lanes must be #DIV/0!.
    assert engine.sheet.get_value((3, 19)).code == "#DIV/0!"
    # A7 holds a string: VALUE error from numeric coercion.
    assert engine.sheet.get_value((3, 7)).code == "#VALUE!"
    assert engine.eval_stats.elementwise_cells < ROWS


@sweeps_available
def test_error_inputs_delegate_lanes():
    def build():
        s = data_sheet(noise=False)
        s.set_formula((1, 11), "=1/0")       # error value in the data
        fill_formula_column(s, 3, 1, ROWS, "=A1*2+B1")
        return s

    engine = compare(build)
    assert engine.sheet.get_value((3, 11)).code == "#DIV/0!"
    assert engine.eval_stats.elementwise_cells == ROWS - 1


@sweeps_available
def test_pow_stays_off_the_sweep():
    """``^`` is out of the IR subset (numpy's vectorised pow is not
    ULP-identical to libm's scalar pow): the run must decline the sweep
    and still match bitwise through the per-cell paths."""
    def build():
        s = data_sheet(noise=False)
        s.set_value((1, 5), -2.0)
        s.set_value((2, 5), 0.5)             # (-2)^0.5 -> #NUM!
        s.set_value((1, 9), 1e200)
        s.set_value((2, 9), 3.0)             # overflow -> #NUM!
        fill_formula_column(s, 3, 1, ROWS, "=A1^B1")
        return s

    engine = compare(build, expect_swept=0)
    assert engine.sheet.get_value((3, 5)).code == "#NUM!"
    assert engine.sheet.get_value((3, 9)).code == "#NUM!"


@sweeps_available
def test_empty_and_bool_lanes_sweep_without_fallback():
    """EMPTY coerces to 0.0 and BOOL to 0/1 directly in the value plane,
    so holes and booleans stay on the fast path."""
    def build():
        s = Sheet("S", store="columnar")
        for r in range(1, 41):
            s.set_value((1, r), float(r))
        s.set_value((1, 10), None)
        s.set_value((1, 20), True)
        s.set_value((1, 30), False)
        fill_formula_column(s, 2, 1, 40, "=A1*3+1")
        return s

    compare(build, expect_swept=40)


@sweeps_available
def test_string_broadcast_scalar_declines_whole_run():
    def build():
        s = data_sheet(noise=False)
        s.set_value((6, 1), "not a number")
        fill_formula_column(s, 3, 1, ROWS, "=A1*$F$1")
        return s

    engine = compare(build, expect_swept=0)
    # The run declined wholesale and landed on the compiled closure.
    assert engine.eval_stats.compiled_cells == ROWS


@sweeps_available
def test_in_run_recurrence_is_rejected():
    """``=C1+A2`` filled down C reads the cell above — a recurrence the
    sweep cannot vectorise; run detection must refuse it."""
    def build():
        s = data_sheet(noise=False)
        s.set_formula((3, 1), "=A1")
        fill_formula_column(s, 3, 2, ROWS, "=C1+A2")
        return s

    engine = compare(build, expect_swept=0)
    assert engine.eval_stats.elementwise_runs == 0


@sweeps_available
def test_dependent_sweeps_order_topologically():
    """A sweep column feeding another sweep column: the doubles must be
    written before the quadruples read them."""
    def build():
        s = data_sheet(noise=False)
        fill_formula_column(s, 3, 1, ROWS, "=A1*2")
        fill_formula_column(s, 4, 1, ROWS, "=C1*2")
        return s

    compare(build, expect_swept=2 * ROWS)


@sweeps_available
def test_incremental_broadcast_edit_resweeps():
    s = data_sheet(noise=False)
    fill_formula_column(s, 3, 1, ROWS, "=A1*$F$1+B1")
    engine = RecalcEngine(s)
    engine.recalculate_all()
    before = engine.eval_stats.elementwise_runs
    result = engine.set_value((6, 1), 7.25)
    assert result.recomputed == ROWS
    assert engine.eval_stats.elementwise_runs > before
    fresh = data_sheet(noise=False)
    fresh.set_value((6, 1), 7.25)
    fill_formula_column(fresh, 3, 1, ROWS, "=A1*$F$1+B1")
    RecalcEngine(fresh, evaluation="interpreter").recalculate_all()
    for r in range(1, ROWS + 1):
        assert s.get_value((3, r)) == fresh.get_value((3, r)), r


def test_object_store_declines_but_matches():
    def build():
        s = Sheet("S", store="object")
        for r in range(1, 41):
            s.set_value((1, r), float(r) / 7.0)
        fill_formula_column(s, 2, 1, 40, "=A1*2")
        return s

    engine = compare(build, expect_swept=0)
    assert engine.eval_stats.compiled_cells == 40


def test_interpreter_mode_never_sweeps():
    s = data_sheet(noise=False)
    fill_formula_column(s, 3, 1, ROWS, "=A1*2")
    engine = RecalcEngine(s, evaluation="interpreter")
    engine.recalculate_all()
    assert engine.eval_stats.elementwise_cells == 0
    assert engine.eval_stats.interpreted_cells == ROWS


class TestElementwiseIR:
    def ir(self, text, col=3, row=1):
        return elementwise_ir(parse_formula(text), col, row)

    def test_arithmetic_templates_lower(self):
        for text in ("A1*2", "A1*$F$1+B1", "-A1*10%", "(A1+B1)/(A1-B1)"):
            assert self.ir(text) is not None, text

    def test_bare_leaves_rejected(self):
        # A lone reference or constant is not worth a sweep — and a bare
        # ``=A1`` copies strings/bools verbatim, which the float plane
        # cannot represent.
        assert self.ir("A1") is None
        assert self.ir("42") is None

    def test_without_row_relative_ref_rejected(self):
        # All-fixed references make every cell identical; the compiled
        # closure handles that fine without array machinery.
        assert self.ir("$A$1*2") is None

    def test_unsupported_constructs_rejected(self):
        for text in ("SUM(A1:A3)", "IF(A1>0,A1,B1)", 'A1&"x"',
                     "Other!A1*2", "A1=B1", "A1^2-B1"):
            assert self.ir(text) is None, text

    def test_reference_dedup(self):
        ir = self.ir("A1*A1+A1")
        assert ir is not None and len(ir.refs) == 1

    def test_compile_template_attaches_ir(self):
        template = compile_template(parse_formula("A1*2"), 3, 1)
        assert template.elementwise is not None
        windowed = compile_template(parse_formula("SUM($A$1:A1)"), 3, 1)
        assert windowed.elementwise is None and windowed.window is not None
