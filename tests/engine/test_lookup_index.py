"""Unit tests for the lookaside lookup indexes and their invalidation."""

import random

import pytest

from repro.engine import lookup
from repro.engine.recalc import RecalcEngine
from repro.formula.functions import (
    _scan_vector,
    lookup_entry_key,
    lookup_needle_key,
)
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

from helpers import assert_same_values, clone_sheet, engine_for

TABLE_ROWS = 40  # above the default MIN_INDEX_SIZE floor of 32


def build_lookup_sheet(store: str = "columnar", rows: int = TABLE_ROWS) -> Sheet:
    rng = random.Random(11)
    sheet = Sheet("L", store=store)
    keys = [float(k) for k in rng.sample(range(1000), rows)]
    for r, key in enumerate(keys, start=1):
        sheet.set_value((1, r), key)                    # A: shuffled keys
        sheet.set_value((2, r), key * 10)               # B: payloads
        sheet.set_value((4, r), keys[(r * 7) % rows])   # D: needles (all hit)
    fill_formula_column(sheet, 5, 1, rows,
                        f"=VLOOKUP(D1,$A$1:$B${rows},2,FALSE)")
    fill_formula_column(sheet, 6, 1, rows, f"=MATCH(D1,$A$1:$A${rows},1)")
    return sheet


class TestProbeAttachment:
    def test_auto_columnar_attaches(self):
        engine = RecalcEngine(build_lookup_sheet())
        assert engine.cell_evaluator.resolver.lookup_probe is not None

    def test_interpreter_engine_stays_scan_only(self):
        engine = RecalcEngine(build_lookup_sheet(), evaluation="interpreter")
        assert engine.cell_evaluator.resolver.lookup_probe is None

    def test_object_store_stays_scan_only(self):
        engine = RecalcEngine(build_lookup_sheet(store="object"))
        assert engine.cell_evaluator.resolver.lookup_probe is None

    def test_explicit_flag_wins(self):
        engine = RecalcEngine(build_lookup_sheet(), lookup_indexes=False)
        assert engine.cell_evaluator.resolver.lookup_probe is None

    def test_env_toggle_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOOKUP_INDEX", "0")
        engine = RecalcEngine(build_lookup_sheet())
        assert engine.cell_evaluator.resolver.lookup_probe is None

    def test_below_size_floor_never_probes(self):
        engine = RecalcEngine(build_lookup_sheet(rows=8))
        engine.recalculate_all()
        assert engine.eval_stats.lookup_index_hits == 0


def serial_engine(sheet: Sheet) -> RecalcEngine:
    """Build-accounting tests must evaluate in-process: worker processes
    count their own index builds, and only the geometry-deterministic
    cell counters fold back (pinning workers=0 and shards=0 keeps these
    assertions meaningful under the CI matrices'
    REPRO_RECALC_WORKERS=4 / REPRO_RECALC_SHARDS=4)."""
    return RecalcEngine(sheet, workers=0, shards=0)


class TestInvalidation:
    def test_full_recalc_builds_each_vector_once(self):
        engine = serial_engine(build_lookup_sheet())
        engine.recalculate_all()
        stats = engine.eval_stats
        # Two distinct vectors — the VLOOKUP first column and the MATCH
        # range are the same bounds, so one build serves both families...
        assert stats.lookup_index_builds == 1
        assert stats.lookup_index_hits == 2 * TABLE_ROWS

    def test_point_edit_rebuilds_once(self):
        engine = serial_engine(build_lookup_sheet())
        engine.recalculate_all()
        before = engine.eval_stats.lookup_index_builds
        engine.set_value((1, 5), 77.5)     # table key column: stale
        assert engine.eval_stats.lookup_index_builds == before + 1

    def test_unrelated_edit_keeps_index(self):
        engine = serial_engine(build_lookup_sheet())
        engine.recalculate_all()
        before = engine.eval_stats.lookup_index_builds
        engine.set_value((4, 5), 77.5)     # needle column: index untouched
        assert engine.eval_stats.lookup_index_builds == before

    def test_batch_pays_one_rebuild(self):
        engine = serial_engine(build_lookup_sheet())
        engine.recalculate_all()
        before = engine.eval_stats.lookup_index_builds
        with engine.begin_batch() as batch:
            for r in range(1, 11):         # ten writes into the indexed vector
                batch.set_value((1, r), float(2000 + r))
        assert engine.eval_stats.lookup_index_builds == before + 1

    def test_structural_edit_drops_cache_and_stays_correct(self):
        engine = serial_engine(build_lookup_sheet())
        engine.recalculate_all()
        stale = set(engine.sheet._lookup_cache._indexes)
        assert stale
        engine.insert_rows(3, 2)
        # The pre-edit vectors were dropped whole (the post-edit recalc
        # builds fresh indexes over the rewritten, longer bounds).
        assert not stale & set(engine.sheet._lookup_cache._indexes)
        reference = clone_sheet(engine.sheet, store="object")
        engine_for(reference, "interpreter").recalculate_all()
        assert_same_values(engine.sheet, reference)

    def test_cache_eviction_is_bounded(self, monkeypatch):
        monkeypatch.setattr(lookup, "MAX_CACHED_INDEXES", 2)
        monkeypatch.setattr(lookup, "MIN_INDEX_SIZE", 1)
        sheet = Sheet("L", store="columnar")
        for r in range(1, 9):
            for c in range(1, 5):
                sheet.set_value((c, r), float(c * 10 + r))
        for i, c in enumerate("ABCD"):
            sheet.set_formula((6 + i, 1), f"=MATCH(3,{c}1:{c}8,1)")
        engine = serial_engine(sheet)
        engine.recalculate_all()
        assert len(sheet._lookup_cache) <= 2
        assert engine.eval_stats.lookup_index_hits == 4


class TestVectorIndexContract:
    """Randomized direct comparison: VectorIndex.find ≡ _scan_vector for
    every (side, tie) the builtins can issue, on mixed unsorted data."""

    def test_find_matches_reference_scan(self):
        rng = random.Random(5)
        pool = [None, True, False, "ab", "AB", "zz", 0.0, -3.5, 7.0,
                7.0, 12.25, float("nan")]
        sheet = Sheet("V", store="columnar")
        entries = [rng.choice(pool) for _ in range(64)]
        for r, value in enumerate(entries, start=1):
            sheet.set_value((1, r), value)
        index = lookup.VectorIndex.build(sheet._cells, (1, 1, 1, 64))
        needles = pool + [5.0, "a", "zzz", -100.0, 100.0]
        for needle in needles:
            key = lookup_needle_key(needle)
            if key is None:
                continue
            for side in ("eq", "le", "ge"):
                for tie in ("first", "last"):
                    want = _scan_vector(entries, key, side=side, tie=tie)
                    got = index.find(key, side, tie)
                    assert got == want, (needle, side, tie)

    def test_row_vector_indexing(self):
        sheet = Sheet("V", store="columnar")
        for c in range(1, 41):
            sheet.set_value((c, 2), float((c * 13) % 40))
        sheet.set_formula((1, 5), "=MATCH(26,A2:AN2,0)")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        assert engine.eval_stats.lookup_index_hits == 1
        assert sheet.get_value((1, 5)) == 2.0    # 2*13=26 at offset 1

    def test_entry_key_classes(self):
        assert lookup_entry_key(True) == (2, True)
        assert lookup_entry_key(3) == (0, 3.0)
        assert lookup_entry_key("Ab") == (1, "ab")
        assert lookup_entry_key(None) is None
        assert lookup_entry_key(float("nan")) is None
        assert lookup_needle_key(None) == (0, 0.0)
