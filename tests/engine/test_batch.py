"""Unit tests for the batched edit pipeline (engine/batch.py)."""

import pytest

from repro.core.maintain import coalesce_cells
from repro.core.taco_graph import TacoGraph, build_from_sheet
from repro.engine.batch import BatchEditSession
from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.formula.errors import CYCLE_ERROR
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


def build_board(rows: int = 12) -> Sheet:
    sheet = Sheet("board")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r))          # A: data
        sheet.set_formula((2, r), f"=A{r}*2")      # B: doubles
    sheet.set_formula("C1", f"=SUM(B1:B{rows})")
    return sheet


class TestCoalesce:
    def test_column_run(self):
        assert coalesce_cells([(1, 3), (1, 1), (1, 2)]) == [Range(1, 1, 1, 3)]

    def test_rectangle(self):
        cells = [(c, r) for c in (2, 3) for r in (5, 6, 7)]
        assert coalesce_cells(cells) == [Range(2, 5, 3, 7)]

    def test_scattered_and_duplicates(self):
        got = coalesce_cells([(1, 1), (1, 1), (3, 9), (1, 3)])
        assert sorted(r.as_tuple() for r in got) == [
            Range(1, 1, 1, 1).as_tuple(),
            Range(1, 3, 1, 3).as_tuple(),
            Range(3, 9, 3, 9).as_tuple(),
        ]

    def test_cover_is_exact(self):
        cells = {(1, 1), (1, 2), (2, 2), (2, 3), (5, 1)}
        cover = coalesce_cells(cells)
        covered = {pos for rng in cover for pos in rng.cells()}
        assert covered == cells

    def test_empty(self):
        assert coalesce_cells([]) == []


class TestBatchSession:
    def test_commit_applies_and_recalculates(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            batch.set_value("A1", 100.0)
            batch.set_formula("D1", "=C1/2")
        assert engine.sheet.get_value("B1") == 200.0
        assert engine.sheet.get_value("C1") == 2.0 * (100 + sum(range(2, 13)))
        assert engine.sheet.get_value("D1") == engine.sheet.get_value("C1") / 2
        result = batch.result
        assert result.ops == 2
        assert result.recomputed >= 3  # B1, C1, D1

    def test_last_writer_wins_coalescing(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            for value in (1.0, 2.0, 3.0):
                batch.set_value("A1", value)
        assert engine.sheet.get_value("A1") == 3.0
        assert batch.result.ops == 3
        assert batch.result.coalesced_cells == 1

    def test_clear_range_ordering_semantics(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            batch.set_value("A1", 50.0)              # superseded by the clear
            batch.clear_range(Range.from_a1("A1:A3"))
            batch.set_value("A2", 7.0)               # wins over the clear
        assert engine.sheet.get_value("A1") is None
        assert engine.sheet.get_value("A2") == 7.0
        assert engine.sheet.get_value("A3") is None
        assert engine.sheet.get_value("B2") == 14.0
        assert engine.sheet.get_value("B3") == 0.0   # blank counts as 0

    def test_exception_discards_everything(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        before_edges = sorted(
            (d.prec.as_tuple(), d.dep.as_tuple()) for d in engine.graph.decompress()
        )
        with pytest.raises(RuntimeError, match="boom"):
            with engine.begin_batch() as batch:
                batch.set_value("A1", 999.0)
                batch.clear_range(Range.from_a1("B1:B12"))
                raise RuntimeError("boom")
        assert engine.sheet.get_value("A1") == 1.0
        assert engine.sheet.get_value("B5") == 10.0
        after_edges = sorted(
            (d.prec.as_tuple(), d.dep.as_tuple()) for d in engine.graph.decompress()
        )
        assert after_edges == before_edges

    def test_explicit_commit_inside_with_block(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            batch.set_value("A1", 5.0)
            result = batch.commit()    # clean exit must not re-commit
        assert result is batch.result
        assert engine.sheet.get_value("B1") == 10.0

    def test_closed_session_refuses_edits(self):
        engine = RecalcEngine(build_board())
        batch = engine.begin_batch()
        batch.commit()
        with pytest.raises(RuntimeError, match="closed"):
            batch.set_value("A1", 1.0)
        with pytest.raises(RuntimeError, match="closed"):
            batch.commit()

    def test_recalc_false_skips_reevaluation(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        with engine.begin_batch(recalc=False) as batch:
            batch.set_value("A1", 100.0)
        assert batch.result.recomputed == 0
        assert engine.sheet.get_value("B1") == 2.0  # stale by request
        engine.recompute(batch.result.dirty_ranges)
        assert engine.sheet.get_value("B1") == 200.0

    def test_large_batch_triggers_repack(self):
        sheet = build_board(rows=60)
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        with engine.begin_batch(repack_min=4) as batch:
            for r in range(1, 61):
                batch.set_formula((2, r), f"=A{r}*3")
        assert batch.result.repacked
        assert engine.sheet.get_value("B7") == 21.0
        # The settled indexes answer queries correctly after the repack.
        dependents = engine.graph.find_dependents(Range.from_a1("A7"))
        cells = {pos for rng in dependents for pos in rng.cells()}
        assert (2, 7) in cells

    def test_small_batch_replays_deletes(self):
        engine = RecalcEngine(build_board(rows=40))
        engine.recalculate_all()
        with engine.begin_batch(repack_min=1000) as batch:
            batch.set_formula("B3", "=A3*5")
        assert not batch.result.repacked
        graph = engine.graph
        edge_ids = {id(edge) for edge in graph.edges()}
        for index in (graph._prec_index, graph._dep_index):
            assert {id(entry.payload) for entry in index} == edge_ids
            assert len(index) == len(edge_ids)

    def test_batch_cycle_raises_with_chain(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        with pytest.raises(CircularReferenceError):
            with engine.begin_batch() as batch:
                batch.set_formula("E1", "=F1+1")
                batch.set_formula("F1", "=E1+1")
        assert engine.sheet.get_value("E1") == CYCLE_ERROR
        assert engine.sheet.get_value("F1") == CYCLE_ERROR

    def test_works_with_nocomp_fallback(self):
        sheet = build_board()
        graph = NoCompGraph()
        from repro.core.taco_graph import dependencies_column_major

        graph.build(dependencies_column_major(sheet))
        engine = RecalcEngine(sheet, graph)
        engine.recalculate_all()
        with engine.begin_batch() as batch:
            batch.set_value("A2", 10.0)
        assert engine.sheet.get_value("B2") == 20.0

    def test_deferred_mode_guards(self):
        graph = build_from_sheet(build_board())
        assert isinstance(graph, TacoGraph)
        graph.begin_deferred_maintenance()
        with pytest.raises(RuntimeError, match="already active"):
            graph.begin_deferred_maintenance()
        assert graph.end_deferred_maintenance() is False
        with pytest.raises(RuntimeError, match="not active"):
            graph.end_deferred_maintenance()


class TestEntryPoints:
    def test_sheet_begin_batch(self):
        sheet = build_board()
        with sheet.begin_batch() as batch:
            batch.set_value("A1", 4.0)
        assert sheet.get_value("B1") == 8.0
        assert batch.result.ops == 1

    def test_workbook_begin_batch(self):
        workbook = Workbook("wb")
        workbook.add_sheet("main")
        sheet = workbook["main"]
        sheet.set_value("A1", 2.0)
        sheet.set_formula("B1", "=A1+1")
        with workbook.begin_batch() as batch:
            batch.set_value("A1", 9.0)
        assert sheet.get_value("B1") == 10.0

    def test_workbook_begin_batch_named_sheet(self):
        workbook = Workbook("wb")
        workbook.add_sheet("first")
        other = workbook.add_sheet("second")
        other.set_value("A1", 1.0)
        other.set_formula("B1", "=A1*10")
        with workbook.begin_batch(sheet="second") as batch:
            batch.set_value("A1", 3.0)
        assert other.get_value("B1") == 30.0

    def test_engine_reuse_across_batches(self):
        engine = RecalcEngine(build_board())
        engine.recalculate_all()
        for value in (10.0, 20.0):
            with engine.begin_batch() as batch:
                batch.set_value("A1", value)
            assert isinstance(batch, BatchEditSession)
        assert engine.sheet.get_value("B1") == 40.0
