"""Tests for the shared-plan what-if scenario engine."""

import pytest

from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.engine.scenario import ScenarioEngine
from repro.formula.errors import ExcelError
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

from helpers import assert_same_values, clone_sheet, engine_for

MONTHS = 30


def build_model(store: str = "columnar") -> Sheet:
    """A small planning model: recurrence + elementwise + windowed tiers."""
    sheet = Sheet("plan", store=store)
    sheet.set_value("B1", 1.02)                                  # growth
    sheet.set_value("B2", 0.62)                                  # cost ratio
    sheet.set_value("B3", "label")                               # non-numeric seed
    sheet.set_value("D1", 1000.0)
    fill_formula_column(sheet, 4, 2, MONTHS, "=D1*$B$1")         # revenue chain
    fill_formula_column(sheet, 5, 1, MONTHS, "=D1*$B$2")         # costs
    fill_formula_column(sheet, 6, 1, MONTHS, "=D1-E1")           # profit
    fill_formula_column(sheet, 7, 1, MONTHS, "=SUM($F$1:F1)")    # cumulative
    sheet.set_formula("I1", f"=G{MONTHS}")                       # KPI
    return sheet


def whatif_for(store: str = "columnar", mode: str = "auto",
               seeds=("B1", "B2")):
    engine = engine_for(build_model(store), mode)
    engine.recalculate_all()
    return ScenarioEngine(engine, seeds), engine


SCENARIOS = [
    {"B1": 1.05},
    {"B2": 0.8},
    {"B1": 0.97, "B2": 0.5},
    {},                        # pure baseline replay
    {"B1": "oops"},            # errors must replay faithfully too
]


def oracle(store: str, mode: str, scenario: dict, outputs):
    """Independent engine per scenario — the semantics being promised."""
    engine = engine_for(build_model(store), mode)
    engine.recalculate_all()
    for cell, value in scenario.items():
        engine.set_value(cell, value)
    return [engine.sheet.get_value(out) for out in outputs]


@pytest.mark.parametrize("store", ["columnar", "object"])
@pytest.mark.parametrize("mode", ["auto", "interpreter"])
def test_sweep_matches_independent_recalcs(store, mode):
    whatif, _engine = whatif_for(store, mode)
    outputs = ["I1", "G5", "F1"]
    results = whatif.run(SCENARIOS, outputs)
    for scenario, result in zip(SCENARIOS, results):
        want = oracle(store, mode, scenario, outputs)
        for out, expected in zip(outputs, want):
            got = result[out]
            if isinstance(expected, ExcelError):
                assert got == expected, (scenario, out)
            else:
                assert type(got) is type(expected) and got == expected, \
                    (scenario, out)


@pytest.mark.parametrize("store", ["columnar", "object"])
def test_sheet_restored_bit_identically(store):
    whatif, engine = whatif_for(store)
    reference = clone_sheet(engine.sheet)
    engine_for(reference).recalculate_all()
    whatif.run(SCENARIOS, ["I1"])
    assert_same_values(engine.sheet, reference)
    if store == "columnar":
        assert engine.sheet._cells.export_planes() == \
            reference._cells.export_planes()


def test_plan_reuse_counter():
    whatif, engine = whatif_for()
    whatif.run(SCENARIOS, ["I1"])
    assert engine.eval_stats.scenario_plan_reuses == len(SCENARIOS) - 1
    whatif.run(SCENARIOS[:2], ["I1"])
    assert engine.eval_stats.scenario_plan_reuses == len(SCENARIOS) + 1


def test_sequence_scenarios_and_tuple_keys():
    whatif, _engine = whatif_for()
    results = whatif.run([(1.05, 0.62)], [(9, 1)])
    assert results[0][(9, 1)] == oracle("columnar", "auto", {"B1": 1.05},
                                        ["I1"])[0]
    with pytest.raises(ValueError, match="2 seeds"):
        whatif.run([(1.05,)], ["I1"])


def test_monte_carlo_is_deterministic():
    whatif, _engine = whatif_for()

    def draw(rng):
        return {"B1": 1.0 + rng.random() / 10}

    a = whatif.sample(8, draw, outputs=["I1"], seed=42)
    b = whatif.sample(8, draw, outputs=["I1"], seed=42)
    assert a == b
    assert len({r["I1"] for r in a}) > 1      # the draws actually vary


def test_goal_seek():
    whatif, engine = whatif_for()
    target = oracle("columnar", "auto", {"B1": 1.04}, ["I1"])[0]
    found = whatif.solve("B1", "I1", target, 0.9, 1.2, tol=1e-12)
    assert found == pytest.approx(1.04, abs=1e-9)
    # the search itself must not leak state
    assert engine.sheet.get_value("B1") == 1.02


def test_goal_seek_rejects_unbracketed_and_non_numeric():
    whatif, _engine = whatif_for()
    with pytest.raises(ValueError, match="does not straddle"):
        whatif.solve("B1", "I1", -1e9, 1.0, 1.1)
    with pytest.raises(ValueError, match="not numeric"):
        whatif.solve("B1", "I1", 0.0, "a", "b")
    with pytest.raises(ValueError, match="not one of"):
        whatif.solve("D1", "I1", 0.0, 1.0, 1.1)


def test_formula_seed_rejected():
    engine = engine_for(build_model())
    engine.recalculate_all()
    with pytest.raises(ValueError, match="formula cell"):
        ScenarioEngine(engine, ["I1"])


def test_unknown_scenario_cell_rejected():
    whatif, _engine = whatif_for()
    with pytest.raises(ValueError, match="not one of"):
        whatif.run([{"D1": 5.0}], ["I1"])


def test_cycle_raises_at_construction():
    sheet = build_model()
    engine = engine_for(sheet)
    engine.recalculate_all()
    with pytest.raises(CircularReferenceError):
        engine.set_formula("E1", "=F1+B2")
    with pytest.raises(CircularReferenceError):
        ScenarioEngine(engine, ["B2"])


def test_structural_staleness_guard():
    whatif, engine = whatif_for()
    engine.insert_rows(2)
    with pytest.raises(RuntimeError, match="stale"):
        whatif.run([{"B1": 1.05}], ["I2"])


def test_open_batch_guard():
    whatif, engine = whatif_for()
    batch = engine.begin_batch()
    try:
        with pytest.raises(RuntimeError, match="open batch"):
            whatif.run([{"B1": 1.05}], ["I1"])
    finally:
        batch.discard()


def test_plan_executor_shadow_rejected():
    sheet = build_model()
    engine_for(sheet).recalculate_all()
    shadow = RecalcEngine.plan_executor(sheet)
    with pytest.raises(ValueError, match="graph"):
        ScenarioEngine(shadow, ["B1"])


class TestProcessFanOut:
    def test_workers_match_serial_values_and_counters(self):
        serial, serial_engine = whatif_for()
        fanned, fanned_engine = whatif_for()
        scenarios = [{"B1": 1.0 + k / 200} for k in range(12)]
        a = serial.run(scenarios, ["I1", "G7"], workers=0)
        b = fanned.run(scenarios, ["I1", "G7"], workers=3)
        assert a == b
        assert fanned_engine.eval_stats.parallel_dispatches >= 2
        assert fanned_engine.eval_stats.serial_fallbacks == 0
        # deterministic cell counters are identical across execution modes
        assert serial_engine.eval_stats.counter_snapshot() == \
            fanned_engine.eval_stats.counter_snapshot()
        assert serial_engine.eval_stats.scenario_plan_reuses == \
            fanned_engine.eval_stats.scenario_plan_reuses

    def test_workers_restore_sheet(self):
        whatif, engine = whatif_for()
        reference = clone_sheet(engine.sheet)
        engine_for(reference).recalculate_all()
        whatif.run([{"B1": 1.0 + k / 100} for k in range(8)], ["I1"],
                   workers=2)
        assert engine.sheet._cells.export_planes() == \
            reference._cells.export_planes()

    def test_object_store_falls_back_to_serial(self):
        whatif, engine = whatif_for("object")
        results = whatif.run([{"B1": 1.05}, {"B2": 0.8}], ["I1"], workers=4)
        assert engine.eval_stats.parallel_dispatches == 0
        assert results == whatif.run([{"B1": 1.05}, {"B2": 0.8}], ["I1"])

    def test_cross_sheet_formula_falls_back(self):
        sheet = build_model()
        sheet.set_formula("J1", "=Other!A1+I1")
        whatif, _ = (lambda e: (ScenarioEngine(e, ["B1"]), e))(
            engine_for(sheet))
        whatif.engine.recalculate_all()
        scenarios = [{"B1": 1.0 + k / 100} for k in range(4)]
        serial = whatif.run(scenarios, ["J1"], workers=0)
        fanned = whatif.run(scenarios, ["J1"], workers=2)
        assert serial == fanned
        assert whatif.engine.eval_stats.serial_fallbacks > 0
        assert whatif.engine.eval_stats.fallback_reason == "cross-sheet"
