"""Unit tests for the asynchronous (DataSpread-style) execution model."""

from helpers import build_fig2_sheet

from repro.engine.async_engine import AsyncRecalcEngine
from repro.engine.recalc import RecalcEngine
from repro.formula.errors import CYCLE_ERROR
from repro.grid.range import Range
from repro.sheet.sheet import Sheet


def build_chain_sheet(rows: int = 40) -> Sheet:
    sheet = Sheet("chain")
    sheet.set_value("A1", 1.0)
    sheet.set_formula("B1", "=A1")
    for r in range(2, rows + 1):
        sheet.set_formula((2, r), f"=B{r - 1}+1")
    return sheet


class TestControlReturn:
    def test_update_returns_before_computation(self):
        engine = AsyncRecalcEngine(build_chain_sheet())
        RecalcEngine(engine.sheet, engine.graph).recalculate_all()
        ticket = engine.set_value("A1", 100.0)
        assert ticket.dirty_count == 40
        # Nothing recomputed yet: the chain tail still shows a stale value.
        view = engine.read("B40")
        assert view.is_dirty
        assert view.value == 40.0

    def test_ticket_reports_dirty_ranges(self):
        engine = AsyncRecalcEngine(build_chain_sheet())
        ticket = engine.set_value("A1", 5.0)
        assert ticket.dirty_ranges
        assert ticket.control_return_seconds >= 0


class TestStepping:
    def test_step_respects_dependency_order(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=10))
        engine.set_value("A1", 100.0)
        # One step of one cell can only compute B1 (everything else is
        # blocked on a dirty precedent).
        assert engine.step(max_cells=1) == 1
        assert not engine.is_dirty("B1")
        assert engine.is_dirty("B2")
        assert engine.read("B1").value == 100.0

    def test_drain_computes_everything(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=25))
        engine.set_value("A1", 100.0)
        total = engine.drain(batch=7)
        assert total == 25
        assert engine.pending == 0
        assert engine.read("B25") == (124.0, False)

    def test_async_matches_synchronous_engine(self):
        async_engine = AsyncRecalcEngine(build_fig2_sheet(rows=30))
        async_engine.set_value((13, 2), 999.0)
        async_engine.drain()

        sync_sheet = build_fig2_sheet(rows=30)
        sync_engine = RecalcEngine(sync_sheet)
        sync_engine.recalculate_all()
        sync_engine.set_value((13, 2), 999.0)

        async_values = {
            pos: cell.value for pos, cell in async_engine.sheet.formula_cells()
        }
        sync_values = {pos: cell.value for pos, cell in sync_sheet.formula_cells()}
        assert async_values == sync_values

    def test_formula_update_marks_self_dirty(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=5))
        engine.set_formula("C1", "=B5*10")
        assert engine.is_dirty("C1")
        engine.drain()
        assert not engine.is_dirty("C1")

    def test_steps_make_monotonic_progress(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=30))
        engine.set_value("A1", 0.0)
        seen = []
        while engine.pending:
            engine.step(max_cells=5)
            seen.append(engine.pending)
        assert seen == sorted(seen, reverse=True)


class TestCycles:
    def test_cycle_surfaces_and_terminates(self):
        sheet = Sheet("cyc")
        sheet.set_formula("A1", "=B1")
        sheet.set_formula("B1", "=A1")
        engine = AsyncRecalcEngine(sheet)
        engine.set_formula("A1", "=B1+1")
        engine.drain()
        assert engine.pending == 0
        assert engine.read("B1").value == CYCLE_ERROR


class TestVanishedDirtyCells:
    def test_step_survives_cleared_dirty_cell(self):
        """Regression: a dirty cell cleared straight off the sheet used
        to crash ``step`` with AttributeError (cell_at → None)."""
        engine = AsyncRecalcEngine(build_chain_sheet(rows=10))
        engine.set_value("A1", 100.0)
        assert engine.is_dirty("B5")
        engine.sheet.clear_cell((2, 5))       # behind the engine's back
        total = engine.drain()
        assert engine.pending == 0
        assert not engine.is_dirty("B5")
        assert total < 10                     # the vanished cell wasn't "computed"

    def test_step_survives_cleared_range(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=12))
        engine.set_value("A1", 7.0)
        engine.sheet.clear_range(Range(2, 3, 2, 8))
        engine.drain()
        assert engine.pending == 0
        assert engine.read("B1").value == 7.0

    def test_blocked_on_vanished_cell_is_not_a_cycle(self):
        """A cell waiting on a vanished dirty precedent must be
        recomputed, not stamped #CYCLE! by the empty-ready branch."""
        sheet = Sheet("van")
        sheet.set_value("A1", 1.0)
        sheet.set_formula("B1", "=A1+1")
        sheet.set_formula("C1", "=B1+1")
        engine = AsyncRecalcEngine(sheet)
        engine.drain()
        engine.set_value("A1", 10.0)
        sheet.clear_cell((2, 1))              # B1 vanishes while dirty
        engine.drain()
        assert engine.pending == 0
        assert engine.read("C1").value != CYCLE_ERROR

    def test_cycle_branch_guards_vanished_cells(self):
        sheet = Sheet("cycvan")
        sheet.set_formula("A1", "=B1")
        sheet.set_formula("B1", "=A1")
        engine = AsyncRecalcEngine(sheet)
        engine.set_formula("A1", "=B1+1")
        sheet.clear_cell((1, 1))              # half the cycle vanishes
        engine.drain()
        assert engine.pending == 0


class TestClearCell:
    def test_clear_cell_marks_dependents(self):
        sheet = Sheet("clear")
        sheet.set_value("A1", 3.0)
        sheet.set_formula("B1", "=A1*2")
        engine = AsyncRecalcEngine(sheet)
        engine.drain()
        ticket = engine.clear_cell("A1")
        assert engine.sheet.cell_at((1, 1)) is None
        assert engine.is_dirty("B1")
        assert ticket.dirty_count == 1
        engine.drain()
        assert engine.read("B1").value == 0.0

    def test_clear_formula_cell_drops_graph_edges(self):
        """Same clear-graph-then-find-dependents contract as the
        synchronous engine: no phantom dirty edges afterwards."""
        sheet = Sheet("clearf")
        sheet.set_value("A1", 2.0)
        sheet.set_formula("B1", "=A1*2")
        sheet.set_formula("C1", "=B1+1")
        engine = AsyncRecalcEngine(sheet)
        engine.drain()
        engine.clear_cell("B1")
        engine.drain()
        ticket = engine.set_value("A1", 9.0)
        dirty = {pos for rng in ticket.dirty_ranges for pos in rng.cells()}
        assert (2, 1) not in dirty            # cleared cell left the graph
        assert not engine.is_dirty("B1")

    def test_clear_cell_matches_sync_engine(self):
        async_engine = AsyncRecalcEngine(build_fig2_sheet(rows=20))
        async_engine.clear_cell((13, 2))
        async_engine.drain()

        sync_sheet = build_fig2_sheet(rows=20)
        sync_engine = RecalcEngine(sync_sheet)
        sync_engine.recalculate_all()
        sync_engine.clear_cell((13, 2))

        async_values = {
            pos: cell.value for pos, cell in async_engine.sheet.formula_cells()
        }
        sync_values = {pos: cell.value for pos, cell in sync_sheet.formula_cells()}
        assert async_values == sync_values


class TestTicketCounts:
    def test_dirty_count_is_per_update_not_cumulative(self):
        """Regression: dirty_count used to report the cumulative pending
        total, so a second edit inflated its own count."""
        sheet = Sheet("counts")
        sheet.set_value("A1", 1.0)
        sheet.set_formula("B1", "=A1+1")
        sheet.set_value("A2", 1.0)
        sheet.set_formula("B2", "=A2+1")
        engine = AsyncRecalcEngine(sheet)
        engine.drain()
        first = engine.set_value("A1", 2.0)
        second = engine.set_value("A2", 2.0)
        assert first.dirty_count == 1
        assert second.dirty_count == 1        # not 2
        assert first.pending == 1
        assert second.pending == 2            # cumulative total lives here

    def test_set_formula_counts_self(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=3))
        engine.drain()
        ticket = engine.set_formula("C1", "=B3*2")
        assert ticket.dirty_count == 1
        assert ticket.pending == 1

    def test_note_external_dirty_marks_formulas_only(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=5))
        engine.drain()
        marked = engine.note_external_dirty([Range(1, 1, 2, 5)])
        assert marked == 5                    # B1..B5; A1 is a plain value
        assert engine.pending == 5
        engine.drain()
        assert engine.pending == 0


class TestFormulaOverwrite:
    def test_value_over_formula_clears_stale_edges(self):
        """Regression: overwriting a formula with a value must drop the
        cell's own graph dependencies, as in the synchronous engine."""
        sheet = Sheet("overwrite")
        sheet.set_value("B1", 2.0)
        sheet.set_formula("A1", "=B1*2")
        engine = AsyncRecalcEngine(sheet)
        engine.drain()
        engine.set_value("A1", 99.0)          # formula -> plain value
        ticket = engine.set_value("B1", 5.0)
        dirty = {pos for rng in ticket.dirty_ranges for pos in rng.cells()}
        assert (1, 1) not in dirty            # no phantom dependent
        assert not engine.is_dirty("A1")
        engine.drain()
        assert engine.read("A1").value == 99.0
