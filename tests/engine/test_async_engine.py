"""Unit tests for the asynchronous (DataSpread-style) execution model."""

from helpers import build_fig2_sheet

from repro.engine.async_engine import AsyncRecalcEngine
from repro.engine.recalc import RecalcEngine
from repro.formula.errors import CYCLE_ERROR
from repro.sheet.sheet import Sheet


def build_chain_sheet(rows: int = 40) -> Sheet:
    sheet = Sheet("chain")
    sheet.set_value("A1", 1.0)
    sheet.set_formula("B1", "=A1")
    for r in range(2, rows + 1):
        sheet.set_formula((2, r), f"=B{r - 1}+1")
    return sheet


class TestControlReturn:
    def test_update_returns_before_computation(self):
        engine = AsyncRecalcEngine(build_chain_sheet())
        RecalcEngine(engine.sheet, engine.graph).recalculate_all()
        ticket = engine.set_value("A1", 100.0)
        assert ticket.dirty_count == 40
        # Nothing recomputed yet: the chain tail still shows a stale value.
        view = engine.read("B40")
        assert view.is_dirty
        assert view.value == 40.0

    def test_ticket_reports_dirty_ranges(self):
        engine = AsyncRecalcEngine(build_chain_sheet())
        ticket = engine.set_value("A1", 5.0)
        assert ticket.dirty_ranges
        assert ticket.control_return_seconds >= 0


class TestStepping:
    def test_step_respects_dependency_order(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=10))
        engine.set_value("A1", 100.0)
        # One step of one cell can only compute B1 (everything else is
        # blocked on a dirty precedent).
        assert engine.step(max_cells=1) == 1
        assert not engine.is_dirty("B1")
        assert engine.is_dirty("B2")
        assert engine.read("B1").value == 100.0

    def test_drain_computes_everything(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=25))
        engine.set_value("A1", 100.0)
        total = engine.drain(batch=7)
        assert total == 25
        assert engine.pending == 0
        assert engine.read("B25") == (124.0, False)

    def test_async_matches_synchronous_engine(self):
        async_engine = AsyncRecalcEngine(build_fig2_sheet(rows=30))
        async_engine.set_value((13, 2), 999.0)
        async_engine.drain()

        sync_sheet = build_fig2_sheet(rows=30)
        sync_engine = RecalcEngine(sync_sheet)
        sync_engine.recalculate_all()
        sync_engine.set_value((13, 2), 999.0)

        async_values = {
            pos: cell.value for pos, cell in async_engine.sheet.formula_cells()
        }
        sync_values = {pos: cell.value for pos, cell in sync_sheet.formula_cells()}
        assert async_values == sync_values

    def test_formula_update_marks_self_dirty(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=5))
        engine.set_formula("C1", "=B5*10")
        assert engine.is_dirty("C1")
        engine.drain()
        assert not engine.is_dirty("C1")

    def test_steps_make_monotonic_progress(self):
        engine = AsyncRecalcEngine(build_chain_sheet(rows=30))
        engine.set_value("A1", 0.0)
        seen = []
        while engine.pending:
            engine.step(max_cells=5)
            seen.append(engine.pending)
        assert seen == sorted(seen, reverse=True)


class TestCycles:
    def test_cycle_surfaces_and_terminates(self):
        sheet = Sheet("cyc")
        sheet.set_formula("A1", "=B1")
        sheet.set_formula("B1", "=A1")
        engine = AsyncRecalcEngine(sheet)
        engine.set_formula("A1", "=B1+1")
        engine.drain()
        assert engine.pending == 0
        assert engine.read("B1").value == CYCLE_ERROR


class TestFormulaOverwrite:
    def test_value_over_formula_clears_stale_edges(self):
        """Regression: overwriting a formula with a value must drop the
        cell's own graph dependencies, as in the synchronous engine."""
        sheet = Sheet("overwrite")
        sheet.set_value("B1", 2.0)
        sheet.set_formula("A1", "=B1*2")
        engine = AsyncRecalcEngine(sheet)
        engine.drain()
        engine.set_value("A1", 99.0)          # formula -> plain value
        ticket = engine.set_value("B1", 5.0)
        dirty = {pos for rng in ticket.dirty_ranges for pos in rng.cells()}
        assert (1, 1) not in dirty            # no phantom dependent
        assert not engine.is_dirty("A1")
        engine.drain()
        assert engine.read("A1").value == 99.0
