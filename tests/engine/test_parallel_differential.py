"""Differential suite: partitioned parallel recalculation ≡ serial.

The region scheduler (``repro.engine.parallel``) promises *bit-identical*
results: for any sheet program, an ``evaluation="auto"`` engine with
``workers=N`` produces exactly the values — including errors and
``#CYCLE!`` propagation — and exactly the :class:`EvalStats` cell
counters of the serial auto engine, which in turn matches the
tree-walking interpreter oracle.  Pinned here across both backing
stores, every spatial-index backend, worker counts {2, 4}, both pool
flavours, and point / batch / structural edit paths.

``parallel_min_dirty=1`` forces the partitioned path even for these
deliberately small corpora.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.formula.errors import ExcelError
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.spatial.registry import available_indexes

from helpers import (
    assert_same_values,
    engine_for,
    realize_program,
    sheet_programs,
)

BACKENDS = available_indexes()
STORES = ("columnar", "object")
WORKER_COUNTS = (2, 4)


def parallel_engine(sheet, index="rtree", workers=2, mode="thread"):
    return engine_for(
        sheet, "auto", index,
        workers=workers, worker_mode=mode, parallel_min_dirty=1,
    )


def assert_identical_run(program, index, workers, mode):
    """serial auto ≡ parallel(workers) ≡ interpreter, values and stats."""
    oracle = realize_program(program, "object")
    engine_for(oracle, "interpreter", index).recalculate_all()
    for store in STORES:
        serial_sheet = realize_program(program, store)
        serial = engine_for(serial_sheet, "auto", index)
        serial.recalculate_all()

        par_sheet = realize_program(program, store)
        par = parallel_engine(par_sheet, index, workers, mode)
        par.recalculate_all()

        assert_same_values(par_sheet, serial_sheet)
        assert_same_values(par_sheet, oracle)
        assert (par.eval_stats.counter_snapshot()
                == serial.eval_stats.counter_snapshot()), (store, mode)
        assert par.eval_stats.serial_fallbacks == 0, (store, mode)


@pytest.mark.parametrize("index", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_identical_thread(index, workers, data):
    program = data.draw(sheet_programs())
    assert_identical_run(program, index, workers, "thread")


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_identical_process(data):
    program = data.draw(sheet_programs())
    assert_identical_run(program, "rtree", 2, "process")


@pytest.mark.parametrize("mode", ("thread", "process"))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_point_edits_identical(mode, data):
    program = data.draw(sheet_programs())
    for store in STORES:
        serial = engine_for(realize_program(program, store), "auto", "rtree")
        par = parallel_engine(realize_program(program, store), mode=mode)
        serial.recalculate_all()
        par.recalculate_all()
        for _ in range(data.draw(st.integers(1, 3))):
            pos = (data.draw(st.integers(1, 2)), data.draw(st.integers(1, 20)))
            value = data.draw(st.sampled_from(
                [float(data.draw(st.integers(-30, 30))), "edit", True, None]
            ))
            result_s = serial.set_value(pos, value)
            result_p = par.set_value(pos, value)
            assert result_s.recomputed == result_p.recomputed
            assert_same_values(par.sheet, serial.sheet)
            assert (par.eval_stats.counter_snapshot()
                    == serial.eval_stats.counter_snapshot()), (store, mode)


@pytest.mark.parametrize("mode", ("thread", "process"))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_batch_commit_identical(mode, data):
    program = data.draw(sheet_programs())
    edits = [
        ((data.draw(st.integers(1, 2)), data.draw(st.integers(1, 20))),
         float(data.draw(st.integers(-30, 30))))
        for _ in range(data.draw(st.integers(2, 6)))
    ]
    for store in STORES:
        serial = engine_for(realize_program(program, store), "auto", "rtree")
        par = parallel_engine(realize_program(program, store), mode=mode)
        serial.recalculate_all()
        par.recalculate_all()
        with serial.begin_batch() as batch_s:
            for pos, value in edits:
                batch_s.set_value(pos, value)
        with par.begin_batch() as batch_p:
            for pos, value in edits:
                batch_p.set_value(pos, value)
        assert batch_s.result.recomputed == batch_p.result.recomputed
        assert_same_values(par.sheet, serial.sheet)
        assert (par.eval_stats.counter_snapshot()
                == serial.eval_stats.counter_snapshot()), (store, mode)


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_structural_edits_identical(index, data):
    program = data.draw(sheet_programs())
    op = data.draw(st.sampled_from(
        ("insert_rows", "delete_rows", "insert_columns", "delete_columns")
    ))
    at = data.draw(st.integers(1, 22))
    count = data.draw(st.integers(1, 3))
    for store in STORES:
        serial = engine_for(realize_program(program, store), "auto", index)
        par = parallel_engine(realize_program(program, store), index)
        serial.recalculate_all()
        par.recalculate_all()
        getattr(serial, op)(at, count)
        getattr(par, op)(at, count)
        assert_same_values(par.sheet, serial.sheet)
        assert (par.eval_stats.counter_snapshot()
                == serial.eval_stats.counter_snapshot()), (store, index)


def build_cycle_corpus(store):
    """Two healthy independent blocks plus a 3-cell reference cycle."""
    sheet = Sheet("S", store=store)
    for r in range(1, 21):
        sheet.set_value((1, r), float(r))
        sheet.set_value((4, r), float(r % 7))
    fill_formula_column(sheet, 2, 1, 20, "=A1*2")
    fill_formula_column(sheet, 5, 1, 20, "=SUM(D1:D3)")
    sheet.set_formula((7, 1), "=G2+1")
    sheet.set_formula((7, 2), "=G3+1")
    sheet.set_formula((7, 3), "=G1+1")
    return sheet


@pytest.mark.parametrize("mode", ("thread", "process"))
@pytest.mark.parametrize("store", STORES)
def test_cycle_parity(store, mode):
    """A cycle anywhere in the dirty set bails out of the partitioned
    path: both engines raise, mark ``#CYCLE!`` identically, and the
    bail-out is visible in the stats."""
    serial_sheet = build_cycle_corpus(store)
    serial = engine_for(serial_sheet, "auto", "rtree")
    with pytest.raises(CircularReferenceError):
        serial.recalculate_all()

    par_sheet = build_cycle_corpus(store)
    par = parallel_engine(par_sheet, mode=mode)
    with pytest.raises(CircularReferenceError):
        par.recalculate_all()

    assert par.eval_stats.serial_fallbacks == 1
    assert par.eval_stats.fallback_reason == "cycle"
    assert isinstance(par_sheet.get_value((7, 1)), ExcelError)
    assert_same_values(par_sheet, serial_sheet)
    assert (par.eval_stats.counter_snapshot()
            == serial.eval_stats.counter_snapshot())


@pytest.mark.parametrize("mode", ("thread", "process"))
def test_workers_env_var(mode, monkeypatch):
    """``REPRO_RECALC_WORKERS`` / ``REPRO_RECALC_WORKER_MODE`` configure
    engines that don't pass ``workers=`` explicitly."""
    monkeypatch.setenv("REPRO_RECALC_WORKERS", "2")
    monkeypatch.setenv("REPRO_RECALC_WORKER_MODE", mode)
    monkeypatch.setenv("REPRO_PARALLEL_MIN_DIRTY", "1")
    sheet = Sheet("S")
    for r in range(1, 31):
        sheet.set_value((1, r), float(r))
    fill_formula_column(sheet, 2, 1, 30, "=XOR(A1>5,A1>25)")
    fill_formula_column(sheet, 4, 1, 30, "=A1*3+1")
    engine = RecalcEngine(sheet)
    assert engine.workers == 2
    assert engine.parallel is not None and engine.parallel.mode == mode
    engine.recalculate_all()
    assert engine.eval_stats.parallel_dispatches > 0
    reference = Sheet("S")
    for r in range(1, 31):
        reference.set_value((1, r), float(r))
    fill_formula_column(reference, 2, 1, 30, "=XOR(A1>5,A1>25)")
    fill_formula_column(reference, 4, 1, 30, "=A1*3+1")
    RecalcEngine(reference, evaluation="interpreter").recalculate_all()
    assert_same_values(sheet, reference)
