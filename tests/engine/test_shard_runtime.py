"""Behavioral tests for the persistent shard runtime.

The runtime's contract (``repro.engine.shard``): bootstrap each resident
once, thereafter ship only dirty-column plane deltas keyed by the
columnar store's version stamps; invalidate on formula/structural
change or an epoch move and re-bootstrap before the next dispatch; and
produce *bit-identical* values and ``EvalStats`` cell counters to the
serial engine, always.
"""

import io

from repro.engine.shard import ShardRuntime
from repro.io.snapshot import save_snapshot
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

from helpers import (
    assert_same_values,
    build_mixed_sheet,
    clone_sheet,
    engine_for,
)


def mixed(rows=30):
    """The mixed corpus, pinned to the columnar store regardless of the
    ``REPRO_SHEET_STORE`` matrix leg."""
    return clone_sheet(build_mixed_sheet(rows=rows), store="columnar")


def sharded_engine(sheet, shards=2):
    return engine_for(sheet, shards=shards, parallel_min_dirty=1)


def serial_twin(sheet):
    """A recalculated serial clone of ``sheet``'s *initial* program."""
    twin = clone_sheet(sheet)
    engine_for(twin).recalculate_all()
    return twin


def test_runtime_only_for_columnar_auto():
    columnar = engine_for(mixed(rows=10), shards=2)
    assert isinstance(columnar.shard_runtime, ShardRuntime)
    objstore = engine_for(
        clone_sheet(build_mixed_sheet(rows=10), store="object"), shards=2
    )
    assert objstore.shard_runtime is None
    interp = engine_for(mixed(rows=10), "interpreter", shards=2)
    assert interp.shard_runtime is None
    assert engine_for(mixed(rows=10), shards=1).shard_runtime is None


def test_env_var_configures_shards(monkeypatch):
    monkeypatch.setenv("REPRO_RECALC_SHARDS", "3")
    engine = engine_for(mixed(rows=10))
    assert isinstance(engine.shard_runtime, ShardRuntime)
    assert engine.shard_runtime.shards == 3


def test_bootstrap_once_then_deltas():
    """The hot edit loop never re-bootstraps: only deltas ship."""
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    stats = engine.eval_stats
    boots = stats.shard_bootstraps
    assert boots >= 1
    assert stats.parallel_dispatches >= 1

    twin = mixed(rows=30)
    serial = engine_for(twin)
    serial.recalculate_all()
    delta_bytes = stats.shard_delta_bytes
    for i in range(10):
        engine.set_value((1, 3), float(100 + i))
        serial.set_value((1, 3), float(100 + i))
        assert_same_values(sheet, twin)
    assert stats.shard_bootstraps == boots          # resident, not rebuilt
    assert stats.shard_delta_bytes > delta_bytes    # deltas did ship
    assert stats.shard_fallbacks == 0
    assert stats.counter_snapshot() == serial.eval_stats.counter_snapshot()


def test_formula_edit_invalidates_residents():
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    boots = engine.eval_stats.shard_bootstraps
    engine.set_formula((3, 5), "=SUM(A1:B2)+1")
    assert engine.eval_stats.shard_bootstraps > boots
    twin = clone_sheet(mixed(rows=30))
    serial = engine_for(twin)
    serial.recalculate_all()
    serial.set_formula((3, 5), "=SUM(A1:B2)+1")
    assert_same_values(sheet, twin)


def test_clearing_a_formula_invalidates_residents():
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    boots = engine.eval_stats.shard_bootstraps
    engine.clear_cell((3, 5))
    # Invalidation is lazy: the stale mark is set now, the re-bootstrap
    # happens at the next dispatch.
    assert engine.shard_runtime._stale
    engine.set_value((1, 3), 77.0)
    assert engine.eval_stats.shard_bootstraps > boots


def test_structural_edit_rebootstraps_with_identical_values():
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    boots = engine.eval_stats.shard_bootstraps
    engine.insert_rows(5, 2)
    assert engine.eval_stats.shard_bootstraps > boots

    twin = clone_sheet(mixed(rows=30))
    serial = engine_for(twin)
    serial.recalculate_all()
    serial.insert_rows(5, 2)
    assert_same_values(sheet, twin)
    assert (engine.eval_stats.counter_snapshot()
            == serial.eval_stats.counter_snapshot())


def test_epoch_move_rebootstraps_with_identical_values():
    """A store epoch bump (whole-plane reshape) strands every resident;
    the next dispatch re-bootstraps and values stay correct."""
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    boots = engine.eval_stats.shard_bootstraps
    sheet._cells.epoch += 1
    engine.set_value((1, 3), 123.0)
    assert engine.eval_stats.shard_bootstraps > boots

    twin = clone_sheet(mixed(rows=30))
    serial = engine_for(twin)
    serial.recalculate_all()
    serial.set_value((1, 3), 123.0)
    assert_same_values(sheet, twin)


def test_value_only_batch_keeps_residents():
    """The hot-loop shape — a batch of pure value writes over data
    cells — must not invalidate residents."""
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    boots = engine.eval_stats.shard_bootstraps
    with engine.begin_batch() as batch:
        batch.set_value((1, 2), 50.0)
        batch.set_value((2, 7), 60.0)
    assert engine.eval_stats.shard_bootstraps == boots

    twin = clone_sheet(mixed(rows=30))
    serial = engine_for(twin)
    serial.recalculate_all()
    with serial.begin_batch() as sbatch:
        sbatch.set_value((1, 2), 50.0)
        sbatch.set_value((2, 7), 60.0)
    assert_same_values(sheet, twin)


def test_formula_batch_invalidates_residents():
    sheet = mixed(rows=30)
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    boots = engine.eval_stats.shard_bootstraps
    with engine.begin_batch() as batch:
        batch.set_formula((3, 5), "=SUM(A1:B2)+1")
    assert engine.eval_stats.shard_bootstraps > boots


def test_min_dirty_threshold_gates_dispatch():
    sheet = mixed(rows=30)
    engine = engine_for(sheet, shards=2, parallel_min_dirty=10_000)
    engine.recalculate_all()
    assert engine.eval_stats.parallel_dispatches == 0
    assert engine.eval_stats.shard_bootstraps == 0
    assert_same_values(sheet, serial_twin(mixed(rows=30)))


def test_cross_sheet_columns_stay_parent_owned():
    """Columns with cross-sheet references never ship (the resident's
    rebuilt sheet is alone in its process); the rest still shard."""

    def build():
        workbook = Workbook("W")
        sheet = Sheet("main", store="columnar")
        other = Sheet("other", store="columnar")
        workbook.attach_sheet(sheet)
        workbook.attach_sheet(other)
        for r in range(1, 41):
            sheet.set_value((1, r), float(r))
            other.set_value((1, r), float(r * 2))
        fill_formula_column(sheet, 2, 1, 40, "=A1*2")
        fill_formula_column(sheet, 3, 1, 40, "=other!A1+A1")
        fill_formula_column(sheet, 5, 1, 40, "=B1+1")
        return sheet

    sheet = build()
    engine = sharded_engine(sheet)
    engine.recalculate_all()
    assert engine.eval_stats.parallel_dispatches >= 1
    assert engine.eval_stats.shard_fallbacks == 0
    owner = engine.shard_runtime._owner
    assert owner[3] == -1                       # cross-sheet: parent-owned
    assert owner[2] >= 0 and owner[5] >= 0      # the rest still shard

    twin = build()
    serial = engine_for(twin)
    serial.recalculate_all()
    assert_same_values(sheet, twin)
    assert (engine.eval_stats.counter_snapshot()
            == serial.eval_stats.counter_snapshot())


def test_sharded_runs_are_deterministic(monkeypatch):
    """Two identical sharded runs serialize to byte-identical snapshots
    (merges happen in sorted shard order over the same typed path)."""
    import uuid

    import repro.io.snapshot as snapshot_mod

    monkeypatch.setattr(snapshot_mod.uuid, "uuid4", lambda: uuid.UUID(int=0))
    payloads = []
    for _ in range(2):
        workbook = Workbook("W")
        sheet = mixed(rows=30)
        workbook.attach_sheet(sheet)
        engine = sharded_engine(sheet, shards=3)
        engine.recalculate_all()
        for i in range(5):
            engine.set_value((1, 3), float(i))
        assert engine.eval_stats.parallel_dispatches > 0
        buffer = io.BytesIO()
        save_snapshot(workbook, buffer)
        payloads.append(buffer.getvalue())
    assert payloads[0] == payloads[1]
