"""Fault injection for the partitioned parallel scheduler.

Every failure mode must degrade to serial re-execution of the affected
regions with *identical values* and an honest ``EvalStats`` trail:
``serial_fallbacks`` counts the regions that fell back and
``fallback_reason`` names the last cause.  The injection hook is
``REPRO_PARALLEL_FAULT`` (read inside the worker): ``"die"`` kills the
worker at region start, ``"garbage"`` makes process workers return
bytes that fail to unpickle.  Plus: determinism — two identical
parallel runs must serialize to byte-identical snapshot files.
"""

import io

import pytest

from repro.engine import parallel as parallel_mod
from repro.engine.parallel import FAULT_ENV, coarsen_regions, partition_plan
from repro.io.snapshot import save_snapshot
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

from helpers import assert_same_values, engine_for

#: Distinct worker counts per fault flavour: pools are cached by
#: (mode, workers), and a process forked *before* the fault env var was
#: set would never see it.
DIE_WORKERS = 3
GARBAGE_WORKERS = 5


def build_corpus(store="columnar"):
    sheet = Sheet("S", store=store)
    for r in range(1, 41):
        sheet.set_value((1, r), float(r % 23))
        sheet.set_value((4, r), float(r % 7) + 1.0)
    fill_formula_column(sheet, 2, 1, 40, "=XOR(A1>4,A1>17)")   # interpreter
    fill_formula_column(sheet, 5, 1, 40, "=SUM(D1:D5)/D1")     # windowed
    fill_formula_column(sheet, 7, 1, 40, "=B1+0")              # chained block
    return sheet


def reference_values(store="columnar"):
    sheet = build_corpus(store)
    engine_for(sheet, "interpreter").recalculate_all()
    return sheet


def fresh_pool(mode, workers):
    parallel_mod._discard_pool(mode, workers)


@pytest.mark.parametrize("store", ("columnar", "object"))
@pytest.mark.parametrize("mode,workers", [
    ("thread", DIE_WORKERS), ("process", DIE_WORKERS),
])
def test_worker_death_falls_back_serial(store, mode, workers, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "die")
    fresh_pool(mode, workers)
    try:
        sheet = build_corpus(store)
        engine = engine_for(
            sheet, workers=workers, worker_mode=mode, parallel_min_dirty=1,
            shards=0,   # fault targets the pooled path, not the shard runtime
        )
        engine.recalculate_all()
    finally:
        fresh_pool(mode, workers)
    stats = engine.eval_stats
    assert stats.serial_fallbacks >= 1
    assert stats.fallback_reason == "worker-died"
    assert stats.parallel_dispatches == 0
    assert_same_values(sheet, reference_values(store))


@pytest.mark.parametrize("store", ("columnar", "object"))
def test_garbage_result_falls_back_serial(store, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "garbage")
    fresh_pool("process", GARBAGE_WORKERS)
    try:
        sheet = build_corpus(store)
        engine = engine_for(
            sheet, workers=GARBAGE_WORKERS, worker_mode="process",
            parallel_min_dirty=1, shards=0,
        )
        engine.recalculate_all()
    finally:
        fresh_pool("process", GARBAGE_WORKERS)
    stats = engine.eval_stats
    assert stats.serial_fallbacks >= 1
    assert stats.fallback_reason == "unpickle-failed"
    assert_same_values(sheet, reference_values(store))


def test_unpicklable_payload_falls_back_serial():
    """A value no pickle can ship (object store) strands its region in
    the parent — with the other regions still dispatched."""
    sheet = build_corpus("object")
    sheet.set_value((1, 41), lambda: None)   # read by no formula, ships anyway
    engine = engine_for(
        sheet, workers=2, worker_mode="process", parallel_min_dirty=1,
        shards=0,
    )
    engine.recalculate_all()
    stats = engine.eval_stats
    assert stats.serial_fallbacks >= 1
    assert stats.fallback_reason == "payload-pickle-failed"
    reference = reference_values("object")
    for col in (2, 5, 7):
        for r in range(1, 41):
            assert sheet.get_value((col, r)) == reference.get_value((col, r))


def test_cross_sheet_region_falls_back_serial():
    """A region referencing a sibling sheet cannot ship to a process
    worker (the rebuilt sheet is alone over there): parent keeps it."""
    workbook = Workbook("W")
    sheet = Sheet("main", store="object")
    other = Sheet("other", store="object")
    workbook.attach_sheet(sheet)
    workbook.attach_sheet(other)
    for r in range(1, 31):
        sheet.set_value((1, r), float(r))
        other.set_value((1, r), float(r * 2))
    fill_formula_column(sheet, 2, 1, 30, "=A1*2")
    fill_formula_column(sheet, 3, 1, 30, "=other!A1+A1")
    engine = engine_for(
        sheet, workers=2, worker_mode="process", parallel_min_dirty=1,
        shards=0,
    )
    engine.recalculate_all()
    stats = engine.eval_stats
    assert stats.serial_fallbacks >= 1
    assert stats.fallback_reason == "cross-sheet"
    serial_sheet = Sheet("main", store="object")
    for r in range(1, 31):
        serial_sheet.set_value((1, r), float(r))
    fill_formula_column(serial_sheet, 2, 1, 30, "=A1*2")
    fill_formula_column(serial_sheet, 3, 1, 30, "=other!A1+A1")
    engine_for(serial_sheet).recalculate_all()
    assert_same_values(sheet, serial_sheet)


@pytest.mark.parametrize("mode", ("thread", "process"))
def test_parallel_runs_are_deterministic(mode, monkeypatch):
    """Two identical parallel runs serialize to byte-identical snapshots.

    The snapshot header embeds a random ``snapshot_id``; pin it so the
    byte comparison covers the actual cell and value-column sections.
    """
    import uuid

    import repro.io.snapshot as snapshot_mod

    monkeypatch.setattr(
        snapshot_mod.uuid, "uuid4",
        lambda: uuid.UUID(int=0),
    )
    payloads = []
    for _ in range(2):
        workbook = Workbook("W")
        sheet = build_corpus("columnar")
        workbook.attach_sheet(sheet)
        engine = engine_for(
            sheet, workers=4, worker_mode=mode, parallel_min_dirty=1,
            shards=0,
        )
        engine.recalculate_all()
        assert engine.eval_stats.parallel_dispatches > 0
        buffer = io.BytesIO()
        save_snapshot(workbook, buffer)
        payloads.append(buffer.getvalue())
    assert payloads[0] == payloads[1]


def test_partition_respects_plan_components():
    """Regions are disjoint, cover the plan, never split a chain."""
    plan = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 7)]
    succs = {(1, 1): [(1, 2)], (2, 1): [(2, 2)]}
    regions = partition_plan(plan, succs)
    assert [sorted(region) for region in regions] == [
        [(1, 1), (1, 2)], [(2, 1), (2, 2)], [(3, 7)],
    ]
    flat = [node for region in regions for node in region]
    assert sorted(flat) == sorted(plan)            # cover, no duplicates


def test_coarsen_packs_whole_regions_deterministically():
    regions = [[(c, r) for r in range(1, 4)] for c in range(1, 10)]
    packed = coarsen_regions(regions, 2)
    assert len(packed) == 2
    flat = [node for bucket in packed for node in bucket]
    assert sorted(flat) == sorted(n for region in regions for n in region)
    assert packed == coarsen_regions(regions, 2)   # deterministic
