"""Differential suite: compiled + windowed evaluation ≡ the interpreter.

The compression-aware evaluation layer promises *observational
identity*: for any sheet, an ``evaluation="auto"`` engine (compiled
templates, windowed runs, fallbacks) produces exactly the values the
tree-walking interpreter produces — including error values and
``#CYCLE!`` propagation — on full recalculation and after edits, for
every registered spatial-index backend.

Exactness is asserted bitwise, no float tolerance: the rolling
aggregates are built on ExactSum so SUM/AVERAGE match ``math.fsum`` to
the last bit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine import vectorized
from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.formula.errors import ExcelError
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.spatial.registry import available_indexes

from helpers import build_mixed_sheet

BACKENDS = available_indexes()

# Column templates an autofill can stamp down a column.  The pool mixes
# windowed aggregates (all four shapes), compiled arithmetic, lazy
# builtins, error producers, and interpreter-fallback constructs (XOR,
# ROWS are deliberately not covered by the compiler).
TEMPLATES = (
    "=SUM($A$1:A1)",
    "=SUM(A1:A4)",
    "=SUM(A1:$A$24)",
    "=AVERAGE($A$1:B1)",
    "=MIN(A1:A6)",
    "=MAX($B$1:B1)",
    "=COUNT(A1:B3)",
    "=A1*2+B1",
    "=IF(A1>B1,A1-B1,B1/A1)",
    "=IFERROR(A1/B1,-1)",
    "=XOR(A1>5,B1>5)",
    "=ROWS($A$1:A1)",
    "=A1&\"|\"&B1",
    "=SUM($A$1:A1)*0.5",
)

ROWS = 24


@st.composite
def sheets(draw):
    sheet = Sheet("S")
    for r in range(1, ROWS + 1):
        kind = draw(st.integers(0, 9))
        if kind == 0:
            value = "txt"
        elif kind == 1:
            value = True
        elif kind == 2:
            value = None
        else:
            value = float(draw(st.integers(-40, 40)))
        if value is not None:
            sheet.set_value((1, r), value)
        sheet.set_value((2, r), float(draw(st.integers(-9, 9))))
    n_cols = draw(st.integers(1, 4))
    for i in range(n_cols):
        template = draw(st.sampled_from(TEMPLATES))
        first = draw(st.integers(1, 4))
        last = draw(st.integers(ROWS - 4, ROWS))
        fill_formula_column(sheet, 3 + i, first, last, template)
    return sheet


def clone(sheet: Sheet) -> Sheet:
    copy = Sheet(sheet.name)
    for pos, cell in sheet.items():
        if cell.is_formula:
            copy.set_formula(pos, cell.formula_text)
        else:
            copy.set_value(pos, cell.value)
    return copy


def assert_same_values(auto: Sheet, interp: Sheet) -> None:
    positions = set(auto.positions()) | set(interp.positions())
    for pos in positions:
        got = auto.get_value(pos)
        want = interp.get_value(pos)
        if isinstance(want, ExcelError):
            assert isinstance(got, ExcelError) and got.code == want.code, pos
        else:
            assert type(got) is type(want) and got == want, pos


def run_both(sheet: Sheet, index: str):
    sa, sb = clone(sheet), clone(sheet)

    def engine(s, mode):
        graph = TacoGraph.full(index=index)
        graph.build(dependencies_column_major(s))
        return RecalcEngine(s, graph, evaluation=mode)

    ea = engine(sa, "auto")
    eb = engine(sb, "interpreter")
    raised_a = raised_b = False
    try:
        ea.recalculate_all()
    except CircularReferenceError:
        raised_a = True
    try:
        eb.recalculate_all()
    except CircularReferenceError:
        raised_b = True
    assert raised_a == raised_b
    assert_same_values(sa, sb)
    return ea, eb, raised_a


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_identical(index, data):
    sheet = data.draw(sheets())
    run_both(sheet, index)


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_edits_identical(index, data):
    sheet = data.draw(sheets())
    ea, eb, raised = run_both(sheet, index)
    if raised:
        return
    for _ in range(data.draw(st.integers(1, 3))):
        row = data.draw(st.integers(1, ROWS))
        col = data.draw(st.integers(1, 2))
        value = float(data.draw(st.integers(-30, 30)))
        result_a = ea.set_value((col, row), value)
        result_b = eb.set_value((col, row), value)
        assert result_a.recomputed == result_b.recomputed
        assert_same_values(ea.sheet, eb.sheet)


def test_full_corpus_recalculate_all_every_backend():
    """The repo's mixed corpus sheet, every backend, both modes."""
    for index in BACKENDS:
        reference = build_mixed_sheet(seed=3, rows=40)
        graph = TacoGraph.full(index=index)
        graph.build(dependencies_column_major(reference))
        RecalcEngine(reference, graph, evaluation="interpreter").recalculate_all()

        subject = build_mixed_sheet(seed=3, rows=40)
        graph = TacoGraph.full(index=index)
        graph.build(dependencies_column_major(subject))
        engine = RecalcEngine(subject, graph)
        engine.recalculate_all()
        assert_same_values(subject, reference)
        assert engine.eval_stats.windowed_cells > 0, index


def test_fallback_is_exercised_alongside_fast_paths():
    """One sheet drives all four paths at once, identically."""
    def build():
        sheet = Sheet("S")
        for r in range(1, 31):
            sheet.set_value((1, r), float(r))
        fill_formula_column(sheet, 2, 1, 30, "=SUM($A$1:A1)")   # windowed
        fill_formula_column(sheet, 3, 1, 30, "=B1*2")           # elementwise
        fill_formula_column(sheet, 4, 1, 30, "=XOR(A1>9,B1>9)")  # interpreter
        fill_formula_column(sheet, 5, 1, 30, "=IF(A1>9,B1,A1)")  # compiled
        return sheet

    subject, reference = build(), build()
    engine = RecalcEngine(subject)
    engine.recalculate_all()
    RecalcEngine(reference, evaluation="interpreter").recalculate_all()
    assert_same_values(subject, reference)
    stats = engine.eval_stats
    assert stats.windowed_cells == 30
    assert stats.interpreted_cells == 30
    # The elementwise column sweeps on columnar-backed sheets; without
    # the typed arrays (or numpy) it lands on the compiled path instead.
    assert stats.elementwise_cells + stats.compiled_cells == 60
    if subject.store_kind == "columnar" and vectorized._np is not None:
        assert stats.elementwise_cells == 30
        assert stats.compiled_cells == 30


def test_batched_commit_uses_fast_paths():
    from repro.grid.range import Range

    sheet = Sheet("S")
    for r in range(1, 41):
        sheet.set_value((1, r), float(r))
    fill_formula_column(sheet, 2, 1, 40, "=SUM($A$1:A1)")
    engine = RecalcEngine(sheet)
    engine.recalculate_all()
    with engine.begin_batch() as batch:
        for r in range(1, 21):
            batch.set_value((1, r), float(r) * 2)
    assert batch.result.windowed_cells == 40
    # values identical to a scratch interpreter rebuild
    reference = Sheet("S")
    for r in range(1, 41):
        reference.set_value((1, r), float(r) * (2 if r <= 20 else 1))
    fill_formula_column(reference, 2, 1, 40, "=SUM($A$1:A1)")
    RecalcEngine(reference, evaluation="interpreter").recalculate_all()
    assert_same_values(sheet, reference)


def test_async_engine_uses_compiled_path():
    from repro.engine.async_engine import AsyncRecalcEngine

    sheet = Sheet("S")
    for r in range(1, 21):
        sheet.set_value((1, r), float(r))
    fill_formula_column(sheet, 2, 1, 20, "=A1*3")
    engine = AsyncRecalcEngine(sheet)
    engine.set_value((1, 1), 10.0)
    engine.drain()
    assert engine.eval_stats.compiled_cells > 0
    assert sheet.get_value((2, 1)) == 30.0
