"""Differential suite: compiled + windowed evaluation ≡ the interpreter.

The compression-aware evaluation layer promises *observational
identity*: for any sheet, an ``evaluation="auto"`` engine (compiled
templates, windowed runs, fallbacks) produces exactly the values the
tree-walking interpreter produces — including error values and
``#CYCLE!`` propagation — on full recalculation and after edits, for
every registered spatial-index backend.

Exactness is asserted bitwise, no float tolerance: the rolling
aggregates are built on ExactSum so SUM/AVERAGE match ``math.fsum`` to
the last bit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import vectorized
from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.spatial.registry import available_indexes

from helpers import (
    assert_same_values,
    build_mixed_sheet,
    engine_for,
    realize_program,
    sheet_programs,
)

BACKENDS = available_indexes()

ROWS = 24


def run_both(program, index: str):
    sa = realize_program(program)
    sb = realize_program(program)
    ea = engine_for(sa, "auto", index)
    eb = engine_for(sb, "interpreter", index)
    raised_a = raised_b = False
    try:
        ea.recalculate_all()
    except CircularReferenceError:
        raised_a = True
    try:
        eb.recalculate_all()
    except CircularReferenceError:
        raised_b = True
    assert raised_a == raised_b
    assert_same_values(sa, sb)
    return ea, eb, raised_a


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_identical(index, data):
    program = data.draw(sheet_programs(rows=ROWS, max_fills=4))
    run_both(program, index)


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_edits_identical(index, data):
    program = data.draw(sheet_programs(rows=ROWS, max_fills=4))
    ea, eb, raised = run_both(program, index)
    if raised:
        return
    for _ in range(data.draw(st.integers(1, 3))):
        row = data.draw(st.integers(1, ROWS))
        col = data.draw(st.integers(1, 2))
        value = float(data.draw(st.integers(-30, 30)))
        result_a = ea.set_value((col, row), value)
        result_b = eb.set_value((col, row), value)
        assert result_a.recomputed == result_b.recomputed
        assert_same_values(ea.sheet, eb.sheet)


def test_full_corpus_recalculate_all_every_backend():
    """The repo's mixed corpus sheet, every backend, both modes."""
    for index in BACKENDS:
        reference = build_mixed_sheet(seed=3, rows=40)
        engine_for(reference, "interpreter", index).recalculate_all()

        subject = build_mixed_sheet(seed=3, rows=40)
        engine = engine_for(subject, "auto", index)
        engine.recalculate_all()
        assert_same_values(subject, reference)
        assert engine.eval_stats.windowed_cells > 0, index


def test_fallback_is_exercised_alongside_fast_paths():
    """One sheet drives all four paths at once, identically."""
    def build():
        sheet = Sheet("S")
        for r in range(1, 31):
            sheet.set_value((1, r), float(r))
        fill_formula_column(sheet, 2, 1, 30, "=SUM($A$1:A1)")   # windowed
        fill_formula_column(sheet, 3, 1, 30, "=B1*2")           # elementwise
        fill_formula_column(sheet, 4, 1, 30, "=XOR(A1>9,B1>9)")  # interpreter
        fill_formula_column(sheet, 5, 1, 30, "=IF(A1>9,B1,A1)")  # compiled
        return sheet

    subject, reference = build(), build()
    engine = RecalcEngine(subject)
    engine.recalculate_all()
    RecalcEngine(reference, evaluation="interpreter").recalculate_all()
    assert_same_values(subject, reference)
    stats = engine.eval_stats
    assert stats.windowed_cells == 30
    assert stats.interpreted_cells == 30
    # The elementwise column sweeps on columnar-backed sheets; without
    # the typed arrays (or numpy) it lands on the compiled path instead.
    assert stats.elementwise_cells + stats.compiled_cells == 60
    if subject.store_kind == "columnar" and vectorized._np is not None:
        assert stats.elementwise_cells == 30
        assert stats.compiled_cells == 30


def test_batched_commit_uses_fast_paths():
    from repro.grid.range import Range

    sheet = Sheet("S")
    for r in range(1, 41):
        sheet.set_value((1, r), float(r))
    fill_formula_column(sheet, 2, 1, 40, "=SUM($A$1:A1)")
    engine = RecalcEngine(sheet)
    engine.recalculate_all()
    with engine.begin_batch() as batch:
        for r in range(1, 21):
            batch.set_value((1, r), float(r) * 2)
    assert batch.result.windowed_cells == 40
    # values identical to a scratch interpreter rebuild
    reference = Sheet("S")
    for r in range(1, 41):
        reference.set_value((1, r), float(r) * (2 if r <= 20 else 1))
    fill_formula_column(reference, 2, 1, 40, "=SUM($A$1:A1)")
    RecalcEngine(reference, evaluation="interpreter").recalculate_all()
    assert_same_values(sheet, reference)


def test_async_engine_uses_compiled_path():
    from repro.engine.async_engine import AsyncRecalcEngine

    sheet = Sheet("S")
    for r in range(1, 21):
        sheet.set_value((1, r), float(r))
    fill_formula_column(sheet, 2, 1, 20, "=A1*3")
    engine = AsyncRecalcEngine(sheet)
    engine.set_value((1, 1), 10.0)
    engine.drain()
    assert engine.eval_stats.compiled_cells > 0
    assert sheet.get_value((2, 1)) == 30.0
