"""Fault injection for the persistent shard runtime.

Every failure mode must degrade to serial re-execution of the affected
shard's nodes with *identical values* and an honest ``EvalStats``
trail: ``serial_fallbacks``/``shard_fallbacks`` count the shards that
fell back and ``fallback_reason`` names the last cause.  The injection
hook is the same ``REPRO_PARALLEL_FAULT`` the pooled scheduler uses,
read inside the resident worker at exec/replay time (never at boot, so
a fault always hits a *resident* shard): ``"die"`` kills the worker
mid-delta, ``"stale"`` makes the resident disclaim its bootstrap token
(a stale store-epoch on the resident), ``"garbage"`` returns bytes that
fail to unpickle.  The fourth flavour needs no hook: a value no pickle
can ship, written into a shard's closure *after* boot, strands the
delta in the parent.

Slot pools fork workers that capture the environment at pool creation:
each test discards the resident pools before *and* after running under
the fault variable (the ``finally`` also keeps later suites from
inheriting poisoned workers).
"""

import pytest

from repro.engine.parallel import FAULT_ENV
from repro.engine.scenario import ScenarioEngine
from repro.engine.shard import shutdown_slot_pools
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

from helpers import assert_same_values, engine_for


def build_corpus():
    sheet = Sheet("S", store="columnar")
    for r in range(1, 41):
        sheet.set_value((1, r), float(r % 23))
        sheet.set_value((4, r), float(r % 7) + 1.0)
    fill_formula_column(sheet, 2, 1, 40, "=XOR(A1>4,A1>17)")   # interpreter
    fill_formula_column(sheet, 5, 1, 40, "=SUM(D1:D5)/D1")     # windowed
    fill_formula_column(sheet, 7, 1, 40, "=B1+0")              # chained block
    return sheet


def reference_values():
    sheet = build_corpus()
    engine_for(sheet, "interpreter").recalculate_all()
    return sheet


@pytest.mark.parametrize("fault,reason", [
    ("die", "worker-died"),
    ("stale", "stale-epoch"),
    ("garbage", "unpickle-failed"),
])
def test_exec_fault_falls_back_serial(fault, reason, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, fault)
    shutdown_slot_pools()
    try:
        sheet = build_corpus()
        engine = engine_for(sheet, shards=2, parallel_min_dirty=1)
        engine.recalculate_all()
    finally:
        shutdown_slot_pools()
    stats = engine.eval_stats
    assert stats.serial_fallbacks >= 1
    assert stats.shard_fallbacks >= 1
    assert stats.fallback_reason == reason
    assert stats.parallel_dispatches == 0
    assert_same_values(sheet, reference_values())


def test_recovery_after_worker_death(monkeypatch):
    """After a fault strands its shards, healthy pools re-bootstrap on
    the next dispatch and the runtime resumes shipping deltas."""
    monkeypatch.setenv(FAULT_ENV, "die")
    shutdown_slot_pools()
    try:
        sheet = build_corpus()
        engine = engine_for(sheet, shards=2, parallel_min_dirty=1)
        engine.recalculate_all()
        assert engine.eval_stats.fallback_reason == "worker-died"
        fallbacks = engine.eval_stats.shard_fallbacks
    finally:
        shutdown_slot_pools()
    monkeypatch.delenv(FAULT_ENV)
    engine.set_value((1, 3), 99.0)
    try:
        assert engine.eval_stats.shard_fallbacks == fallbacks
        assert engine.eval_stats.parallel_dispatches >= 1
        twin = build_corpus()
        serial = engine_for(twin)
        serial.recalculate_all()
        serial.set_value((1, 3), 99.0)
        assert_same_values(sheet, twin)
    finally:
        shutdown_slot_pools()


def test_unpicklable_delta_falls_back_serial():
    """A value no pickle can ship, written into a shard's closure
    *after* boot, strands that shard's delta in the parent — with
    identical values, and residency recovering once the value is
    replaced."""
    sheet = build_corpus()
    engine = engine_for(sheet, shards=2, parallel_min_dirty=1)
    try:
        engine.recalculate_all()
        assert engine.eval_stats.shard_fallbacks == 0
        sheet.set_value((1, 41), lambda: None)   # read by no formula
        engine.set_value((1, 3), 99.0)           # but its column ships
        stats = engine.eval_stats
        assert stats.serial_fallbacks >= 1
        assert stats.shard_fallbacks >= 1
        assert stats.fallback_reason == "patch-pickle-failed"

        twin = build_corpus()
        serial = engine_for(twin)
        serial.recalculate_all()
        serial.set_value((1, 3), 99.0)
        for col in (2, 5, 7):
            for r in range(1, 41):
                assert sheet.get_value((col, r)) == twin.get_value((col, r))

        # Replace the unshippable value: the stranded shard re-boots and
        # the runtime is healthy again.
        fallbacks = stats.shard_fallbacks
        sheet.set_value((1, 41), 0.0)
        engine.set_value((1, 3), 12.0)
        serial.set_value((1, 3), 12.0)
        assert stats.shard_fallbacks == fallbacks
        for col in (2, 5, 7):
            for r in range(1, 41):
                assert sheet.get_value((col, r)) == twin.get_value((col, r))
    finally:
        shutdown_slot_pools()


def test_scenario_replay_stale_falls_back_serial(monkeypatch):
    """A resident scenario replica that disclaims its bootstrap token
    mid-sweep falls back chunk-by-chunk with identical results."""
    monkeypatch.setenv(FAULT_ENV, "stale")
    shutdown_slot_pools()
    try:
        sheet = build_corpus()
        engine = engine_for(sheet)
        engine.recalculate_all()
        whatif = ScenarioEngine(engine, ["A1", "A2"])
        scenarios = [{"A1": float(i), "A2": float(i * 2)} for i in range(8)]
        results = whatif.run(scenarios, ["E1", "G5"], workers=2)
    finally:
        shutdown_slot_pools()
    stats = engine.eval_stats
    assert stats.serial_fallbacks >= 1
    assert stats.fallback_reason == "stale-epoch"

    # The fault env is still set here: pin the reference truly serial
    # (shards=0) so it cannot fork poisoned slot pools under the
    # REPRO_RECALC_SHARDS CI matrix and leak them into later tests.
    serial_sheet = build_corpus()
    serial = engine_for(serial_sheet, shards=0)
    serial.recalculate_all()
    serial_whatif = ScenarioEngine(serial, ["A1", "A2"])
    expected = serial_whatif.run(scenarios, ["E1", "G5"])
    assert results == expected
