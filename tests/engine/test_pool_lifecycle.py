"""Worker-pool lifecycle: caching, reuse, and public teardown.

Pools are process-wide caches — the pooled scheduler keys executors by
``(worker_mode, workers)``, the shard runtime keys one single-process
executor per shard *slot* shared by every runtime.  Flipping an
engine's ``worker_mode`` (or building many engines) must reuse cached
pools rather than leak fresh ones, and the public
:func:`repro.engine.shutdown_pools` must tear down both caches so
embedders (and the CLI, which calls it on exit) can release the worker
processes deterministically.
"""

from repro.engine import shutdown_pools
from repro.engine import parallel as parallel_mod
from repro.engine import shard as shard_mod

from helpers import build_mixed_sheet, clone_sheet, engine_for


def run_pooled(mode, workers=2):
    sheet = clone_sheet(build_mixed_sheet(rows=30), store="columnar")
    engine = engine_for(
        sheet, workers=workers, worker_mode=mode, parallel_min_dirty=1,
        shards=0,    # pin the pooled path under REPRO_RECALC_SHARDS matrices
    )
    engine.recalculate_all()
    assert engine.eval_stats.parallel_dispatches >= 1


def run_sharded(shards=2):
    sheet = clone_sheet(build_mixed_sheet(rows=30), store="columnar")
    engine = engine_for(sheet, shards=shards, parallel_min_dirty=1)
    engine.recalculate_all()
    assert engine.eval_stats.parallel_dispatches >= 1


def test_worker_mode_changes_do_not_leak_pools():
    """Alternating worker modes across engines reuses the two cached
    pools; repeat runs add nothing."""
    shutdown_pools()
    try:
        for _ in range(3):
            run_pooled("thread")
            run_pooled("process")
        assert len(parallel_mod._POOLS) == 2
        assert set(parallel_mod._POOLS) == {("thread", 2), ("process", 2)}
    finally:
        shutdown_pools()


def test_shard_slots_shared_across_runtimes():
    """N engines with the same shard count share the same slot pools:
    the cache holds max(shards) entries, not engines x shards."""
    shutdown_pools()
    try:
        for _ in range(3):
            run_sharded(shards=2)
        assert len(shard_mod._SLOT_POOLS) == 2
        run_sharded(shards=3)
        assert len(shard_mod._SLOT_POOLS) == 3
    finally:
        shutdown_pools()


def test_shutdown_pools_clears_both_caches():
    run_pooled("thread")
    run_sharded(shards=2)
    assert parallel_mod._POOLS
    assert shard_mod._SLOT_POOLS
    shutdown_pools()
    assert parallel_mod._POOLS == {}
    assert shard_mod._SLOT_POOLS == {}


def test_pools_rebuild_after_shutdown():
    """Teardown is not terminal: the next parallel engine lazily builds
    fresh pools and dispatches normally."""
    shutdown_pools()
    try:
        run_pooled("thread")
        run_sharded(shards=2)
        assert parallel_mod._POOLS
        assert shard_mod._SLOT_POOLS
    finally:
        shutdown_pools()
