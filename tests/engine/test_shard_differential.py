"""Differential suite: persistent shard runtime ≡ pooled ≡ serial.

The shard runtime (``repro.engine.shard``) makes the same promise the
pooled scheduler does, with residency on top: for any sheet program, an
``evaluation="auto"`` engine with ``shards=N`` produces exactly the
values — including errors and ``#CYCLE!`` propagation — and exactly the
:class:`EvalStats` cell counters of the serial auto engine and of the
pooled ``workers=N`` engine, which in turn match the tree-walking
interpreter oracle.  Pinned here across both backing stores and point /
batch / structural edit paths.  (On the object store the runtime never
constructs — ``shards=N`` engines degrade to plain serial — so the
identity is trivially exercised there too.)

``parallel_min_dirty=1`` forces the sharded path even for these
deliberately small corpora; the hot-loop tests assert residency held
(no re-bootstraps) so the identity covers the *delta* protocol, not
just the bootstrap.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.recalc import CircularReferenceError
from repro.formula.errors import ExcelError
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

from helpers import (
    assert_same_values,
    engine_for,
    realize_program,
    sheet_programs,
)

STORES = ("columnar", "object")
SHARD_COUNTS = (2, 4)


def sharded(sheet, shards=2):
    return engine_for(sheet, shards=shards, parallel_min_dirty=1)


def pooled(sheet):
    return engine_for(
        sheet, workers=2, worker_mode="thread", parallel_min_dirty=1
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_identical(shards, data):
    """serial auto ≡ pooled ≡ sharded ≡ interpreter, values and stats."""
    program = data.draw(sheet_programs())
    oracle = realize_program(program, "object")
    engine_for(oracle, "interpreter").recalculate_all()
    for store in STORES:
        serial_sheet = realize_program(program, store)
        serial = engine_for(serial_sheet)
        serial.recalculate_all()

        pool_sheet = realize_program(program, store)
        pool = pooled(pool_sheet)
        pool.recalculate_all()

        shard_sheet = realize_program(program, store)
        shard = sharded(shard_sheet, shards)
        shard.recalculate_all()

        assert_same_values(shard_sheet, serial_sheet)
        assert_same_values(shard_sheet, pool_sheet)
        assert_same_values(shard_sheet, oracle)
        assert (shard.eval_stats.counter_snapshot()
                == serial.eval_stats.counter_snapshot()), store
        assert (shard.eval_stats.counter_snapshot()
                == pool.eval_stats.counter_snapshot()), store
        assert shard.eval_stats.shard_fallbacks == 0, store


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_point_edits_identical(data):
    """Resident deltas across a point-edit sequence stay bit-identical,
    with no re-bootstraps between pure value edits."""
    program = data.draw(sheet_programs())
    for store in STORES:
        serial = engine_for(realize_program(program, store))
        shard = sharded(realize_program(program, store))
        serial.recalculate_all()
        shard.recalculate_all()
        boots = shard.eval_stats.shard_bootstraps
        value_edits_only = True
        for _ in range(data.draw(st.integers(1, 3))):
            pos = (data.draw(st.integers(1, 2)), data.draw(st.integers(1, 20)))
            value = data.draw(st.sampled_from(
                [float(data.draw(st.integers(-30, 30))), "edit", True, None]
            ))
            if value is None:
                value_edits_only = False    # clears can strike formulas
            result_s = serial.set_value(pos, value)
            result_h = shard.set_value(pos, value)
            assert result_s.recomputed == result_h.recomputed
            assert_same_values(shard.sheet, serial.sheet)
            assert (shard.eval_stats.counter_snapshot()
                    == serial.eval_stats.counter_snapshot()), store
        if store == "columnar" and value_edits_only:
            assert shard.eval_stats.shard_bootstraps == boots


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_batch_commit_identical(data):
    program = data.draw(sheet_programs())
    edits = [
        ((data.draw(st.integers(1, 2)), data.draw(st.integers(1, 20))),
         float(data.draw(st.integers(-30, 30))))
        for _ in range(data.draw(st.integers(2, 6)))
    ]
    for store in STORES:
        serial = engine_for(realize_program(program, store))
        shard = sharded(realize_program(program, store))
        serial.recalculate_all()
        shard.recalculate_all()
        with serial.begin_batch() as batch_s:
            for pos, value in edits:
                batch_s.set_value(pos, value)
        with shard.begin_batch() as batch_h:
            for pos, value in edits:
                batch_h.set_value(pos, value)
        assert batch_s.result.recomputed == batch_h.result.recomputed
        assert_same_values(shard.sheet, serial.sheet)
        assert (shard.eval_stats.counter_snapshot()
                == serial.eval_stats.counter_snapshot()), store


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_structural_edits_identical(data):
    """Structural edits re-bootstrap resident shards; values after the
    reshard stay bit-identical to serial."""
    program = data.draw(sheet_programs())
    op = data.draw(st.sampled_from(
        ("insert_rows", "delete_rows", "insert_columns", "delete_columns")
    ))
    at = data.draw(st.integers(1, 22))
    count = data.draw(st.integers(1, 3))
    for store in STORES:
        serial = engine_for(realize_program(program, store))
        shard = sharded(realize_program(program, store))
        serial.recalculate_all()
        shard.recalculate_all()
        getattr(serial, op)(at, count)
        getattr(shard, op)(at, count)
        assert_same_values(shard.sheet, serial.sheet)
        assert (shard.eval_stats.counter_snapshot()
                == serial.eval_stats.counter_snapshot()), store
        # A follow-up edit exercises the re-bootstrapped residents.
        serial.set_value((1, 1), 5.5)
        shard.set_value((1, 1), 5.5)
        assert_same_values(shard.sheet, serial.sheet)


def build_cycle_corpus(store):
    """Two healthy independent blocks plus a 3-cell reference cycle."""
    sheet = Sheet("S", store=store)
    for r in range(1, 21):
        sheet.set_value((1, r), float(r))
        sheet.set_value((4, r), float(r % 7))
    fill_formula_column(sheet, 2, 1, 20, "=A1*2")
    fill_formula_column(sheet, 5, 1, 20, "=SUM(D1:D3)")
    sheet.set_formula((7, 1), "=G2+1")
    sheet.set_formula((7, 2), "=G3+1")
    sheet.set_formula((7, 3), "=G1+1")
    return sheet


@pytest.mark.parametrize("store", STORES)
def test_cycle_parity(store):
    """A cycle anywhere in the dirty set bails out of the sharded path:
    both engines raise, mark ``#CYCLE!`` identically, and the bail-out
    is visible in the stats."""
    serial_sheet = build_cycle_corpus(store)
    serial = engine_for(serial_sheet)
    with pytest.raises(CircularReferenceError):
        serial.recalculate_all()

    shard_sheet = build_cycle_corpus(store)
    shard = sharded(shard_sheet)
    with pytest.raises(CircularReferenceError):
        shard.recalculate_all()

    if store == "columnar":
        assert shard.eval_stats.serial_fallbacks == 1
        assert shard.eval_stats.fallback_reason == "cycle"
    assert isinstance(shard_sheet.get_value((7, 1)), ExcelError)
    assert_same_values(shard_sheet, serial_sheet)
    assert (shard.eval_stats.counter_snapshot()
            == serial.eval_stats.counter_snapshot())


def test_shards_env_var(monkeypatch):
    """``REPRO_RECALC_SHARDS`` configures engines that don't pass
    ``shards=`` explicitly, with the same value identity."""
    monkeypatch.setenv("REPRO_RECALC_SHARDS", "2")
    sheet = realize_program(
        ([((1, r), float(r)) for r in range(1, 21)]
         + [((2, r), float(r % 5)) for r in range(1, 21)],
         [(3, 1, 20, "=A1+B1")]),
        "columnar",
    )
    engine = engine_for(sheet, parallel_min_dirty=1)
    assert engine.shard_runtime is not None
    engine.recalculate_all()

    twin = realize_program(
        ([((1, r), float(r)) for r in range(1, 21)]
         + [((2, r), float(r % 5)) for r in range(1, 21)],
         [(3, 1, 20, "=A1+B1")]),
        "columnar",
    )
    monkeypatch.delenv("REPRO_RECALC_SHARDS")
    engine_for(twin).recalculate_all()
    assert_same_values(sheet, twin)
