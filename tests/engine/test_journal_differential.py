"""Differential: snapshot + journal replay ≡ the live workbook.

Hypothesis drives random mixes of cell edits, batch commits, and
structural ops through a journaled engine; recovering from the snapshot
plus the recorded journal must land in exactly the live state — values,
decompressed dependency sets, and ``find_dependents`` answers — for
every registered spatial-index backend.

Formula references always point to columns strictly left of the formula
cell, so no mix can create a cycle and both sides terminate identically
(cycle behaviour itself is covered by ``test_recovery_cycles`` below).
"""

import io
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.journal import Journal, recover
from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.graphs.base import expand_cells
from repro.grid.range import Range
from repro.io.snapshot import save_snapshot
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook
from repro.spatial.registry import available_indexes

BACKENDS = available_indexes()

DATA_COLS = (1, 2)          # A, B hold pure values
FORMULA_COLS = (3, 4, 5)    # C, D, E hold formulas
ROWS = range(1, 7)
COL_NAMES = "ABCDE"


def _a1(col: int, row: int) -> str:
    return f"{COL_NAMES[col - 1]}{row}"


@st.composite
def journal_steps(draw):
    """One journaled operation: a cell edit, a batch, or a structural op."""
    kind = draw(st.sampled_from((
        "value", "value", "formula", "clear", "batch", "structural",
    )))
    if kind == "value":
        pos = (draw(st.sampled_from(DATA_COLS)), draw(st.sampled_from(list(ROWS))))
        return ("value", pos, float(draw(st.integers(-50, 50))))
    if kind == "formula":
        col = draw(st.sampled_from(FORMULA_COLS))
        row = draw(st.sampled_from(list(ROWS)))
        src = draw(st.sampled_from(DATA_COLS + tuple(c for c in FORMULA_COLS if c < col)))
        r1 = draw(st.sampled_from(list(ROWS)))
        r2 = min(6, r1 + draw(st.integers(0, 2)))
        text = draw(st.sampled_from((
            f"=SUM({_a1(src, r1)}:{_a1(src, r2)})",
            f"={_a1(src, r1)}*2",
            f"=COUNT({_a1(src, r1)}:{_a1(src, r2)})+{_a1(1, r1)}",
        )))
        return ("formula", (col, row), text)
    if kind == "clear":
        pos = (draw(st.sampled_from(DATA_COLS + FORMULA_COLS)),
               draw(st.sampled_from(list(ROWS))))
        return ("clear", pos, None)
    if kind == "structural":
        op = draw(st.sampled_from(
            ("insert_rows", "delete_rows", "insert_columns", "delete_columns")
        ))
        index = draw(st.integers(1, 6))
        return ("structural", op, index)
    ops = draw(st.lists(st.tuples(
        st.sampled_from(DATA_COLS), st.sampled_from(list(ROWS)),
        st.integers(-9, 9),
    ), min_size=1, max_size=4))
    return ("batch", ops, None)


def build_sheet() -> Sheet:
    sheet = Sheet("Diff")
    for r in ROWS:
        sheet.set_value((1, r), float(r))
        sheet.set_value((2, r), float(r * 2))
    for r in ROWS:
        sheet.set_formula((3, r), f"=A{r}+B{r}")
    sheet.set_formula((4, 1), "=SUM(A1:A6)")
    sheet.set_formula((5, 2), "=SUM(C1:C3)*B1")
    return sheet


def apply_step(engine: RecalcEngine, workbook: Workbook, step) -> None:
    kind, a, b = step
    if kind == "value":
        engine.set_value(a, b)
    elif kind == "formula":
        engine.set_formula(a, b)
    elif kind == "clear":
        engine.clear_cell(a)
    elif kind == "structural":
        getattr(engine, a)(b, 1, workbook=workbook)
    else:
        with engine.begin_batch(workbook=workbook) as batch:
            for col, row, value in a:
                batch.set_value((col, row), float(value))


def state(sheet: Sheet) -> dict:
    return {pos: (cell.formula_text, cell.value) for pos, cell in sheet.items()}


def dependency_set(graph) -> set:
    return {(d.prec.as_tuple(), d.dep.as_tuple()) for d in graph.decompress()}


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(journal_steps(), min_size=1, max_size=8))
def test_replay_equals_live(backend, steps, tmp_path_factory):
    workdir = tmp_path_factory.mktemp("journaldiff")
    journal_path = str(workdir / "diff.wal")

    workbook = Workbook("diff")
    sheet = build_sheet()
    workbook.attach_sheet(sheet)
    graph = TacoGraph.full(index=backend)
    graph.build(dependencies_column_major(sheet))
    engine = RecalcEngine(sheet, graph)
    engine.recalculate_all()

    snapshot = io.BytesIO()
    save_snapshot(workbook, snapshot, {sheet.name: graph})
    engine.journal = Journal(journal_path, truncate=True, fsync=False)
    for step in steps:
        apply_step(engine, workbook, step)
    engine.journal.close()

    snapshot.seek(0)
    result = recover(snapshot, journal_path)
    assert result.records_applied == len(steps)
    rsheet = result.workbook[sheet.name]
    rgraph = result.graphs[sheet.name]

    assert state(rsheet) == state(sheet)
    assert dependency_set(rgraph) == dependency_set(engine.graph)
    # The replayed graph answers queries exactly like the live one.
    for probe in (Range.from_a1("A1"), Range.from_a1("B3"),
                  Range.from_a1("A1:B6")):
        assert expand_cells(rgraph.find_dependents(probe)) == \
            expand_cells(engine.graph.find_dependents(probe))
    os.remove(journal_path)


def test_recovery_cycles_match_live(tmp_path):
    """A journaled edit that closes a cycle recovers to the same #CYCLE!
    state; the error is reported, not raised."""
    workbook = Workbook("cyc")
    sheet = workbook.add_sheet("Main")
    sheet.set_value("A1", 1.0)
    sheet.set_formula("B1", "=A1+1")
    engine = RecalcEngine(sheet)
    engine.recalculate_all()
    snapshot = io.BytesIO()
    save_snapshot(workbook, snapshot, {"Main": engine.graph})

    journal_path = str(tmp_path / "cyc.wal")
    engine.journal = Journal(journal_path, truncate=True)
    with pytest.raises(CircularReferenceError):
        engine.set_formula("A1", "=B1")
    engine.journal.close()

    snapshot.seek(0)
    result = recover(snapshot, journal_path)
    assert result.records_applied == 1
    assert "Main" in result.cycle_errors
    assert state(result.workbook["Main"]) == state(sheet)


def test_interpreter_evaluation_mode_roundtrips(tmp_path):
    workbook = Workbook("interp")
    sheet = workbook.add_sheet("Main")
    for r in range(1, 9):
        sheet.set_value((1, r), float(r))
    for r in range(1, 9):
        sheet.set_formula((2, r), f"=SUM(A$1:A{r})")
    engine = RecalcEngine(sheet, evaluation="interpreter")
    engine.recalculate_all()
    snapshot = io.BytesIO()
    save_snapshot(workbook, snapshot, {"Main": engine.graph})
    journal_path = str(tmp_path / "interp.wal")
    engine.journal = Journal(journal_path, truncate=True)
    engine.set_value("A4", 100.0)
    engine.journal.close()
    snapshot.seek(0)
    result = recover(snapshot, journal_path, evaluation="interpreter")
    assert state(result.workbook["Main"]) == state(sheet)
