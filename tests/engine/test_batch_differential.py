"""Differential tests: one batched commit ≡ the same edits one-by-one.

The batch pipeline promises that a committed
:class:`~repro.engine.batch.BatchEditSession` leaves the system in the
same state as replaying the identical edit sequence through the per-edit
:class:`~repro.engine.recalc.RecalcEngine` paths:

* every cell value identical,
* the graph's decompressed dependency set identical (and equal to the
  ground truth enumerated from the final sheet),
* the spatial indexes consistent with the edge set (each live edge
  indexed exactly once per side, no stale entries), and
* dependents queries answering identically.

Hypothesis drives random edit sequences; the whole contract is asserted
for every registered spatial-index backend, on both the delete-replay
and bulk-repack commit paths.

Formula references always point to columns strictly left of the formula
cell, so no edit sequence can create a cycle — per-edit and batched
application then terminate identically and the comparison is total.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.grid.range import Range
from repro.sheet.sheet import Sheet
from repro.spatial.registry import available_indexes

BACKENDS = available_indexes()

DATA_COLS = (1, 2)          # A, B hold pure values
FORMULA_COLS = (3, 4, 5)    # C, D, E hold formulas
ROWS = range(1, 7)

COL_NAMES = "ABCDE"


def _a1(col: int, row: int) -> str:
    return f"{COL_NAMES[col - 1]}{row}"


@st.composite
def edit_ops(draw):
    """One buffered edit: value write, formula write, or a clear."""
    kind = draw(st.sampled_from(("value", "value", "formula", "formula",
                                 "clear", "clear_range")))
    if kind == "clear_range":
        c1 = draw(st.sampled_from(DATA_COLS + FORMULA_COLS))
        r1 = draw(st.sampled_from(list(ROWS)))
        c2 = min(5, c1 + draw(st.integers(0, 2)))
        r2 = min(6, r1 + draw(st.integers(0, 2)))
        return ("clear_range", Range(c1, r1, c2, r2), None)
    if kind == "value":
        pos = (draw(st.sampled_from(DATA_COLS)), draw(st.sampled_from(list(ROWS))))
        return ("value", pos, float(draw(st.integers(-50, 50))))
    if kind == "clear":
        col = draw(st.sampled_from(DATA_COLS + FORMULA_COLS))
        return ("clear", (col, draw(st.sampled_from(list(ROWS)))), None)
    # Formula referencing only columns strictly to the left (no cycles).
    col = draw(st.sampled_from(FORMULA_COLS))
    row = draw(st.sampled_from(list(ROWS)))
    ref_col = draw(st.integers(1, col - 1))
    ref_row = draw(st.sampled_from(list(ROWS)))
    if draw(st.booleans()):
        text = f"={_a1(ref_col, ref_row)}+{draw(st.integers(0, 9))}"
    else:
        end_row = draw(st.integers(ref_row, 6))
        text = f"=SUM({_a1(ref_col, ref_row)}:{_a1(ref_col, end_row)})"
    return ("formula", (col, row), text)


def build_base_sheet() -> Sheet:
    sheet = Sheet("diff")
    for col in DATA_COLS:
        for row in ROWS:
            sheet.set_value((col, row), float(col * 10 + row))
    sheet.set_formula("C1", "=A1+B1")
    sheet.set_formula("C3", "=SUM(A1:A6)")
    sheet.set_formula("D2", "=C1*2")
    sheet.set_formula("E5", "=SUM(C1:D6)")
    return sheet


def make_engine(backend: str) -> RecalcEngine:
    sheet = build_base_sheet()
    graph = TacoGraph.full(index=backend)
    graph.build(dependencies_column_major(sheet))
    engine = RecalcEngine(sheet, graph)
    engine.recalculate_all()
    return engine


def apply_one_by_one(engine: RecalcEngine, ops) -> None:
    for kind, target, payload in ops:
        if kind == "value":
            engine.set_value(target, payload)
        elif kind == "formula":
            engine.set_formula(target, payload)
        elif kind == "clear":
            engine.clear_cell(target)
        else:  # clear_range, cell by cell — the per-edit equivalent
            for pos in target.cells():
                engine.clear_cell(pos)


def apply_batched(engine: RecalcEngine, ops, **kwargs) -> None:
    with engine.begin_batch(**kwargs) as batch:
        for kind, target, payload in ops:
            if kind == "value":
                batch.set_value(target, payload)
            elif kind == "formula":
                batch.set_formula(target, payload)
            elif kind == "clear":
                batch.clear_cell(target)
            else:
                batch.clear_range(target)


def all_values(sheet: Sheet) -> dict:
    return {pos: cell.value for pos, cell in sheet.items()}


def dependency_set(graph) -> list:
    return sorted(
        (d.prec.as_tuple(), d.dep.as_tuple()) for d in graph.decompress()
    )


def ground_truth_deps(sheet: Sheet) -> list:
    return sorted(
        (d.prec.as_tuple(), d.dep.as_tuple()) for d in sheet.iter_dependencies()
    )


def assert_indexes_consistent(graph: TacoGraph) -> None:
    edge_ids = {id(edge) for edge in graph.edges()}
    for index in (graph._prec_index, graph._dep_index):
        seen = [id(entry.payload) for entry in index]
        assert len(seen) == len(edge_ids)
        assert set(seen) == edge_ids


@pytest.mark.parametrize("backend", BACKENDS)
@given(ops=st.lists(edit_ops(), min_size=1, max_size=20))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batched_commit_equals_one_by_one(backend, ops):
    sequential = make_engine(backend)
    batched = make_engine(backend)

    apply_one_by_one(sequential, ops)
    apply_batched(batched, ops)

    # Values: every cell in either sheet, compared on both.
    assert all_values(batched.sheet) == all_values(sequential.sheet)
    # Graph: both decompress to the final sheet's exact dependency set.
    truth = ground_truth_deps(sequential.sheet)
    assert dependency_set(sequential.graph) == truth
    assert dependency_set(batched.graph) == truth
    # Spatial indexes: no stale entries, every edge indexed once per side.
    assert_indexes_consistent(sequential.graph)
    assert_indexes_consistent(batched.graph)
    # Queries answer identically on both graphs.
    for probe in (Range.from_a1("A1"), Range.from_a1("B3"), Range(1, 1, 2, 6)):
        seq_cells = {
            pos for rng in sequential.graph.find_dependents(probe) for pos in rng.cells()
        }
        bat_cells = {
            pos for rng in batched.graph.find_dependents(probe) for pos in rng.cells()
        }
        assert bat_cells == seq_cells


@pytest.mark.parametrize("backend", BACKENDS)
@given(ops=st.lists(edit_ops(), min_size=5, max_size=20))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_repack_path_matches_replay_path(backend, ops):
    """Forcing the bulk-repack commit path changes nothing observable."""
    replayed = make_engine(backend)
    repacked = make_engine(backend)

    apply_batched(replayed, ops, repack_min=10**9)   # always replay deletes
    apply_batched(repacked, ops, repack_min=0, repack_fraction=0.0)

    assert all_values(repacked.sheet) == all_values(replayed.sheet)
    assert dependency_set(repacked.graph) == dependency_set(replayed.graph)
    assert_indexes_consistent(replayed.graph)
    assert_indexes_consistent(repacked.graph)
