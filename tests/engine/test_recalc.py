"""Unit tests for the recalculation engine (the paper's application)."""

import pytest

from helpers import build_fig2_sheet

from repro.engine.recalc import CircularReferenceError, RecalcEngine
from repro.formula.errors import CYCLE_ERROR, ExcelError
from repro.graphs.nocomp import NoCompGraph
from repro.core.taco_graph import dependencies_column_major
from repro.sheet.sheet import Sheet


def build_sales_sheet() -> Sheet:
    sheet = Sheet("sales")
    for i, amount in enumerate([100.0, 200.0, 300.0, 400.0], start=1):
        sheet.set_value((1, i), amount)           # A: amounts
    sheet.set_formula("B1", "=A1")
    for i in range(2, 5):
        sheet.set_formula((2, i), f"=B{i - 1}+A{i}")   # running total chain
    sheet.set_formula("C1", "=SUM(A1:A4)")
    sheet.set_formula("C2", "=B4/C1")
    return sheet


class TestFullRecalc:
    def test_recalculate_all(self):
        engine = RecalcEngine(build_sales_sheet())
        count = engine.recalculate_all()
        assert count == 6
        assert engine.sheet.get_value("B4") == 1000.0
        assert engine.sheet.get_value("C1") == 1000.0
        assert engine.sheet.get_value("C2") == 1.0

    def test_fig2_semantics(self):
        engine = RecalcEngine(build_fig2_sheet(rows=20))
        engine.recalculate_all()
        # N-column: running subtotal per group of A values.
        assert engine.sheet.get_value("N2") == 2.0
        # A3=3%7=3 != A2=2 -> N3 = M3 = 3.
        assert engine.sheet.get_value("N3") == 3.0
        # Rows 8 and 9: A8=1, A9=2 differ; A15=1,A14=0 differ... check a
        # matching pair: A8=8%7=1, A15=15%7=1 not adjacent. Use direct eval:
        for r in range(3, 21):
            a_now = engine.sheet.get_value((1, r))
            a_prev = engine.sheet.get_value((1, r - 1))
            m_now = engine.sheet.get_value((13, r))
            n_prev = engine.sheet.get_value((14, r - 1))
            expected = n_prev + m_now if a_now == a_prev else m_now
            assert engine.sheet.get_value((14, r)) == expected


class TestIncremental:
    def test_value_update_propagates(self):
        engine = RecalcEngine(build_sales_sheet())
        engine.recalculate_all()
        result = engine.set_value("A1", 1100.0)
        assert engine.sheet.get_value("B1") == 1100.0
        assert engine.sheet.get_value("B4") == 2000.0
        assert engine.sheet.get_value("C1") == 2000.0
        assert result.recomputed == 6
        assert result.control_return_seconds <= result.total_seconds

    def test_incremental_matches_full(self):
        engine = RecalcEngine(build_fig2_sheet(rows=30))
        engine.recalculate_all()
        engine.set_value((13, 5), 999.0)  # M5
        incremental = {
            pos: cell.value for pos, cell in engine.sheet.formula_cells()
        }
        fresh = RecalcEngine(build_fig2_sheet(rows=30))
        fresh.sheet.set_value((13, 5), 999.0)
        fresh.recalculate_all()
        full = {pos: cell.value for pos, cell in fresh.sheet.formula_cells()}
        assert incremental == full

    def test_untouched_cells_not_recomputed(self):
        engine = RecalcEngine(build_sales_sheet())
        engine.recalculate_all()
        result = engine.set_value("A4", 500.0)
        # A4's dependents: B4, C1, C2 (B1..B3 untouched).
        assert result.recomputed == 3

    def test_formula_update_rewires_graph(self):
        engine = RecalcEngine(build_sales_sheet())
        engine.recalculate_all()
        engine.set_formula("C1", "=MAX(A1:A4)")
        assert engine.sheet.get_value("C1") == 400.0
        result = engine.set_value("A2", 9999.0)
        assert engine.sheet.get_value("C1") == 9999.0
        assert result.dirty_count > 0

    def test_clear_cell(self):
        engine = RecalcEngine(build_sales_sheet())
        engine.recalculate_all()
        engine.clear_cell("A4")
        assert engine.sheet.get_value("B4") == 600.0  # blank counts as 0

    def test_works_with_nocomp_backend(self):
        sheet = build_sales_sheet()
        graph = NoCompGraph()
        graph.build(dependencies_column_major(sheet))
        engine = RecalcEngine(sheet, graph)
        engine.recalculate_all()
        engine.set_value("A1", 0.0)
        assert engine.sheet.get_value("B4") == 900.0


class TestErrorsAndCycles:
    def test_cycle_raises_and_marks_cells(self):
        sheet = Sheet("cyc")
        sheet.set_formula("A1", "=B1+1")
        sheet.set_formula("B1", "=A1+1")
        engine = RecalcEngine(sheet)
        with pytest.raises(CircularReferenceError):
            engine.recalculate_all()
        assert engine.sheet.get_value("A1") == CYCLE_ERROR
        assert engine.sheet.get_value("B1") == CYCLE_ERROR

    def test_cycle_error_reports_offending_chain(self):
        """Regression: the raised error names the actual cell chain."""
        sheet = Sheet("cyc")
        sheet.set_value("Z9", 1.0)
        sheet.set_formula("A1", "=B1+1")
        sheet.set_formula("B1", "=C1+1")
        sheet.set_formula("C1", "=A1+1")
        sheet.set_formula("D1", "=A1*2")    # downstream of the cycle
        sheet.set_formula("E1", "=Z9+1")    # healthy, must still evaluate
        engine = RecalcEngine(sheet)
        with pytest.raises(CircularReferenceError) as excinfo:
            engine.recalculate_all()
        err = excinfo.value
        # The chain is closed and contains exactly the three-cycle.
        assert err.cycle[0] == err.cycle[-1]
        assert {(1, 1), (2, 1), (3, 1)} == set(err.cycle)
        for name in ("A1", "B1", "C1"):
            assert name in str(err)
        # Cycle members and their downstream cells are marked ...
        assert engine.sheet.get_value("A1") == CYCLE_ERROR
        assert engine.sheet.get_value("D1") == CYCLE_ERROR
        # ... while the healthy part of the sheet was evaluated first.
        assert engine.sheet.get_value("E1") == 2.0

    def test_self_reference_is_a_cycle(self):
        """Regression: a direct self-reference must not silently evaluate."""
        sheet = Sheet("selfref")
        sheet.set_formula("A1", "=A1+1")
        engine = RecalcEngine(sheet)
        with pytest.raises(CircularReferenceError) as excinfo:
            engine.recalculate_all()
        assert excinfo.value.cycle == [(1, 1), (1, 1)]
        assert engine.sheet.get_value("A1") == CYCLE_ERROR

    def test_range_containing_own_cell_is_a_cycle(self):
        """Regression: B5=SUM(B1:B10) includes B5 itself — circular."""
        sheet = Sheet("selfrange")
        for r in (1, 2, 3):
            sheet.set_value((2, r), float(r))
        sheet.set_formula("B5", "=SUM(B1:B10)")
        engine = RecalcEngine(sheet)
        with pytest.raises(CircularReferenceError):
            engine.recalculate_all()
        assert engine.sheet.get_value("B5") == CYCLE_ERROR

    def test_cycle_created_mid_propagation_raises(self):
        """Regression: an edit that closes a cycle raises with the chain."""
        sheet = Sheet("cyc")
        sheet.set_formula("A1", "=B1+1")
        sheet.set_value("B1", 1.0)
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        assert engine.sheet.get_value("A1") == 2.0
        with pytest.raises(CircularReferenceError, match="circular reference"):
            engine.set_formula("B1", "=A1+1")
        assert engine.sheet.get_value("A1") == CYCLE_ERROR
        assert engine.sheet.get_value("B1") == CYCLE_ERROR

    def test_error_propagates_through_chain(self):
        sheet = Sheet("err")
        sheet.set_value("A1", 0.0)
        sheet.set_formula("B1", "=1/A1")
        sheet.set_formula("C1", "=B1+1")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        assert engine.sheet.get_value("B1") == ExcelError("#DIV/0!")
        assert engine.sheet.get_value("C1") == ExcelError("#DIV/0!")

    def test_error_recovers_after_fix(self):
        sheet = Sheet("err")
        sheet.set_value("A1", 0.0)
        sheet.set_formula("B1", "=1/A1")
        engine = RecalcEngine(sheet)
        engine.recalculate_all()
        engine.set_value("A1", 4.0)
        assert engine.sheet.get_value("B1") == 0.25
