"""Differential suite: the columnar store ≡ the object store.

The columnar backing store promises *observational identity* with the
dict-of-Cells store: for any sheet program — values, formula columns,
point edits, structural edits, snapshot round-trips — both stores leave
bit-identical values under both evaluation modes, for every registered
spatial-index backend.  The object-store interpreter engine is the
oracle everything else is compared against.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.sheet.sheet as sheet_module
from repro.engine.recalc import RecalcEngine
from repro.io.snapshot import load_snapshot, save_snapshot
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook
from repro.spatial.registry import available_indexes

from helpers import (
    assert_same_values,
    engine_for,
    realize_program as realize,
    sheet_programs as programs,
)

BACKENDS = available_indexes()
MODES = ("auto", "interpreter")
OPS = ("insert_rows", "delete_rows", "insert_columns", "delete_columns")

ROWS = 20


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_all_stores_and_modes(index, data):
    program = data.draw(programs())
    oracle = realize(program, "object")
    engine_for(oracle, "interpreter", index).recalculate_all()
    for store in ("columnar", "object"):
        for mode in MODES:
            subject = realize(program, store)
            engine_for(subject, mode, index).recalculate_all()
            assert_same_values(subject, oracle)


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_point_edits_identical(index, data):
    program = data.draw(programs())
    engines = [
        engine_for(realize(program, store), mode, index)
        for store in ("columnar", "object")
        for mode in MODES
    ]
    for engine in engines:
        engine.recalculate_all()
    for _ in range(data.draw(st.integers(1, 3))):
        pos = (data.draw(st.integers(1, 2)), data.draw(st.integers(1, ROWS)))
        value = data.draw(st.sampled_from(
            [float(data.draw(st.integers(-30, 30))), "edit", True, None]
        ))
        recomputed = {engine.set_value(pos, value).recomputed
                      for engine in engines}
        assert len(recomputed) == 1
        for engine in engines[1:]:
            assert_same_values(engines[0].sheet, engine.sheet)


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_structural_edits_identical(index, data):
    program = data.draw(programs())
    op = data.draw(st.sampled_from(OPS))
    at = data.draw(st.integers(1, ROWS + 2))
    count = data.draw(st.integers(1, 3))

    oracle = engine_for(realize(program, "object"), "interpreter", index)
    oracle.recalculate_all()
    getattr(oracle, op)(at, count)

    for store in ("columnar", "object"):
        for mode in MODES:
            engine = engine_for(realize(program, store), mode, index)
            engine.recalculate_all()
            getattr(engine, op)(at, count)
            assert_same_values(engine.sheet, oracle.sheet)
            # Recalculate from scratch on the edited sheet too: the
            # rewritten formulas must *stay* in agreement.
            engine.recalculate_all()
            assert_same_values(engine.sheet, oracle.sheet)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_snapshot_restore_identical(data):
    """Any store's snapshot restores into any store — and the restored
    workbook recalculates to the same values (satellite: an object-store
    snapshot must restore into a columnar-backed workbook and vice
    versa)."""
    program = data.draw(programs())
    for src_store in ("columnar", "object"):
        source = realize(program, src_store)
        RecalcEngine(source).recalculate_all()
        workbook = Workbook("W")
        workbook.attach_sheet(source)
        buffer = io.BytesIO()
        save_snapshot(workbook, buffer)
        payload = buffer.getvalue()
        for dst_store in ("columnar", "object"):
            original = sheet_module.DEFAULT_STORE
            sheet_module.DEFAULT_STORE = dst_store
            try:
                restored = load_snapshot(io.BytesIO(payload)).workbook.sheet("S")
            finally:
                sheet_module.DEFAULT_STORE = original
            assert restored.store_kind == dst_store
            assert_same_values(restored, source)   # cached values survive
            RecalcEngine(restored).recalculate_all()
            assert_same_values(restored, source)   # ...and recompute equal
