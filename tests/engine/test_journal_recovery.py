"""Crash-point fuzz: recovery from every possible torn journal.

A crash can cut the journal anywhere: exactly between records, inside a
record's frame header, mid-payload, or by corrupting bytes in place.
Whatever the cut, recovery must restore *exactly the prefix of committed
operations before it* — values, graphs, and queries identical to a live
workbook that stopped after the same operations — and must never raise
on the torn tail.

The scripted scenario covers every record kind (cell value/formula/
clear, one batch with structural + range clear + cell ops, standalone
structural inserts and deletes), and the truncation sweep hits every
record boundary plus offsets inside every record (all offsets when
``REPRO_JOURNAL_FUZZ=exhaustive``, a deterministic sample otherwise —
the CI smoke job runs the exhaustive sweep).
"""

import io
import os
import random

import pytest

from repro.core.taco_graph import build_from_sheet
from repro.engine.journal import (
    Journal,
    JournalFormatError,
    read_journal,
    recover,
)
from repro.engine.recalc import RecalcEngine
from repro.grid.range import Range
from repro.io.snapshot import save_snapshot
from repro.sheet.autofill import fill_formula_column
from repro.sheet.workbook import Workbook

EXHAUSTIVE = os.environ.get("REPRO_JOURNAL_FUZZ", "") == "exhaustive"


def build_workbook() -> tuple[Workbook, RecalcEngine]:
    workbook = Workbook("crash")
    sheet = workbook.add_sheet("Main")
    for r in range(1, 13):
        sheet.set_value((1, r), float(r))
        sheet.set_value((2, r), float(r % 4))
    fill_formula_column(sheet, 3, 1, 12, "=SUM($A$1:A1)")   # FR running total
    fill_formula_column(sheet, 4, 1, 12, "=A1+B1")          # RR pair
    sheet.set_formula("E1", "=SUM(C1:C12)")
    engine = RecalcEngine(sheet, build_from_sheet(sheet))
    engine.recalculate_all()
    return workbook, engine


#: (description, callable(engine, workbook)) — one journal record each.
SCRIPT = [
    ("value edit", lambda e, w: e.set_value("A3", 99.0)),
    ("formula edit", lambda e, w: e.set_formula("F1", "=C12*2")),
    ("clear cell", lambda e, w: e.clear_cell("B2")),
    ("batch commit", lambda e, w: _commit_batch(e, w)),
    ("structural insert", lambda e, w: e.insert_rows(5, 2, workbook=w)),
    ("value after insert", lambda e, w: e.set_value("A5", -7.0)),
    ("structural delete", lambda e, w: e.delete_rows(9, 1, workbook=w)),
    ("value string", lambda e, w: e.set_value("G1", "note")),
]


def _commit_batch(engine, workbook):
    with engine.begin_batch(workbook=workbook) as batch:
        batch.insert_rows(3, 1)
        batch.clear_range(Range.from_a1("B5:B6"))
        batch.set_value("A2", 41.0)
        batch.set_formula("F2", "=A2+1")
        batch.clear_cell("D4")
    return batch.result


def sheet_values(workbook: Workbook) -> dict:
    sheet = workbook.active_sheet
    return {pos: cell.value for pos, cell in sheet.items()}


def dependency_set(graph) -> set:
    return {(d.prec.as_tuple(), d.dep.as_tuple()) for d in graph.decompress()}


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """Snapshot + journal + the expected state after every prefix."""
    workdir = tmp_path_factory.mktemp("crash")
    snapshot_path = str(workdir / "crash.snap")
    journal_path = str(workdir / "crash.wal")

    workbook, engine = build_workbook()
    save_snapshot(workbook, snapshot_path, {"Main": engine.graph})
    engine.journal = Journal(journal_path, truncate=True)

    boundaries = [os.path.getsize(journal_path)]
    states = [sheet_values(workbook)]       # state after i records
    graphs = [dependency_set(engine.graph)]
    for _, step in SCRIPT:
        step(engine, workbook)
        boundaries.append(os.path.getsize(journal_path))
        states.append(sheet_values(workbook))
        graphs.append(dependency_set(engine.graph))
    engine.journal.close()
    data = open(journal_path, "rb").read()
    return {
        "snapshot": snapshot_path,
        "journal": journal_path,
        "data": data,
        "boundaries": boundaries,
        "states": states,
        "graphs": graphs,
        "workdir": str(workdir),
    }


def recover_truncated(scenario, cut: int, tag: str):
    path = os.path.join(scenario["workdir"], f"cut-{tag}.wal")
    with open(path, "wb") as handle:
        handle.write(scenario["data"][:cut])
    return recover(scenario["snapshot"], path)


def prefix_index(scenario, cut: int) -> int:
    """How many complete records survive a cut at byte ``cut``."""
    return sum(1 for b in scenario["boundaries"][1:] if b <= cut)


def test_journal_has_one_record_per_step(scenario):
    read = read_journal(scenario["journal"])
    assert len(read.records) == len(SCRIPT)
    assert not read.torn


def test_full_replay_matches_live(scenario):
    result = recover(scenario["snapshot"], scenario["journal"])
    assert result.records_applied == len(SCRIPT)
    assert not result.torn_tail
    assert sheet_values(result.workbook) == scenario["states"][-1]
    assert dependency_set(result.graphs["Main"]) == scenario["graphs"][-1]


def test_truncation_at_every_record_boundary(scenario):
    for i, cut in enumerate(scenario["boundaries"]):
        result = recover_truncated(scenario, cut, f"bound{i}")
        assert result.records_applied == i, SCRIPT[i - 1]
        assert not result.torn_tail
        assert sheet_values(result.workbook) == scenario["states"][i], \
            f"after {i} records ({cut} bytes)"
        assert dependency_set(result.graphs.get("Main")
                              or result.engines["Main"].graph) \
            == scenario["graphs"][i]


def test_truncation_mid_record_recovers_previous_prefix(scenario):
    boundaries = scenario["boundaries"]
    offsets = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        if EXHAUSTIVE:
            offsets.extend(range(lo + 1, hi))
        else:
            rng = random.Random(lo)
            inner = range(lo + 1, hi)
            offsets.extend(sorted(rng.sample(inner, min(7, len(inner)))))
    for cut in offsets:
        result = recover_truncated(scenario, cut, f"mid{cut}")
        i = prefix_index(scenario, cut)
        assert result.torn_tail, f"cut at {cut} should read as torn"
        assert result.records_applied == i
        assert sheet_values(result.workbook) == scenario["states"][i], \
            f"mid-record cut at byte {cut}"


def test_corrupt_byte_cuts_at_last_complete_record(scenario):
    data = bytearray(scenario["data"])
    boundaries = scenario["boundaries"]
    # Corrupt a byte inside the 4th record's payload.
    target = (boundaries[3] + boundaries[4]) // 2
    data[target] ^= 0xFF
    path = os.path.join(scenario["workdir"], "corrupt.wal")
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    result = recover(scenario["snapshot"], path)
    assert result.torn_tail
    assert result.records_applied == 3
    assert sheet_values(result.workbook) == scenario["states"][3]


def test_empty_and_missing_journal(scenario, tmp_path):
    empty = str(tmp_path / "empty.wal")
    Journal(empty).close()
    result = recover(scenario["snapshot"], empty)
    assert result.records_applied == 0 and not result.torn_tail
    assert sheet_values(result.workbook) == scenario["states"][0]

    result = recover(scenario["snapshot"], str(tmp_path / "missing.wal"))
    assert result.records_applied == 0
    # No journal at all is also fine.
    result = recover(scenario["snapshot"])
    assert result.records_applied == 0
    assert sheet_values(result.workbook) == scenario["states"][0]


def test_torn_header_reads_as_empty(scenario, tmp_path):
    path = str(tmp_path / "torn-header.wal")
    with open(path, "wb") as handle:
        handle.write(scenario["data"][:5])       # inside the magic
    read = read_journal(path)
    assert read.records == [] and read.torn


def test_unparseable_formula_rejected_before_any_mutation(scenario, tmp_path):
    """A journaled engine must fail *before* mutating when a formula
    cannot parse — a mid-edit failure would leave live state the journal
    never recorded."""
    from repro.formula.errors import FormulaSyntaxError

    result = recover(scenario["snapshot"], scenario["journal"])
    engine = result.engines["Main"]
    engine.journal = Journal(str(tmp_path / "badformula.wal"), truncate=True)
    before = sheet_values(result.workbook)
    with pytest.raises(FormulaSyntaxError):
        engine.set_formula("F5", "=SUM(")
    with pytest.raises(FormulaSyntaxError):
        with engine.begin_batch() as batch:
            batch.set_value("A1", 7.0)
            batch.set_formula("F6", "=1+")
    assert sheet_values(result.workbook) == before
    assert read_journal(engine.journal.path).records == []
    engine.journal.close()


def test_bogus_structural_op_in_record_rejected(scenario, tmp_path):
    """Op names come from file bytes; a CRC-valid record naming a
    non-structural method must raise JournalFormatError, not dispatch."""
    for bad in (
        {"kind": "structural", "sheet": "Main", "op": "commit",
         "index": 1, "count": 1, "cross_sheet": False},
        {"kind": "batch", "sheet": "Main", "cross_sheet": False,
         "structural": [["discard", 1, 1]], "clears": [], "ops": []},
    ):
        path = str(tmp_path / f"bogus-{bad['kind']}.wal")
        journal = Journal(path, truncate=True)
        journal.append(bad)
        journal.close()
        with pytest.raises(JournalFormatError, match="structural op"):
            recover(scenario["snapshot"], path)


def test_mismatched_snapshot_journal_pair_rejected(scenario, tmp_path):
    """A journal opened for snapshot A must not replay onto snapshot B."""
    workbook, engine = build_workbook()
    other_snap = str(tmp_path / "other.snap")
    stats = save_snapshot(workbook, other_snap, {"Main": engine.graph})
    wal = str(tmp_path / "paired.wal")
    journal = Journal(wal, truncate=True, snapshot_id=stats.snapshot_id)
    engine.journal = journal
    engine.set_value("A1", 1.0)
    journal.close()

    # Right pair: replays (the `open` stamp is not counted as applied).
    result = recover(other_snap, wal)
    assert result.records_applied == 1
    # Wrong pair: the scenario snapshot has a different id.
    with pytest.raises(JournalFormatError, match="does not match"):
        recover(scenario["snapshot"], wal)


def test_reopen_with_different_snapshot_id_refused(scenario, tmp_path):
    """Reopening an existing journal under a new snapshot stamp must be
    refused up front — not discovered at restore time, after acked edits
    were appended behind the wrong pairing record."""
    wal = str(tmp_path / "stamped.wal")
    Journal(wal, truncate=True, snapshot_id="aaaa").close()
    with pytest.raises(JournalFormatError, match="truncate=True"):
        Journal(wal, snapshot_id="bbbb")
    # Same stamp, or no stamp, reopens fine.
    Journal(wal, snapshot_id="aaaa").close()
    Journal(wal).close()


def test_malformed_but_crc_valid_record_raises_cleanly(scenario, tmp_path):
    """A CRC-valid record missing required fields must surface as
    JournalFormatError, not a raw KeyError from half-way through replay."""
    for bad in (
        {"kind": "cell", "sheet": "Main", "op": "value"},        # no "cell"
        {"kind": "structural", "sheet": "Main", "op": "insert_rows"},
        {"kind": "batch", "sheet": "Main", "structural": [["insert_rows", 1]]},
        {"kind": "structural", "sheet": "Main", "op": "insert_rows",
         "index": 0, "count": 1},                                # invalid index
    ):
        path = str(tmp_path / "malformed.wal")
        journal = Journal(path, truncate=True)
        journal.append(bad)
        journal.close()
        with pytest.raises(JournalFormatError):
            recover(scenario["snapshot"], path)


def test_journal_exposes_preexisting_records(scenario, tmp_path):
    path = str(tmp_path / "pre.wal")
    journal = Journal(path, truncate=True)
    journal.append({"kind": "cell", "sheet": "Main", "op": "clear",
                    "cell": [1, 1]})
    journal.close()
    reopened = Journal(path)
    assert [r["kind"] for r in reopened.preexisting_records] == ["cell"]
    reopened.close()


def test_short_non_journal_file_is_not_clobbered(tmp_path):
    """A sub-header file that is not a header prefix is someone else's
    file: reading raises, and opening for append must not erase it."""
    path = str(tmp_path / "notes.txt")
    with open(path, "wb") as handle:
        handle.write(b"hi!")
    with pytest.raises(JournalFormatError):
        read_journal(path)
    with pytest.raises(JournalFormatError):
        Journal(path)
    assert open(path, "rb").read() == b"hi!"


def test_wrong_magic_and_future_version_raise(tmp_path):
    bad = str(tmp_path / "bad.wal")
    with open(bad, "wb") as handle:
        handle.write(b"NOTAJRNL" + (1).to_bytes(4, "little"))
    with pytest.raises(JournalFormatError, match="magic"):
        read_journal(bad)

    future = str(tmp_path / "future.wal")
    with open(future, "wb") as handle:
        handle.write(b"TACOJRN1" + (9).to_bytes(4, "little"))
    with pytest.raises(JournalFormatError) as err:
        read_journal(future)
    assert "9" in str(err.value) and "1" in str(err.value)
    # Appending to a future-version journal is refused the same way.
    with pytest.raises(JournalFormatError):
        Journal(future)


def test_reopen_after_torn_tail_cuts_then_appends(scenario, tmp_path):
    """Restart after a crash: opening the journal for appending must cut
    the torn tail first, or every post-restart record would sit behind
    garbage and be lost at the next recovery."""
    boundaries = scenario["boundaries"]
    path = str(tmp_path / "restart.wal")
    cut = (boundaries[2] + boundaries[3]) // 2      # tear record 3 mid-frame
    with open(path, "wb") as handle:
        handle.write(scenario["data"][:cut])

    # The restarted process recovers (2 complete records) and continues
    # editing against the recovered state, appending to the same journal.
    result = recover(scenario["snapshot"], path)
    assert result.records_applied == 2 and result.torn_tail
    engine = result.engines["Main"]
    engine.journal = Journal(path)                   # cuts the torn tail
    engine.set_value("A1", 555.0)
    engine.set_value("G9", 7.0)
    engine.journal.close()

    read = read_journal(path)
    assert not read.torn
    assert len(read.records) == 4                    # 2 old + 2 new
    final = recover(scenario["snapshot"], path)
    assert final.records_applied == 4
    assert final.workbook["Main"].get_value("A1") == 555.0
    assert final.workbook["Main"].get_value("G9") == 7.0


def test_reopen_after_torn_header_starts_fresh(scenario, tmp_path):
    path = str(tmp_path / "torn-header.wal")
    with open(path, "wb") as handle:
        handle.write(scenario["data"][:7])           # mid-magic
    journal = Journal(path)
    journal.append({"kind": "cell", "sheet": "Main", "op": "clear",
                    "cell": [9, 9]})
    journal.close()
    read = read_journal(path)
    assert not read.torn and len(read.records) == 1


def test_unrepresentable_value_rejected_before_any_mutation(scenario, tmp_path):
    """A journaled engine must refuse values the record format cannot
    carry *before* touching the sheet — otherwise memory and WAL diverge."""
    from repro.io.snapshot import SnapshotFormatError

    result = recover(scenario["snapshot"], scenario["journal"])
    engine = result.engines["Main"]
    engine.journal = Journal(str(tmp_path / "reject.wal"), truncate=True)
    before = sheet_values(result.workbook)
    with pytest.raises(SnapshotFormatError):
        engine.set_value("A1", object())
    with pytest.raises(SnapshotFormatError):
        with engine.begin_batch() as batch:
            batch.set_value("A1", 1.0)
            batch.set_value("A2", {"not": "a scalar"})
    assert sheet_values(result.workbook) == before
    assert read_journal(engine.journal.path).records == []
    engine.journal.close()


def test_journal_append_reopens(tmp_path):
    """Closing and reopening a journal appends, not truncates."""
    workbook, engine = build_workbook()
    snapshot = io.BytesIO()
    save_snapshot(workbook, snapshot, {"Main": engine.graph})
    path = str(tmp_path / "reopen.wal")
    engine.journal = Journal(path, truncate=True)
    engine.set_value("A1", 5.0)
    engine.journal.close()
    engine.journal = Journal(path)
    engine.set_value("A2", 6.0)
    engine.journal.close()
    snapshot.seek(0)
    result = recover(snapshot, path)
    assert result.records_applied == 2
    assert sheet_values(result.workbook) == sheet_values(workbook)
