"""Differential suite: indexed lookups ≡ reference scans ≡ interpreter.

The lookaside indexes (:mod:`repro.engine.lookup`) promise bit-identical
results to the linear reference scans they replace, on arbitrary
unsorted mixed-type data, through every mutation path that can
invalidate them.  Four engines evaluate every program:

* columnar / auto / indexes on  — hash + binary-search probes;
* columnar / auto / indexes off — same tiers, reference scans;
* object   / auto               — no probe attaches (no write counters);
* object   / interpreter        — the tree-walking oracle.

The index floor is pinned to 1 so even these 20-row vectors take the
indexed path, and each suite asserts the probes actually fired —
a silently scan-only "differential" test would prove nothing.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import lookup
from repro.spatial.registry import available_indexes

from helpers import (
    LOOKUP_TEMPLATES,
    assert_same_values,
    engine_for,
    realize_program,
    sheet_programs,
)

BACKENDS = available_indexes()

ROWS = 20  # LOOKUP_TEMPLATES hard-code their table bounds to 20 rows


@pytest.fixture(autouse=True, scope="module")
def tiny_index_floor():
    floor = lookup.MIN_INDEX_SIZE
    lookup.MIN_INDEX_SIZE = 1
    yield
    lookup.MIN_INDEX_SIZE = floor


def engines_for(program, index: str):
    """(engine, sheet) per lane: indexed, scan, object-auto, oracle."""
    lanes = []
    for store, mode, indexes in (
        ("columnar", "auto", True),
        ("columnar", "auto", False),
        ("object", "auto", None),
        ("object", "interpreter", None),
    ):
        sheet = realize_program(program, store=store)
        lanes.append(engine_for(sheet, mode, index, lookup_indexes=indexes))
    return lanes


def assert_lanes_identical(lanes):
    reference = lanes[-1].sheet
    for engine in lanes[:-1]:
        assert_same_values(engine.sheet, reference)
    assert lanes[0].eval_stats.lookup_index_hits > 0, "probes never fired"
    assert lanes[1].eval_stats.lookup_index_hits == 0, "scan lane was indexed"


@pytest.mark.parametrize("index", BACKENDS)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_full_recalc_identical(index, data):
    program = data.draw(sheet_programs(rows=ROWS, templates=LOOKUP_TEMPLATES))
    lanes = engines_for(program, index)
    for engine in lanes:
        engine.recalculate_all()
    assert_lanes_identical(lanes)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_point_edits_identical(data):
    program = data.draw(sheet_programs(rows=ROWS, templates=LOOKUP_TEMPLATES))
    lanes = engines_for(program, "rtree")
    for engine in lanes:
        engine.recalculate_all()
    for _ in range(data.draw(st.integers(1, 4))):
        row = data.draw(st.integers(1, ROWS))
        col = data.draw(st.integers(1, 2))
        value = data.draw(st.one_of(
            st.integers(-40, 40).map(float),
            st.sampled_from(["txt", "zzz", True, None]),
        ))
        for engine in lanes:
            engine.set_value((col, row), value)
        assert_lanes_identical(lanes)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_batched_edits_identical(data):
    program = data.draw(sheet_programs(rows=ROWS, templates=LOOKUP_TEMPLATES))
    lanes = engines_for(program, "rtree")
    for engine in lanes:
        engine.recalculate_all()
    edits = [
        (data.draw(st.integers(1, 2)), data.draw(st.integers(1, ROWS)),
         float(data.draw(st.integers(-40, 40))))
        for _ in range(data.draw(st.integers(2, 6)))
    ]
    for engine in lanes:
        with engine.begin_batch() as batch:
            for col, row, value in edits:
                batch.set_value((col, row), value)
    assert_lanes_identical(lanes)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_structural_edits_identical(data):
    program = data.draw(sheet_programs(rows=ROWS, templates=LOOKUP_TEMPLATES))
    lanes = engines_for(program, "rtree")
    for engine in lanes:
        engine.recalculate_all()
    op = data.draw(st.sampled_from(["insert_rows", "delete_rows"]))
    row = data.draw(st.integers(2, ROWS - 1))
    for engine in lanes:
        getattr(engine, op)(row)
    reference = lanes[-1].sheet
    for engine in lanes[:-1]:
        assert_same_values(engine.sheet, reference)
    # Rewritten tables may shrink below usefulness, but a follow-up edit
    # must still be identical through the rebuilt (or dropped) indexes.
    for engine in lanes:
        engine.set_value((2, 1), -7.0)
    for engine in lanes[:-1]:
        assert_same_values(engine.sheet, reference)
