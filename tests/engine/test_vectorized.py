"""The windowed-aggregate fast path, shape by shape.

Each test builds the same sheet twice and compares an ``evaluation="auto"``
engine (asserting the run actually dispatched, via ``eval_stats``)
against the pure interpreter — exact equality, including float bits:
the rolling sums are built on ExactSum precisely so that no tolerance
is needed.
"""

import pytest

from repro.engine.recalc import RecalcEngine
from repro.engine.vectorized import MIN_RUN
from repro.formula.errors import ExcelError
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet


def data_sheet(rows=60, with_noise=True):
    s = Sheet("S")
    for r in range(1, rows + 1):
        s.set_value((1, r), float((r * 37) % 101) / 3.0)
    if with_noise:
        s.set_value((1, 7), "text")
        s.set_value((1, 13), True)
        s.set_value((1, 21), None)   # hole
    return s


def compare(build, *, expect_windowed=True):
    """Build twice, recalc both ways, compare every cell exactly."""
    sa, sb = build(), build()
    ea = RecalcEngine(sa, evaluation="interpreter")
    eb = RecalcEngine(sb)
    ea.recalculate_all()
    eb.recalculate_all()
    for pos, cell in sa.items():
        got = sb.get_value(pos)
        want = cell.value
        if isinstance(want, ExcelError):
            assert isinstance(got, ExcelError) and got.code == want.code, pos
        else:
            assert type(got) is type(want) and got == want, pos
    if expect_windowed:
        assert eb.eval_stats.windowed_cells > 0, eb.eval_stats
    return eb


FORMULAS = {
    "prefix-sum": "=SUM($A$1:A1)",
    "prefix-avg": "=AVERAGE($A$1:A1)",
    "prefix-min": "=MIN($A$1:A1)",
    "prefix-max": "=MAX($A$1:A1)",
    "prefix-count": "=COUNT($A$1:A1)",
    "sliding-sum": "=SUM(A1:A9)",
    "sliding-avg": "=AVERAGE(A1:A9)",
    "sliding-min": "=MIN(A1:A9)",
    "sliding-max": "=MAX(A1:A9)",
    "sliding-count": "=COUNT(A1:A9)",
    "suffix-sum": "=SUM(A1:$A$60)",
    "constant-avg": "=AVERAGE($A$1:$A$60)",
}


@pytest.mark.parametrize("name", sorted(FORMULAS))
def test_window_shapes_match_interpreter(name):
    formula = FORMULAS[name]

    def build():
        s = data_sheet()
        fill_formula_column(s, 2, 1, 60, formula)
        return s

    engine = compare(build)
    assert engine.eval_stats.windowed_runs >= 1


def test_multi_column_windows():
    def build():
        s = data_sheet()
        for r in range(1, 61):
            s.set_value((2, r), float(r % 7))
        fill_formula_column(s, 4, 1, 60, "=SUM($A$1:B1)")
        return s

    compare(build)


def test_error_in_window_falls_back_per_cell():
    def build():
        s = data_sheet()
        s.set_formula((1, 30), "=1/0")
        fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
        return s

    engine = compare(build)
    # Cells at row >= 30 carry the error; the fallback evaluated them.
    assert engine.sheet.get_value((2, 45)).code == "#DIV/0!"
    assert engine.eval_stats.compiled_cells > 0


def test_error_window_stats_partition_cleanly():
    """Cells delegated to the fallback are counted once, not twice
    (regression: they used to appear in both windowed and compiled)."""
    s = data_sheet(with_noise=False)
    s.set_formula((1, 30), "=1/0")
    fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
    engine = RecalcEngine(s)
    recomputed = engine.recalculate_all()
    stats = engine.eval_stats
    # 61 formula cells: the error cell itself + 60 totals; every cell is
    # counted by exactly one tier.
    assert recomputed == 61
    assert stats.total_cells == 61
    assert stats.windowed_cells == 29          # rows 1..29 rolled
    assert stats.compiled_cells + stats.interpreted_cells == 32


def test_infinity_in_window_matches_interpreter():
    def build():
        s = data_sheet(with_noise=False)
        s.set_value((1, 20), float("inf"))
        fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
        fill_formula_column(s, 3, 1, 60, "=AVERAGE(A1:A9)")
        return s

    compare(build)


def test_self_referential_prefix_run():
    def build():
        s = Sheet("S")
        for r in range(1, 41):
            s.set_value((1, r), 1.0)
        s.set_formula((2, 1), "=A1")
        fill_formula_column(s, 2, 2, 40, "=SUM(B$1:B1)")
        return s

    engine = compare(build)
    assert engine.eval_stats.windowed_cells == 39


def test_aggregate_over_dirty_formula_column():
    def build():
        s = data_sheet(with_noise=False)
        fill_formula_column(s, 2, 1, 60, "=A1*2")
        fill_formula_column(s, 3, 1, 60, "=SUM($B$1:B1)")
        return s

    engine = compare(build)
    # Both the doubles column (elementwise sweep, or compiled per cell
    # when the sweep is unavailable) and the totals column (windowed)
    # took their fast paths.
    assert engine.eval_stats.windowed_cells == 60
    assert engine.eval_stats.elementwise_cells + engine.eval_stats.compiled_cells == 60


def test_short_runs_stay_on_the_compiled_path():
    def build():
        s = data_sheet(rows=MIN_RUN - 1)
        fill_formula_column(s, 2, 1, MIN_RUN - 1, "=SUM($A$1:A1)")
        return s

    engine = compare(build, expect_windowed=False)
    assert engine.eval_stats.windowed_cells == 0


def test_incremental_edit_redispatches_runs():
    s = data_sheet()
    fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
    engine = RecalcEngine(s)
    engine.recalculate_all()
    before = engine.eval_stats.windowed_runs
    result = engine.set_value((1, 5), 123.0)
    # Only the suffix B5..B60 depends on A5.
    assert result.recomputed == 56
    assert engine.eval_stats.windowed_runs > before
    # spot-check a value against a fresh interpreter engine
    fresh = data_sheet()
    fill_formula_column(fresh, 2, 1, 60, "=SUM($A$1:A1)")
    fresh.set_value((1, 5), 123.0)
    RecalcEngine(fresh, evaluation="interpreter").recalculate_all()
    assert s.get_value((2, 60)) == fresh.get_value((2, 60))


def test_interpreter_mode_never_uses_fast_paths():
    s = data_sheet()
    fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
    engine = RecalcEngine(s, evaluation="interpreter")
    engine.recalculate_all()
    assert engine.eval_stats.windowed_cells == 0
    assert engine.eval_stats.compiled_cells == 0
    assert engine.eval_stats.interpreted_cells == 60


def test_unknown_evaluation_mode_rejected():
    with pytest.raises(ValueError):
        RecalcEngine(Sheet("S"), evaluation="hybrid")


def test_cycle_through_run_matches_interpreter_semantics():
    from repro.engine.recalc import CircularReferenceError

    def build():
        s = data_sheet()
        fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
        # close a cycle: the data column reads the totals column
        s.set_formula((1, 2), "=B60")
        return s

    sa, sb = build(), build()
    ea = RecalcEngine(sa, evaluation="interpreter")
    eb = RecalcEngine(sb)
    with pytest.raises(CircularReferenceError):
        ea.recalculate_all()
    with pytest.raises(CircularReferenceError):
        eb.recalculate_all()
    for pos, cell in sa.items():
        want, got = cell.value, sb.get_value(pos)
        if isinstance(want, ExcelError):
            assert isinstance(got, ExcelError) and got.code == want.code, pos
        else:
            assert got == want, pos


def test_taco_graph_exposes_dependent_column_runs():
    from repro.core.taco_graph import build_from_sheet
    from repro.grid.range import Range

    s = data_sheet()
    fill_formula_column(s, 2, 1, 60, "=SUM($A$1:A1)")
    graph = build_from_sheet(s)
    runs = graph.dependent_column_runs(Range(1, 1, 5, 60))
    assert any(r.c1 == 2 and r.height > 1 for r in runs)
