"""Unit tests for the grid-bucket index."""

import random

import pytest

from repro.grid.range import Range
from repro.spatial.gridbucket import GridBucketIndex


class TestBasics:
    def test_insert_and_search(self):
        index = GridBucketIndex()
        index.insert(Range.from_a1("B2:C4"), "x")
        assert index.search_payloads(Range.from_a1("C4:D5")) == ["x"]
        assert index.search_payloads(Range.from_a1("E9")) == []
        assert len(index) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GridBucketIndex(bucket_cols=0)
        with pytest.raises(ValueError):
            GridBucketIndex(fine_bucket_limit=0)

    def test_cross_bucket_range_found_once(self):
        index = GridBucketIndex(bucket_cols=4, bucket_rows=4)
        key = Range(1, 1, 7, 7)  # spans four fine buckets
        index.insert(key, "wide")
        hits = index.search(Range(1, 1, 12, 12))
        assert [entry.payload for entry in hits] == ["wide"]

    def test_column_run_goes_to_stripe_tier(self):
        index = GridBucketIndex(bucket_cols=4, bucket_rows=8, fine_bucket_limit=4)
        column = Range(2, 1, 2, 500)  # 63 row-buckets: too many for fine tier
        index.insert(column, "col")
        assert index.stats()["stripes"] == 1
        assert index.search_payloads(Range.cell(2, 499)) == ["col"]
        assert index.search_payloads(Range.cell(7, 499)) == []
        assert index.delete(column, "col")
        assert index.search_payloads(Range.cell(2, 499)) == []

    def test_huge_range_goes_to_broadcast(self):
        index = GridBucketIndex(
            bucket_cols=2, bucket_rows=2, fine_bucket_limit=2, stripe_limit=2
        )
        huge = Range(1, 1, 40, 40)
        index.insert(huge, "huge")
        assert index.stats()["broadcast_items"] == 1
        assert index.search_payloads(Range.cell(39, 39)) == ["huge"]
        assert index.delete(huge, "huge")
        assert index.search_payloads(Range.cell(39, 39)) == []

    def test_delete_with_duplicate_keys(self):
        index = GridBucketIndex()
        key = Range.from_a1("A1:A5")
        index.insert(key, "a")
        index.insert(key, "b")
        assert index.delete(key, "a")
        assert index.search_payloads(Range.from_a1("A3")) == ["b"]
        assert not index.delete(key, "missing")
        assert len(index) == 1

    def test_iteration_deduplicates(self):
        index = GridBucketIndex(bucket_cols=2, bucket_rows=2)
        index.insert(Range(1, 1, 4, 4), "multi-bucket")
        assert [entry.payload for entry in index] == ["multi-bucket"]

    def test_bulk_load_replaces_contents(self):
        index = GridBucketIndex()
        index.insert(Range.from_a1("A1"), "old")
        index.bulk_load([(Range.from_a1("B2"), "new"), (Range(3, 1, 3, 4000), "col")])
        assert len(index) == 2
        assert index.search_payloads(Range.from_a1("A1")) == []
        assert sorted(
            payload for _, payload in index.search_items(Range(1, 1, 10, 5000))
        ) == ["col", "new"]

    def test_op_counters_track_caller_operations(self):
        index = GridBucketIndex()
        index.insert(Range.from_a1("A1"), 1)
        index.search(Range.from_a1("A1"))
        index.delete(Range.from_a1("A1"), 1)
        index.bulk_load([])
        counts = index.op_counts()
        assert counts == {
            "search_ops": 1, "insert_ops": 1, "delete_ops": 1, "bulk_loads": 1,
        }


def test_matches_brute_force_random():
    rng = random.Random(5)
    index = GridBucketIndex(bucket_cols=4, bucket_rows=32)
    items = []
    for i in range(250):
        c1 = rng.randrange(1, 120)
        r1 = rng.randrange(1, 400)
        if i % 11 == 0:  # sprinkle tall column runs into the coarse tiers
            key = Range(c1, 1, c1 + rng.randrange(3), 4000)
        else:
            key = Range(c1, r1, c1 + rng.randrange(6), r1 + rng.randrange(30))
        index.insert(key, i)
        items.append((key, i))
    for _ in range(40):
        qc, qr = rng.randrange(1, 120), rng.randrange(1, 400)
        query = Range(qc, qr, qc + 10, qr + 40)
        expected = {payload for key, payload in items if key.overlaps(query)}
        assert set(index.search_payloads(query)) == expected
