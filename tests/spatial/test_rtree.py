"""Unit tests for the Guttman R-Tree."""

import random

import pytest

from repro.grid.range import Range
from repro.spatial.rtree import RTree


def brute_force_overlaps(items, query):
    return {payload for key, payload in items if key.overlaps(query)}


class TestBasics:
    def test_empty_search(self):
        tree = RTree()
        assert tree.search(Range(1, 1, 5, 5)) == []
        assert len(tree) == 0

    def test_single_insert_and_hit(self):
        tree = RTree()
        tree.insert(Range.from_a1("B2:C4"), "x")
        hits = tree.search(Range.from_a1("C4"))
        assert [entry.payload for entry in hits] == ["x"]
        assert tree.search(Range.from_a1("D5")) == []

    def test_min_max_entries_guard(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_duplicate_keys_allowed(self):
        tree = RTree()
        key = Range.from_a1("A1:A5")
        tree.insert(key, "first")
        tree.insert(key, "second")
        assert sorted(tree.search_payloads(Range.from_a1("A3"))) == ["first", "second"]

    def test_covering(self):
        tree = RTree()
        tree.insert(Range.from_a1("A1:D8"), "big")
        tree.insert(Range.from_a1("B2"), "cell")
        covering = [entry.payload for entry in tree.covering(Range.from_a1("B2:C3"))]
        assert covering == ["big"]

    def test_iteration(self):
        tree = RTree()
        for i in range(1, 30):
            tree.insert(Range.cell(i, i), i)
        assert sorted(entry.payload for entry in tree) == list(range(1, 30))


class TestSplitsAndStructure:
    def test_many_inserts_keep_invariants(self):
        tree = RTree()
        rng = random.Random(42)
        items = []
        for i in range(300):
            c1 = rng.randrange(1, 200)
            r1 = rng.randrange(1, 200)
            key = Range(c1, r1, c1 + rng.randrange(5), r1 + rng.randrange(5))
            tree.insert(key, i)
            items.append((key, i))
        tree.check_invariants()
        assert len(tree) == 300
        assert tree.depth() >= 2
        for _ in range(30):
            qc = rng.randrange(1, 200)
            qr = rng.randrange(1, 200)
            query = Range(qc, qr, qc + 8, qr + 8)
            assert set(tree.search_payloads(query)) == brute_force_overlaps(items, query)

    def test_column_run_workload(self):
        # Vertex keys in formula graphs are mostly column runs.
        tree = RTree()
        items = []
        for col in range(1, 8):
            for start in range(1, 100, 7):
                key = Range(col, start, col, start + 6)
                tree.insert(key, (col, start))
                items.append((key, (col, start)))
        tree.check_invariants()
        query = Range(3, 10, 4, 40)
        assert set(tree.search_payloads(query)) == brute_force_overlaps(items, query)


class TestDelete:
    def test_delete_specific_payload(self):
        tree = RTree()
        key = Range.from_a1("A1:A3")
        tree.insert(key, "a")
        tree.insert(key, "b")
        assert tree.delete(key, "a")
        assert tree.search_payloads(Range.from_a1("A2")) == ["b"]
        assert len(tree) == 1

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert(Range.from_a1("A1"), "a")
        assert not tree.delete(Range.from_a1("B2"), "a")
        assert not tree.delete(Range.from_a1("A1"), "other")

    def test_delete_then_search_consistent(self):
        tree = RTree()
        rng = random.Random(7)
        items = []
        for i in range(200):
            c1 = rng.randrange(1, 100)
            r1 = rng.randrange(1, 100)
            key = Range(c1, r1, c1 + rng.randrange(4), r1 + rng.randrange(4))
            tree.insert(key, i)
            items.append((key, i))
        rng.shuffle(items)
        removed, remaining = items[:120], items[120:]
        for key, payload in removed:
            assert tree.delete(key, payload)
        tree.check_invariants()
        assert len(tree) == len(remaining)
        for _ in range(25):
            qc, qr = rng.randrange(1, 100), rng.randrange(1, 100)
            query = Range(qc, qr, qc + 10, qr + 10)
            assert set(tree.search_payloads(query)) == brute_force_overlaps(remaining, query)

    def test_delete_everything(self):
        tree = RTree()
        keys = [Range.cell(i, 1) for i in range(1, 60)]
        for i, key in enumerate(keys):
            tree.insert(key, i)
        for i, key in enumerate(keys):
            assert tree.delete(key, i)
        assert len(tree) == 0
        assert tree.search(Range(1, 1, 100, 100)) == []
        # The tree must remain usable after being emptied.
        tree.insert(Range.cell(5, 5), "again")
        assert tree.search_payloads(Range.cell(5, 5)) == ["again"]

    def test_condense_reinserts_do_not_skew_instrumentation(self):
        """Internal restructuring must not count as caller operations."""
        tree = RTree()
        items = [(Range.cell(col, row), (col, row))
                 for col in range(1, 15) for row in range(1, 15)]
        for key, payload in items:
            tree.insert(key, payload)
        assert tree.insert_ops == len(items)
        # Deleting most entries forces underfull leaves and condense
        # re-inserts of the orphaned survivors.
        victims = items[: len(items) - 10]
        for key, payload in victims:
            assert tree.delete(key, payload)
        tree.check_invariants()
        assert tree.insert_ops == len(items), "condense leaked into insert_ops"
        assert tree.delete_ops == len(victims)
        assert len(tree) == 10


class TestBulkLoad:
    def test_empty_and_tiny_loads(self):
        tree = RTree()
        tree.bulk_load([])
        assert len(tree) == 0
        assert tree.search(Range(1, 1, 50, 50)) == []
        tree.bulk_load([(Range.cell(2, 2), "a")])
        assert tree.search_payloads(Range.cell(2, 2)) == ["a"]
        tree.check_invariants()

    def test_str_pack_matches_brute_force(self):
        rng = random.Random(11)
        items = []
        for i in range(500):
            c1 = rng.randrange(1, 150)
            r1 = rng.randrange(1, 500)
            items.append((Range(c1, r1, c1 + rng.randrange(4), r1 + rng.randrange(20)), i))
        tree = RTree()
        tree.bulk_load(items)
        tree.check_invariants()
        assert len(tree) == len(items)
        for _ in range(40):
            qc, qr = rng.randrange(1, 150), rng.randrange(1, 500)
            query = Range(qc, qr, qc + 10, qr + 30)
            assert set(tree.search_payloads(query)) == brute_force_overlaps(items, query)

    def test_str_pack_is_tighter_than_incremental(self):
        # A packed tree over a column-major vertex stream should not be
        # deeper than the incrementally grown one.
        items = [(Range(col, row, col, row + 4), (col, row))
                 for col in range(1, 12) for row in range(1, 400, 5)]
        incremental = RTree()
        for key, payload in items:
            incremental.insert(key, payload)
        packed = RTree()
        packed.bulk_load(items)
        packed.check_invariants()
        assert packed.depth() <= incremental.depth()
        assert packed.stats()["nodes"] <= incremental.stats()["nodes"]

    def test_bulk_load_replaces_existing_contents(self):
        tree = RTree()
        tree.insert(Range.cell(1, 1), "old")
        tree.bulk_load([(Range.cell(9, 9), "new")])
        assert tree.search_payloads(Range(1, 1, 20, 20)) == ["new"]
        assert len(tree) == 1
        assert tree.bulk_loads == 1
        assert tree.insert_ops == 1  # only the caller's original insert
