"""Differential property tests: every backend answers identically.

The backends have wildly different internals (tree descent, hashed
buckets, block partitioning) but must be observationally equivalent for
insert/delete/search/covering workloads — that is what lets the graphs
treat the index as a plug-in.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.range import Range
from repro.spatial import make_index
from repro.spatial.gridbucket import GridBucketIndex
from repro.spatial.rtree import RTree

BACKENDS = ("rtree", "gridbucket", "container")

# Small bucket/block geometry so modest keys exercise every tier.
FACTORIES = {
    "rtree": lambda: RTree(),
    "gridbucket": lambda: GridBucketIndex(
        bucket_cols=4, bucket_rows=8, fine_bucket_limit=4, stripe_limit=4
    ),
    "container": lambda: make_index("container"),
}


@st.composite
def boxes(draw):
    c1 = draw(st.integers(1, 30))
    r1 = draw(st.integers(1, 40))
    if draw(st.booleans()):
        return Range(c1, r1, draw(st.integers(c1, c1 + 6)), draw(st.integers(r1, r1 + 6)))
    # Tall/wide degenerates that fall into overflow tiers.
    return Range(c1, r1, draw(st.integers(c1, c1 + 25)), draw(st.integers(r1, r1 + 90)))


@pytest.mark.parametrize("backend", BACKENDS)
@given(keys=st.lists(boxes(), max_size=50), query=boxes())
@settings(max_examples=40)
def test_search_and_covering_match_brute_force(backend, keys, query):
    index = FACTORIES[backend]()
    for i, key in enumerate(keys):
        index.insert(key, i)
    assert len(index) == len(keys)
    expected_overlap = {i for i, key in enumerate(keys) if key.overlaps(query)}
    expected_cover = {i for i, key in enumerate(keys) if key.contains(query)}
    assert set(index.search_payloads(query)) == expected_overlap
    assert {entry.payload for entry in index.covering(query)} == expected_cover
    assert {entry.payload for entry in index} == set(range(len(keys)))


@pytest.mark.parametrize("backend", BACKENDS)
@given(keys=st.lists(boxes(), min_size=1, max_size=40), data=st.data())
@settings(max_examples=30)
def test_interleaved_workloads_match_brute_force(backend, keys, data):
    index = FACTORIES[backend]()
    live: list[tuple[Range, int]] = []
    for i, key in enumerate(keys):
        index.insert(key, i)
        live.append((key, i))
        if data.draw(st.booleans()):
            pos = data.draw(st.integers(0, len(live) - 1))
            victim_key, victim_payload = live.pop(pos)
            assert index.delete(victim_key, victim_payload)
    assert len(index) == len(live)
    query = data.draw(boxes())
    expected = {payload for key, payload in live if key.overlaps(query)}
    assert set(index.search_payloads(query)) == expected


@given(items=st.lists(boxes(), max_size=60), query=boxes())
@settings(max_examples=40)
def test_backends_agree_after_bulk_load(items, query):
    """bulk_load (STR-packed for the R-Tree) changes layout, not answers."""
    loaded = []
    for backend in BACKENDS:
        index = FACTORIES[backend]()
        index.bulk_load((key, i) for i, key in enumerate(items))
        loaded.append(index)
    rtree = loaded[0]
    rtree.check_invariants()
    answers = [set(index.search_payloads(query)) for index in loaded]
    expected = {i for i, key in enumerate(items) if key.overlaps(query)}
    assert answers == [expected] * len(BACKENDS)


@given(items=st.lists(boxes(), max_size=60), extra=boxes(), query=boxes())
@settings(max_examples=40)
def test_bulk_load_supports_further_updates(items, extra, query):
    """A packed index must keep behaving under dynamic inserts/deletes."""
    for backend in BACKENDS:
        index = FACTORIES[backend]()
        index.bulk_load((key, i) for i, key in enumerate(items))
        index.insert(extra, "extra")
        if items:
            assert index.delete(items[0], 0)
        live = [(key, i) for i, key in enumerate(items)][1:] + [(extra, "extra")]
        expected = {payload for key, payload in live if key.overlaps(query)}
        assert set(index.search_payloads(query)) == expected
