"""Unit tests for the spatial-index registry."""

import pytest

from repro.spatial import (
    ContainerIndex,
    GridBucketIndex,
    RTree,
    SpatialIndex,
    available_indexes,
    make_index,
    register_index,
)
from repro.spatial.registry import _REGISTRY


def test_builtins_are_registered():
    assert {"rtree", "gridbucket", "container"} <= set(available_indexes())


def test_make_index_by_name():
    assert isinstance(make_index("rtree"), RTree)
    assert isinstance(make_index("gridbucket"), GridBucketIndex)
    assert isinstance(make_index("container"), ContainerIndex)
    assert isinstance(make_index("RTree"), RTree)  # case-insensitive


def test_make_index_passes_kwargs():
    index = make_index("rtree", max_entries=16)
    assert index._max == 16


def test_make_index_accepts_factory_callable():
    index = make_index(lambda: GridBucketIndex(bucket_rows=7))
    assert isinstance(index, GridBucketIndex)
    assert index._bucket_rows == 7


def test_unknown_backend_raises_with_choices():
    with pytest.raises(ValueError, match="gridbucket"):
        make_index("btree")


def test_register_custom_backend():
    class Custom(GridBucketIndex):
        backend_name = "custom"

    register_index("custom-test", Custom)
    try:
        assert isinstance(make_index("custom-test"), Custom)
        assert "custom-test" in available_indexes()
    finally:
        _REGISTRY.pop("custom-test", None)


def test_every_builtin_satisfies_the_protocol():
    for name in ("rtree", "gridbucket", "container"):
        index = make_index(name)
        assert isinstance(index, SpatialIndex)
        stats = index.stats()
        assert stats["backend"] == index.backend_name
        assert stats["size"] == 0
