"""Unit tests for the Calc-style container index."""

import random

import pytest

from repro.grid.range import Range
from repro.spatial.containers import ContainerIndex


class TestBasics:
    def test_insert_and_search(self):
        index = ContainerIndex()
        index.insert(Range.from_a1("B2:C4"), "x")
        assert index.search_payloads(Range.from_a1("C4:D5")) == ["x"]
        assert index.search_payloads(Range.from_a1("E9")) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            ContainerIndex(block_cols=0)

    def test_cross_block_range_found_once(self):
        index = ContainerIndex(block_cols=4, block_rows=4)
        key = Range(1, 1, 10, 10)  # spans several blocks
        index.insert(key, "wide")
        hits = index.search(Range(1, 1, 12, 12))
        assert [payload for _, payload in hits] == ["wide"]

    def test_broadcast_path(self):
        index = ContainerIndex(block_cols=2, block_rows=2, broadcast_threshold=4)
        huge = Range(1, 1, 40, 40)
        index.insert(huge, "huge")
        assert index.stats()["broadcast_items"] == 1
        assert index.search_payloads(Range.cell(39, 39)) == ["huge"]
        assert index.delete(huge, "huge")
        assert index.search_payloads(Range.cell(39, 39)) == []

    def test_delete(self):
        index = ContainerIndex()
        key = Range.from_a1("A1:A5")
        index.insert(key, "a")
        index.insert(key, "b")
        assert index.delete(key, "a")
        assert index.search_payloads(Range.from_a1("A3")) == ["b"]
        assert not index.delete(key, "missing")
        assert len(index) == 1

    def test_iteration_deduplicates(self):
        index = ContainerIndex(block_cols=2, block_rows=2)
        index.insert(Range(1, 1, 6, 6), "multi-block")
        assert [payload for _, payload in index] == ["multi-block"]


def test_matches_brute_force_random():
    rng = random.Random(3)
    index = ContainerIndex(block_cols=8, block_rows=16)
    items = []
    for i in range(250):
        c1 = rng.randrange(1, 120)
        r1 = rng.randrange(1, 400)
        key = Range(c1, r1, c1 + rng.randrange(6), r1 + rng.randrange(30))
        index.insert(key, i)
        items.append((key, i))
    for _ in range(40):
        qc, qr = rng.randrange(1, 120), rng.randrange(1, 400)
        query = Range(qc, qr, qc + 10, qr + 40)
        expected = {payload for key, payload in items if key.overlaps(query)}
        assert set(index.search_payloads(query)) == expected
