"""Property-based tests: the R-Tree agrees with brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.range import Range
from repro.spatial.rtree import RTree


@st.composite
def boxes(draw):
    c1 = draw(st.integers(1, 30))
    r1 = draw(st.integers(1, 30))
    return Range(c1, r1, draw(st.integers(c1, c1 + 6)), draw(st.integers(r1, r1 + 6)))


@given(st.lists(boxes(), max_size=60), boxes())
@settings(max_examples=60)
def test_search_matches_brute_force(keys, query):
    tree = RTree()
    for i, key in enumerate(keys):
        tree.insert(key, i)
    expected = {i for i, key in enumerate(keys) if key.overlaps(query)}
    assert set(tree.search_payloads(query)) == expected
    tree.check_invariants()


@given(
    st.lists(boxes(), min_size=1, max_size=50),
    st.data(),
)
@settings(max_examples=40)
def test_interleaved_insert_delete(keys, data):
    tree = RTree()
    live: list[tuple[Range, int]] = []
    for i, key in enumerate(keys):
        tree.insert(key, i)
        live.append((key, i))
        if live and data.draw(st.booleans()):
            index = data.draw(st.integers(0, len(live) - 1))
            victim_key, victim_payload = live.pop(index)
            assert tree.delete(victim_key, victim_payload)
    tree.check_invariants()
    assert len(tree) == len(live)
    query = data.draw(boxes())
    expected = {payload for key, payload in live if key.overlaps(query)}
    assert set(tree.search_payloads(query)) == expected
