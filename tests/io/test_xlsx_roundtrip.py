"""Round-trip tests: write a workbook to xlsx, read it back, compare."""

import io
import zipfile

import pytest

from helpers import build_fig2_sheet, build_mixed_sheet

from repro.core.taco_graph import dependencies_column_major
from repro.formula.errors import ExcelError
from repro.io.xlsx_reader import read_xlsx
from repro.io.xlsx_writer import write_xlsx
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


def round_trip(workbook, shared_formulas=True) -> Workbook:
    buffer = io.BytesIO()
    write_xlsx(workbook, buffer, shared_formulas=shared_formulas)
    buffer.seek(0)
    return read_xlsx(buffer)


class TestValues:
    def test_numbers(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 42.0)
        sheet.set_value("A2", 3.14)
        sheet.set_value("A3", -7.0)
        back = round_trip(sheet)["S"]
        assert back.get_value("A1") == 42.0
        assert back.get_value("A2") == 3.14
        assert back.get_value("A3") == -7.0

    def test_strings_inline(self):
        sheet = Sheet("S")
        sheet.set_value("A1", "hello world")
        sheet.set_value("A2", "x < y & z \"quoted\"")
        back = round_trip(sheet)["S"]
        assert back.get_value("A1") == "hello world"
        assert back.get_value("A2") == 'x < y & z "quoted"'

    def test_booleans(self):
        sheet = Sheet("S")
        sheet.set_value("A1", True)
        sheet.set_value("A2", False)
        back = round_trip(sheet)["S"]
        assert back.get_value("A1") is True
        assert back.get_value("A2") is False

    def test_error_values(self):
        sheet = Sheet("S")
        sheet.set_value("A1", ExcelError("#DIV/0!"))
        back = round_trip(sheet)["S"]
        assert back.get_value("A1") == ExcelError("#DIV/0!")

    def test_empty_cells_stay_empty(self):
        sheet = Sheet("S")
        sheet.set_value("B7", 1.0)
        back = round_trip(sheet)["S"]
        assert back.get_value("A1") is None
        assert len(back) == 1


class TestFormulas:
    def test_formula_text_preserved(self):
        sheet = Sheet("S")
        sheet.set_formula("B1", "=SUM(A1:A3)")
        back = round_trip(sheet)["S"]
        assert back.cell_at("B1").formula_text == "SUM(A1:A3)"

    def test_cached_value_preserved(self):
        sheet = Sheet("S")
        sheet.set_formula("B1", "=1+1")
        sheet.cell_at("B1").value = 2.0
        back = round_trip(sheet)["S"]
        assert back.cell_at("B1").value == 2.0
        assert back.cell_at("B1").is_formula

    def test_string_result_formula(self):
        sheet = Sheet("S")
        sheet.set_formula("B1", '="a"&"b"')
        sheet.cell_at("B1").value = "ab"
        back = round_trip(sheet)["S"]
        assert back.cell_at("B1").value == "ab"

    @pytest.mark.parametrize("shared", [True, False], ids=["shared", "plain"])
    def test_dependencies_survive(self, shared):
        sheet = build_mixed_sheet(seed=4)
        back = round_trip(sheet, shared_formulas=shared)["mixed"]
        original = {(d.prec.to_a1(), d.dep.to_a1()) for d in sheet.iter_dependencies()}
        restored = {(d.prec.to_a1(), d.dep.to_a1()) for d in back.iter_dependencies()}
        assert restored == original


class TestSharedFormulas:
    def test_shared_groups_emitted(self):
        sheet = build_fig2_sheet(rows=30)
        buffer = io.BytesIO()
        write_xlsx(sheet, buffer, shared_formulas=True)
        buffer.seek(0)
        with zipfile.ZipFile(buffer) as archive:
            xml = archive.read("xl/worksheets/sheet1.xml").decode()
        assert 't="shared"' in xml
        # Followers must carry no formula body.
        assert xml.count('<f t="shared"') > xml.count("si=\"0\">")

    def test_shared_formulas_reconstructed(self):
        from repro.formula.parser import parse_formula

        sheet = build_fig2_sheet(rows=30)
        back = round_trip(sheet)["fig2"]
        # A follower cell's formula must be the shifted anchor formula
        # (compare ASTs: rendering may add explicit parentheses).
        assert back.cell_at("N10").formula_ast == parse_formula("=IF(A10=A9,N9+M10,M10)")

    def test_shared_and_plain_read_identically(self):
        sheet = build_fig2_sheet(rows=20)
        with_shared = round_trip(sheet, shared_formulas=True)["fig2"]
        without = round_trip(sheet, shared_formulas=False)["fig2"]
        deps_a = {(d.prec.to_a1(), d.dep.to_a1()) for d in with_shared.iter_dependencies()}
        deps_b = {(d.prec.to_a1(), d.dep.to_a1()) for d in without.iter_dependencies()}
        assert deps_a == deps_b

    def test_shared_file_is_smaller(self):
        sheet = build_fig2_sheet(rows=200)
        shared_buf, plain_buf = io.BytesIO(), io.BytesIO()
        write_xlsx(sheet, shared_buf, shared_formulas=True)
        write_xlsx(sheet, plain_buf, shared_formulas=False)
        assert len(shared_buf.getvalue()) < len(plain_buf.getvalue())


class TestWorkbooks:
    def test_multiple_sheets(self):
        wb = Workbook()
        data = wb.add_sheet("Data")
        report = wb.add_sheet("Report")
        data.set_value("A1", 10.0)
        report.set_formula("A1", "=Data!A1*2")
        back = round_trip(wb)
        assert back.sheet_names == ["Data", "Report"]
        assert back["Data"].get_value("A1") == 10.0
        assert back["Report"].cell_at("A1").formula_text == "Data!A1*2"

    def test_sheet_name_with_spaces(self):
        wb = Workbook()
        wb.add_sheet("My Data").set_value("A1", 1.0)
        back = round_trip(wb)
        assert back.sheet_names == ["My Data"]

    def test_empty_workbook_rejected(self):
        with pytest.raises(ValueError):
            write_xlsx(Workbook(), io.BytesIO())

    def test_graph_pipeline_from_xlsx(self, tmp_path):
        # The full paper pipeline: file -> parse -> compress -> query.
        from repro.core.taco_graph import TacoGraph

        sheet = build_fig2_sheet(rows=40)
        path = tmp_path / "fig2.xlsx"
        write_xlsx(sheet, str(path))
        back = read_xlsx(str(path)).active_sheet
        graph = TacoGraph.full()
        graph.build(dependencies_column_major(back))
        assert graph.raw_edge_count() == len(dependencies_column_major(sheet))
        assert len(graph) <= 6
