"""Property-based round-trip tests for xlsx I/O."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formula.errors import ExcelError
from repro.io.xlsx_reader import read_xlsx
from repro.io.xlsx_writer import write_xlsx
from repro.sheet.sheet import Sheet

# Excel-representable scalars: finite floats, XML-safe text, booleans,
# error values.
scalars = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=20
    ),
    st.booleans(),
    st.sampled_from([ExcelError("#DIV/0!"), ExcelError("#N/A"), ExcelError("#REF!")]),
)


@st.composite
def value_sheets(draw) -> Sheet:
    sheet = Sheet("prop")
    cells = draw(
        st.dictionaries(
            st.tuples(st.integers(1, 12), st.integers(1, 20)),
            scalars,
            max_size=25,
        )
    )
    for pos, value in cells.items():
        if isinstance(value, str) and not value:
            continue  # empty text round-trips to a blank cell; skip
        sheet.set_value(pos, value)
    return sheet


def round_trip(sheet: Sheet) -> Sheet:
    buffer = io.BytesIO()
    write_xlsx(sheet, buffer)
    buffer.seek(0)
    return read_xlsx(buffer).active_sheet


@given(value_sheets())
@settings(max_examples=50, deadline=None)
def test_values_round_trip(sheet):
    restored = round_trip(sheet)
    assert len(restored) == len(sheet)
    for pos, cell in sheet.items():
        back = restored.get_value(pos)
        if isinstance(cell.value, float):
            assert back == float(cell.value)
        else:
            assert back == cell.value


@given(
    st.integers(2, 40),
    st.sampled_from(["=A1*2", "=SUM(A1:A3)", "=SUM($A$1:A1)", "=A1&\"x\""]),
)
@settings(max_examples=30, deadline=None)
def test_autofilled_formulas_round_trip(rows, formula):
    from repro.sheet.autofill import fill_formula_column

    sheet = Sheet("prop")
    fill_formula_column(sheet, 2, 1, rows, formula)
    restored = round_trip(sheet)
    deps_in = {(d.prec.to_a1(), d.dep.to_a1()) for d in sheet.iter_dependencies()}
    deps_out = {(d.prec.to_a1(), d.dep.to_a1()) for d in restored.iter_dependencies()}
    assert deps_in == deps_out
