"""Unit tests for shared-formula group planning in the xlsx writer."""

import io
import zipfile
from xml.etree import ElementTree

from repro.io.shared import strip_ns
from repro.io.xlsx_writer import _plan_shared_groups, write_xlsx
from repro.io.xlsx_reader import read_xlsx
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet


class TestGroupPlanning:
    def test_contiguous_identical_run_is_one_group(self):
        sheet = Sheet("s")
        fill_formula_column(sheet, 2, 1, 10, "=A1*2")
        plan = _plan_shared_groups(sheet)
        assert len(plan) == 10
        group_ids = {si for si, _, _ in plan.values()}
        assert len(group_ids) == 1
        anchors = [pos for pos, (_, _, is_anchor) in plan.items() if is_anchor]
        assert anchors == [(2, 1)]

    def test_gap_splits_groups(self):
        sheet = Sheet("s")
        fill_formula_column(sheet, 2, 1, 4, "=A1*2")
        fill_formula_column(sheet, 2, 7, 10, "=A7*2")
        plan = _plan_shared_groups(sheet)
        group_ids = {si for si, _, _ in plan.values()}
        assert len(group_ids) == 2

    def test_different_formulas_split_groups(self):
        sheet = Sheet("s")
        sheet.set_formula("B1", "=A1*2")
        sheet.set_formula("B2", "=A2*2")
        sheet.set_formula("B3", "=A3+1")   # breaks the run
        sheet.set_formula("B4", "=A4+1")
        plan = _plan_shared_groups(sheet)
        group_ids = {si for si, _, _ in plan.values()}
        assert len(group_ids) == 2

    def test_lone_formula_not_grouped(self):
        sheet = Sheet("s")
        sheet.set_formula("B1", "=A1*2")
        sheet.set_formula("D9", "=A9*3")
        assert _plan_shared_groups(sheet) == {}

    def test_fixed_refs_still_group(self):
        sheet = Sheet("s")
        fill_formula_column(sheet, 2, 1, 5, "=A1*$Z$1")
        plan = _plan_shared_groups(sheet)
        assert len({si for si, _, _ in plan.values()}) == 1


class TestEmittedXml:
    def _sheet_xml(self, sheet: Sheet) -> ElementTree.Element:
        buffer = io.BytesIO()
        write_xlsx(sheet, buffer)
        buffer.seek(0)
        with zipfile.ZipFile(buffer) as archive:
            return ElementTree.fromstring(archive.read("xl/worksheets/sheet1.xml"))

    def test_anchor_carries_ref_and_body(self):
        sheet = Sheet("s")
        fill_formula_column(sheet, 2, 1, 6, "=A1*2")
        root = self._sheet_xml(sheet)
        anchors = [
            el for el in root.iter()
            if strip_ns(el.tag) == "f" and el.get("t") == "shared" and el.text
        ]
        followers = [
            el for el in root.iter()
            if strip_ns(el.tag) == "f" and el.get("t") == "shared" and not el.text
        ]
        assert len(anchors) == 1
        assert anchors[0].get("ref") == "B1:B6"
        assert len(followers) == 5
        assert all(f.get("si") == anchors[0].get("si") for f in followers)

    def test_round_trip_of_split_groups(self):
        sheet = Sheet("s")
        fill_formula_column(sheet, 2, 1, 4, "=A1*2")
        fill_formula_column(sheet, 2, 7, 10, "=A7*2")
        buffer = io.BytesIO()
        write_xlsx(sheet, buffer)
        buffer.seek(0)
        restored = read_xlsx(buffer)["s"]
        deps_in = {(d.prec.to_a1(), d.dep.to_a1()) for d in sheet.iter_dependencies()}
        deps_out = {(d.prec.to_a1(), d.dep.to_a1()) for d in restored.iter_dependencies()}
        assert deps_in == deps_out

    def test_dimension_element_present(self):
        sheet = Sheet("s")
        sheet.set_value("B2", 1.0)
        sheet.set_value("D9", 2.0)
        root = self._sheet_xml(sheet)
        dims = [el for el in root.iter() if strip_ns(el.tag) == "dimension"]
        assert dims and dims[0].get("ref") == "B2:D9"
