"""Unit tests for xlsx reader edge cases and malformed input."""

import io
import zipfile

import pytest

from repro.io.shared import strip_ns, xml_escape
from repro.io.xlsx_reader import XlsxFormatError, read_xlsx


def make_archive(parts: dict[str, str]) -> io.BytesIO:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as archive:
        for name, content in parts.items():
            archive.writestr(name, content)
    buffer.seek(0)
    return buffer


MAIN = "http://schemas.openxmlformats.org/spreadsheetml/2006/main"

MINIMAL_WORKBOOK = (
    f'<workbook xmlns="{MAIN}"><sheets>'
    '<sheet name="S" sheetId="1"/></sheets></workbook>'
)


class TestHelpers:
    def test_strip_ns(self):
        assert strip_ns("{ns}tag") == "tag"
        assert strip_ns("tag") == "tag"

    def test_xml_escape(self):
        assert xml_escape('<&">') == "&lt;&amp;&quot;&gt;"


class TestMalformed:
    def test_not_a_zip(self):
        with pytest.raises(XlsxFormatError):
            read_xlsx(io.BytesIO(b"this is not a zip"))

    def test_missing_workbook_part(self):
        archive = make_archive({"hello.txt": "x"})
        with pytest.raises(XlsxFormatError):
            read_xlsx(archive)

    def test_no_sheets_declared(self):
        archive = make_archive(
            {"xl/workbook.xml": f'<workbook xmlns="{MAIN}"><sheets/></workbook>'}
        )
        with pytest.raises(XlsxFormatError):
            read_xlsx(archive)

    def test_missing_worksheet_part(self):
        archive = make_archive({"xl/workbook.xml": MINIMAL_WORKBOOK})
        with pytest.raises(XlsxFormatError):
            read_xlsx(archive)

    def test_malformed_sheet_xml(self):
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/worksheets/sheet1.xml": "<worksheet><unclosed>",
            }
        )
        with pytest.raises(XlsxFormatError):
            read_xlsx(archive)

    def test_bad_shared_string_index(self):
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/sharedStrings.xml": f'<sst xmlns="{MAIN}"><si><t>x</t></si></sst>',
                "xl/worksheets/sheet1.xml": (
                    f'<worksheet xmlns="{MAIN}"><sheetData>'
                    '<row r="1"><c r="A1" t="s"><v>99</v></c></row>'
                    "</sheetData></worksheet>"
                ),
            }
        )
        with pytest.raises(XlsxFormatError):
            read_xlsx(archive)


class TestTolerantParsing:
    def test_fallback_sheet_targets_without_rels(self):
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/worksheets/sheet1.xml": (
                    f'<worksheet xmlns="{MAIN}"><sheetData>'
                    '<row r="1"><c r="A1"><v>5</v></c></row>'
                    "</sheetData></worksheet>"
                ),
            }
        )
        workbook = read_xlsx(archive)
        assert workbook["S"].get_value("A1") == 5.0

    def test_shared_string_rich_text_runs(self):
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/sharedStrings.xml": (
                    f'<sst xmlns="{MAIN}"><si><r><t>Hello </t></r>'
                    "<r><t>World</t></r></si></sst>"
                ),
                "xl/worksheets/sheet1.xml": (
                    f'<worksheet xmlns="{MAIN}"><sheetData>'
                    '<row r="1"><c r="A1" t="s"><v>0</v></c></row>'
                    "</sheetData></worksheet>"
                ),
            }
        )
        workbook = read_xlsx(archive)
        assert workbook["S"].get_value("A1") == "Hello World"

    def test_dangling_shared_follower_keeps_value(self):
        # A shared follower whose anchor is missing degrades to its cached value.
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/worksheets/sheet1.xml": (
                    f'<worksheet xmlns="{MAIN}"><sheetData>'
                    '<row r="2"><c r="B2"><f t="shared" si="7"/><v>42</v></c></row>'
                    "</sheetData></worksheet>"
                ),
            }
        )
        workbook = read_xlsx(archive)
        cell = workbook["S"].cell_at("B2")
        assert not cell.is_formula
        assert cell.value == 42.0

    def test_array_formula_keeps_cached_value(self):
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/worksheets/sheet1.xml": (
                    f'<worksheet xmlns="{MAIN}"><sheetData>'
                    '<row r="1"><c r="A1"><f t="array" ref="A1:A2">SUM(B:B)</f>'
                    "<v>7</v></c></row></sheetData></worksheet>"
                ),
            }
        )
        workbook = read_xlsx(archive)
        assert workbook["S"].get_value("A1") == 7.0

    def test_cells_without_refs_skipped(self):
        archive = make_archive(
            {
                "xl/workbook.xml": MINIMAL_WORKBOOK,
                "xl/worksheets/sheet1.xml": (
                    f'<worksheet xmlns="{MAIN}"><sheetData>'
                    '<row r="1"><c><v>1</v></c><c r="B1"><v>2</v></c></row>'
                    "</sheetData></worksheet>"
                ),
            }
        )
        workbook = read_xlsx(archive)
        assert len(workbook["S"]) == 1
