"""Property suite: workbook -> snapshot -> restore is the identity.

A restored workbook must be indistinguishable from the one that was
saved: every cell value (including error values), every formula's
source, every graph's decompressed dependency set, every formula's R1C1
template key, and every dependents query answer — for every registered
spatial-index backend and every pattern registry, including the
RR-GapOne extension.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import build_fig2_sheet, build_mixed_sheet

from repro.core.patterns.registry import (
    default_patterns,
    extended_patterns,
    inrow_patterns,
)
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.formula.errors import DIV0, NA_ERROR
from repro.graphs.base import expand_cells
from repro.grid.range import Range
from repro.io.snapshot import (
    SnapshotFormatError,
    load_snapshot,
    save_snapshot,
)
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook
from repro.spatial.registry import available_indexes

BACKENDS = available_indexes()
REGISTRIES = {
    "full": default_patterns,
    "extended": extended_patterns,   # includes RR-GapOne
    "inrow": inrow_patterns,
}


def roundtrip(workbook: Workbook, graphs=None):
    buffer = io.BytesIO()
    save_snapshot(workbook, buffer, graphs)
    buffer.seek(0)
    return load_snapshot(buffer)


def build_graph(sheet: Sheet, backend: str, registry: str) -> TacoGraph:
    graph = TacoGraph(patterns=REGISTRIES[registry](), index=backend)
    graph.build(dependencies_column_major(sheet))
    graph.rebuild_indexes()
    return graph


def cell_state(sheet: Sheet) -> dict:
    return {
        pos: (cell.formula_text, cell.value)
        for pos, cell in sheet.items()
    }


def dependency_set(graph) -> set:
    return {(d.prec.as_tuple(), d.dep.as_tuple()) for d in graph.decompress()}


def template_keys(sheet: Sheet) -> dict:
    return {
        pos: cell.template_key(*pos)
        for pos, cell in sheet.formula_cells()
    }


# -- generated workbooks -------------------------------------------------------

DATA_COLS = (1, 2)
FORMULA_POOL = (
    "=A{r}+B{r}",
    "=SUM(A1:A{r})",
    "=SUM($A$1:B{r})",
    "=SUM(A{r}:B{rr})",
    "=A{r}*$B$1",
    "=IF(A{r}>B{r},A{r},B{r})",
    "=A{r}/B{r}",          # can produce #DIV/0!
)


@st.composite
def workbooks(draw):
    rows = draw(st.integers(4, 12))
    workbook = Workbook("gen")
    sheet = workbook.add_sheet("Gen")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(draw(st.integers(-9, 9))))
        sheet.set_value((2, r), float(draw(st.integers(0, 4))))
    n_formulas = draw(st.integers(1, 3))
    for col in range(3, 3 + n_formulas):
        template = draw(st.sampled_from(FORMULA_POOL))
        for r in range(1, rows + 1):
            sheet.set_formula(
                (col, r), template.format(r=r, rr=min(rows, r + 2))
            )
    if draw(st.booleans()):
        sheet.set_value((5, rows + 2), "label")
        sheet.set_value((6, rows + 2), True)
    return workbook


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("registry", sorted(REGISTRIES))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_roundtrip_pins_everything(backend, registry, data):
    workbook = data.draw(workbooks())
    sheet = workbook.active_sheet
    graph = build_graph(sheet, backend, registry)
    RecalcEngine(sheet, graph).recalculate_all()

    restored = roundtrip(workbook, {sheet.name: graph})
    rsheet = restored.workbook[sheet.name]
    rgraph = restored.graphs[sheet.name]

    assert cell_state(rsheet) == cell_state(sheet)
    assert dependency_set(rgraph) == dependency_set(graph)
    assert template_keys(rsheet) == template_keys(sheet)
    # The construction parameters survive too.
    assert rgraph.index_spec == backend
    assert [p.name for p in rgraph.patterns] == [p.name for p in graph.patterns]

    for probe in (Range.from_a1("A1"), Range.from_a1("B2"),
                  Range.from_a1("A1:B4")):
        assert expand_cells(rgraph.find_dependents(probe)) == \
            expand_cells(graph.find_dependents(probe))
        assert expand_cells(rgraph.find_precedents(probe)) == \
            expand_cells(graph.find_precedents(probe))


@pytest.mark.parametrize("backend", BACKENDS)
def test_roundtrip_preserves_error_values(backend):
    workbook = Workbook("err")
    sheet = workbook.add_sheet("Err")
    sheet.set_value("A1", 1.0)
    sheet.set_value("A2", 0.0)
    sheet.set_formula("B1", "=A1/A2")
    graph = build_graph(sheet, backend, "full")
    RecalcEngine(sheet, graph).recalculate_all()
    assert sheet.get_value("B1") is DIV0
    sheet.set_value("C1", NA_ERROR)

    restored = roundtrip(workbook, {sheet.name: graph})
    rsheet = restored.workbook[sheet.name]
    assert rsheet.get_value("B1") is DIV0
    assert rsheet.get_value("C1") is NA_ERROR


def test_roundtrip_restored_graph_stays_maintainable():
    """A restored graph is live: edits through an engine keep the
    coupling invariant (decompressed deps == sheet references)."""
    workbook = Workbook("live")
    sheet = workbook.add_sheet("Mixed")
    source = build_mixed_sheet(seed=11, rows=12)
    for pos, cell in source.items():
        sheet._cells[pos] = cell
    graph = build_graph(sheet, "rtree", "extended")
    RecalcEngine(sheet, graph).recalculate_all()

    restored = roundtrip(workbook, {sheet.name: graph})
    rsheet = restored.workbook[sheet.name]
    engine = RecalcEngine(rsheet, restored.graphs[sheet.name])
    engine.set_formula("H1", "=SUM(A1:A5)")
    engine.set_value("A1", 99.0)
    truth = {
        (d.prec.as_tuple(), d.dep.as_tuple())
        for d in dependencies_column_major(rsheet)
    }
    assert dependency_set(engine.graph) == truth


def test_multisheet_roundtrip_builds_missing_graphs():
    workbook = Workbook("multi")
    one = workbook.add_sheet("One")
    two = workbook.add_sheet("Two")
    for r in range(1, 6):
        one.set_value((1, r), float(r))
        two.set_value((1, r), float(r * 10))
    one.set_formula("B1", "=SUM(A1:A5)")
    two.set_formula("B1", "=One!B1+A1")    # cross-sheet reference
    RecalcEngine(one).recalculate_all()
    RecalcEngine(two).recalculate_all()

    restored = roundtrip(workbook)          # graphs built by the writer
    assert restored.workbook.sheet_names == ["One", "Two"]
    assert cell_state(restored.workbook["One"]) == cell_state(one)
    assert cell_state(restored.workbook["Two"]) == cell_state(two)
    # Cross-sheet references contribute no edge to the per-sheet graph.
    assert dependency_set(restored.graphs["Two"]) == {
        (Range.from_a1("A1").as_tuple(), Range.from_a1("B1").as_tuple())
    }


def test_fig2_roundtrip_via_path(tmp_path):
    workbook = Workbook("fig2wb")
    workbook.attach_sheet(build_fig2_sheet(rows=30))
    sheet = workbook.active_sheet
    graph = build_graph(sheet, "gridbucket", "full")
    RecalcEngine(sheet, graph).recalculate_all()
    path = str(tmp_path / "fig2.snap")
    stats = save_snapshot(workbook, path, {sheet.name: graph})
    assert stats.sheets == 1 and stats.bytes_written > 0
    restored = load_snapshot(path)
    assert cell_state(restored.workbook[sheet.name]) == cell_state(sheet)
    assert dependency_set(restored.graphs[sheet.name]) == dependency_set(graph)


# -- format validation ---------------------------------------------------------

class TestFormatValidation:
    def make_bytes(self) -> bytearray:
        workbook = Workbook("v")
        sheet = workbook.add_sheet("S")
        sheet.set_value("A1", 1.0)
        sheet.set_formula("B1", "=A1*2")
        buffer = io.BytesIO()
        save_snapshot(workbook, buffer)
        return bytearray(buffer.getvalue())

    def test_bad_magic(self):
        data = self.make_bytes()
        data[0:4] = b"NOPE"
        with pytest.raises(SnapshotFormatError, match="magic"):
            load_snapshot(io.BytesIO(bytes(data)))

    def test_future_version_names_both(self):
        data = self.make_bytes()
        data[8:12] = (99).to_bytes(4, "little")
        with pytest.raises(SnapshotFormatError) as err:
            load_snapshot(io.BytesIO(bytes(data)))
        assert "99" in str(err.value) and "1" in str(err.value)

    def test_truncation_detected(self):
        data = self.make_bytes()
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(io.BytesIO(bytes(data[:-7])))

    def test_checksum_mismatch_detected(self):
        data = self.make_bytes()
        # Flip one byte somewhere inside the section payloads.
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(SnapshotFormatError):
            load_snapshot(io.BytesIO(bytes(data)))

    def test_failed_save_leaves_no_temp_files(self, tmp_path):
        workbook = Workbook("t")
        sheet = workbook.add_sheet("S")
        sheet.set_value("A1", object())       # unrepresentable
        target = str(tmp_path / "book.snap")
        with pytest.raises(SnapshotFormatError):
            save_snapshot(workbook, target)
        assert list(tmp_path.iterdir()) == []

    def test_save_is_atomic_over_existing_snapshot(self, tmp_path):
        workbook = Workbook("t")
        sheet = workbook.add_sheet("S")
        sheet.set_value("A1", 1.0)
        target = str(tmp_path / "book.snap")
        save_snapshot(workbook, target)
        sheet.set_value("A1", 2.0)
        save_snapshot(workbook, target)       # overwrite via rename
        assert load_snapshot(target).workbook["S"].get_value("A1") == 2.0
        assert [p.name for p in tmp_path.iterdir()] == ["book.snap"]

    def test_unknown_sections_are_skipped(self):
        import struct
        import zlib

        data = self.make_bytes()
        # Splice a checksummed section with an unknown tag before END.
        payload = b"from-the-future"
        extra = struct.pack(
            "<4sIQ", b"XTRA", zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
        ) + payload
        end_size = struct.calcsize("<4sIQ")
        spliced = bytes(data[:-end_size]) + extra + bytes(data[-end_size:])
        restored = load_snapshot(io.BytesIO(spliced))
        assert restored.workbook["S"].get_value("A1") == 1.0


# -- format version 2: columnar value sections ---------------------------------

class TestColumnarSections:
    """The v2 ``VCOL`` wire sections and store-independent restore."""

    def build_workbook(self, store: str) -> Workbook:
        workbook = Workbook("v2")
        sheet = workbook.add_sheet("S", store=store)
        for r in range(1, 31):
            sheet.set_value((1, r), float(r) / 7.0)
        sheet.set_value((1, 5), "five")
        sheet.set_value((1, 9), True)
        sheet.set_value((1, 11), None)          # hole
        sheet.set_value((3, 2), NA_ERROR)
        for r in range(1, 31):
            sheet.set_formula((2, r), f"=A{r}*2")
        RecalcEngine(sheet).recalculate_all()
        return workbook

    def snapshot_bytes(self, store: str) -> bytes:
        buffer = io.BytesIO()
        save_snapshot(self.build_workbook(store), buffer)
        return buffer.getvalue()

    def restore_into(self, payload: bytes, store: str):
        import repro.sheet.sheet as sheet_module

        original = sheet_module.DEFAULT_STORE
        sheet_module.DEFAULT_STORE = store
        try:
            return load_snapshot(io.BytesIO(payload))
        finally:
            sheet_module.DEFAULT_STORE = original

    @pytest.mark.parametrize("src", ["columnar", "object"])
    @pytest.mark.parametrize("dst", ["columnar", "object"])
    def test_cross_store_restore(self, src, dst):
        """Either store's snapshot restores into either store — in
        particular an object-store snapshot into a columnar-backed
        workbook (the store swap is invisible to the format)."""
        source = self.build_workbook(src)["S"]
        restored = self.restore_into(self.snapshot_bytes(src), dst)
        rsheet = restored.workbook["S"]
        assert rsheet.store_kind == dst
        assert restored.meta["stores"] == {"S": src}
        assert cell_state(rsheet) == cell_state(source)

    def test_columnar_snapshots_carry_vcol_sections(self):
        assert b"VCOL" in self.snapshot_bytes("columnar")
        assert b"VCOL" not in self.snapshot_bytes("object")

    def test_version1_streams_still_load(self):
        """A v1 stream is a v2 stream with no VCOL sections; the reader
        must keep accepting the old version number."""
        data = bytearray(self.snapshot_bytes("object"))
        assert data[8:12] == (2).to_bytes(4, "little")
        data[8:12] = (1).to_bytes(4, "little")
        restored = load_snapshot(io.BytesIO(bytes(data)))
        source = self.build_workbook("object")["S"]
        assert cell_state(restored.workbook["S"]) == cell_state(source)

    def test_crash_point_truncation_fuzz(self):
        """A columnar snapshot cut at *any* byte offset is a clean
        :class:`SnapshotFormatError` — never a partial workbook, never a
        stray exception type."""
        data = self.snapshot_bytes("columnar")
        for cut in range(len(data)):
            with pytest.raises(SnapshotFormatError):
                load_snapshot(io.BytesIO(data[:cut]))

    def test_vcol_payload_corruption_detected(self):
        data = bytearray(self.snapshot_bytes("columnar"))
        at = data.index(b"VCOL") + 20       # inside the section payload
        data[at] ^= 0xFF
        with pytest.raises(SnapshotFormatError):
            load_snapshot(io.BytesIO(bytes(data)))
