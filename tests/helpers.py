"""Shared sheet builders and assertion helpers.

Besides the corpus builders, this module owns the differential-test
toolkit the ``tests/engine/test_*_differential.py`` suites share: a
hypothesis strategy for store-agnostic *sheet programs*, factories that
realize a program into either backing store and wrap it in an engine
parameterized by evaluation mode / index backend / worker pool, and the
bitwise value comparator.  One definition here keeps every suite
differential against the same oracle semantics.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.formula.errors import ExcelError
from repro.graphs.base import expand_cells
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet


def build_fig2_sheet(rows: int = 50) -> Sheet:
    """The paper's Fig. 2 spreadsheet: an IF-chain over two data columns."""
    sheet = Sheet("fig2")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r % 7))    # A: group ids
        sheet.set_value((13, r), float(r))       # M: amounts
    sheet.set_formula((14, 2), "=M2")            # N2
    fill_formula_column(sheet, 14, 3, rows, "=IF(A3=A2,N2+M3,M3)")
    return sheet


def build_mixed_sheet(seed: int = 0, rows: int = 30) -> Sheet:
    """A sheet mixing every basic pattern plus some noise."""
    rng = random.Random(seed)
    sheet = Sheet("mixed")
    for r in range(1, rows + 6):
        sheet.set_value((1, r), float(rng.randrange(100)))   # A data
        sheet.set_value((2, r), float(rng.randrange(100)))   # B data
    fill_formula_column(sheet, 3, 1, rows, "=SUM(A1:B3)")            # RR window
    fill_formula_column(sheet, 4, 1, rows, "=SUM($A$1:A1)")          # FR cumulative
    fill_formula_column(sheet, 5, 1, rows, f"=SUM(A1:$B${rows})")    # RF shrinking
    fill_formula_column(sheet, 6, 1, rows, "=SUM($A$1:$B$4)*B1")     # FF + RR
    sheet.set_formula((7, 1), "=A1")
    fill_formula_column(sheet, 7, 2, rows, "=G1+B2")                 # chain + RR
    for i in range(5):                                               # noise
        r1 = rng.randrange(1, rows)
        sheet.set_formula((9 + 2 * i, 40), f"=SUM(A{r1}:B{r1 + 2})")
    return sheet


def build_graph_pair(sheet: Sheet) -> tuple[TacoGraph, NoCompGraph]:
    deps = dependencies_column_major(sheet)
    taco = TacoGraph.full()
    taco.build(deps)
    nocomp = NoCompGraph()
    nocomp.build(deps)
    return taco, nocomp


def assert_same_dependents(taco, nocomp, probe: Range) -> None:
    got = expand_cells(taco.find_dependents(probe))
    want = expand_cells(nocomp.find_dependents(probe))
    assert got == want, (
        f"dependents of {probe.to_a1()} differ: "
        f"taco-only={sorted(got - want)[:5]} nocomp-only={sorted(want - got)[:5]}"
    )


def assert_same_precedents(taco, nocomp, probe: Range) -> None:
    got = expand_cells(taco.find_precedents(probe))
    want = expand_cells(nocomp.find_precedents(probe))
    assert got == want, (
        f"precedents of {probe.to_a1()} differ: "
        f"taco-only={sorted(got - want)[:5]} nocomp-only={sorted(want - got)[:5]}"
    )


# -- differential-test toolkit -------------------------------------------------

#: Autofill templates spanning every evaluation tier: windowed aggregates
#: (all four compression shapes), elementwise arithmetic (with /0 lanes),
#: compiled branches, interpreter fallbacks (XOR / ROWS / ROW are
#: deliberately outside the compiler), string concatenation, and error
#: producers.
DIFFERENTIAL_TEMPLATES = (
    "=SUM($A$1:A1)",
    "=SUM(A1:A4)",
    "=SUM(A1:$A$24)",
    "=AVERAGE($A$1:B1)",
    "=MIN(A1:A6)",
    "=MAX($B$1:B1)",
    "=COUNT(A1:B3)",
    "=A1*2+B1",
    "=A1/B1",
    "=-A1*10%",
    "=IF(A1>B1,A1-B1,B1/A1)",
    "=IFERROR(A1/B1,-1)",
    "=XOR(A1>5,B1>5)",
    "=ROWS($A$1:A1)",
    '=A1&"|"&B1',
    "=ROW(A1)*10+B1",
)


#: Lookup-heavy templates for the index differential suites: every
#: (side, tie) probe shape VLOOKUP/HLOOKUP/MATCH/XLOOKUP can issue, over
#: the deliberately unsorted, mixed-type A/B columns of
#: :func:`sheet_programs` (table bounds fixed to the default 20 rows).
#: Kept separate from DIFFERENTIAL_TEMPLATES so adding probes never
#: perturbs the established suites' example corpora.
LOOKUP_TEMPLATES = (
    "=VLOOKUP(B1,$A$1:$B$20,2,FALSE)",
    "=VLOOKUP(B1,$A$1:$B$20,2)",
    "=VLOOKUP(A1,$B$1:$B$20,1)",
    "=MATCH(B1,$A$1:$A$20,0)",
    "=MATCH(B1,$A$1:$A$20,1)",
    "=MATCH(B1,$A$1:$A$20,-1)",
    "=MATCH(A1,$B$1:$B$20,1)",
    '=XLOOKUP(B1,$A$1:$A$20,$B$1:$B$20,"miss")',
    "=XLOOKUP(B1,$A$1:$A$20,$B$1:$B$20,-99,-1)",
    "=XLOOKUP(B1,$A$1:$A$20,$B$1:$B$20,-99,1,-1)",
    "=IFERROR(INDEX($B$1:$B$20,MATCH(B1,$A$1:$A$20,1)),-1)",
)


@st.composite
def sheet_programs(draw, rows: int = 20,
                   templates: tuple = DIFFERENTIAL_TEMPLATES,
                   max_fills: int = 3):
    """One store-agnostic sheet program: ``(values, fills)``.

    Column A mixes floats, text, booleans and holes; column B is always
    numeric; ``fills`` stamps 1..max_fills formula columns (3, 4, ...)
    with autofilled templates.  Realize with :func:`realize_program`.
    """
    values = []
    for r in range(1, rows + 1):
        kind = draw(st.integers(0, 9))
        if kind == 0:
            values.append(((1, r), "txt"))
        elif kind == 1:
            values.append(((1, r), True))
        elif kind != 2:                      # kind == 2 leaves a hole
            values.append(((1, r), float(draw(st.integers(-40, 40)))))
        values.append(((2, r), float(draw(st.integers(-4, 4)))))
    fills = []
    for i in range(draw(st.integers(1, max_fills))):
        fills.append((3 + i, draw(st.integers(1, 3)),
                      draw(st.integers(rows - 3, rows)),
                      draw(st.sampled_from(templates))))
    return values, fills


def realize_program(program, store: str = "object",
                    name: str = "S") -> Sheet:
    """Build a fresh sheet from a :func:`sheet_programs` draw."""
    values, fills = program
    sheet = Sheet(name, store=store)
    for pos, value in values:
        sheet.set_value(pos, value)
    for col, first, last, template in fills:
        fill_formula_column(sheet, col, first, last, template)
    return sheet


def clone_sheet(sheet: Sheet, store: str | None = None) -> Sheet:
    """An independent copy (optionally into the other backing store)."""
    copy = Sheet(sheet.name, store=store or sheet.store_kind)
    for pos, cell in sheet.items():
        if cell.is_formula:
            copy.set_formula(pos, cell.formula_text)
        else:
            copy.set_value(pos, cell.value)
    return copy


def engine_for(sheet: Sheet, mode: str = "auto", index: str = "rtree",
               *, workers: int = 0, worker_mode: str | None = None,
               parallel_min_dirty: int | None = None,
               lookup_indexes: bool | None = None,
               shards: "int | None" = None) -> RecalcEngine:
    """An engine over a fresh compressed graph for ``sheet``.

    ``workers``/``worker_mode``/``parallel_min_dirty`` configure the
    partitioned parallel scheduler (``parallel_min_dirty=1`` forces the
    parallel path even for tiny differential corpora); ``shards`` routes
    recalculation through the persistent shard runtime instead;
    ``lookup_indexes=False`` pins the engine to the reference linear
    scans regardless of the environment toggle.
    """
    graph = TacoGraph.full(index=index)
    graph.build(dependencies_column_major(sheet))
    return RecalcEngine(
        sheet, graph, evaluation=mode, workers=workers,
        worker_mode=worker_mode, parallel_min_dirty=parallel_min_dirty,
        lookup_indexes=lookup_indexes, shards=shards,
    )


def assert_same_values(got_sheet: Sheet, want_sheet: Sheet) -> None:
    """Bitwise value identity, with error-code identity for ExcelErrors."""
    positions = set(got_sheet.positions()) | set(want_sheet.positions())
    for pos in positions:
        got = got_sheet.get_value(pos)
        want = want_sheet.get_value(pos)
        if isinstance(want, ExcelError):
            assert isinstance(got, ExcelError) and got.code == want.code, pos
        else:
            assert type(got) is type(want) and got == want, pos


