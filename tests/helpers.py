"""Shared sheet builders and assertion helpers."""

from __future__ import annotations

import random

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.graphs.base import expand_cells
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet


def build_fig2_sheet(rows: int = 50) -> Sheet:
    """The paper's Fig. 2 spreadsheet: an IF-chain over two data columns."""
    sheet = Sheet("fig2")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r % 7))    # A: group ids
        sheet.set_value((13, r), float(r))       # M: amounts
    sheet.set_formula((14, 2), "=M2")            # N2
    fill_formula_column(sheet, 14, 3, rows, "=IF(A3=A2,N2+M3,M3)")
    return sheet


def build_mixed_sheet(seed: int = 0, rows: int = 30) -> Sheet:
    """A sheet mixing every basic pattern plus some noise."""
    rng = random.Random(seed)
    sheet = Sheet("mixed")
    for r in range(1, rows + 6):
        sheet.set_value((1, r), float(rng.randrange(100)))   # A data
        sheet.set_value((2, r), float(rng.randrange(100)))   # B data
    fill_formula_column(sheet, 3, 1, rows, "=SUM(A1:B3)")            # RR window
    fill_formula_column(sheet, 4, 1, rows, "=SUM($A$1:A1)")          # FR cumulative
    fill_formula_column(sheet, 5, 1, rows, f"=SUM(A1:$B${rows})")    # RF shrinking
    fill_formula_column(sheet, 6, 1, rows, "=SUM($A$1:$B$4)*B1")     # FF + RR
    sheet.set_formula((7, 1), "=A1")
    fill_formula_column(sheet, 7, 2, rows, "=G1+B2")                 # chain + RR
    for i in range(5):                                               # noise
        r1 = rng.randrange(1, rows)
        sheet.set_formula((9 + 2 * i, 40), f"=SUM(A{r1}:B{r1 + 2})")
    return sheet


def build_graph_pair(sheet: Sheet) -> tuple[TacoGraph, NoCompGraph]:
    deps = dependencies_column_major(sheet)
    taco = TacoGraph.full()
    taco.build(deps)
    nocomp = NoCompGraph()
    nocomp.build(deps)
    return taco, nocomp


def assert_same_dependents(taco, nocomp, probe: Range) -> None:
    got = expand_cells(taco.find_dependents(probe))
    want = expand_cells(nocomp.find_dependents(probe))
    assert got == want, (
        f"dependents of {probe.to_a1()} differ: "
        f"taco-only={sorted(got - want)[:5]} nocomp-only={sorted(want - got)[:5]}"
    )


def assert_same_precedents(taco, nocomp, probe: Range) -> None:
    got = expand_cells(taco.find_precedents(probe))
    want = expand_cells(nocomp.find_precedents(probe))
    assert got == want, (
        f"precedents of {probe.to_a1()} differ: "
        f"taco-only={sorted(got - want)[:5]} nocomp-only={sorted(want - got)[:5]}"
    )


