"""Unit tests for workload statistics (Fig. 1 machinery)."""

import pytest

from helpers import build_fig2_sheet, build_graph_pair

from repro.datasets.stats import longest_path, max_dependents, profile_sheet
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency, Sheet


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestLongestPath:
    def test_empty_graph(self):
        graph = NoCompGraph()
        _, length = longest_path(graph)
        assert length == 0

    def test_single_edge(self):
        graph = NoCompGraph()
        graph.add_dependency(dep("A1", "B1"))
        cell, length = longest_path(graph)
        assert length == 1 and cell == Range.from_a1("A1")

    def test_chain_length(self):
        graph = NoCompGraph()
        for i in range(1, 51):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        cell, length = longest_path(graph)
        assert length == 50
        assert cell == Range.from_a1("A1")

    def test_branching_takes_longest(self):
        graph = NoCompGraph()
        graph.add_dependency(dep("A1", "B1"))        # short branch
        for i in range(1, 11):
            graph.add_dependency(dep(f"C{i}", f"C{i + 1}"))
        _, length = longest_path(graph)
        assert length == 10

    def test_range_overlap_counts_as_adjacency(self):
        graph = NoCompGraph()
        graph.add_dependency(dep("A1", "B2"))
        graph.add_dependency(dep("B1:B3", "C1"))  # B2 inside prec
        _, length = longest_path(graph)
        assert length == 2

    def test_cycle_detected(self):
        graph = NoCompGraph()
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("B1", "A1"))
        with pytest.raises(ValueError):
            longest_path(graph)


class TestMaxDependents:
    def test_fig2_root_found(self):
        sheet = build_fig2_sheet(rows=40)
        taco, nocomp = build_graph_pair(sheet)
        cell, count = max_dependents(taco)
        # The head of the chain dominates: nearly all of column N depends
        # on early M/N cells.
        assert count >= 39
        from repro.graphs.base import expand_cells

        assert len(expand_cells(nocomp.find_dependents(cell))) == count

    def test_empty_graph(self):
        from repro.core.taco_graph import TacoGraph

        cell, count = max_dependents(TacoGraph.full())
        assert count == 0


class TestProfile:
    def test_profile_fields(self):
        sheet = build_fig2_sheet(rows=25)
        taco, nocomp = build_graph_pair(sheet)
        profile = profile_sheet(sheet, taco, nocomp)
        assert profile.name == "fig2"
        assert profile.formula_cells == 24
        assert profile.raw_dependencies == nocomp.num_edges
        assert profile.max_dependents > 0
        assert profile.longest_path >= 23  # the N-column chain

    def test_profile_on_trivial_sheet(self):
        sheet = Sheet("t")
        sheet.set_value("A1", 1.0)
        sheet.set_formula("B1", "=A1")
        taco, nocomp = build_graph_pair(sheet)
        profile = profile_sheet(sheet, taco, nocomp)
        assert profile.max_dependents == 1
        assert profile.longest_path == 1
