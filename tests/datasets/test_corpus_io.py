"""Unit tests for the real-file corpus profiling pipeline."""

import os

import pytest

from repro.datasets.corpus_io import (
    directory_summary,
    iter_corpus_sheets,
    profile_directory,
    profile_file,
)
from repro.datasets.corpora import corpus_specs
from repro.io.xlsx_writer import write_xlsx


@pytest.fixture
def corpus_dir(tmp_path):
    """A directory of small generated xlsx files plus one broken file."""
    for i, spec in enumerate(corpus_specs("enron", scale=0.08)[:4]):
        write_xlsx(spec.build(), str(tmp_path / f"sheet{i}.xlsx"))
    (tmp_path / "broken.xlsx").write_bytes(b"this is not a zip archive")
    (tmp_path / "notes.txt").write_text("not a spreadsheet")
    return str(tmp_path)


class TestProfileFile:
    def test_profile_counts(self, corpus_dir):
        path = os.path.join(corpus_dir, "sheet0.xlsx")
        profile = profile_file(path)
        assert profile.ok
        assert profile.sheets == 1
        assert profile.formula_cells > 0
        assert 0 < profile.compressed_edges < profile.dependencies
        assert 0.0 < profile.remaining_fraction < 1.0

    def test_profile_broken_file_reports_error(self, corpus_dir):
        profile = profile_file(os.path.join(corpus_dir, "broken.xlsx"))
        assert not profile.ok
        assert profile.dependencies == 0


class TestProfileDirectory:
    def test_skips_non_xlsx(self, corpus_dir):
        profiles = profile_directory(corpus_dir)
        names = {os.path.basename(p.path) for p in profiles}
        assert "notes.txt" not in {n for n in names}
        assert len(profiles) == 5  # 4 good + 1 broken (reported)

    def test_min_dependencies_filter(self, corpus_dir):
        all_profiles = [p for p in profile_directory(corpus_dir) if p.ok]
        threshold = max(p.dependencies for p in all_profiles)
        filtered = [p for p in profile_directory(corpus_dir, threshold) if p.ok]
        assert len(filtered) < len(all_profiles)

    def test_directory_summary(self, corpus_dir):
        profiles = profile_directory(corpus_dir)
        summary = directory_summary(profiles)
        assert summary["files"] == 5
        assert summary["usable_files"] == 4
        assert 0.0 < summary["remaining_fraction"] < 1.0


class TestIterCorpusSheets:
    def test_yields_parseable_sheets(self, corpus_dir):
        items = list(iter_corpus_sheets(corpus_dir))
        assert len(items) == 4
        for path, sheet, deps in items:
            assert path.endswith(".xlsx")
            assert deps
            assert sheet.formula_count > 0

    def test_dependency_threshold(self, corpus_dir):
        counts = [len(deps) for _, _, deps in iter_corpus_sheets(corpus_dir)]
        threshold = max(counts)
        kept = list(iter_corpus_sheets(corpus_dir, min_dependencies=threshold))
        assert len(kept) >= 1
        assert all(len(deps) >= threshold for _, _, deps in kept)
