"""Unit tests for corpus generation: determinism, scaling, shape."""

import pytest

from repro.datasets.corpora import CORPUS_NAMES, corpus_specs, scale_factor
from repro.datasets.generator import RegionSpec, SheetSpec, generate_sheet


class TestSpecs:
    def test_known_corpora(self):
        for name in CORPUS_NAMES:
            specs = corpus_specs(name, scale=0.3)
            assert len(specs) >= 10
            assert all(cs.corpus == name for cs in specs)

    def test_unknown_corpus(self):
        with pytest.raises(KeyError):
            corpus_specs("reddit")

    def test_specs_deterministic(self):
        a = corpus_specs("enron", scale=0.3)
        b = corpus_specs("enron", scale=0.3)
        assert [cs.spec for cs in a] == [cs.spec for cs in b]

    def test_scale_changes_sizes(self):
        small = corpus_specs("github", scale=0.2)
        large = corpus_specs("github", scale=1.0)
        small_rows = sum(cs.spec.total_rows_hint() for cs in small)
        large_rows = sum(cs.spec.total_rows_hint() for cs in large)
        assert small_rows < large_rows

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scale_factor() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "garbage")
        assert scale_factor() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "1000000")
        assert scale_factor() == 100.0


class TestGeneration:
    def test_sheet_generation_deterministic(self):
        spec = SheetSpec("t", (RegionSpec("sliding_window", 12), RegionSpec("chain", 8)), seed=5)
        a, b = generate_sheet(spec), generate_sheet(spec)
        assert len(a) == len(b)
        deps_a = {(d.prec.to_a1(), d.dep.to_a1()) for d in a.iter_dependencies()}
        deps_b = {(d.prec.to_a1(), d.dep.to_a1()) for d in b.iter_dependencies()}
        assert deps_a == deps_b

    def test_regions_do_not_overlap(self):
        spec = SheetSpec(
            "t",
            (
                RegionSpec("sliding_window", 10),
                RegionSpec("fixed_lookup", 10),
                RegionSpec("chain", 10),
                RegionSpec("noise", 10),
            ),
            seed=1,
        )
        sheet = generate_sheet(spec)
        # Every formula must parse and reference in-sheet cells only.
        for _, cell in sheet.formula_cells():
            assert cell.references  # parses without error

    def test_unknown_region_kind_rejected(self):
        spec = SheetSpec("t", (RegionSpec("bogus", 5),), seed=0)  # type: ignore[arg-type]
        with pytest.raises(KeyError):
            generate_sheet(spec)

    def test_small_corpus_builds_and_compresses(self):
        specs = corpus_specs("enron", scale=0.1)[:4]
        from repro.core.taco_graph import TacoGraph, dependencies_column_major

        for cs in specs:
            sheet = cs.build()
            deps = dependencies_column_major(sheet)
            assert deps, cs.spec.name
            graph = TacoGraph.full()
            graph.build(deps)
            assert len(graph) < len(deps)
