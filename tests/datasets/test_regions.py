"""Unit tests: each region builder produces its intended pattern."""

import random

import pytest

from repro.core.patterns.registry import extended_patterns
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.datasets.regions import REGION_BUILDERS, build_region
from repro.sheet.sheet import Sheet


def compress(sheet: Sheet, patterns=None) -> TacoGraph:
    graph = TacoGraph.full() if patterns is None else TacoGraph(patterns=patterns)
    graph.build(dependencies_column_major(sheet))
    return graph


def region_graph(kind: str, size: int = 20, patterns=None) -> TacoGraph:
    sheet = Sheet("r")
    build_region(sheet, kind, 1, 2, size, random.Random(0))
    return compress(sheet, patterns)


class TestRegionPatterns:
    def test_sliding_window_is_rr(self):
        graph = region_graph("sliding_window")
        assert set(graph.pattern_breakdown()) == {"RR"}
        assert len(graph) == 1

    def test_derived_column_is_rr_pair(self):
        graph = region_graph("derived_column")
        breakdown = graph.pattern_breakdown()
        assert set(breakdown) == {"RR"}
        assert breakdown["RR"]["edges"] == 2  # one per referenced column

    def test_running_total_is_fr(self):
        graph = region_graph("running_total")
        assert set(graph.pattern_breakdown()) == {"FR"}

    def test_shrinking_window_is_rf(self):
        graph = region_graph("shrinking_window")
        assert set(graph.pattern_breakdown()) == {"RF"}

    def test_fixed_lookup_has_ff_and_rr(self):
        graph = region_graph("fixed_lookup")
        assert set(graph.pattern_breakdown()) == {"FF", "RR"}

    def test_chain_region_has_chain(self):
        graph = region_graph("chain")
        assert "RR-Chain" in graph.pattern_breakdown()

    def test_fig2_region_mix(self):
        graph = region_graph("fig2", size=30)
        breakdown = graph.pattern_breakdown()
        assert "RR-Chain" in breakdown and "RR" in breakdown
        # Four reference columns compress to a handful of edges.
        assert len(graph) <= 6

    def test_row_wise_region(self):
        graph = region_graph("row_wise", size=15)
        (name,) = set(graph.pattern_breakdown())
        assert name == "RR"
        (edge,) = graph.edges()
        assert edge.dep.is_row_slice

    def test_noise_stays_single(self):
        graph = region_graph("noise", size=25)
        assert set(graph.pattern_breakdown()) == {"Single"}

    def test_gapone_single_by_default(self):
        graph = region_graph("gapone", size=12)
        assert set(graph.pattern_breakdown()) == {"Single"}

    def test_gapone_compresses_with_extension(self):
        graph = region_graph("gapone", size=12, patterns=extended_patterns())
        assert "RR-GapOne" in graph.pattern_breakdown()

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            build_region(Sheet(), "bogus", 1, 1, 5, random.Random(0))

    @pytest.mark.parametrize("kind", sorted(REGION_BUILDERS))
    def test_all_regions_produce_formulas(self, kind):
        sheet = Sheet("r")
        count = build_region(sheet, kind, 1, 2, 10, random.Random(1))
        assert count > 0
        assert sheet.formula_count > 0
