"""Unit tests for the FormulaGraph interface helpers."""

import pytest

from repro.graphs.base import (
    Budget,
    DNFError,
    FormulaGraph,
    GraphStats,
    expand_cells,
    total_cells,
)
from repro.grid.range import Range


class TestHelpers:
    def test_expand_cells(self):
        cells = expand_cells([Range.from_a1("A1:B2"), Range.from_a1("D4")])
        assert cells == {(1, 1), (2, 1), (1, 2), (2, 2), (4, 4)}

    def test_total_cells(self):
        assert total_cells([Range.from_a1("A1:B2"), Range.from_a1("D4")]) == 5
        assert total_cells([]) == 0

    def test_graph_stats_dict(self):
        stats = GraphStats(vertices=3, edges=5)
        assert stats.as_dict() == {
            "vertices": 3, "edges": 5, "edge_accesses": 0, "index_searches": 0,
        }


class TestAbstractInterface:
    def test_base_methods_raise(self):
        graph = FormulaGraph()
        with pytest.raises(NotImplementedError):
            graph.add_dependency(None)
        with pytest.raises(NotImplementedError):
            graph.find_dependents(Range.from_a1("A1"))
        with pytest.raises(NotImplementedError):
            graph.find_precedents(Range.from_a1("A1"))
        with pytest.raises(NotImplementedError):
            graph.clear_cells(Range.from_a1("A1"))
        with pytest.raises(NotImplementedError):
            graph.stats()

    def test_build_checks_budget(self):
        class Recorder(FormulaGraph):
            def __init__(self):
                self.added = 0

            def add_dependency(self, dep, budget=None):
                self.added += 1

        from repro.sheet.sheet import Dependency

        graph = Recorder()
        deps = [
            Dependency(Range.from_a1("A1"), Range.from_a1(f"B{i}"))
            for i in range(1, 6)
        ]
        graph.build(deps)
        assert graph.added == 5

        slow = Recorder()
        with pytest.raises(DNFError):
            slow.build(deps * 100, Budget(0.0, "build", check_every=1))


class TestBudgetSemantics:
    def test_check_now_immediate(self):
        budget = Budget(0.0, "op")
        import time

        time.sleep(0.001)
        with pytest.raises(DNFError):
            budget.check_now()

    def test_amortisation_skips_clock_reads(self):
        budget = Budget(0.0, "op", check_every=1000)
        # 999 checks pass without consulting the clock.
        for _ in range(999):
            budget.check()
        with pytest.raises(DNFError):
            budget.check()
