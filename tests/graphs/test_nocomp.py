"""Unit tests for the NoComp and NoComp-Calc baselines."""

import pytest

from repro.graphs.base import Budget, DNFError, expand_cells
from repro.graphs.calc import NoCompCalcGraph
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


@pytest.fixture(params=[NoCompGraph, NoCompCalcGraph], ids=["rtree", "calc"])
def graph(request):
    return request.param()


class TestBuildAndQuery:
    def test_fig3_graph(self, graph):
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.add_dependency(dep("A1:A3", "B2"))
        graph.add_dependency(dep("B1", "C1"))
        graph.add_dependency(dep("B3", "C1"))
        graph.add_dependency(dep("B2:B3", "C2"))
        assert graph.num_edges == 5
        result = expand_cells(graph.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1), (2, 2), (3, 1), (3, 2)}

    def test_dependents_exclude_unreachable(self, graph):
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("X9", "Y9"))
        result = expand_cells(graph.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1)}

    def test_precedents(self, graph):
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.add_dependency(dep("B1", "C1"))
        result = expand_cells(graph.find_precedents(Range.from_a1("C1")))
        assert result == {(1, 1), (1, 2), (1, 3), (2, 1)}

    def test_direct_queries(self, graph):
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.add_dependency(dep("B1", "C1"))
        assert [r.to_a1() for r in graph.direct_dependents(Range.from_a1("A2"))] == ["B1"]
        assert [r.to_a1() for r in graph.direct_precedents(Range.from_a1("C1"))] == ["B1"]

    def test_vertex_count(self, graph):
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.add_dependency(dep("A1:A3", "B2"))
        stats = graph.stats()
        assert stats.vertices == 3  # A1:A3, B1, B2
        assert stats.edges == 2


class TestMaintenance:
    def test_clear_removes_edges(self, graph):
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("A2", "B2"))
        graph.clear_cells(Range.from_a1("B1"))
        assert graph.num_edges == 1
        assert graph.find_dependents(Range.from_a1("A1")) == []

    def test_clear_prunes_empty_prec_vertices(self, graph):
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.clear_cells(Range.from_a1("B1"))
        assert graph.stats().vertices == 0
        # Rebuild after full clear must work.
        graph.add_dependency(dep("A1:A3", "B1"))
        assert graph.num_edges == 1

    def test_clear_column_run(self, graph):
        for i in range(1, 20):
            graph.add_dependency(dep(f"A{i}", f"B{i}"))
        graph.clear_cells(Range.from_a1("B5:B15"))
        assert graph.num_edges == 8

    def test_clear_shared_prec_leaves_no_stale_index_entry(self, graph):
        # Two cells referencing *equal but distinct* Range objects: the
        # adjacency key is the first dependency's object, the reverse
        # lists hold each dependency's own.  Clearing in an order where
        # the last-removed dependent carries the non-key object used to
        # miss the identity-matched index delete, leaving a stale prec
        # entry that later made find_dependents raise KeyError.
        graph.add_dependency(dep("A1", "D1"))
        graph.add_dependency(dep("A1", "E1"))
        graph.clear_cells(Range.from_a1("D1:E1"))
        assert graph.num_edges == 0
        assert graph.find_dependents(Range.from_a1("A1")) == []

    def test_clear_shared_prec_after_bulk_build(self, graph):
        graph.build([dep("A1", "D1"), dep("A1", "E1"), dep("B2", "F3")])
        graph.clear_cells(Range.from_a1("D1:E1"))
        assert graph.find_dependents(Range.from_a1("A1")) == []
        assert graph.find_dependents(Range.from_a1("B2")) == [Range.from_a1("F3")]


class TestBudget:
    def test_dnf_on_tiny_budget(self):
        graph = NoCompGraph()
        for i in range(1, 2000):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        budget = Budget(0.0, "query", check_every=1)
        with pytest.raises(DNFError):
            graph.find_dependents(Range.from_a1("A1"), budget)

    def test_generous_budget_passes(self):
        graph = NoCompGraph()
        for i in range(1, 100):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        budget = Budget(30.0, "query")
        assert len(graph.find_dependents(Range.from_a1("A1"), budget)) == 99
