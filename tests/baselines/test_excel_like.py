"""Unit tests for the Excel-like shared-formula engine."""

from helpers import build_fig2_sheet, build_graph_pair, build_mixed_sheet

from repro.baselines.excel_like import ExcelLikeEngine, to_r1c1
from repro.formula.parser import parse_formula
from repro.graphs.base import expand_cells
from repro.grid.range import Range


class TestR1C1:
    def test_relative_reference(self):
        ast = parse_formula("=A1")
        assert to_r1c1(ast, 2, 2) == "R[-1]C[-1]"

    def test_same_row_or_column(self):
        ast = parse_formula("=A2")
        assert to_r1c1(ast, 2, 2) == "RC[-1]"
        ast = parse_formula("=B1")
        assert to_r1c1(ast, 2, 2) == "R[-1]C"

    def test_absolute_reference(self):
        ast = parse_formula("=$A$1")
        assert to_r1c1(ast, 5, 9) == "R1C1"

    def test_mixed_reference(self):
        ast = parse_formula("=$A1")
        assert to_r1c1(ast, 2, 2) == "R[-1]C1"
        ast = parse_formula("=$A2")
        assert to_r1c1(ast, 2, 2) == "RC1"

    def test_autofilled_formulae_share_key(self):
        base = parse_formula("=SUM(A1:B3)+C1")
        shifted = base.shifted(0, 5)
        assert to_r1c1(base, 4, 1) == to_r1c1(shifted, 4, 6)

    def test_different_formulae_differ(self):
        a = parse_formula("=SUM(A1:B3)")
        b = parse_formula("=SUM(A1:B4)")
        assert to_r1c1(a, 4, 1) != to_r1c1(b, 4, 1)

    def test_function_and_operator_rendering(self):
        ast = parse_formula("=IF(A1>0,-B1%,2)")
        text = to_r1c1(ast, 3, 1)
        assert text.startswith("IF(") and "%" in text


class TestSharedStorage:
    def test_autofilled_column_stored_once(self):
        sheet = build_fig2_sheet(rows=40)
        engine = ExcelLikeEngine.from_sheet(sheet)
        # 40 formula cells but only 2 distinct stored formulae
        # (the seed =M2 and the shared IF formula).
        assert engine.formula_cell_count == 39
        assert engine.stored_formula_count == 2

    def test_clear_cells_updates_groups(self):
        sheet = build_fig2_sheet(rows=10)
        engine = ExcelLikeEngine.from_sheet(sheet)
        engine.clear_cells(Range.from_a1("N3:N10"))
        assert engine.formula_cell_count == 1
        assert engine.stored_formula_count == 1


class TestDependents:
    def test_matches_nocomp(self):
        sheet = build_mixed_sheet(seed=8)
        _, nocomp = build_graph_pair(sheet)
        engine = ExcelLikeEngine.from_sheet(sheet)
        for probe in ("A1", "A9", "B22", "G1"):
            rng = Range.from_a1(probe)
            assert expand_cells(engine.find_dependents(rng)) == expand_cells(
                nocomp.find_dependents(rng)
            )

    def test_precedents_match_nocomp(self):
        sheet = build_mixed_sheet(seed=8)
        _, nocomp = build_graph_pair(sheet)
        engine = ExcelLikeEngine.from_sheet(sheet)
        for probe in ("C5", "D9", "G20"):
            rng = Range.from_a1(probe)
            assert expand_cells(engine.find_precedents(rng)) == expand_cells(
                nocomp.find_precedents(rng)
            )

    def test_chain_traversal(self):
        sheet = build_fig2_sheet(rows=30)
        engine = ExcelLikeEngine.from_sheet(sheet)
        result = expand_cells(engine.find_dependents(Range.from_a1("M1")))
        assert result == set()
        result = expand_cells(engine.find_dependents(Range.from_a1("M2")))
        assert (14, 2) in result and (14, 30) in result
