"""Unit tests for the graph-database baseline (RedisGraph stand-in)."""

import pytest

from repro.baselines.graphdb import GraphDB, RedisGraphLike
from repro.graphs.base import expand_cells
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestGraphDB:
    def test_nodes_and_edges(self):
        db = GraphDB()
        db.add_node("a", label="Cell", addr="A1")
        db.add_edge("a", "b")
        assert db.edge_count == 1
        assert db.successors("a", "DEP") == ["b"]
        assert db.predecessors("b", "DEP") == ["a"]

    def test_edge_auto_creates_nodes(self):
        db = GraphDB()
        db.add_edge("x", "y")
        assert "x" in db.nodes and "y" in db.nodes

    def test_remove_edge(self):
        db = GraphDB()
        db.add_edge("a", "b")
        assert db.remove_edge("a", "b")
        assert not db.remove_edge("a", "b")
        assert db.edge_count == 0

    def test_remove_incoming(self):
        db = GraphDB()
        db.add_edge("a", "c")
        db.add_edge("b", "c")
        assert db.remove_incoming_edges("c") == 2
        assert db.successors("a", "DEP") == []

    def test_bulk_load_csv(self):
        db = GraphDB()
        nodes = "id,addr\n1_1,A1\n2_1,B1\n"
        edges = "src,dst\n1_1,2_1\n"
        db.bulk_load_csv(nodes, edges)
        assert db.nodes["1_1"]["addr"] == "A1"
        assert db.successors("1_1", "DEP") == ["2_1"]


class TestRedisGraphLike:
    def build(self, deps):
        graph = RedisGraphLike()
        graph.build(deps)
        return graph

    def test_range_decomposition(self):
        graph = self.build([dep("A1:A3", "B1")])
        stats = graph.stats()
        assert stats.edges == 3  # one cell-level edge per prec cell
        assert stats.vertices == 4

    def test_find_dependents_matches_semantics(self):
        graph = self.build([
            dep("A1:A3", "B1"), dep("B1", "C1"), dep("B2:B3", "C2"),
        ])
        result = expand_cells(graph.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1), (3, 1)}

    def test_find_precedents(self):
        graph = self.build([dep("A1:A2", "B1"), dep("B1", "C1")])
        result = expand_cells(graph.find_precedents(Range.from_a1("C1")))
        assert result == {(1, 1), (1, 2), (2, 1)}

    def test_clear_cells(self):
        graph = self.build([dep("A1", "B1"), dep("A2", "B2")])
        graph.clear_cells(Range.from_a1("B1"))
        assert expand_cells(graph.find_dependents(Range.from_a1("A1:A2"))) == {(2, 2)}

    def test_decompose_limit(self):
        graph = RedisGraphLike(decompose_limit=10)
        with pytest.raises(MemoryError):
            graph.build([dep("A1:A100", "B1")])

    def test_edges_searched_repeatedly_on_deep_graphs(self):
        # The level-by-level traversal re-expands edges: on a chain the
        # visit count exceeds the edge count.
        deps = [dep(f"A{i}", f"A{i + 1}") for i in range(1, 30)]
        graph = self.build(deps)
        graph.db.edge_visits = 0
        graph.find_dependents(Range.from_a1("A1"))
        assert graph.db.edge_visits >= len(deps)
