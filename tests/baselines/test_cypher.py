"""Unit tests for the mini-Cypher parser and executor."""

import pytest

from repro.baselines.cypher import CypherQuery, CypherSyntaxError
from repro.baselines.graphdb import GraphDB


@pytest.fixture
def db():
    db = GraphDB()
    for node_id, addr in [("a1", "A1"), ("b1", "B1"), ("c1", "C1"), ("d1", "D1")]:
        db.add_node(node_id, label="Cell", addr=addr)
    db.add_edge("a1", "b1")
    db.add_edge("b1", "c1")
    db.add_edge("c1", "d1")
    return db


class TestParsing:
    def test_basic_shape(self):
        q = CypherQuery.parse(
            "MATCH (a:Cell {id: 'a1'})-[:DEP*]->(b:Cell) RETURN DISTINCT b.addr"
        )
        assert q.src.var == "a" and q.src.props == {"id": "a1"}
        assert q.rel.rel_type == "DEP" and q.rel.var_length
        assert q.distinct
        assert q.returns[0].prop == "addr"

    def test_bounds(self):
        q = CypherQuery.parse("MATCH (a)-[:DEP*1..3]->(b) RETURN b")
        assert q.rel.min_hops == 1 and q.rel.max_hops == 3

    def test_where_clause(self):
        q = CypherQuery.parse(
            "MATCH (a:Cell)-[:DEP]->(b:Cell) WHERE a.addr = 'B1' RETURN b.addr"
        )
        assert q.where == [("a", "addr", "B1")]

    @pytest.mark.parametrize(
        "bad",
        [
            "RETURN b",                                  # no MATCH
            "MATCH (a)-[:DEP]->(b)",                     # no RETURN
            "MATCH (a) RETURN a",                        # no relationship
            "MATCH (a)-[:DEP]->(b) WHERE a.x > 1 RETURN b",  # unsupported op
            "MATCH (a)-[:DEP]->(b) RETURN ",             # empty return
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(CypherSyntaxError):
            CypherQuery.parse(bad)


class TestExecution:
    def test_single_hop(self, db):
        rows = db.query("MATCH (a:Cell {id: 'a1'})-[:DEP]->(b:Cell) RETURN b.addr")
        assert rows == [("B1",)]

    def test_var_length_closure(self, db):
        rows = db.query(
            "MATCH (a:Cell {id: 'a1'})-[:DEP*]->(b:Cell) RETURN DISTINCT b.addr"
        )
        assert sorted(r[0] for r in rows) == ["B1", "C1", "D1"]

    def test_var_length_bounded(self, db):
        rows = db.query("MATCH (a:Cell {id: 'a1'})-[:DEP*1..2]->(b) RETURN b.addr")
        assert sorted(r[0] for r in rows) == ["B1", "C1"]

    def test_where_seed(self, db):
        rows = db.query(
            "MATCH (a:Cell)-[:DEP]->(b:Cell) WHERE a.addr = 'B1' RETURN b.addr"
        )
        assert rows == [("C1",)]

    def test_dst_filter(self, db):
        rows = db.query(
            "MATCH (a:Cell {id: 'a1'})-[:DEP*]->(b:Cell {addr: 'D1'}) RETURN b.id"
        )
        assert rows == [("d1",)]

    def test_full_scan_seed(self, db):
        rows = db.query("MATCH (a:Cell)-[:DEP]->(b:Cell) RETURN a.addr, b.addr")
        assert ("A1", "B1") in rows and len(rows) == 3

    def test_return_both_vars(self, db):
        rows = db.query(
            "MATCH (a:Cell {id: 'b1'})-[:DEP]->(b:Cell) RETURN a.addr, b.addr"
        )
        assert rows == [("B1", "C1")]

    def test_diamond_distinct(self):
        db = GraphDB()
        db.add_edge("s", "l")
        db.add_edge("s", "r")
        db.add_edge("l", "t")
        db.add_edge("r", "t")
        rows = db.query("MATCH (a {id: 's'})-[:DEP*]->(b) RETURN DISTINCT b.id")
        assert sorted(r[0] for r in rows) == ["l", "r", "t"]

    def test_cycle_terminates(self):
        db = GraphDB()
        db.add_edge("x", "y")
        db.add_edge("y", "x")
        rows = db.query("MATCH (a {id: 'x'})-[:DEP*]->(b) RETURN DISTINCT b.id")
        assert sorted(r[0] for r in rows) == ["x", "y"]
