"""Unit tests for the Antifreeze baseline."""

import pytest

from helpers import build_fig2_sheet

from repro.baselines.antifreeze import AntifreezeIndex, compress_ranges
from repro.core.taco_graph import dependencies_column_major
from repro.graphs.base import Budget, DNFError, expand_cells
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestCompressRanges:
    def test_under_limit_unchanged(self):
        ranges = [Range.from_a1("A1"), Range.from_a1("C3")]
        assert compress_ranges(ranges, 20) == ranges

    def test_duplicates_removed(self):
        ranges = [Range.from_a1("A1")] * 5
        assert compress_ranges(ranges, 20) == [Range.from_a1("A1")]

    def test_merges_to_limit(self):
        ranges = [Range.cell(1, r) for r in range(1, 11)]
        out = compress_ranges(ranges, 3)
        assert len(out) <= 3
        covered = set()
        for rng in out:
            covered |= set(rng.cells())
        assert {(1, r) for r in range(1, 11)} <= covered

    def test_prefers_cheap_merges(self):
        # Two clusters far apart; limit 2 should keep them separate.
        cluster_a = [Range.cell(1, r) for r in (1, 2, 3)]
        cluster_b = [Range.cell(50, r) for r in (100, 101)]
        out = compress_ranges(cluster_a + cluster_b, 2)
        assert len(out) == 2
        sizes = sorted(rng.size for rng in out)
        assert sizes == [2, 3]


class TestIndex:
    def build(self, deps, max_ranges=20):
        index = AntifreezeIndex(max_ranges=max_ranges)
        index.build(deps)
        return index

    def test_exact_on_small_graph(self):
        deps = [dep("A1:A3", "B1"), dep("B1", "C1"), dep("B3", "C1")]
        index = self.build(deps)
        result = expand_cells(index.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1), (3, 1)}

    def test_lookup_is_superset_of_truth(self):
        sheet = build_fig2_sheet(rows=25)
        deps = dependencies_column_major(sheet)
        index = self.build(deps, max_ranges=4)  # force lossy compression
        nocomp = NoCompGraph()
        nocomp.build(deps)
        for probe in ("A5", "M10", "N3"):
            rng = Range.from_a1(probe)
            truth = expand_cells(nocomp.find_dependents(rng))
            approx = expand_cells(index.find_dependents(rng))
            assert truth <= approx, f"false negatives at {probe}"

    def test_bounded_table_entries(self):
        sheet = build_fig2_sheet(rows=25)
        index = self.build(dependencies_column_major(sheet), max_ranges=5)
        for ranges in index._table.values():
            assert len(ranges) <= 5

    def test_clear_rebuilds_table(self):
        deps = [dep("A1", "B1"), dep("B1", "C1")]
        index = self.build(deps)
        index.clear_cells(Range.from_a1("C1"))
        result = expand_cells(index.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1)}

    def test_build_dnf_under_budget(self):
        sheet = build_fig2_sheet(rows=200)
        deps = dependencies_column_major(sheet)
        index = AntifreezeIndex()
        with pytest.raises(DNFError):
            index.build(deps, Budget(0.001, "antifreeze build", check_every=64))

    def test_precedents_fall_back_to_graph(self):
        deps = [dep("A1:A3", "B1"), dep("B1", "C1")]
        index = self.build(deps)
        result = expand_cells(index.find_precedents(Range.from_a1("C1")))
        assert result == {(1, 1), (1, 2), (1, 3), (2, 1)}

    def test_range_query_unions_cells(self):
        deps = [dep("A1", "B1"), dep("A2", "B2")]
        index = self.build(deps)
        result = expand_cells(index.find_dependents(Range.from_a1("A1:A2")))
        assert result == {(2, 1), (2, 2)}
