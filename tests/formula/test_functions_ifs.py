"""Unit tests for the multi-criteria (*IFS) and statistical functions."""

import pytest

from repro.formula.errors import NA_ERROR, NUM_ERROR, VALUE_ERROR
from repro.formula.evaluator import Evaluator
from repro.sheet.sheet import Sheet, SheetResolver


@pytest.fixture
def ev():
    s = Sheet("S")
    # A: region, B: product, C: amount
    rows = [
        ("east", "ap", 10.0),
        ("east", "bn", 20.0),
        ("west", "ap", 30.0),
        ("west", "bn", 40.0),
        ("east", "ap", 50.0),
    ]
    for i, (region, product, amount) in enumerate(rows, start=1):
        s.set_value((1, i), region)
        s.set_value((2, i), product)
        s.set_value((3, i), amount)
    evaluator = Evaluator(SheetResolver(s))

    def run(text):
        return evaluator.evaluate_formula(text, sheet="S")

    return run


class TestSumifs:
    def test_two_criteria(self, ev):
        assert ev('=SUMIFS(C1:C5,A1:A5,"east",B1:B5,"ap")') == 60.0

    def test_numeric_criterion(self, ev):
        assert ev('=SUMIFS(C1:C5,C1:C5,">25")') == 120.0

    def test_no_matches(self, ev):
        assert ev('=SUMIFS(C1:C5,A1:A5,"north")') == 0.0

    def test_mismatched_shapes(self, ev):
        assert ev('=SUMIFS(C1:C5,A1:A4,"east")') == VALUE_ERROR

    def test_odd_criteria_count(self, ev):
        assert ev('=SUMIFS(C1:C5,A1:A5)') == VALUE_ERROR


class TestCountifsAverageifs:
    def test_countifs(self, ev):
        assert ev('=COUNTIFS(A1:A5,"east")') == 3.0
        assert ev('=COUNTIFS(A1:A5,"east",C1:C5,">15")') == 2.0

    def test_averageifs(self, ev):
        assert ev('=AVERAGEIFS(C1:C5,A1:A5,"west")') == 35.0

    def test_averageifs_empty_div0(self, ev):
        from repro.formula.errors import DIV0

        assert ev('=AVERAGEIFS(C1:C5,A1:A5,"north")') == DIV0


class TestMinMaxIfs:
    def test_maxifs(self, ev):
        assert ev('=MAXIFS(C1:C5,A1:A5,"east")') == 50.0

    def test_minifs(self, ev):
        assert ev('=MINIFS(C1:C5,B1:B5,"bn")') == 20.0

    def test_empty_is_zero(self, ev):
        assert ev('=MAXIFS(C1:C5,A1:A5,"north")') == 0.0


class TestStats:
    def test_rank_descending_default(self, ev):
        assert ev("=RANK(50,C1:C5)") == 1.0
        assert ev("=RANK(10,C1:C5)") == 5.0

    def test_rank_ascending(self, ev):
        assert ev("=RANK(10,C1:C5,1)") == 1.0

    def test_rank_missing(self, ev):
        assert ev("=RANK(99,C1:C5)") == NA_ERROR

    def test_percentile(self, ev):
        assert ev("=PERCENTILE(C1:C5,0)") == 10.0
        assert ev("=PERCENTILE(C1:C5,1)") == 50.0
        assert ev("=PERCENTILE(C1:C5,0.5)") == 30.0

    def test_percentile_out_of_range(self, ev):
        assert ev("=PERCENTILE(C1:C5,1.5)") == NUM_ERROR


class TestRounding:
    def test_trunc(self, ev):
        assert ev("=TRUNC(2.79)") == 2.0
        assert ev("=TRUNC(-2.79)") == -2.0
        assert ev("=TRUNC(2.789,2)") == 2.78

    def test_even(self, ev):
        assert ev("=EVEN(1.5)") == 2.0
        assert ev("=EVEN(3)") == 4.0
        assert ev("=EVEN(-1)") == -2.0
        assert ev("=EVEN(0)") == 0.0

    def test_odd(self, ev):
        assert ev("=ODD(1.5)") == 3.0
        assert ev("=ODD(0)") == 1.0
        assert ev("=ODD(-2)") == -3.0
