"""The bounded parse memo: repeated evaluation of one text parses once."""

import pytest

from repro.formula import parser
from repro.formula.evaluator import Evaluator
from repro.formula.parser import parse_formula
from repro.sheet.sheet import Sheet, SheetResolver


@pytest.fixture(autouse=True)
def fresh_cache():
    parse_formula.cache_clear()
    yield
    parse_formula.cache_clear()


def test_repeated_evaluation_parses_once(monkeypatch):
    parses = []
    original = parser.Parser.parse

    def counting_parse(self):
        parses.append(1)
        return original(self)

    monkeypatch.setattr(parser.Parser, "parse", counting_parse)
    sheet = Sheet("S")
    sheet.set_value((1, 1), 4.0)
    evaluator = Evaluator(SheetResolver(sheet))
    results = {evaluator.evaluate_formula("=A1*3", "S") for _ in range(10)}
    assert results == {12.0}
    assert len(parses) == 1


def test_leading_equals_shares_the_cache_entry():
    assert parse_formula("=A1+1") is parse_formula("A1+1")


def test_cache_info_reports_hits():
    parse_formula.cache_clear()
    parse_formula("=SUM(A1:A5)")
    before = parse_formula.cache_info().hits
    parse_formula("=SUM(A1:A5)")
    assert parse_formula.cache_info().hits == before + 1


def test_syntax_errors_are_not_cached_as_results():
    from repro.formula.errors import FormulaSyntaxError

    for _ in range(2):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=SUM(")


def test_cache_is_bounded():
    parse_formula.cache_clear()
    for i in range(5000):
        parse_formula(f"={i}+1")
    assert parse_formula.cache_info().currsize <= 4096
