"""Unit tests for the runtime value model and coercions."""

import pytest

from repro.formula.errors import DIV0, VALUE_ERROR, ExcelError
from repro.formula.values import (
    ErrorSignal,
    RangeValue,
    compare_values,
    safe_divide,
    to_bool,
    to_number,
    to_text,
)
from repro.grid.range import Range
from repro.sheet.sheet import Sheet, SheetResolver


class TestToNumber:
    def test_floats_pass_through(self):
        assert to_number(2.5) == 2.5

    def test_bool(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_blank(self):
        assert to_number(None) == 0.0

    def test_numeric_string(self):
        assert to_number(" 3.5 ") == 3.5

    def test_bad_string(self):
        with pytest.raises(ErrorSignal) as info:
            to_number("abc")
        assert info.value.error == VALUE_ERROR

    def test_error_propagates(self):
        with pytest.raises(ErrorSignal) as info:
            to_number(DIV0)
        assert info.value.error == DIV0


class TestToText:
    def test_integral_float(self):
        assert to_text(3.0) == "3"

    def test_fractional_float(self):
        assert to_text(2.5) == "2.5"

    def test_bool(self):
        assert to_text(True) == "TRUE"

    def test_blank(self):
        assert to_text(None) == ""


class TestToBool:
    def test_number(self):
        assert to_bool(0.0) is False
        assert to_bool(-1.0) is True

    def test_string_literals(self):
        assert to_bool("true") is True
        assert to_bool("FALSE") is False

    def test_bad_string(self):
        with pytest.raises(ErrorSignal):
            to_bool("maybe")

    def test_blank_is_false(self):
        assert to_bool(None) is False


class TestCompare:
    def test_numbers(self):
        assert compare_values(1.0, 2.0) < 0
        assert compare_values(2.0, 2.0) == 0

    def test_text_case_insensitive(self):
        assert compare_values("ABC", "abc") == 0

    def test_cross_type(self):
        assert compare_values(1e9, "a") < 0       # number < text
        assert compare_values("zzz", False) < 0   # text < logical

    def test_blank_coerces(self):
        assert compare_values(None, 0.0) == 0
        assert compare_values(None, "") == 0
        assert compare_values(None, False) == 0

    def test_error_raises(self):
        with pytest.raises(ErrorSignal):
            compare_values(DIV0, 1.0)


class TestSafeDivide:
    def test_ok(self):
        assert safe_divide(10.0, 4.0) == 2.5

    def test_zero(self):
        with pytest.raises(ErrorSignal) as info:
            safe_divide(1.0, 0.0)
        assert info.value.error == DIV0


class TestRangeValue:
    @pytest.fixture
    def rv(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 1.0)
        sheet.set_value("A2", "x")
        sheet.set_value("B1", True)
        sheet.set_value("B2", 4.0)
        return RangeValue(Range.from_a1("A1:B3"), "S", SheetResolver(sheet))

    def test_dims(self, rv):
        assert rv.width == 2 and rv.height == 3

    def test_get_with_offsets(self, rv):
        assert rv.get(0, 0) == 1.0
        assert rv.get(1, 1) == 4.0
        assert rv.get(2, 0) is None

    def test_get_out_of_bounds(self, rv):
        with pytest.raises(ErrorSignal):
            rv.get(5, 0)

    def test_iter_numbers_skips_text_and_bool(self, rv):
        assert sorted(rv.iter_numbers()) == [1.0, 4.0]

    def test_iter_numbers_propagates_errors(self):
        sheet = Sheet("S")
        sheet.set_value("A1", ExcelError("#N/A"))
        rv = RangeValue(Range.from_a1("A1:A2"), "S", SheetResolver(sheet))
        with pytest.raises(ErrorSignal):
            list(rv.iter_numbers())

    def test_row_and_column_values(self, rv):
        assert list(rv.row_values(0)) == [1.0, True]
        assert list(rv.column_values(0)) == [1.0, "x", None]

    def test_interned_errors(self):
        assert ExcelError("#REF!") is ExcelError("#REF!")
        assert ExcelError("#REF!") != ExcelError("#N/A")
