"""The promoted R1C1 renderer: template keys for the whole stack.

``to_r1c1`` moved from ``baselines/excel_like.py`` into ``formula/`` so
the Excel-like baseline, the xlsx writer, and the template compiler all
share one renderer.  These tests pin the rendering rules (absolute /
relative / mixed axes, sheet qualifiers) and the property that makes the
key usable as a template identity: autofilled copies of a formula share
one rendering, and formulas with different semantics never collide.
"""

from repro.baselines.excel_like import to_r1c1 as baseline_to_r1c1
from repro.formula.parser import parse_formula
from repro.formula.r1c1 import to_r1c1


def render(text: str, col: int, row: int) -> str:
    return to_r1c1(parse_formula(text), col, row)


class TestRefRendering:
    def test_relative_offsets(self):
        assert render("=A1", 2, 2) == "R[-1]C[-1]"
        assert render("=C5", 2, 2) == "R[3]C[1]"

    def test_same_row_and_column_render_bare(self):
        assert render("=B2", 2, 2) == "RC"
        assert render("=B9", 2, 2) == "R[7]C"
        assert render("=F2", 2, 2) == "RC[4]"

    def test_absolute_axes(self):
        assert render("=$A$1", 5, 5) == "R1C1"
        assert render("=$A1", 5, 5) == "R[-4]C1"
        assert render("=A$1", 5, 5) == "R1C[-4]"

    def test_range_renders_both_corners(self):
        assert render("=SUM($A$1:A5)", 2, 5) == "SUM(R1C1:RC[-1])"
        assert render("=SUM(A1:B3)", 3, 2) == "SUM(R[-1]C[-2]:R[1]C[-1])"

    def test_composite_shapes(self):
        assert render("=A1*2+B1", 3, 1) == "((RC[-2]*2)+RC[-1])"
        assert render("=-A1%", 2, 1) == "-RC[-1]%"
        assert render('=IF(A1>0,"y",B1)', 3, 1) == 'IF((RC[-2]>0),"y",RC[-1])'


class TestSheetQualifiers:
    def test_cross_sheet_cell_keeps_prefix(self):
        assert render("=Data!A1", 2, 1) == "Data!RC[-1]"

    def test_cross_sheet_range_keeps_prefix(self):
        assert render("=SUM(Data!A1:A5)", 2, 1) == "SUM(Data!RC[-1]:R[4]C[-1])"

    def test_quoted_sheet_names(self):
        assert render("='My Data'!A1", 2, 1) == "'My Data'!RC[-1]"

    def test_cross_sheet_does_not_collide_with_local(self):
        # The historical baseline renderer dropped the prefix, making
        # Sheet2!A1 and A1 share a template — semantically wrong.
        local = render("=A1", 2, 1)
        remote = render("=Data!A1", 2, 1)
        assert local != remote


class TestTemplateIdentity:
    def test_autofill_family_shares_one_key(self):
        anchor = parse_formula("=SUM($A$1:A1)*B1")
        keys = {
            to_r1c1(anchor.shifted(0, dr), 3, 1 + dr) for dr in range(0, 40)
        }
        assert len(keys) == 1

    def test_different_offsets_get_different_keys(self):
        assert render("=A1", 3, 1) != render("=B1", 3, 1)
        # the same text at a shifted host is a *different* template...
        assert render("=A1", 3, 1) != render("=A1", 3, 2)
        # ...while the autofilled text at the shifted host is the same one.
        assert render("=A1", 3, 1) == render("=A2", 3, 2)

    def test_baseline_reexports_the_promoted_renderer(self):
        assert baseline_to_r1c1 is to_r1c1


class TestRoundTripThroughAutofill:
    """R1C1 is relative: re-anchoring the template at another host must
    reproduce exactly the autofilled formula's rendering."""

    def test_mixed_fixedness_round_trip(self):
        for text in ("=SUM($A$1:A1)", "=SUM(A1:A10)", "=SUM(A1:$A$50)",
                     "=$B2+C$3", "=AVERAGE($A1:B$9)"):
            anchor = parse_formula(text)
            key = to_r1c1(anchor, 4, 10)
            for dr in (1, 5, 17):
                shifted = anchor.shifted(0, dr)
                assert to_r1c1(shifted, 4, 10 + dr) == key, text
