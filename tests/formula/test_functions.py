"""Unit tests for the builtin function library."""

import math

import pytest

from repro.formula.errors import DIV0, NA_ERROR, NUM_ERROR, REF_ERROR, VALUE_ERROR
from repro.formula.evaluator import Evaluator
from repro.sheet.sheet import Sheet, SheetResolver


@pytest.fixture
def ev():
    s = Sheet("S")
    for i, value in enumerate([10.0, 20.0, 30.0, 40.0], start=1):
        s.set_value((1, i), value)                 # A1:A4
    s.set_value("B1", "apple")
    s.set_value("B2", "banana")
    s.set_value("B3", "apricot")
    s.set_value("B4", 7.0)
    # Lookup table D1:E4 (keys ascending)
    for i, (key, val) in enumerate([(1.0, "one"), (2.0, "two"), (3.0, "three"), (4.0, "four")], start=1):
        s.set_value((4, i), key)
        s.set_value((5, i), val)
    evaluator = Evaluator(SheetResolver(s))

    def run(text):
        return evaluator.evaluate_formula(text, sheet="S", col=9, row=9)

    return run


class TestAggregates:
    def test_sum_range(self, ev):
        assert ev("=SUM(A1:A4)") == 100.0

    def test_sum_skips_text_in_ranges(self, ev):
        assert ev("=SUM(B1:B4)") == 7.0

    def test_sum_mixed_args(self, ev):
        assert ev("=SUM(A1:A2,5,A4)") == 75.0

    def test_sum_empty(self, ev):
        assert ev("=SUM(Z1:Z5)") == 0.0

    def test_average(self, ev):
        assert ev("=AVERAGE(A1:A4)") == 25.0
        assert ev("=AVG(A1:A4)") == 25.0

    def test_average_of_nothing_div0(self, ev):
        assert ev("=AVERAGE(Z1:Z5)") == DIV0

    def test_min_max(self, ev):
        assert ev("=MIN(A1:A4)") == 10.0
        assert ev("=MAX(A1:A4,99)") == 99.0

    def test_count_counta_countblank(self, ev):
        assert ev("=COUNT(A1:B4)") == 5.0   # four numbers in A + B4
        assert ev("=COUNTA(A1:B4)") == 8.0
        assert ev("=COUNTBLANK(A1:C4)") == 4.0

    def test_median(self, ev):
        assert ev("=MEDIAN(A1:A4)") == 25.0
        assert ev("=MEDIAN(A1:A3)") == 20.0

    def test_stdev_var(self, ev):
        assert ev("=VAR(A1:A4)") == pytest.approx(500.0 / 3)
        assert ev("=STDEV(A1:A4)") == pytest.approx(math.sqrt(500.0 / 3))

    def test_small_large(self, ev):
        assert ev("=SMALL(A1:A4,2)") == 20.0
        assert ev("=LARGE(A1:A4,1)") == 40.0
        assert ev("=SMALL(A1:A4,9)") == NUM_ERROR

    def test_product(self, ev):
        assert ev("=PRODUCT(A1:A2,2)") == 400.0

    def test_sumproduct(self, ev):
        assert ev("=SUMPRODUCT(A1:A2,A3:A4)") == 10 * 30 + 20 * 40

    def test_sumproduct_shape_mismatch(self, ev):
        assert ev("=SUMPRODUCT(A1:A2,A1:A3)") == VALUE_ERROR


class TestMath:
    def test_abs_sign_int(self, ev):
        assert ev("=ABS(-3)") == 3.0
        assert ev("=SIGN(-9)") == -1.0
        assert ev("=INT(2.7)") == 2.0
        assert ev("=INT(-2.3)") == -3.0

    def test_round_half_away_from_zero(self, ev):
        assert ev("=ROUND(2.5,0)") == 3.0
        assert ev("=ROUND(-2.5,0)") == -3.0
        assert ev("=ROUND(1.234,2)") == 1.23

    def test_roundup_rounddown(self, ev):
        assert ev("=ROUNDUP(1.01,1)") == 1.1
        assert ev("=ROUNDDOWN(1.99,1)") == 1.9

    def test_sqrt(self, ev):
        assert ev("=SQRT(16)") == 4.0
        assert ev("=SQRT(-1)") == NUM_ERROR

    def test_power_mod(self, ev):
        assert ev("=POWER(2,8)") == 256.0
        assert ev("=MOD(10,3)") == 1.0
        assert ev("=MOD(-1,3)") == 2.0  # Excel sign convention
        assert ev("=MOD(1,0)") == DIV0

    def test_logs(self, ev):
        assert ev("=LN(1)") == 0.0
        assert ev("=LOG(100)") == pytest.approx(2.0)
        assert ev("=LOG(8,2)") == pytest.approx(3.0)
        assert ev("=LOG10(1000)") == pytest.approx(3.0)
        assert ev("=LN(0)") == NUM_ERROR

    def test_floor_ceiling(self, ev):
        assert ev("=FLOOR(7,3)") == 6.0
        assert ev("=CEILING(7,3)") == 9.0

    def test_pi_exp(self, ev):
        assert ev("=PI()") == pytest.approx(math.pi)
        assert ev("=EXP(1)") == pytest.approx(math.e)


class TestLogical:
    def test_if(self, ev):
        assert ev("=IF(A1>5,1,2)") == 1.0
        assert ev("=IF(A1<5,1,2)") == 2.0

    def test_if_without_else(self, ev):
        assert ev("=IF(FALSE,1)") is False

    def test_if_short_circuits_errors(self, ev):
        assert ev("=IF(TRUE,1,1/0)") == 1.0

    def test_and_or_xor(self, ev):
        assert ev("=AND(TRUE,1,2)") is True
        assert ev("=AND(TRUE,0)") is False
        assert ev("=OR(FALSE,0,3)") is True
        assert ev("=XOR(TRUE,TRUE,TRUE)") is True

    def test_not(self, ev):
        assert ev("=NOT(TRUE)") is False

    def test_iferror(self, ev):
        assert ev("=IFERROR(1/0,42)") == 42.0
        assert ev("=IFERROR(7,42)") == 7.0

    def test_iserror(self, ev):
        assert ev("=ISERROR(1/0)") is True
        assert ev("=ISERROR(1)") is False

    def test_is_predicates(self, ev):
        assert ev("=ISBLANK(Z99)") is True
        assert ev("=ISBLANK(A1)") is False
        assert ev("=ISNUMBER(A1)") is True
        assert ev("=ISTEXT(B1)") is True


class TestText:
    def test_concatenate(self, ev):
        assert ev('=CONCATENATE("a",1,"b")') == "a1b"
        assert ev('=CONCAT("x","y")') == "xy"

    def test_len_left_right_mid(self, ev):
        assert ev("=LEN(B1)") == 5.0
        assert ev("=LEFT(B1,3)") == "app"
        assert ev("=RIGHT(B1,2)") == "le"
        assert ev("=MID(B1,2,3)") == "ppl"

    def test_case_and_trim(self, ev):
        assert ev("=UPPER(B1)") == "APPLE"
        assert ev('=LOWER("ABC")') == "abc"
        assert ev('=TRIM("  a   b  ")') == "a b"

    def test_rept_find_substitute(self, ev):
        assert ev('=REPT("ab",3)') == "ababab"
        assert ev('=FIND("p",B1)') == 2.0
        assert ev('=FIND("z",B1)') == VALUE_ERROR
        assert ev('=SUBSTITUTE("aaa","a","b",2)') == "aba"
        assert ev('=SUBSTITUTE("aaa","a","b")') == "bbb"

    def test_value_text(self, ev):
        assert ev('=VALUE("3.5")') == 3.5
        assert ev('=TEXT(3.14159,"0.00")') == "3.14"


class TestLookup:
    def test_vlookup_exact(self, ev):
        assert ev("=VLOOKUP(3,D1:E4,2,FALSE)") == "three"

    def test_vlookup_exact_miss(self, ev):
        assert ev("=VLOOKUP(9,D1:E4,2,FALSE)") == NA_ERROR

    def test_vlookup_approximate(self, ev):
        assert ev("=VLOOKUP(2.7,D1:E4,2)") == "two"

    def test_vlookup_bad_column(self, ev):
        assert ev("=VLOOKUP(1,D1:E4,5,FALSE)") == VALUE_ERROR

    def test_hlookup(self, ev):
        assert ev("=HLOOKUP(10,A1:A4,1,FALSE)") == 10.0

    def test_match_modes(self, ev):
        assert ev("=MATCH(3,D1:D4,0)") == 3.0
        assert ev("=MATCH(2.5,D1:D4,1)") == 2.0
        assert ev("=MATCH(9,D1:D4,0)") == NA_ERROR

    def test_index(self, ev):
        assert ev("=INDEX(D1:E4,2,2)") == "two"
        assert ev("=INDEX(A1:A4,3)") == 30.0

    def test_row_column(self, ev):
        assert ev("=ROW()") == 9.0
        assert ev("=COLUMN()") == 9.0
        assert ev("=ROW(D4)") == 4.0
        assert ev("=COLUMN(D4)") == 4.0
        assert ev("=ROWS(A1:A4)") == 4.0
        assert ev("=COLUMNS(D1:E4)") == 2.0


@pytest.fixture
def lv():
    """Evaluator over deliberately unsorted, mixed-type lookup vectors."""
    s = Sheet("S")
    # A1:B6 — unsorted numeric keys with a text and a bool interloper.
    rows = [(10.0, "ten"), (40.0, "forty"), ("kiwi", "fruit"),
            (20.0, "twenty"), (True, "yes"), (30.0, "thirty")]
    for i, (key, val) in enumerate(rows, start=1):
        s.set_value((1, i), key)
        s.set_value((2, i), val)
    # D1:D5 — text keys with duplicates, mixed case.
    for i, key in enumerate(["pear", "Apple", "plum", "apple", "fig"], start=1):
        s.set_value((4, i), key)
        s.set_value((5, i), float(i))              # E1:E5 payloads
    evaluator = Evaluator(SheetResolver(s))

    def run(text):
        return evaluator.evaluate_formula(text, sheet="S", col=9, row=9)

    return run


class TestApproximateMatchEdges:
    """The fixed approximate-match contract: largest entry <= needle by
    value (not scan position), same-type-class entries only, NA below
    every candidate — identical on sorted and unsorted vectors."""

    def test_unsorted_picks_largest_below(self, lv):
        # Linear first-match-wins would stop at 10; the contract says 20.
        assert lv("=VLOOKUP(25,A1:B6,2)") == "twenty"

    def test_unsorted_exact_value_present(self, lv):
        assert lv("=VLOOKUP(30,A1:B6,2)") == "thirty"

    def test_below_first_entry_is_na(self, lv):
        assert lv("=VLOOKUP(5,A1:B6,2)") == NA_ERROR

    def test_text_entries_invisible_to_numeric_needle(self, lv):
        # "kiwi" sits between 40 and 20 but never matches a number.
        assert lv("=VLOOKUP(1e9,A1:B6,2)") == "forty"

    def test_bool_entries_invisible_to_numeric_needle(self, lv):
        # TRUE is not 1.0: the numeric needle skips the bool row.
        assert lv("=VLOOKUP(1,A1:B6,2)") == NA_ERROR

    def test_bool_needle_matches_bool_class(self, lv):
        assert lv("=VLOOKUP(TRUE,A1:B6,2,FALSE)") == "yes"

    def test_text_needle_case_insensitive_dupes_first(self, lv):
        # Exact text match is case-insensitive; ties keep the first hit.
        assert lv('=VLOOKUP("APPLE",D1:E5,2,FALSE)') == 2.0

    def test_text_approximate(self, lv):
        # Largest text <= "grape" (case-folded): "fig".
        assert lv('=VLOOKUP("grape",D1:E5,2)') == 5.0

    def test_blank_needle_is_numeric_zero(self, lv):
        assert lv("=MATCH(Z9,A1:A6,0)") == NA_ERROR

    def test_match_descending_mode(self, lv):
        # mode -1: smallest entry >= needle, last occurrence by offset.
        assert lv("=MATCH(25,A1:A6,-1)") == 6.0    # 30 at row 6
        assert lv("=MATCH(50,A1:A6,-1)") == NA_ERROR

    def test_match_ascending_mode_unsorted(self, lv):
        assert lv("=MATCH(25,A1:A6,1)") == 4.0     # 20 at row 4


class TestXlookup:
    def test_exact_default(self, lv):
        assert lv("=XLOOKUP(20,A1:A6,B1:B6)") == "twenty"

    def test_exact_miss_is_na(self, lv):
        assert lv("=XLOOKUP(25,A1:A6,B1:B6)") == NA_ERROR

    def test_if_not_found(self, lv):
        assert lv('=XLOOKUP(25,A1:A6,B1:B6,"none")') == "none"

    def test_next_smaller(self, lv):
        assert lv('=XLOOKUP(25,A1:A6,B1:B6,"none",-1)') == "twenty"

    def test_next_larger(self, lv):
        assert lv('=XLOOKUP(25,A1:A6,B1:B6,"none",1)') == "thirty"

    def test_wildcard_mode(self, lv):
        assert lv('=XLOOKUP("pl*",D1:D5,E1:E5,"none",2)') == 3.0
        assert lv('=XLOOKUP("?ig",D1:D5,E1:E5,"none",2)') == 5.0

    def test_reverse_search_takes_last(self, lv):
        # "Apple" (row 2) and "apple" (row 4) tie case-insensitively.
        assert lv('=XLOOKUP("apple",D1:D5,E1:E5,"none",0,1)') == 2.0
        assert lv('=XLOOKUP("apple",D1:D5,E1:E5,"none",0,-1)') == 4.0

    def test_horizontal_vectors(self, lv):
        assert lv("=XLOOKUP(2,E1:E5,D1:D5)") == "Apple"

    def test_mismatched_lengths(self, lv):
        assert lv("=XLOOKUP(20,A1:A6,B1:B5)") == VALUE_ERROR

    def test_two_dimensional_lookup_vector(self, lv):
        assert lv("=XLOOKUP(20,A1:B6,B1:B6)") == VALUE_ERROR

    def test_bad_modes(self, lv):
        assert lv('=XLOOKUP(20,A1:A6,B1:B6,"none",7)') == VALUE_ERROR
        assert lv('=XLOOKUP(20,A1:A6,B1:B6,"none",0,3)') == VALUE_ERROR


class TestIndexExtended:
    def test_whole_row_and_column_slices(self, lv):
        assert lv("=SUM(INDEX(A1:B6,0,1))") == 100.0      # numeric keys only
        assert lv("=SUM(INDEX(D1:E5,2,0))") == 2.0        # row 2 payload
        assert lv("=SUM(INDEX(E1:E5,0))") == 15.0         # whole vector

    def test_out_of_bounds_slice_is_ref(self, lv):
        assert lv("=INDEX(D1:E5,9,0)") == REF_ERROR
        assert lv("=INDEX(D1:E5,0,9)") == REF_ERROR

    def test_out_of_bounds_cell_is_ref(self, lv):
        assert lv("=INDEX(D1:E5,9,1)") == REF_ERROR

    def test_negative_is_value_error(self, lv):
        assert lv("=INDEX(D1:E5,-1,1)") == VALUE_ERROR
        assert lv("=INDEX(D1:E5,1,-1)") == VALUE_ERROR

    def test_two_dimensional_needs_column(self, lv):
        assert lv("=INDEX(D1:E5,2)") == VALUE_ERROR


class TestConditionalAggregates:
    def test_countif_comparison(self, ev):
        assert ev('=COUNTIF(A1:A4,">15")') == 3.0
        assert ev('=COUNTIF(A1:A4,"<>20")') == 3.0

    def test_countif_equality_number(self, ev):
        assert ev("=COUNTIF(A1:A4,30)") == 1.0

    def test_countif_wildcard(self, ev):
        assert ev('=COUNTIF(B1:B3,"ap*")') == 2.0

    def test_sumif(self, ev):
        assert ev('=SUMIF(A1:A4,">15")') == 90.0

    def test_sumif_with_sum_range(self, ev):
        assert ev('=SUMIF(D1:D4,">2",A1:A4)') == 70.0

    def test_averageif(self, ev):
        assert ev('=AVERAGEIF(A1:A4,">15")') == 30.0

    def test_wrong_arity(self, ev):
        assert ev("=COUNTIF(A1:A4)") == VALUE_ERROR
