"""Property-based tests for the formula language.

* the tokenizer never crashes on arbitrary input — it either tokenizes
  or raises FormulaSyntaxError;
* parse -> to_formula -> parse is a fixed point on generated ASTs;
* autofill shifting commutes with rendering;
* arithmetic evaluation matches a reference computation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formula.ast_nodes import BinaryOp, CellNode, FunctionCall, Number, RangeNode, UnaryOp
from repro.formula.errors import ExcelError, FormulaSyntaxError
from repro.formula.evaluator import Evaluator
from repro.formula.parser import parse_formula
from repro.formula.tokenizer import tokenize
from repro.grid.ref import CellRef
from repro.sheet.sheet import Sheet, SheetResolver


@given(st.text(max_size=40))
@settings(max_examples=200)
def test_tokenizer_total(text):
    try:
        tokens = tokenize(text)
    except FormulaSyntaxError:
        return
    assert tokens[-1].kind == "EOF"


@st.composite
def cell_refs(draw):
    return CellRef(
        draw(st.integers(1, 30)),
        draw(st.integers(1, 30)),
        draw(st.booleans()),
        draw(st.booleans()),
    )


@st.composite
def formula_asts(draw, depth: int = 3):
    if depth <= 0:
        leaf_kind = draw(st.sampled_from(["num", "cell", "range"]))
        if leaf_kind == "num":
            return Number(float(draw(st.integers(0, 999))))
        if leaf_kind == "cell":
            return CellNode(draw(cell_refs()))
        head = draw(cell_refs())
        tail = CellRef(
            head.col + draw(st.integers(0, 3)),
            head.row + draw(st.integers(0, 3)),
            draw(st.booleans()),
            draw(st.booleans()),
        )
        return RangeNode(head, tail)
    kind = draw(st.sampled_from(["binary", "unary", "call", "leaf"]))
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*", "/", "^", "&", "=", "<", ">="]))
        return BinaryOp(
            op, draw(formula_asts(depth=depth - 1)), draw(formula_asts(depth=depth - 1))
        )
    if kind == "unary":
        op = draw(st.sampled_from(["-", "%"]))
        return UnaryOp(op, draw(formula_asts(depth=depth - 1)))
    if kind == "call":
        name = draw(st.sampled_from(["SUM", "MAX", "IF", "ABS", "COUNT"]))
        arity = 3 if name == "IF" else draw(st.integers(1, 3))
        return FunctionCall(name, [draw(formula_asts(depth=depth - 1)) for _ in range(arity)])
    return draw(formula_asts(depth=0))


@given(formula_asts())
@settings(max_examples=150)
def test_parse_render_fixed_point(ast):
    text = ast.to_formula()
    reparsed = parse_formula(text)
    assert reparsed.to_formula() == text


@given(formula_asts(), st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=100)
def test_shift_then_render_round_trips(ast, dc, dr):
    shifted = ast.shifted(dc, dr)
    # Shifting never produces unparseable output.
    reparsed = parse_formula(shifted.to_formula())
    assert reparsed.to_formula() == shifted.to_formula()


@st.composite
def arithmetic(draw, depth: int = 3):
    """(expression text, reference value) pairs over safe integers."""
    if depth <= 0:
        value = draw(st.integers(1, 50))
        return str(value), float(value)
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_text, left_val = draw(arithmetic(depth=depth - 1))
    right_text, right_val = draw(arithmetic(depth=depth - 1))
    text = f"({left_text}{op}{right_text})"
    value = {"+": left_val + right_val, "-": left_val - right_val, "*": left_val * right_val}[op]
    return text, value


@given(arithmetic())
@settings(max_examples=150)
def test_arithmetic_matches_reference(pair):
    text, expected = pair
    evaluator = Evaluator(SheetResolver(Sheet()))
    got = evaluator.evaluate_formula("=" + text)
    assert not isinstance(got, ExcelError)
    assert got == expected
