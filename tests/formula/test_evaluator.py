"""Unit tests for expression evaluation (operators, coercion, errors)."""

import pytest

from repro.formula.errors import DIV0, NA_ERROR, VALUE_ERROR, ExcelError
from repro.formula.evaluator import Evaluator
from repro.sheet.sheet import Sheet, SheetResolver


@pytest.fixture
def sheet():
    s = Sheet("S")
    s.set_value("A1", 10.0)
    s.set_value("A2", 20.0)
    s.set_value("A3", 30.0)
    s.set_value("B1", "text")
    s.set_value("B2", True)
    s.set_value("B3", "5")
    s.set_value("C1", ExcelError("#DIV/0!"))
    return s


@pytest.fixture
def ev(sheet):
    evaluator = Evaluator(SheetResolver(sheet))

    def run(text):
        return evaluator.evaluate_formula(text, sheet="S")

    return run


class TestArithmetic:
    def test_basic(self, ev):
        assert ev("=1+2*3") == 7.0
        assert ev("=(1+2)*3") == 9.0
        assert ev("=10/4") == 2.5
        assert ev("=2^10") == 1024.0
        assert ev("=-5+3") == -2.0
        assert ev("=50%") == 0.5

    def test_division_by_zero(self, ev):
        assert ev("=1/0") == DIV0

    def test_cell_arithmetic(self, ev):
        assert ev("=A1+A2") == 30.0

    def test_numeric_string_coerces(self, ev):
        assert ev("=B3+1") == 6.0

    def test_boolean_coerces(self, ev):
        assert ev("=B2+1") == 2.0

    def test_blank_is_zero(self, ev):
        assert ev("=Z99+5") == 5.0

    def test_text_in_arithmetic_is_value_error(self, ev):
        assert ev("=B1+1") == VALUE_ERROR

    def test_excel_power_left_assoc(self, ev):
        assert ev("=2^3^2") == 64.0


class TestComparison:
    def test_numbers(self, ev):
        assert ev("=1<2") is True
        assert ev("=2<=2") is True
        assert ev("=3<>3") is False

    def test_text_case_insensitive(self, ev):
        assert ev('="ABC"="abc"') is True
        assert ev('="a"<"b"') is True

    def test_cross_type_ordering(self, ev):
        # Excel: numbers < text < logicals.
        assert ev('=999999<"a"') is True
        assert ev('="zzz"<TRUE') is True

    def test_blank_compares_as_zero(self, ev):
        assert ev("=Z99=0") is True


class TestConcat:
    def test_basic(self, ev):
        assert ev('="a"&"b"') == "ab"

    def test_number_formatting(self, ev):
        assert ev('=1&"x"') == "1x"
        assert ev('=1.5&""') == "1.5"

    def test_boolean_rendering(self, ev):
        assert ev("=TRUE&1") == "TRUE1"


class TestErrors:
    def test_error_cell_propagates(self, ev):
        assert ev("=C1+1") == ExcelError("#DIV/0!")

    def test_error_literal(self, ev):
        assert ev("=#N/A") == NA_ERROR

    def test_unknown_function(self, ev):
        assert ev("=NOSUCHFN(1)") == ExcelError("#NAME?")

    def test_bare_range_at_top_level_is_value_error(self, ev):
        assert ev("=A1:A3") == VALUE_ERROR

    def test_single_cell_range_implicit_intersection(self, ev):
        assert ev("=A1:A1") == 10.0
