"""ExactSum: incrementally-updated sums bit-identical to math.fsum.

This is the property the windowed fast path's observational identity
rests on: an :class:`~repro.formula.numeric.ExactSum` that has absorbed
any sequence of adds and exact removals reports precisely
``math.fsum`` of the surviving elements.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formula.numeric import ExactSum, fsum_count

floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


@given(st.lists(floats, max_size=60))
def test_exact_sum_matches_fsum(xs):
    acc = ExactSum()
    for x in xs:
        acc.add(x)
    assert acc.value() == math.fsum(xs)


@given(st.lists(floats, max_size=60), st.data())
def test_exact_sum_survives_removals(xs, data):
    """Removing a sliding-window prefix leaves fsum of the suffix."""
    acc = ExactSum()
    for x in xs:
        acc.add(x)
    k = data.draw(st.integers(0, len(xs)))
    for x in xs[:k]:
        acc.subtract(x)
    assert acc.value() == math.fsum(xs[k:])


@given(st.lists(floats, max_size=60))
def test_fsum_count_single_pass(xs):
    total, count = fsum_count(iter(xs))
    assert total == math.fsum(xs)
    assert count == len(xs)


class TestSpecialValues:
    """ExactSum mirrors fsum's non-finite semantics (regression: inf
    inputs used to poison the partials into nan)."""

    def test_infinities_sum_to_inf(self):
        acc = ExactSum()
        for x in (math.inf, math.inf, 1.5):
            acc.add(x)
        assert acc.value() == math.fsum([math.inf, math.inf, 1.5]) == math.inf

    def test_nan_dominates(self):
        acc = ExactSum()
        acc.add(math.nan)
        acc.add(2.0)
        assert math.isnan(acc.value())

    def test_opposed_infinities_raise_like_fsum(self):
        acc = ExactSum()
        acc.add(math.inf)
        acc.add(-math.inf)
        with pytest.raises(ValueError):
            acc.value()

    def test_subtract_cancels_a_special(self):
        acc = ExactSum()
        acc.add(math.inf)
        acc.add(3.0)
        acc.subtract(math.inf)
        assert acc.value() == 3.0
        acc.add(math.nan)
        acc.subtract(math.nan)
        assert acc.value() == 3.0

    def test_finite_overflow_raises_like_fsum(self):
        acc = ExactSum()
        acc.add(1e308)
        with pytest.raises(OverflowError):
            acc.add(1e308)

    def test_fsum_count_with_infinities(self):
        total, count = fsum_count([math.inf, math.inf])
        assert total == math.inf and count == 2


def test_catastrophic_cancellation_stays_exact():
    acc = ExactSum()
    for x in (1e16, 1.0, -1e16):
        acc.add(x)
    assert acc.value() == math.fsum([1e16, 1.0, -1e16]) == 1.0


def test_empty_sum_is_zero():
    assert ExactSum().value() == 0.0
    assert fsum_count(()) == (0.0, 0)
