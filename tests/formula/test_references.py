"""Unit tests for reference extraction and dollar-sign cues."""

from repro.formula.references import references_of_formula
from repro.grid.range import Range


def refs(text):
    return references_of_formula(text)


class TestExtraction:
    def test_single_cell(self):
        out = refs("=A1+1")
        assert [r.range for r in out] == [Range.from_a1("A1")]

    def test_range(self):
        out = refs("=SUM(A1:B3)")
        assert [r.range for r in out] == [Range.from_a1("A1:B3")]

    def test_multiple_references_in_order(self):
        out = refs("=IF(A3=A2,N2+M3,M3)")
        assert [r.range.to_a1() for r in out] == ["A3", "A2", "N2", "M3"]

    def test_duplicates_collapse(self):
        out = refs("=A1+A1*A1")
        assert len(out) == 1

    def test_same_range_different_sheets_kept(self):
        out = refs("=Sheet2!A1+A1")
        assert len(out) == 2
        assert out[0].sheet == "Sheet2" and out[1].sheet is None

    def test_no_references(self):
        assert refs("=1+2") == []

    def test_reference_inside_nested_functions(self):
        out = refs("=ROUND(SUM(B2:B9)/MAX(C1,1),2)")
        assert [r.range.to_a1() for r in out] == ["B2:B9", "C1"]


class TestCues:
    def test_rr_cue(self):
        assert refs("=SUM(A1:B3)")[0].cue == "RR"

    def test_fr_cue(self):
        assert refs("=SUM($B$1:B4)")[0].cue == "FR"

    def test_rf_cue(self):
        assert refs("=SUM(B1:$B$4)")[0].cue == "RF"

    def test_ff_cue(self):
        assert refs("=SUM($B$1:$B$4)")[0].cue == "FF"

    def test_single_cell_fixed_is_ff(self):
        assert refs("=$C$1*2")[0].cue == "FF"

    def test_mixed_dollar_is_not_fixed(self):
        # Only a fully-$ cell counts as a fixed endpoint.
        assert refs("=SUM($B1:B4)")[0].cue == "RR"
        assert refs("=SUM(B$1:B4)")[0].cue == "RR"
