"""Unit tests for the formula tokenizer."""

import pytest

from repro.formula.errors import FormulaSyntaxError
from repro.formula.tokenizer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_number(self):
        assert kinds("42") == [TokenKind.NUMBER]
        assert kinds("3.14") == [TokenKind.NUMBER]
        assert kinds("1e5") == [TokenKind.NUMBER]
        assert kinds(".5") == [TokenKind.NUMBER]
        assert kinds("2.5E-3") == [TokenKind.NUMBER]

    def test_string(self):
        tokens = tokenize('"hello"')
        assert tokens[0].kind == TokenKind.STRING
        assert tokens[0].text == "hello"

    def test_string_with_escaped_quote(self):
        tokens = tokenize('"say ""hi"""')
        assert tokens[0].text == 'say "hi"'

    def test_unterminated_string(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize('"oops')

    def test_operators(self):
        assert texts("1+2-3*4/5^6&7") == ["1", "+", "2", "-", "3", "*", "4", "/", "5", "^", "6", "&", "7"]

    def test_comparison_operators_longest_match(self):
        assert texts("1<=2") == ["1", "<=", "2"]
        assert texts("1<>2") == ["1", "<>", "2"]
        assert texts("1>=2") == ["1", ">=", "2"]

    def test_punctuation(self):
        assert kinds("(A1,B2):%") == [
            TokenKind.LPAREN, TokenKind.CELL, TokenKind.COMMA, TokenKind.CELL,
            TokenKind.RPAREN, TokenKind.COLON, TokenKind.PERCENT,
        ]

    def test_whitespace_ignored(self):
        assert kinds("  1 \t+\n 2 ") == [TokenKind.NUMBER, TokenKind.OP, TokenKind.NUMBER]

    def test_unexpected_character(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("1 @ 2")


class TestCellsVsIdentifiers:
    def test_plain_cell(self):
        assert kinds("A1") == [TokenKind.CELL]

    def test_fixed_cell_variants(self):
        for text in ("$A$1", "$A1", "A$1"):
            tokens = tokenize(text)
            assert tokens[0].kind == TokenKind.CELL
            assert tokens[0].text == text

    def test_function_that_looks_like_cell(self):
        # LOG10( is a function call, not cell LOG10.
        assert kinds("LOG10(5)") == [
            TokenKind.IDENT, TokenKind.LPAREN, TokenKind.NUMBER, TokenKind.RPAREN,
        ]

    def test_identifier_with_cell_prefix(self):
        assert kinds("A1B") == [TokenKind.IDENT]

    def test_plain_identifier(self):
        assert kinds("SUM") == [TokenKind.IDENT]

    def test_dollar_must_start_cell(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("$SUM(1)")

    def test_error_literals(self):
        tokens = tokenize("#REF!+#DIV/0!")
        assert tokens[0].kind == TokenKind.ERROR
        assert tokens[0].text == "#REF!"
        assert tokens[2].kind == TokenKind.ERROR

    def test_unknown_error_literal(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("#WAT!")


class TestSheetPrefixes:
    def test_bare_sheet(self):
        tokens = tokenize("Sheet1!A1")
        assert tokens[0].kind == TokenKind.SHEET
        assert tokens[0].text == "Sheet1"
        assert tokens[1].kind == TokenKind.CELL

    def test_quoted_sheet(self):
        tokens = tokenize("'My Sheet'!B2")
        assert tokens[0].kind == TokenKind.SHEET
        assert tokens[0].text == "My Sheet"

    def test_quoted_sheet_with_escaped_apostrophe(self):
        tokens = tokenize("'It''s'!B2")
        assert tokens[0].text == "It's"

    def test_quoted_sheet_missing_bang(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("'My Sheet'B2")

    def test_unterminated_sheet(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("'oops!A1")
