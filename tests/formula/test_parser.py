"""Unit tests for the formula parser."""

import pytest

from repro.formula.ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Number,
    RangeNode,
    String,
    UnaryOp,
)
from repro.formula.errors import FormulaSyntaxError
from repro.formula.parser import parse_formula


class TestLiterals:
    def test_number(self):
        node = parse_formula("=42")
        assert isinstance(node, Number) and node.value == 42.0

    def test_leading_equals_optional(self):
        assert parse_formula("42") == parse_formula("=42")

    def test_string(self):
        node = parse_formula('="hi"')
        assert isinstance(node, String) and node.value == "hi"

    def test_booleans(self):
        assert isinstance(parse_formula("=TRUE"), Boolean)
        assert parse_formula("=false").value is False

    def test_error_literal(self):
        node = parse_formula("=#REF!")
        assert isinstance(node, ErrorLiteral) and node.code == "#REF!"

    def test_unknown_name_becomes_name_error(self):
        node = parse_formula("=MyNamedRange")
        assert isinstance(node, ErrorLiteral) and node.code == "#NAME?"


class TestReferences:
    def test_cell(self):
        node = parse_formula("=B3")
        assert isinstance(node, CellNode)
        assert node.to_range().to_a1() == "B3"

    def test_range(self):
        node = parse_formula("=A1:B3")
        assert isinstance(node, RangeNode)
        assert node.to_range().to_a1() == "A1:B3"

    def test_range_normalises_reversed_corners(self):
        assert parse_formula("=B3:A1").to_range().to_a1() == "A1:B3"

    def test_fixed_markers_preserved(self):
        node = parse_formula("=$A$1:B2")
        assert node.head.col_fixed and node.head.row_fixed
        assert not node.tail.col_fixed

    def test_sheet_qualified(self):
        node = parse_formula("=Sheet2!A1")
        assert isinstance(node, CellNode) and node.sheet == "Sheet2"

    def test_quoted_sheet_range(self):
        node = parse_formula("='My Data'!A1:B2")
        assert isinstance(node, RangeNode) and node.sheet == "My Data"


class TestOperators:
    def test_precedence_mul_over_add(self):
        node = parse_formula("=1+2*3")
        assert isinstance(node, BinaryOp) and node.op == "+"
        assert isinstance(node.right, BinaryOp) and node.right.op == "*"

    def test_precedence_comparison_loosest(self):
        node = parse_formula("=1+2>2*1")
        assert node.op == ">"

    def test_concat_between_compare_and_add(self):
        node = parse_formula('="a"&"b"="ab"')
        assert node.op == "="
        assert node.left.op == "&"

    def test_left_associativity(self):
        node = parse_formula("=10-5-2")
        assert node.op == "-" and node.left.op == "-"

    def test_power_left_associative_like_excel(self):
        node = parse_formula("=2^3^2")
        assert node.op == "^" and isinstance(node.left, BinaryOp)

    def test_unary_minus(self):
        node = parse_formula("=-A1")
        assert isinstance(node, UnaryOp) and node.op == "-"

    def test_unary_plus_is_noop(self):
        assert parse_formula("=+5") == Number(5.0)

    def test_percent_postfix(self):
        node = parse_formula("=50%")
        assert isinstance(node, UnaryOp) and node.op == "%"

    def test_parentheses(self):
        node = parse_formula("=(1+2)*3")
        assert node.op == "*" and node.left.op == "+"


class TestFunctions:
    def test_no_args(self):
        node = parse_formula("=PI()")
        assert isinstance(node, FunctionCall) and node.args == []

    def test_args(self):
        node = parse_formula("=SUM(A1:A3,B1,5)")
        assert node.name == "SUM" and len(node.args) == 3

    def test_name_case_normalised(self):
        assert parse_formula("=sum(1)").name == "SUM"

    def test_nested(self):
        node = parse_formula("=IF(A1>0,SUM(B1:B9),MAX(C1,C2))")
        assert node.name == "IF"
        assert node.args[1].name == "SUM"

    def test_missing_close_paren(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=SUM(A1:A3")

    def test_trailing_garbage(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=1+2)")

    def test_empty_formula(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=")


class TestToFormula:
    @pytest.mark.parametrize(
        "text",
        [
            "SUM(A1:B3)",
            "IF(A3=A2,N2+M3,M3)",
            "VLOOKUP(D4,$A$1:$B$16,2,FALSE)",
            "-A1%",
            '"x"&"y"',
            "Sheet2!A1+1",
            "SUM($B$1:B4)*A1",
        ],
    )
    def test_round_trip_stable(self, text):
        first = parse_formula(text)
        second = parse_formula(first.to_formula())
        assert first == second


class TestShifted:
    def test_relative_shift(self):
        node = parse_formula("=SUM(A1:B3)+C1").shifted(1, 2)
        assert node.to_formula() == "(SUM(B3:C5)+D3)"

    def test_fixed_axes_stay(self):
        node = parse_formula("=SUM($A$1:B3)").shifted(1, 2)
        assert node.to_formula() == "SUM($A$1:C5)"

    def test_off_sheet_becomes_ref_error(self):
        node = parse_formula("=A1").shifted(0, -1)
        assert isinstance(node, ErrorLiteral) and node.code == "#REF!"

    def test_off_sheet_range_inside_function(self):
        node = parse_formula("=SUM(A1:B2)+1").shifted(-1, 0)
        assert "#REF!" in node.to_formula()
