"""The template compiler: closures ≡ interpreter, compile-once registry.

Observational identity of the compiled closures with the tree-walking
evaluator is pinned here on a hand-picked battery (the hypothesis-driven
engine-level differential lives in
``tests/engine/test_eval_differential.py``), alongside the registry
contract (one compilation per template key, bounded size, negative
caching of unsupported templates) and window-spec detection.
"""

import pytest

from repro.formula.compile import (
    CompilingEvaluator,
    TemplateRegistry,
    compile_template,
    window_spec,
)
from repro.formula.errors import ExcelError
from repro.formula.evaluator import Evaluator
from repro.formula.parser import parse_formula
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet, SheetResolver


@pytest.fixture
def sheet():
    s = Sheet("S")
    for r in range(1, 13):
        s.set_value((1, r), float(r))              # A: numbers
    s.set_value((1, 13), "text")
    s.set_value((1, 14), True)
    s.set_value((2, 1), 2.5)                       # B1
    s.set_value((2, 2), "7")                       # B2: numeric text
    s.set_formula((3, 1), "=1/0")                  # C1: stored error
    return s


BATTERY = [
    "=1+2*3",
    "=A1*2+A2",
    "=A1&\"x\"&A2",
    "=A1>A2",
    "=A1<=3",
    "=A1<>B2",
    "=-A3%",
    "=+A4",
    "=2^A2",
    "=(-2)^0.5",                    # complex -> #NUM!
    "=A1/0",                        # #DIV/0!
    "=#REF!+1",                     # error literal
    "=SUM(A1:A12)",
    "=SUM($A$1:A5)",
    "=SUM(A1:A14)",                 # text+bool cells skipped
    "=AVERAGE(A1:A12)",
    "=MIN(A1:A12)",
    "=MAX(A1:A12)",
    "=COUNT(A1:A14)",
    "=SUM(B1,B2,3)",                # scalar coercions
    "=SUM(C1:C1)",                  # error in range propagates
    "=IF(A1>0,A2,A3)",
    "=IF(A1<0,A2)",
    "=IFERROR(1/0,42)",
    "=IFERROR(A1,99)",
    "=ISERROR(C1)",
    "=ISERROR(A1)",
    "=AND(A1>0,A2>1)",
    "=OR(A1>5,A2>5)",
    "=VLOOKUP(3,A1:A12,1,FALSE)",
    "=ROUND(A5/A2,1)",
    "=CONCATENATE(A1,\"-\",A2)",
    "=B2+1",                        # text-number coercion
    "=A13+1",                       # #VALUE!
    "=A1:A1",                       # implicit intersection at top level
    "=A1:A3",                       # non-1x1 bare range -> #VALUE!
    "=UPPER(A13)",
]


def both(sheet, text, col=5, row=5):
    resolver = SheetResolver(sheet)
    ast = parse_formula(text)
    want = Evaluator(resolver).evaluate(ast, "S", col, row)
    template = compile_template(ast, col, row)
    assert template is not None, f"{text} unexpectedly unsupported"
    got = template.run(resolver, "S", col, row)
    return got, want


@pytest.mark.parametrize("text", BATTERY)
def test_compiled_matches_interpreter(sheet, text):
    got, want = both(sheet, text)
    assert type(got) is type(want)
    if isinstance(want, ExcelError):
        assert got.code == want.code
    else:
        assert got == want


@pytest.mark.parametrize("text", [
    "=A13+(1/0)",          # left coerces to #VALUE!, right evaluates #DIV/0!
    "=A13-(1/0)",
    "=A13*(1/0)",
    "=A13/(1/0)",
    "=A13^(1/0)",
    "=C1&(1/0)",           # left is a stored error
])
def test_binary_ops_evaluate_both_operands_before_coercing(sheet, text):
    """The interpreter evaluates both operands, then coerces; the error
    raised by the *right operand's evaluation* must win over the error
    the left operand's coercion would raise (regression: the compiled
    closures used to coerce left before evaluating right)."""
    got, want = both(sheet, text)
    assert isinstance(want, ExcelError)
    assert isinstance(got, ExcelError) and got.code == want.code


def test_relative_refs_shift_with_host(sheet):
    template = compile_template(parse_formula("=A1*10"), 2, 1)
    resolver = SheetResolver(sheet)
    # The same closure serves every host position of the family.
    for row in range(1, 8):
        assert template.run(resolver, "S", 2, row) == float(row) * 10


def test_unsupported_templates_return_none():
    assert compile_template(parse_formula("=NOSUCHFN(1)"), 1, 1) is None
    assert compile_template(parse_formula("=XOR(TRUE,FALSE)"), 1, 1) is None
    assert compile_template(parse_formula("=ROWS(A1:A5)"), 1, 1) is None


def test_arity_error_compiles_to_value_error(sheet):
    got, want = both(sheet, "=ABS(1,2)")
    assert isinstance(got, ExcelError) and got.code == want.code == "#VALUE!"


class TestWindowSpec:
    def test_prefix_window(self):
        spec = window_spec(parse_formula("=SUM($A$1:A9)"), 2, 9)
        assert spec.func == "SUM"
        assert spec.head_row.fixed and spec.head_row.value == 1
        assert not spec.tail_row.fixed and spec.tail_row.value == 0

    def test_sliding_window(self):
        spec = window_spec(parse_formula("=AVERAGE(A1:A5)"), 2, 5)
        assert spec.func == "AVERAGE"
        assert not spec.head_row.fixed and spec.head_row.value == -4
        assert not spec.tail_row.fixed and spec.tail_row.value == 0

    def test_avg_alias_normalises(self):
        assert window_spec(parse_formula("=AVG(A1:A5)"), 2, 5).func == "AVERAGE"

    def test_non_window_shapes_are_rejected(self):
        for text in ("=SUM(A1:A5)*2", "=SUM(A1:A5,B1)", "=SUM(A1)",
                     "=MEDIAN(A1:A5)", "=SUM(Data!A1:A5)"):
            assert window_spec(parse_formula(text), 2, 5) is None


class TestRegistry:
    def test_family_compiles_once(self):
        sheet = Sheet("S")
        for r in range(1, 101):
            sheet.set_value((1, r), float(r))
        fill_formula_column(sheet, 2, 1, 100, "=A1*2")
        registry = TemplateRegistry()
        evaluator = CompilingEvaluator(SheetResolver(sheet), registry=registry)
        for (col, row), cell in sheet.formula_cells():
            evaluator.evaluate_cell(cell, "S", col, row)
        assert registry.compilations == 1
        assert evaluator.stats.compiled_cells == 100

    def test_negative_cache_for_unsupported(self):
        sheet = Sheet("S")
        fill_formula_column(sheet, 1, 1, 20, "=XOR(TRUE,FALSE)")
        registry = TemplateRegistry()
        evaluator = CompilingEvaluator(SheetResolver(sheet), registry=registry)
        for (col, row), cell in sheet.formula_cells():
            assert evaluator.evaluate_cell(cell, "S", col, row) is True
        assert registry.compilations == 1          # tried once, cached the miss
        assert evaluator.stats.interpreted_cells == 20

    def test_bounded_eviction(self):
        registry = TemplateRegistry(max_templates=8)
        for i in range(40):
            ast = parse_formula(f"=A1+{i}")
            registry.template_for(f"key{i}", ast, 2, 1)
        assert len(registry) <= 8
