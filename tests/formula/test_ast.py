"""Unit tests for AST node behaviour (walk order, equality, rendering)."""

from repro.formula.ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Number,
    RangeNode,
    String,
    UnaryOp,
    walk,
)
from repro.formula.parser import parse_formula
from repro.grid.ref import CellRef


class TestWalk:
    def test_preorder(self):
        ast = parse_formula("=SUM(A1,B2+C3)")
        kinds = [type(node).__name__ for node in walk(ast)]
        assert kinds == ["FunctionCall", "CellNode", "BinaryOp", "CellNode", "CellNode"]

    def test_leaf(self):
        assert [n for n in walk(Number(1.0))] == [Number(1.0)]


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert parse_formula("=A1+B2") == parse_formula("=A1+B2")
        assert parse_formula("=A1+B2") != parse_formula("=A1+B3")

    def test_type_sensitive(self):
        assert Number(1.0) != String("1")

    def test_hashable(self):
        seen = {parse_formula("=A1"), parse_formula("=A1"), parse_formula("=A2")}
        assert len(seen) == 2


class TestRendering:
    def test_number_integral(self):
        assert Number(42.0).to_formula() == "42"
        assert Number(2.5).to_formula() == "2.5"

    def test_string_escaping(self):
        assert String('say "hi"').to_formula() == '"say ""hi"""'

    def test_boolean(self):
        assert Boolean(True).to_formula() == "TRUE"

    def test_error(self):
        assert ErrorLiteral("#N/A").to_formula() == "#N/A"

    def test_sheet_prefix_quoting(self):
        node = CellNode(CellRef.from_a1("A1"), sheet="My Sheet")
        assert node.to_formula() == "'My Sheet'!A1"
        node = CellNode(CellRef.from_a1("A1"), sheet="Data2")
        assert node.to_formula() == "Data2!A1"

    def test_range_with_sheet(self):
        node = RangeNode(CellRef.from_a1("A1"), CellRef.from_a1("B2"), sheet="S")
        assert node.to_formula() == "S!A1:B2"

    def test_percent_and_unary(self):
        assert UnaryOp("%", Number(50.0)).to_formula() == "50%"
        assert UnaryOp("-", Number(5.0)).to_formula() == "-5"

    def test_nested_function(self):
        ast = FunctionCall("IF", [Boolean(True), Number(1.0), Number(2.0)])
        assert ast.to_formula() == "IF(TRUE,1,2)"


class TestShifted:
    def test_binary_shifts_both_sides(self):
        ast = parse_formula("=A1+B2").shifted(1, 1)
        assert ast.to_formula() == "(B2+C3)"

    def test_function_args_shift(self):
        ast = parse_formula("=SUM(A1:A3,B1)").shifted(0, 2)
        assert ast.to_formula() == "SUM(A3:A5,B3)"

    def test_literals_unchanged(self):
        ast = parse_formula('=1+"x"').shifted(5, 5)
        assert ast.to_formula() == '(1+"x")'

    def test_range_to_range_conversion(self):
        node = parse_formula("=B3:A1")
        assert node.to_range().to_a1() == "A1:B3"
