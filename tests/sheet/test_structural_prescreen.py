"""The lazy-formula prescreen never changes a structural edit's outcome.

``sheet.structural._may_touch`` lets an edit skip parsing formulas whose
source text provably cannot be affected.  The differential here pins the
contract against the real oracle: one arm edits with the prescreen
active (fast paths taken wherever the text allows), the other with
``_may_touch`` forced to ``True`` — every formula goes down the full
AST-rewrite path, exactly the pre-prescreen behaviour.  Cells, formula
texts-by-meaning, values, and report sets must be identical for every
op, over formulas chosen to sit on both sides of the screen.  (Both
arms must *not* share a code path: a sanity test below proves the fast
path really engages by checking that untouched formulas stay unparsed.)
"""

from unittest import mock

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sheet import structural
from repro.sheet.sheet import Sheet
from repro.sheet.structural import _may_touch

FORMULAS = (
    "=A1+B2",
    "=SUM(A1:A8)",
    "=SUM($A$4:$B$9)",
    "=A10*2",
    "=ROW(A1)",
    "=COLUMN(B2)+1",
    "=IF(A3>0,SUM(B1:B6),C7)",
    '=IF(A1>0,"C9 high",B2)',     # reference-looking text in a string
    "=LOG10(A2)",                  # digits inside a function name
    "=Other!C9+A1",                # qualified into another sheet
)

OPS = (
    ("insert_rows", 3, 2),
    ("delete_rows", 4, 2),
    ("insert_columns", 2, 1),
    ("delete_columns", 2, 1),
)


def build(formulas) -> Sheet:
    sheet = Sheet("Main")
    for r in range(1, 11):
        sheet.set_value((1, r), float(r))
        sheet.set_value((2, r), float(r * 3))
    for i, text in enumerate(formulas):
        sheet.set_formula((3 + i % 3, 1 + i), text)
    return sheet


def run_op(sheet: Sheet, op: str, index: int, count: int, *, prescreen: bool):
    """Apply one op with the prescreen active, or forced off (every
    formula takes the full AST-rewrite path — the oracle)."""
    if prescreen:
        return getattr(structural, op)(sheet, index, count)
    with mock.patch.object(structural, "_may_touch",
                           lambda text, axis, at: True):
        return getattr(structural, op)(sheet, index, count)


def outcome(sheet: Sheet, report):
    return (
        {pos: (cell.formula_text if cell.is_formula else None, cell.value)
         for pos, cell in sheet.items()},
        report.moved, report.rewritten, report.resized,
        report.volatile, report.ref_struck, report.removed,
    )


def canonicalize(state):
    """Formula text compared by parsed meaning: the fast path keeps the
    verbatim source, the AST path renders canonically."""
    from repro.formula.parser import parse_formula

    cells, *rest = state
    canon = {}
    for pos, (text, value) in cells.items():
        key = parse_formula(text).to_formula() if text is not None else None
        canon[pos] = (key, value)
    return (canon, *rest)


@pytest.mark.parametrize("op,index,count", OPS)
def test_prescreened_equals_full_ast_path(op, index, count):
    fast_sheet = build(FORMULAS)
    oracle_sheet = build(FORMULAS)
    fast_report = run_op(fast_sheet, op, index, count, prescreen=True)
    oracle_report = run_op(oracle_sheet, op, index, count, prescreen=False)
    assert canonicalize(outcome(fast_sheet, fast_report)) == \
        canonicalize(outcome(oracle_sheet, oracle_report))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_prescreened_equals_full_ast_path_generated(data):
    formulas = data.draw(st.lists(st.sampled_from(FORMULAS), min_size=1,
                                  max_size=6))
    op = data.draw(st.sampled_from([o for o, _, _ in OPS]))
    index = data.draw(st.integers(1, 8))
    count = data.draw(st.integers(1, 3))
    fast_sheet = build(formulas)
    oracle_sheet = build(formulas)
    fast_report = run_op(fast_sheet, op, index, count, prescreen=True)
    oracle_report = run_op(oracle_sheet, op, index, count, prescreen=False)
    assert canonicalize(outcome(fast_sheet, fast_report)) == \
        canonicalize(outcome(oracle_sheet, oracle_report))


def test_fast_path_really_engages():
    """Untouched formulas on a lazily parsed sheet stay *unparsed* after
    the edit — proof the differential above compares two distinct paths
    (and the proof the optimisation exists at all)."""
    sheet = build([])
    sheet.set_formula((3, 1), "=SUM(A1:A3)")       # far above the edit line
    sheet.set_formula((4, 9), "=A9+B9")            # moves, refs shift
    structural.insert_rows(sheet, 8, 2)
    untouched = sheet.cell_at((3, 1))
    assert untouched._formula_ast is None          # never parsed
    moved = sheet.cell_at((4, 11))
    assert moved is not None
    assert "A11" in moved.formula_text and "B11" in moved.formula_text


def test_cross_sheet_prescreen_sees_escaped_sheet_names():
    """A sheet name with an apostrophe appears in formula source only in
    its escaped spelling ('It''s'); the textual shortcut must still find
    it, or inbound references silently stop being rewritten."""
    from repro.sheet.structural import rewrite_for_edit

    sheet = Sheet("Other")
    sheet.set_formula("A1", "='It''s'!A5+1")
    # Parse first so the stored text is the canonical rendering.
    assert sheet.cell_at("A1").references[0].sheet == "It's"
    report = rewrite_for_edit(sheet, "It's", "insert_rows", 2, 3)
    assert report.rewritten == {(1, 1)}
    assert sheet.cell_at("A1").references[0].range.r1 == 8


class TestMayTouch:
    def test_far_references_screened_out(self):
        assert not _may_touch("SUM(A1:A5)", "row", 6)
        assert not _may_touch("A1+B2*C3", "row", 4)
        assert not _may_touch("A1+B2", "col", 3)

    def test_crossing_references_force_parse(self):
        assert _may_touch("SUM(A1:A9)", "row", 6)
        assert _may_touch("A10*2", "row", 10)
        assert _may_touch("C1+A1", "col", 3)
        assert _may_touch("$AB$3", "col", 5)

    def test_position_functions_force_parse(self):
        assert _may_touch("ROW(A1)", "row", 99)
        assert _may_touch("column(A1)", "col", 99)
        assert _may_touch("ROW()", "row", 99)

    def test_function_digits_do_not_count_as_rows(self):
        assert not _may_touch("LOG10(A1)", "row", 5)

    def test_string_literals_are_conservative(self):
        # A ref-looking token inside a string just forces the slow path.
        assert _may_touch('IF(A1>0,"Z99",B1)', "row", 50)

    def test_qualified_references_are_conservative(self):
        assert _may_touch("Other!C9+A1", "row", 5)
