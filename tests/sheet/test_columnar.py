"""Unit tests for the typed columnar value store.

The store promises two things: dict-of-Cells drop-in behaviour (the
Sheet accessor surface behaves identically on either store) and
*write-through* views — a ``ColumnarCell`` can never go stale relative
to the arrays, because it has no shadow storage of its own.
"""

import pytest

from repro.formula.errors import ExcelError
from repro.grid.range import Range
from repro.sheet.columnar import (
    TAG_BOOL,
    TAG_EMPTY,
    TAG_ERROR,
    TAG_NUMBER,
    TAG_STRING,
    ColumnarCell,
    ColumnarStore,
)
from repro.sheet.sheet import Sheet


def columnar_sheet(name="S"):
    sheet = Sheet(name, store="columnar")
    assert sheet.store_kind == "columnar"
    return sheet


class TestTagPlane:
    def test_value_kinds_round_trip(self):
        store = ColumnarStore()
        samples = {
            (1, 1): 3.5,
            (1, 2): "text",
            (1, 3): True,
            (1, 4): False,
            (1, 5): ExcelError("#DIV/0!"),
        }
        for (col, row), value in samples.items():
            store.write_pure(col, row, value)
        for (col, row), want in samples.items():
            got = store.read_value(col, row)
            if isinstance(want, ExcelError):
                assert isinstance(got, ExcelError) and got.code == want.code
            else:
                assert type(got) is type(want) and got == want

    def test_integers_canonicalise_to_float64(self):
        store = ColumnarStore()
        store.write_pure(1, 1, 42)
        got = store.read_value(1, 1)
        assert type(got) is float and got == 42.0

    def test_non_number_slots_keep_zero_values(self):
        """Invariant the vectorized sweep relies on: the raw float lane
        under a STRING/ERROR/EMPTY tag is exactly 0.0, and BOOL is 0/1."""
        store = ColumnarStore()
        store.write_pure(1, 1, "txt")
        store.write_pure(1, 2, ExcelError("#VALUE!"))
        store.write_pure(1, 3, True)
        store.write_pure(1, 5, 9.0)
        store.write_pure(1, 5, None)          # erase after occupying
        values, tags = store.column_buffers(1)
        assert list(tags[:5]) == [TAG_STRING, TAG_ERROR, TAG_BOOL,
                                  TAG_EMPTY, TAG_EMPTY]
        assert list(values[:5]) == [0.0, 0.0, 1.0, 0.0, 0.0]

    def test_side_table_evicted_on_overwrite(self):
        store = ColumnarStore()
        store.write_pure(2, 1, "old-string")
        store.write_pure(2, 1, 7.0)
        column = store.ensure_column(2, 1)
        assert column.side == {}
        assert store.read_value(2, 1) == 7.0

    def test_out_of_band_reads_are_none(self):
        store = ColumnarStore()
        store.write_pure(1, 1, 1.0)
        assert store.read_value(1, 999) is None
        assert store.read_value(999, 1) is None


class TestWriteThroughViews:
    def test_view_write_is_visible_to_bulk_reads(self):
        """Satellite regression: assigning ``cell.value`` on a
        materialised view must update the arrays, not a shadow slot."""
        sheet = columnar_sheet()
        sheet.set_value("A1", 10.0)
        view = sheet.cell_at("A1")
        view.value = 99.0
        # Every read path sees the write: scalar, raw, range iteration.
        assert sheet.get_value("A1") == 99.0
        assert sheet.raw_value(1, 1) == 99.0
        assert list(sheet.resolver_iter_cells(None, Range.cell(1, 1))) == [
            (1, 1, 99.0)
        ]
        # ...and a second, independently-materialised view agrees.
        assert sheet.cell_at("A1").value == 99.0

    def test_store_write_is_visible_to_old_views(self):
        sheet = columnar_sheet()
        sheet.set_value("A1", 1.0)
        view = sheet.cell_at("A1")
        sheet.set_value("A1", 2.0)
        assert view.value == 2.0

    def test_formula_cell_value_writes_through(self):
        sheet = columnar_sheet()
        sheet.set_formula("B1", "=A1+1")
        cell = sheet.cell_at("B1")
        assert cell.is_formula and cell.value is None
        cell.value = 5.0                       # what the engine does
        assert sheet.get_value("B1") == 5.0
        assert sheet.raw_value(2, 1) == 5.0
        # Still a formula: occupancy and registration survive the write.
        assert sheet.formula_at("B1") is cell

    def test_view_none_write_erases_pure_cell(self):
        sheet = columnar_sheet()
        sheet.set_value("A1", 1.0)
        sheet.cell_at("A1").value = None
        assert sheet.cell_at("A1") is None
        assert len(sheet) == 0

    def test_view_position_rebinds_after_structural_edit(self):
        sheet = columnar_sheet()
        sheet.set_formula("A5", "=1+1")
        cell = sheet.formula_at("A5")
        sheet._cells.structural_edit("row", "insert", 2, 3)
        assert cell.position == (1, 8)
        assert sheet.formula_at((1, 8)) is cell


class TestMappingFacade:
    def test_len_counts_formulas_with_none_value(self):
        store = ColumnarStore()
        store.put_formula((1, 1), formula_text="A2+1")
        assert len(store) == 1 and (1, 1) in store
        store.write_pure(1, 2, 5.0)
        assert len(store) == 2
        # Overwriting the formula with a pure value keeps the count.
        store.write_pure(1, 1, 9.0)
        assert len(store) == 2 and store.formula_count == 0

    def test_iteration_covers_both_planes(self):
        store = ColumnarStore()
        store.write_pure(1, 3, 1.0)
        store.put_formula((2, 1), formula_text="A3*2")
        assert set(store) == {(1, 3), (2, 1)}
        items = dict(store.items())
        assert items[(1, 3)].value == 1.0
        assert items[(2, 1)].is_formula

    def test_pop_and_delitem(self):
        store = ColumnarStore()
        store.write_pure(1, 1, 1.0)
        popped = store.pop((1, 1))
        assert popped.value is None            # view reads post-erase store
        assert store.pop((1, 1), "sentinel") == "sentinel"
        with pytest.raises(KeyError):
            del store[(1, 1)]

    def test_setitem_adopts_foreign_cell(self):
        from repro.sheet.cell import Cell

        store = ColumnarStore()
        store[(1, 1)] = Cell(value=3.0)
        store[(1, 2)] = Cell(formula_text="A1*2")
        assert store.read_value(1, 1) == 3.0
        assert store.formula_at((1, 2)).formula_text == "A1*2"

    def test_setitem_self_view_is_safe(self):
        store = ColumnarStore()
        store.write_pure(1, 1, 4.0)
        view = store[(1, 1)]
        store[(2, 9)] = view                   # adopt a view of this store
        assert store.read_value(2, 9) == 4.0
        assert isinstance(view, ColumnarCell)


class TestStructuralEdits:
    def test_row_delete_splices_and_counts(self):
        store = ColumnarStore()
        for r in range(1, 11):
            store.write_pure(1, r, float(r))
        store.write_pure(1, 5, "five")
        removed = store.structural_edit("row", "delete", 4, 3)
        assert removed == 3
        assert len(store) == 7
        # Row 7 (was row 10) slid up; the side entry for "five" is gone.
        assert store.read_value(1, 7) == 10.0
        assert store.ensure_column(1, 1).side == {}

    def test_column_insert_rekeys(self):
        store = ColumnarStore()
        store.write_pure(2, 1, 1.0)
        store.put_formula((3, 1), formula_text="B1*2", value=2.0)
        store.structural_edit("col", "insert", 2, 2)
        assert store.read_value(4, 1) == 1.0
        cell = store.formula_at((5, 1))
        assert cell is not None and cell.value == 2.0
        assert store.read_value(2, 1) is None

    def test_formula_with_none_value_counts_in_delete(self):
        store = ColumnarStore()
        store.put_formula((1, 2), formula_text="1+1")   # cached value None
        store.write_pure(1, 3, 1.0)
        removed = store.structural_edit("row", "delete", 1, 3)
        assert removed == 2
        assert len(store) == 0 and store.formula_count == 0


class TestExportImport:
    def test_round_trip_skips_formula_rows(self):
        store = ColumnarStore()
        store.write_pure(1, 2, 1.5)
        store.write_pure(1, 4, "txt")
        store.put_formula((1, 3), formula_text="A2*2", value=3.0)
        (col, start_row, tags, values, side), = store.export_value_columns()
        assert (col, start_row) == (1, 2)
        assert list(tags) == [TAG_NUMBER, TAG_EMPTY, TAG_STRING]
        assert side == {2: "txt"}
        fresh = ColumnarStore()
        fresh.import_column(col, start_row, tags, values, side)
        assert fresh.read_value(1, 2) == 1.5
        assert fresh.read_value(1, 3) is None   # formula row not exported
        assert fresh.read_value(1, 4) == "txt"
        assert len(fresh) == 2

    def test_import_rejects_length_mismatch(self):
        from array import array

        store = ColumnarStore()
        with pytest.raises(ValueError):
            store.import_column(1, 1, b"\x01\x01", array("d", [1.0]), {})


class TestSheetParity:
    """The Sheet accessor surface behaves identically on either store."""

    OPS = (
        ("A1", 1.0), ("A2", "x"), ("B1", True), ("C7", -2.5),
        ("A1", None), ("B1", 8.0),
    )

    def build(self, kind):
        sheet = Sheet("P", store=kind)
        for target, value in self.OPS:
            sheet.set_value(target, value)
        sheet.set_formula("D1", "=B1*2")
        return sheet

    def test_accessor_parity(self):
        a, b = self.build("columnar"), self.build("object")
        assert set(a.positions()) == set(b.positions())
        assert len(a) == len(b)
        assert a.used_range() == b.used_range()
        assert a.formula_count == b.formula_count
        for pos in a.positions():
            assert a.get_value(pos) == b.get_value(pos), pos
        deps_a = {(d.prec, d.dep) for d in a.iter_dependencies()}
        deps_b = {(d.prec, d.dep) for d in b.iter_dependencies()}
        assert deps_a == deps_b

    def test_resolver_iteration_order_matches(self):
        a, b = self.build("columnar"), self.build("object")
        rng = Range(1, 1, 4, 8)
        assert list(a.resolver_iter_cells(None, rng)) == list(
            b.resolver_iter_cells(None, rng)
        )

    def test_unknown_store_kind_rejected(self):
        with pytest.raises(ValueError):
            Sheet("S", store="arrow")
