"""Unit tests for autofill: the source of tabular locality."""

import pytest

from repro.grid.range import Range
from repro.sheet.autofill import autofill, fill_formula_column, fill_formula_row
from repro.sheet.sheet import Sheet


class TestAutofill:
    def test_fill_down_relative(self):
        sheet = Sheet()
        sheet.set_formula("C1", "=SUM(A1:B3)")
        autofill(sheet, "C1", Range.from_a1("C1:C4"))
        assert sheet.cell_at("C2").formula_text == "SUM(A2:B4)"
        assert sheet.cell_at("C4").formula_text == "SUM(A4:B6)"

    def test_fill_down_fixed_tail_gives_rf(self):
        sheet = Sheet()
        sheet.set_formula("C1", "=SUM(A1:$B$4)")
        autofill(sheet, "C1", Range.from_a1("C1:C3"))
        assert sheet.cell_at("C3").formula_text == "SUM(A3:$B$4)"

    def test_fill_down_fixed_head_gives_fr(self):
        sheet = Sheet()
        sheet.set_formula("C1", "=SUM($A$1:B1)")
        autofill(sheet, "C1", Range.from_a1("C1:C3"))
        assert sheet.cell_at("C3").formula_text == "SUM($A$1:B3)"

    def test_fill_right(self):
        sheet = Sheet()
        sheet.set_formula("A2", "=A1*2")
        autofill(sheet, "A2", Range.from_a1("A2:D2"))
        assert sheet.cell_at("D2").formula_text == "(D1*2)"

    def test_fill_value_copies(self):
        sheet = Sheet()
        sheet.set_value("A1", 7.0)
        autofill(sheet, "A1", Range.from_a1("A1:A5"))
        assert all(sheet.get_value((1, r)) == 7.0 for r in range(1, 6))

    def test_source_cell_untouched(self):
        sheet = Sheet()
        sheet.set_formula("C2", "=A2")
        written = autofill(sheet, "C2", Range.from_a1("C1:C4"))
        assert written == 3
        assert sheet.cell_at("C2").formula_text == "A2"
        assert sheet.cell_at("C1").formula_text == "A1"

    def test_empty_source_raises(self):
        sheet = Sheet()
        with pytest.raises(ValueError):
            autofill(sheet, "A1", Range.from_a1("A1:A3"))

    def test_off_sheet_shift_writes_ref_error(self):
        sheet = Sheet()
        sheet.set_formula("B2", "=A1")
        autofill(sheet, "B2", Range.from_a1("B1:B2"))
        assert sheet.cell_at("B1").formula_text == "#REF!"


class TestFillHelpers:
    def test_fill_formula_column(self):
        sheet = Sheet()
        count = fill_formula_column(sheet, 3, 1, 10, "=A1+B1")
        assert count == 10
        assert sheet.cell_at((3, 10)).formula_text == "(A10+B10)"

    def test_fill_formula_column_single_row(self):
        sheet = Sheet()
        assert fill_formula_column(sheet, 3, 5, 5, "=A5") == 1

    def test_fill_formula_row(self):
        sheet = Sheet()
        count = fill_formula_row(sheet, 2, 1, 5, "=A1*2")
        assert count == 5
        assert sheet.cell_at((5, 2)).formula_text == "(E1*2)"

    def test_generated_dependencies_follow_rr(self):
        sheet = Sheet()
        fill_formula_column(sheet, 3, 1, 50, "=SUM(A1:B2)")
        rels = set()
        for dep in sheet.iter_dependencies():
            rels.add((dep.prec.c1 - dep.dep.c1, dep.prec.r1 - dep.dep.r1,
                      dep.prec.c2 - dep.dep.c1, dep.prec.r2 - dep.dep.r1))
        assert rels == {(-2, 0, -1, 1)}
