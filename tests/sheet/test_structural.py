"""Unit tests for structural sheet edits (insert/delete rows/columns)."""

import pytest

from repro.grid.range import Range
from repro.sheet.sheet import Sheet
from repro.sheet.structural import (
    delete_columns,
    delete_rows,
    insert_columns,
    insert_rows,
    shift_range_for_delete,
    shift_range_for_insert,
)


class TestRangeArithmetic:
    def test_insert_below_range(self):
        rng = Range.from_a1("A1:A3")
        assert shift_range_for_insert(rng, 5, 2) == rng

    def test_insert_above_range_shifts(self):
        assert shift_range_for_insert(Range.from_a1("A5:A8"), 2, 3) == Range.from_a1("A8:A11")

    def test_insert_inside_stretches(self):
        assert shift_range_for_insert(Range.from_a1("A2:A6"), 4, 2) == Range.from_a1("A2:A8")

    def test_insert_at_head_shifts(self):
        assert shift_range_for_insert(Range.from_a1("A4:A6"), 4, 1) == Range.from_a1("A5:A7")

    def test_delete_below(self):
        rng = Range.from_a1("A1:A3")
        assert shift_range_for_delete(rng, 5, 2) == rng

    def test_delete_above_shifts_up(self):
        assert shift_range_for_delete(Range.from_a1("A8:A9"), 2, 3) == Range.from_a1("A5:A6")

    def test_delete_overlap_shrinks(self):
        assert shift_range_for_delete(Range.from_a1("A2:A8"), 4, 2) == Range.from_a1("A2:A6")
        assert shift_range_for_delete(Range.from_a1("A4:A8"), 2, 4) == Range.from_a1("A2:A4")

    def test_delete_whole_range_is_ref_error(self):
        assert shift_range_for_delete(Range.from_a1("A4:A5"), 3, 4) is None

    def test_column_axis(self):
        assert shift_range_for_insert(Range.from_a1("C1:E1"), 2, 1, "col") == Range.from_a1("D1:F1")
        assert shift_range_for_delete(Range.from_a1("C1:E1"), 4, 1, "col") == Range.from_a1("C1:D1")


class TestSheetInsertRows:
    def make(self) -> Sheet:
        sheet = Sheet("s")
        for r in range(1, 7):
            sheet.set_value((1, r), float(r))
        sheet.set_formula("B2", "=A2*2")
        sheet.set_formula("B6", "=SUM(A1:A6)")
        sheet.set_formula("C1", "=SUM($A$2:$A$4)")
        return sheet

    def test_cells_move(self):
        sheet = self.make()
        insert_rows(sheet, 3, 2)
        assert sheet.get_value((1, 2)) == 2.0     # above: unchanged
        assert sheet.get_value((1, 3)) is None    # inserted blank
        assert sheet.get_value((1, 5)) == 3.0     # shifted down

    def test_references_rewritten(self):
        sheet = self.make()
        insert_rows(sheet, 3, 2)
        assert sheet.cell_at("B2").formula_text == "(A2*2)"        # above edit
        assert sheet.cell_at("B8").formula_text == "SUM(A1:A8)"   # stretched
        # Absolute references also move under structural edits.
        assert sheet.cell_at("C1").formula_text == "SUM($A$2:$A$6)"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            insert_rows(Sheet(), 0, 1)
        with pytest.raises(ValueError):
            insert_rows(Sheet(), 1, 0)


class TestSheetDeleteRows:
    def make(self) -> Sheet:
        sheet = Sheet("s")
        for r in range(1, 9):
            sheet.set_value((1, r), float(r))
        sheet.set_formula("B8", "=SUM(A1:A8)")
        sheet.set_formula("C1", "=A5")
        sheet.set_formula("C2", "=SUM(A3:A4)")
        sheet.set_formula("D4", "=A1")     # formula inside deleted band
        return sheet

    def test_cells_and_formulas_move(self):
        sheet = self.make()
        delete_rows(sheet, 3, 2)   # rows 3-4 gone
        assert sheet.get_value((1, 3)) == 5.0
        assert sheet.cell_at("B6").formula_text == "SUM(A1:A6)"   # shrunk
        assert sheet.cell_at("C1").formula_text == "A3"           # shifted

    def test_reference_into_deleted_band_is_ref_error(self):
        sheet = self.make()
        delete_rows(sheet, 3, 2)
        assert sheet.cell_at("C2").formula_text == "SUM(#REF!)"

    def test_formula_in_deleted_band_removed(self):
        sheet = self.make()
        delete_rows(sheet, 3, 2)
        assert sheet.cell_at("D4") is None
        assert all(pos != (4, 4) for pos, _ in sheet.items())


class TestColumns:
    def test_insert_columns(self):
        sheet = Sheet("s")
        sheet.set_value("A1", 1.0)
        sheet.set_value("B1", 2.0)
        sheet.set_formula("C1", "=A1+B1")
        insert_columns(sheet, 2, 1)
        assert sheet.get_value("C1") == 2.0
        assert sheet.cell_at("D1").formula_text == "(A1+C1)"

    def test_delete_columns(self):
        sheet = Sheet("s")
        for c in range(1, 5):
            sheet.set_value((c, 1), float(c))
        sheet.set_formula("A2", "=SUM(A1:D1)")
        sheet.set_formula("B2", "=C1")
        delete_columns(sheet, 3, 1)
        assert sheet.cell_at("A2").formula_text == "SUM(A1:C1)"
        assert sheet.cell_at("B2").formula_text == "#REF!"
