"""Unit tests for structural sheet edits (insert/delete rows/columns)."""

import pytest

from repro.formula.errors import REF_ERROR
from repro.grid.range import Range
from repro.sheet.sheet import Sheet
from repro.sheet.structural import (
    delete_columns,
    delete_rows,
    insert_columns,
    insert_rows,
    rewrite_for_edit,
    shift_range_for_delete,
    shift_range_for_insert,
)
from repro.sheet.workbook import Workbook


class TestRangeArithmetic:
    def test_insert_below_range(self):
        rng = Range.from_a1("A1:A3")
        assert shift_range_for_insert(rng, 5, 2) == rng

    def test_insert_above_range_shifts(self):
        assert shift_range_for_insert(Range.from_a1("A5:A8"), 2, 3) == Range.from_a1("A8:A11")

    def test_insert_inside_stretches(self):
        assert shift_range_for_insert(Range.from_a1("A2:A6"), 4, 2) == Range.from_a1("A2:A8")

    def test_insert_at_head_shifts(self):
        assert shift_range_for_insert(Range.from_a1("A4:A6"), 4, 1) == Range.from_a1("A5:A7")

    def test_delete_below(self):
        rng = Range.from_a1("A1:A3")
        assert shift_range_for_delete(rng, 5, 2) == rng

    def test_delete_above_shifts_up(self):
        assert shift_range_for_delete(Range.from_a1("A8:A9"), 2, 3) == Range.from_a1("A5:A6")

    def test_delete_overlap_shrinks(self):
        assert shift_range_for_delete(Range.from_a1("A2:A8"), 4, 2) == Range.from_a1("A2:A6")
        assert shift_range_for_delete(Range.from_a1("A4:A8"), 2, 4) == Range.from_a1("A2:A4")

    def test_delete_whole_range_is_ref_error(self):
        assert shift_range_for_delete(Range.from_a1("A4:A5"), 3, 4) is None

    def test_column_axis(self):
        assert shift_range_for_insert(Range.from_a1("C1:E1"), 2, 1, "col") == Range.from_a1("D1:F1")
        assert shift_range_for_delete(Range.from_a1("C1:E1"), 4, 1, "col") == Range.from_a1("C1:D1")


class TestSheetInsertRows:
    def make(self) -> Sheet:
        sheet = Sheet("s")
        for r in range(1, 7):
            sheet.set_value((1, r), float(r))
        sheet.set_formula("B2", "=A2*2")
        sheet.set_formula("B6", "=SUM(A1:A6)")
        sheet.set_formula("C1", "=SUM($A$2:$A$4)")
        return sheet

    def test_cells_move(self):
        sheet = self.make()
        insert_rows(sheet, 3, 2)
        assert sheet.get_value((1, 2)) == 2.0     # above: unchanged
        assert sheet.get_value((1, 3)) is None    # inserted blank
        assert sheet.get_value((1, 5)) == 3.0     # shifted down

    def test_references_rewritten(self):
        sheet = self.make()
        insert_rows(sheet, 3, 2)
        # Above the edit: untouched — the cell (and its source text) survive.
        assert sheet.cell_at("B2").formula_text == "A2*2"
        assert sheet.cell_at("B8").formula_text == "SUM(A1:A8)"   # stretched
        # Absolute references also move under structural edits.
        assert sheet.cell_at("C1").formula_text == "SUM($A$2:$A$6)"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            insert_rows(Sheet(), 0, 1)
        with pytest.raises(ValueError):
            insert_rows(Sheet(), 1, 0)


class TestSheetDeleteRows:
    def make(self) -> Sheet:
        sheet = Sheet("s")
        for r in range(1, 9):
            sheet.set_value((1, r), float(r))
        sheet.set_formula("B8", "=SUM(A1:A8)")
        sheet.set_formula("C1", "=A5")
        sheet.set_formula("C2", "=SUM(A3:A4)")
        sheet.set_formula("D4", "=A1")     # formula inside deleted band
        return sheet

    def test_cells_and_formulas_move(self):
        sheet = self.make()
        delete_rows(sheet, 3, 2)   # rows 3-4 gone
        assert sheet.get_value((1, 3)) == 5.0
        assert sheet.cell_at("B6").formula_text == "SUM(A1:A6)"   # shrunk
        assert sheet.cell_at("C1").formula_text == "A3"           # shifted

    def test_reference_into_deleted_band_is_ref_error(self):
        sheet = self.make()
        delete_rows(sheet, 3, 2)
        assert sheet.cell_at("C2").formula_text == "SUM(#REF!)"

    def test_formula_in_deleted_band_removed(self):
        sheet = self.make()
        delete_rows(sheet, 3, 2)
        assert sheet.cell_at("D4") is None
        assert all(pos != (4, 4) for pos, _ in sheet.items())


class TestCrossSheetReferences:
    """Regression tests: edits are sheet-scoped in both directions."""

    def test_other_sheet_reference_never_shifts(self):
        # A formula on the edited sheet referencing Sheet2 must not move
        # its Sheet2 reference when Sheet1 rows shift.
        sheet = Sheet("Sheet1")
        sheet.set_value("A5", 1.0)
        sheet.set_formula("B5", "=Sheet2!A5+A5")
        insert_rows(sheet, 3, 2)
        assert sheet.cell_at("B7").formula_text == "(Sheet2!A5+A7)"

    def test_self_qualified_reference_shifts(self):
        sheet = Sheet("Sheet1")
        sheet.set_formula("B1", "=Sheet1!A5")
        insert_rows(sheet, 3, 2)
        assert sheet.cell_at("B1").formula_text == "Sheet1!A7"

    def test_other_sheet_reference_survives_delete(self):
        sheet = Sheet("Sheet1")
        sheet.set_formula("B1", "=SUM(Sheet2!A3:A4)")
        delete_rows(sheet, 3, 2)
        assert sheet.cell_at("B1").formula_text == "SUM(Sheet2!A3:A4)"

    def test_rewrite_for_edit_shifts_inbound_references(self):
        # A formula on Sheet2 referencing the edited Sheet1 must shift.
        other = Sheet("Sheet2")
        other.set_formula("B1", "=Sheet1!A5*2")
        other.set_formula("B2", "=Sheet2!C1+A9")   # own-sheet refs untouched
        report = rewrite_for_edit(other, "Sheet1", "insert_rows", 3, 2)
        assert other.cell_at("B1").formula_text == "(Sheet1!A7*2)"
        assert other.cell_at("B2").formula_text == "Sheet2!C1+A9"  # untouched
        assert report.rewritten == {(2, 1)}
        assert not report.moved and not report.ref_struck

    def test_rewrite_for_edit_strikes_deleted_band(self):
        other = Sheet("Sheet2")
        other.set_formula("B1", "=Sheet1!A5")
        report = rewrite_for_edit(other, "Sheet1", "delete_rows", 5, 1)
        assert other.cell_at("B1").formula_text == REF_ERROR.code
        assert report.ref_struck == {(2, 1)}

    def test_rewrite_for_edit_rejects_the_edited_sheet(self):
        sheet = Sheet("Sheet1")
        with pytest.raises(ValueError):
            rewrite_for_edit(sheet, "Sheet1", "insert_rows", 1, 1)


class TestWorkbookEdits:
    def make(self) -> Workbook:
        workbook = Workbook("w")
        ledger = workbook.add_sheet("Ledger")
        for r in range(1, 9):
            ledger.set_value((1, r), float(r))
        ledger.set_formula("B8", "=SUM(A1:A8)")
        summary = workbook.add_sheet("Summary")
        summary.set_formula("A1", "=Ledger!A6")
        summary.set_formula("A2", "=Summary!A1")
        return workbook

    def test_insert_rewrites_both_sheets(self):
        workbook = self.make()
        report = workbook.insert_rows("Ledger", 3, 2)
        assert workbook.sheet("Ledger").cell_at("B10").formula_text == "SUM(A1:A10)"
        assert workbook.sheet("Summary").cell_at("A1").formula_text == "Ledger!A8"
        assert workbook.sheet("Summary").cell_at("A2").formula_text == "Summary!A1"
        assert report.cross_sheet_rewrites == 1
        assert report.moved == 1      # B8 -> B10
        assert report.sheet == "Ledger"

    def test_delete_strikes_inbound_reference(self):
        workbook = self.make()
        report = workbook.delete_rows("Ledger", 6, 1)
        assert workbook.sheet("Summary").cell_at("A1").formula_text == REF_ERROR.code
        assert report.ref_errors == 1
        assert report.removed == 1    # the A6 value cell

    def test_detached_sheet_rejected(self):
        workbook = self.make()
        with pytest.raises(ValueError):
            workbook.insert_rows(Sheet("Ledger"), 1, 1)


class TestEditReports:
    def test_insert_report_sets(self):
        sheet = Sheet("s")
        sheet.set_value("A1", 1.0)
        sheet.set_value("A5", 5.0)
        sheet.set_formula("B1", "=A1")       # untouched
        sheet.set_formula("B5", "=A5")       # moves and rewrites
        sheet.set_formula("C1", "=SUM(A1:A5)")  # stretches in place
        report = insert_rows(sheet, 3, 2)
        assert report.moved == {(2, 7)}
        assert report.rewritten == {(2, 7), (3, 1)}
        assert report.resized == {(3, 1)}   # only the straddling SUM stretched
        assert report.ref_struck == set() and report.removed == 0
        # B5 translated in lockstep with A5 — its value cannot change; the
        # stretched SUM is the only dirty seed.
        assert report.dirty_seeds == {(3, 1)}
        # The untouched formula keeps its very Cell object (memos intact).
        assert sheet.cell_at("B1").formula_text == "A1"

    def test_delete_report_counts_removed_and_struck(self):
        sheet = Sheet("s")
        for r in range(1, 7):
            sheet.set_value((1, r), float(r))
        sheet.set_formula("B1", "=A4")
        report = delete_rows(sheet, 3, 2)
        assert report.removed == 2
        assert report.ref_struck == {(2, 1)}


class TestColumns:
    def test_insert_columns(self):
        sheet = Sheet("s")
        sheet.set_value("A1", 1.0)
        sheet.set_value("B1", 2.0)
        sheet.set_formula("C1", "=A1+B1")
        insert_columns(sheet, 2, 1)
        assert sheet.get_value("C1") == 2.0
        assert sheet.cell_at("D1").formula_text == "(A1+C1)"

    def test_delete_columns(self):
        sheet = Sheet("s")
        for c in range(1, 5):
            sheet.set_value((c, 1), float(c))
        sheet.set_formula("A2", "=SUM(A1:D1)")
        sheet.set_formula("B2", "=C1")
        delete_columns(sheet, 3, 1)
        assert sheet.cell_at("A2").formula_text == "SUM(A1:C1)"
        assert sheet.cell_at("B2").formula_text == "#REF!"
