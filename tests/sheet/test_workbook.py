"""Unit tests for workbooks and the cross-sheet resolver."""

import pytest

from repro.formula.evaluator import Evaluator
from repro.grid.range import Range
from repro.sheet.workbook import Workbook


class TestWorkbook:
    def test_add_and_get(self):
        wb = Workbook()
        s1 = wb.add_sheet("Data")
        assert wb.sheet("Data") is s1
        assert wb["Data"] is s1
        assert "Data" in wb
        assert wb.sheet_names == ["Data"]

    def test_duplicate_sheet_rejected(self):
        wb = Workbook()
        wb.add_sheet("S")
        with pytest.raises(ValueError):
            wb.add_sheet("S")

    def test_active_sheet_is_first(self):
        wb = Workbook()
        wb.add_sheet("First")
        wb.add_sheet("Second")
        assert wb.active_sheet.name == "First"

    def test_active_sheet_empty_raises(self):
        with pytest.raises(ValueError):
            Workbook().active_sheet

    def test_attach_existing_sheet(self):
        from repro.sheet.sheet import Sheet

        wb = Workbook()
        sheet = Sheet("Mine")
        wb.attach_sheet(sheet)
        assert wb["Mine"] is sheet

    def test_sheets_iteration_order(self):
        wb = Workbook()
        for name in ("C", "A", "B"):
            wb.add_sheet(name)
        assert [s.name for s in wb.sheets()] == ["C", "A", "B"]


class TestCrossSheetEvaluation:
    def test_cross_sheet_reference(self):
        wb = Workbook()
        data = wb.add_sheet("Data")
        report = wb.add_sheet("Report")
        data.set_value("A1", 100.0)
        report.set_formula("B1", "=Data!A1*2")
        ev = Evaluator(wb.resolver())
        cell = report.cell_at("B1")
        assert ev.evaluate(cell.formula_ast, sheet="Report") == 200.0

    def test_default_sheet_resolution(self):
        wb = Workbook()
        sheet = wb.add_sheet("Only")
        sheet.set_value("A1", 5.0)
        resolver = wb.resolver()
        assert resolver.get_value(None, 1, 1) == 5.0
        assert resolver.get_value("Missing", 1, 1) is None

    def test_iter_cells_cross_sheet(self):
        wb = Workbook()
        data = wb.add_sheet("Data")
        data.set_value("A1", 1.0)
        data.set_value("A2", 2.0)
        resolver = wb.resolver()
        got = list(resolver.iter_cells("Data", Range.from_a1("A1:A5")))
        assert len(got) == 2
        assert list(resolver.iter_cells("Nope", Range.from_a1("A1:A5"))) == []
