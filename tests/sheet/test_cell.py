"""Unit tests for Cell laziness and memoisation."""

from repro.formula.parser import parse_formula
from repro.sheet.cell import Cell


class TestPureValue:
    def test_value_cell(self):
        cell = Cell(value=5.0)
        assert not cell.is_formula
        assert cell.formula_ast is None
        assert cell.formula_text is None
        assert cell.display_formula is None
        assert cell.references == []


class TestFormulaCell:
    def test_from_text_parses_lazily(self):
        cell = Cell(formula_text="SUM(A1:A3)")
        assert cell._formula_ast is None        # not parsed yet
        ast = cell.formula_ast
        assert ast is not None
        assert cell.formula_ast is ast          # memoised

    def test_from_ast_renders_lazily(self):
        ast = parse_formula("=A1+B2")
        cell = Cell(formula_ast=ast)
        assert cell._formula_text is None
        assert cell.formula_text == "(A1+B2)"
        assert cell.display_formula == "=(A1+B2)"

    def test_references_memoised(self):
        cell = Cell(formula_text="A1+A1+B2")
        refs = cell.references
        assert [r.range.to_a1() for r in refs] == ["A1", "B2"]
        assert cell.references is refs

    def test_value_cache_independent_of_formula(self):
        cell = Cell(formula_text="1+1")
        assert cell.value is None
        cell.value = 2.0
        assert cell.is_formula and cell.value == 2.0

    def test_repr_smoke(self):
        assert "Cell" in repr(Cell(value=1.0))
        assert "=" in repr(Cell(formula_text="A1"))
