"""Unit tests for the sheet model and dependency enumeration."""

import pytest

from repro.grid.range import Range
from repro.sheet.sheet import Dependency, Sheet


class TestCellAccess:
    def test_set_get_value(self):
        sheet = Sheet()
        sheet.set_value("B2", 42.0)
        assert sheet.get_value("B2") == 42.0
        assert sheet.get_value((2, 2)) == 42.0
        assert sheet.get_value("C3") is None

    def test_set_value_none_clears(self):
        sheet = Sheet()
        sheet.set_value("A1", 1.0)
        sheet.set_value("A1", None)
        assert sheet.cell_at("A1") is None
        assert len(sheet) == 0

    def test_set_formula(self):
        sheet = Sheet()
        sheet.set_formula("B1", "=SUM(A1:A3)")
        cell = sheet.cell_at("B1")
        assert cell.is_formula
        assert cell.formula_text == "SUM(A1:A3)"
        assert cell.display_formula == "=SUM(A1:A3)"

    def test_formula_without_equals(self):
        sheet = Sheet()
        sheet.set_formula("B1", "A1+1")
        assert sheet.cell_at("B1").formula_text == "A1+1"

    def test_range_target_must_be_cell(self):
        sheet = Sheet()
        with pytest.raises(ValueError):
            sheet.set_value(Range.from_a1("A1:B2"), 1.0)

    def test_clear_range_small_and_large(self):
        sheet = Sheet()
        for r in range(1, 21):
            sheet.set_value((1, r), float(r))
        sheet.clear_range(Range.from_a1("A5:A10"))
        assert len(sheet) == 14
        # Large-range path (range bigger than cell count).
        sheet.clear_range(Range(1, 1, 100, 1000))
        assert len(sheet) == 0

    def test_used_range(self):
        sheet = Sheet()
        assert sheet.used_range() is None
        sheet.set_value("B2", 1.0)
        sheet.set_value("D7", 2.0)
        assert sheet.used_range() == Range.from_a1("B2:D7")


class TestDependencies:
    def test_iter_dependencies(self):
        sheet = Sheet()
        sheet.set_value("A1", 1.0)
        sheet.set_formula("B1", "=SUM(A1:A3)")
        sheet.set_formula("C1", "=B1+B3")
        deps = list(sheet.iter_dependencies())
        pairs = {(d.prec.to_a1(), d.dep.to_a1()) for d in deps}
        assert pairs == {("A1:A3", "B1"), ("B1", "C1"), ("B3", "C1")}

    def test_dependency_cue_carried(self):
        sheet = Sheet()
        sheet.set_formula("B1", "=SUM($A$1:A1)")
        (dep,) = sheet.iter_dependencies()
        assert dep.cue == "FR"

    def test_cross_sheet_refs_skipped(self):
        sheet = Sheet("S1")
        sheet.set_formula("B1", "=Sheet2!A1+A1")
        deps = list(sheet.iter_dependencies())
        assert len(deps) == 1
        assert deps[0].prec == Range.from_a1("A1")

    def test_self_sheet_qualified_refs_kept(self):
        sheet = Sheet("S1")
        sheet.set_formula("B1", "=S1!A1")
        assert len(list(sheet.iter_dependencies())) == 1

    def test_dependency_equality_and_hash(self):
        a = Dependency(Range.from_a1("A1"), Range.from_a1("B1"))
        b = Dependency(Range.from_a1("A1"), Range.from_a1("B1"), cue="FF")
        assert a == b  # cue does not affect identity
        assert len({a, b}) == 1

    def test_formula_count(self):
        sheet = Sheet()
        sheet.set_value("A1", 1.0)
        sheet.set_formula("B1", "=A1")
        sheet.set_formula("B2", "=A1")
        assert sheet.formula_count == 2
        assert sheet.dependency_count() == 2


class TestResolver:
    def test_resolver_protocol(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 5.0)
        assert sheet.resolver_get_value(None, 1, 1) == 5.0
        assert sheet.resolver_get_value("S", 1, 1) == 5.0
        assert sheet.resolver_get_value("Other", 1, 1) is None

    def test_iter_cells_sparse_and_dense_paths(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 1.0)
        sheet.set_value("A3", 3.0)
        # Dense path: small range.
        got = list(sheet.resolver_iter_cells(None, Range.from_a1("A1:A4")))
        assert {(c, r) for c, r, _ in got} == {(1, 1), (1, 3)}
        # Sparse path: huge range iterates the dict instead.
        got = list(sheet.resolver_iter_cells(None, Range(1, 1, 1000, 100000)))
        assert len(got) == 2
