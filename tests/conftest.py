"""Pytest configuration: make tests/helpers.py importable everywhere."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from helpers import build_fig2_sheet, build_mixed_sheet  # noqa: E402


@pytest.fixture
def fig2_sheet():
    return build_fig2_sheet()


@pytest.fixture
def mixed_sheet():
    return build_mixed_sheet()
