"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "dependency_audit.py",
    "xlsx_compression_report.py",
    "whatif_dashboard.py",
    "sales_recalc.py",
    "structural_edits.py",
    "batch_editing.py",
    "snapshot_recovery.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    env = dict(os.environ)
    # Keep the recalc demo small under test.
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_quickstart_reports_equivalence():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "match NoComp: OK" in result.stdout


def test_audit_reports_blast_radius():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "dependency_audit.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "Audit 1" in result.stdout and "Audit 2" in result.stdout
