"""Integration tests for the ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.__main__ import main


@pytest.fixture
def demo_file(tmp_path):
    path = str(tmp_path / "demo.xlsx")
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(["demo", path, "--rows", "60"])
    assert code == 0
    return path


def run_cli(argv) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


class TestDemo:
    def test_demo_writes_file(self, demo_file):
        from repro.io import read_xlsx

        workbook = read_xlsx(demo_file)
        assert workbook.active_sheet.formula_count > 0


class TestReport:
    def test_report_table(self, demo_file):
        code, out, _ = run_cli(["report", demo_file])
        assert code == 0
        assert "TACO edges" in out
        assert "Demo" in out


class TestTrace:
    def test_trace_default_sheet(self, demo_file):
        code, out, _ = run_cli(["trace", demo_file, "B3"])
        assert code == 0
        assert "dependents" in out and "precedents" in out

    def test_trace_sheet_qualified(self, demo_file):
        code, out, _ = run_cli(["trace", demo_file, "Demo!C3"])
        assert code == 0

    def test_trace_unknown_sheet_errors(self, demo_file):
        code, _, err = run_cli(["trace", demo_file, "Nope!A1"])
        assert code == 2
        assert "no such sheet" in err

    def test_trace_limit(self, demo_file):
        code, out, _ = run_cli(["trace", demo_file, "A2", "--limit", "1"])
        assert code == 0


class TestExport:
    def test_export_dot(self, demo_file):
        code, out, err = run_cli(["export", demo_file])
        assert code == 0
        assert out.startswith("digraph")
        assert "compressed into" in err

    def test_export_json(self, demo_file):
        import json

        code, out, _ = run_cli(["export", demo_file, "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["edges"]

    def test_export_named_sheet(self, demo_file):
        code, out, _ = run_cli(["export", demo_file, "--sheet", "Demo"])
        assert code == 0


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["bogus"])
