"""Integration tests for the ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.__main__ import main


@pytest.fixture
def demo_file(tmp_path):
    path = str(tmp_path / "demo.xlsx")
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(["demo", path, "--rows", "60"])
    assert code == 0
    return path


def run_cli(argv) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


class TestDemo:
    def test_demo_writes_file(self, demo_file):
        from repro.io import read_xlsx

        workbook = read_xlsx(demo_file)
        assert workbook.active_sheet.formula_count > 0


class TestReport:
    def test_report_table(self, demo_file):
        code, out, _ = run_cli(["report", demo_file])
        assert code == 0
        assert "TACO edges" in out
        assert "Demo" in out


class TestTrace:
    def test_trace_default_sheet(self, demo_file):
        code, out, _ = run_cli(["trace", demo_file, "B3"])
        assert code == 0
        assert "dependents" in out and "precedents" in out

    def test_trace_sheet_qualified(self, demo_file):
        code, out, _ = run_cli(["trace", demo_file, "Demo!C3"])
        assert code == 0

    def test_trace_unknown_sheet_errors(self, demo_file):
        code, _, err = run_cli(["trace", demo_file, "Nope!A1"])
        assert code == 2
        assert "no such sheet" in err

    def test_trace_limit(self, demo_file):
        code, out, _ = run_cli(["trace", demo_file, "A2", "--limit", "1"])
        assert code == 0


class TestExport:
    def test_export_dot(self, demo_file):
        code, out, err = run_cli(["export", demo_file])
        assert code == 0
        assert out.startswith("digraph")
        assert "compressed into" in err

    def test_export_json(self, demo_file):
        import json

        code, out, _ = run_cli(["export", demo_file, "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["edges"]

    def test_export_named_sheet(self, demo_file):
        code, out, _ = run_cli(["export", demo_file, "--sheet", "Demo"])
        assert code == 0


class TestEdit:
    def test_edit_per_edit_mode(self, demo_file):
        code, out, _ = run_cli(["edit", demo_file, "--set", "M3=123"])
        assert code == 0
        assert "per-edit" in out

    def test_edit_batch_mode_writes_output(self, demo_file, tmp_path):
        out_path = str(tmp_path / "edited.xlsx")
        code, out, _ = run_cli([
            "edit", demo_file, "--batch", "--random", "25",
            "--set", "M3=5", "--formula", "F1==M3*2",
            "--out", out_path,
        ])
        assert code == 0
        assert "batched commit" in out
        from repro.io import read_xlsx

        edited = read_xlsx(out_path)
        assert edited.active_sheet.get_value("M3") == 5.0

    def test_edit_batch_matches_per_edit_values(self, demo_file):
        from repro.io import read_xlsx

        results = {}
        for mode in ("plain", "batch"):
            argv = ["edit", demo_file, "--set", "M2=77", "--clear", "M4",
                    "--formula", "F2==M2+1"]
            if mode == "batch":
                argv.append("--batch")
            code, _, _ = run_cli(argv + ["--out", demo_file + f".{mode}.xlsx"])
            assert code == 0
            sheet = read_xlsx(demo_file + f".{mode}.xlsx").active_sheet
            results[mode] = {pos: cell.value for pos, cell in sheet.items()}
        assert results["batch"] == results["plain"]

    def test_edit_without_ops_errors(self, demo_file):
        code, _, err = run_cli(["edit", demo_file])
        assert code == 2
        assert "no edits" in err

    def test_edit_pre_existing_cycle_reports_cleanly(self, tmp_path):
        from repro.io import write_xlsx
        from repro.sheet.sheet import Sheet
        from repro.sheet.workbook import Workbook

        workbook = Workbook("cyc")
        sheet = workbook.attach_sheet(Sheet("S"))
        sheet.set_formula("A1", "=B1+1")
        sheet.set_formula("B1", "=A1+1")
        path = str(tmp_path / "cycle.xlsx")
        write_xlsx(workbook, path)
        code, _, err = run_cli(["edit", path, "--set", "C1=5"])
        assert code == 1
        assert "circular reference" in err

    def test_edit_introduced_cycle_reports_cleanly(self, demo_file):
        code, _, err = run_cli([
            "edit", demo_file, "--batch",
            "--formula", "F1==F2+1", "--formula", "F2==F1+1",
        ])
        assert code == 1
        assert "circular reference" in err


class TestEditStructural:
    def test_insert_rows_per_edit(self, demo_file, tmp_path):
        out_path = str(tmp_path / "shifted.xlsx")
        code, out, _ = run_cli([
            "edit", demo_file, "--insert-rows", "3:2", "--out", out_path,
        ])
        assert code == 0
        assert "insert_rows 3:2" in out
        assert "cells moved" in out

    def test_delete_cols_accepts_letters(self, demo_file):
        code, out, _ = run_cli(["edit", demo_file, "--delete-cols", "M"])
        assert code == 0
        assert "delete_columns 13:1" in out

    def test_structural_in_batch_mode(self, demo_file):
        code, out, _ = run_cli([
            "edit", demo_file, "--batch", "--insert-rows", "4", "--set", "M9=7",
        ])
        assert code == 0
        assert "(1 structural)" in out

    def test_structural_matches_between_modes(self, demo_file):
        from repro.io import read_xlsx

        results = {}
        for mode in ("plain", "batch"):
            argv = ["edit", demo_file, "--insert-rows", "5:2", "--delete-cols", "A"]
            if mode == "batch":
                argv.append("--batch")
            code, _, _ = run_cli(argv + ["--out", demo_file + f".{mode}.xlsx"])
            assert code == 0
            sheet = read_xlsx(demo_file + f".{mode}.xlsx").active_sheet
            results[mode] = {pos: cell.value for pos, cell in sheet.items()}
        assert results["batch"] == results["plain"]

    def test_bad_spec_errors(self, demo_file):
        with pytest.raises(SystemExit):
            run_cli(["edit", demo_file, "--insert-rows", "x"])

    def test_mixed_flags_apply_in_command_line_order(self, demo_file):
        # --delete-rows typed before --insert-rows must run first: the
        # insert index is then interpreted post-delete.
        code, out, _ = run_cli([
            "edit", demo_file, "--delete-rows", "2", "--insert-rows", "10",
        ])
        assert code == 0
        assert out.index("delete_rows 2:1") < out.index("insert_rows 10:1")


class TestSnapshotRestore:
    def test_snapshot_then_restore_round_trips(self, demo_file, tmp_path):
        snap = str(tmp_path / "demo.snap")
        code, out, _ = run_cli(["snapshot", demo_file, snap])
        assert code == 0
        assert "compressed edges" in out

        out_path = str(tmp_path / "restored.xlsx")
        code, out, _ = run_cli(["restore", snap, "--out", out_path])
        assert code == 0
        assert "restored" in out

        from repro.io import read_xlsx

        source = read_xlsx(demo_file).active_sheet
        engine_values = {}
        from repro.engine.recalc import RecalcEngine

        RecalcEngine(source).recalculate_all()
        for pos, cell in source.items():
            engine_values[pos] = cell.value
        restored = read_xlsx(out_path).active_sheet
        assert {pos: c.value for pos, c in restored.items()} == engine_values

    def test_journaled_edits_replay_on_restore(self, demo_file, tmp_path):
        snap = str(tmp_path / "demo.snap")
        wal = str(tmp_path / "demo.wal")
        code, _, _ = run_cli(["snapshot", demo_file, snap, "--journal", wal])
        assert code == 0

        code, out, _ = run_cli([
            "edit", demo_file, "--set", "A5=123", "--formula", "K1=A5*2",
            "--insert-rows", "40:2", "--journal", wal,
        ])
        assert code == 0
        assert "journaled 3 records" in out

        code, out, _ = run_cli(["restore", snap, "--journal", wal])
        assert code == 0
        assert "replayed 3 journal records" in out

    def test_restore_reports_torn_tail(self, demo_file, tmp_path):
        snap = str(tmp_path / "demo.snap")
        wal = str(tmp_path / "demo.wal")
        run_cli(["snapshot", demo_file, snap, "--journal", wal])
        run_cli(["edit", demo_file, "--set", "A5=123", "--set", "A6=5",
                 "--journal", wal])
        data = open(wal, "rb").read()
        with open(wal, "wb") as handle:
            handle.write(data[:-3])
        code, out, _ = run_cli(["restore", snap, "--journal", wal])
        assert code == 0
        assert "replayed 1 journal records (torn tail cut)" in out

    def test_edit_refuses_journal_with_structural_history(self, demo_file, tmp_path):
        # Appending base-file edits after journaled structural ops would
        # replay them at shifted coordinates; the CLI must refuse.
        snap = str(tmp_path / "demo.snap")
        wal = str(tmp_path / "demo.wal")
        run_cli(["snapshot", demo_file, snap, "--journal", wal])
        code, _, _ = run_cli(["edit", demo_file, "--insert-rows", "5",
                              "--journal", wal])
        assert code == 0
        code, _, err = run_cli(["edit", demo_file, "--set", "A10=1",
                                "--journal", wal])
        assert code == 2
        assert "structural" in err
        # Value-only history is coordinate-stable and may be appended to.
        wal2 = str(tmp_path / "values.wal")
        run_cli(["edit", demo_file, "--set", "M3=1", "--journal", wal2])
        code, _, _ = run_cli(["edit", demo_file, "--set", "M4=2",
                              "--journal", wal2])
        assert code == 0

    def test_restore_rejects_corrupt_snapshot(self, tmp_path):
        bad = str(tmp_path / "bad.snap")
        with open(bad, "wb") as handle:
            handle.write(b"definitely not a snapshot")
        code, _, err = run_cli(["restore", bad])
        assert code == 1
        assert "error" in err


@pytest.fixture
def model_file(tmp_path):
    """A tiny model workbook: two inputs, a derived output."""
    from repro.io import write_xlsx
    from repro.sheet.sheet import Sheet
    from repro.sheet.workbook import Workbook

    workbook = Workbook("model")
    sheet = workbook.attach_sheet(Sheet("S"))
    sheet.set_value("A1", 10.0)
    sheet.set_value("A2", 3.0)
    sheet.set_formula("B1", "=A1*2+A2")
    path = str(tmp_path / "model.xlsx")
    write_xlsx(workbook, path)
    return path


class TestWhatif:
    def test_scenario_table(self, model_file):
        code, out, _ = run_cli([
            "whatif", model_file, "--scenario", "A1=20",
            "--scenario", "A1=30,A2=1", "--output", "B1",
        ])
        assert code == 0
        assert "2 scenarios over 2 seeds" in out
        assert "43" in out and "61" in out      # 20*2+3, 30*2+1

    def test_sample_monte_carlo_summary(self, model_file):
        code, out, _ = run_cli([
            "whatif", model_file, "--sample", "16",
            "--uniform", "A1=0:10", "--output", "B1",
        ])
        assert code == 0
        assert "16 samples over 1 seeds (seed=0)" in out
        assert "mean" in out and "B1" in out

    def test_sample_same_seed_reproducible(self, model_file):
        runs = [
            run_cli(["whatif", model_file, "--sample", "12",
                     "--uniform", "A1=0:10", "--uniform", "A2=-1:1",
                     "--output", "B1", "--seed", "7"])
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        code, other, _ = run_cli([
            "whatif", model_file, "--sample", "12",
            "--uniform", "A1=0:10", "--uniform", "A2=-1:1",
            "--output", "B1", "--seed", "8",
        ])
        assert code == 0
        assert other != runs[0][1]

    def test_sample_without_uniform_errors(self, model_file):
        code, _, err = run_cli([
            "whatif", model_file, "--sample", "4", "--output", "B1",
        ])
        assert code == 2
        assert "--uniform" in err

    def test_no_scenario_and_no_sample_errors(self, model_file):
        code, _, err = run_cli(["whatif", model_file, "--output", "B1"])
        assert code == 2
        assert "--scenario" in err or "--sample" in err

    def test_bad_uniform_spec_errors(self, model_file):
        code, _, err = run_cli([
            "whatif", model_file, "--sample", "4",
            "--uniform", "A1=5", "--output", "B1",
        ])
        assert code == 2
        assert "LO:HI" in err

    def test_help_lists_sampling_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["whatif", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--scenario", "--output", "--sample", "--uniform",
                     "--seed", "--workers"):
            assert flag in out


class TestHelp:
    def test_edit_help_lists_structural_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["edit", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--insert-rows", "--delete-rows", "--insert-cols",
                     "--delete-cols", "--batch", "--set", "--formula",
                     "--clear", "--index", "--journal"):
            assert flag in out

    def test_snapshot_and_restore_are_listed(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "snapshot" in out and "restore" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["bogus"])
