"""Integration tests: the full pipeline across modules.

xlsx file -> reader -> sheet -> dependency stream -> TACO / baselines ->
queries -> maintenance -> recalculation, all in one flow.
"""

import io

from helpers import assert_same_dependents, build_graph_pair

from repro.baselines.antifreeze import AntifreezeIndex
from repro.baselines.excel_like import ExcelLikeEngine
from repro.baselines.graphdb import RedisGraphLike
from repro.core.taco_graph import TacoGraph, build_from_sheet, dependencies_column_major
from repro.datasets.corpora import corpus_specs
from repro.engine.recalc import RecalcEngine
from repro.graphs.base import expand_cells
from repro.graphs.calc import NoCompCalcGraph
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.io import read_xlsx, write_xlsx


class TestFilePipeline:
    def test_corpus_sheet_through_xlsx(self):
        """A generated corpus sheet survives the file round trip with an
        identical compressed graph."""
        sheet = corpus_specs("enron", scale=0.15)[1].build()
        buffer = io.BytesIO()
        write_xlsx(sheet, buffer)
        buffer.seek(0)
        restored = read_xlsx(buffer).active_sheet

        direct = build_from_sheet(sheet)
        via_file = build_from_sheet(restored)
        assert len(via_file) == len(direct)
        assert via_file.raw_edge_count() == direct.raw_edge_count()

        probe = Range.cell(1, 2)
        assert expand_cells(via_file.find_dependents(probe)) == expand_cells(
            direct.find_dependents(probe)
        )

    def test_all_systems_agree_on_one_sheet(self):
        """Every exact system returns identical dependents."""
        sheet = corpus_specs("enron", scale=0.12)[0].build()
        deps = dependencies_column_major(sheet)
        probe = deps[0].prec

        taco = TacoGraph.full()
        taco.build(deps)
        reference = expand_cells(taco.find_dependents(probe))

        for factory in (NoCompGraph, NoCompCalcGraph, RedisGraphLike):
            graph = factory()
            graph.build(deps)
            assert expand_cells(graph.find_dependents(probe)) == reference, factory

        excel = ExcelLikeEngine.from_sheet(sheet)
        assert expand_cells(excel.find_dependents(probe)) == reference

        # Antifreeze may overcount (bounding ranges) but never undercount.
        antifreeze = AntifreezeIndex()
        antifreeze.build(deps)
        assert reference <= expand_cells(antifreeze.find_dependents(probe))


class TestRecalcOverCorpus:
    def test_recalc_engine_on_generated_sheet(self):
        sheet = corpus_specs("github", scale=0.1)[0].build()
        engine = RecalcEngine(sheet)
        recomputed = engine.recalculate_all()
        assert recomputed == sheet.formula_count
        # Every formula cell must now hold a concrete value.
        for _, cell in sheet.formula_cells():
            assert cell.value is not None

    def test_update_then_query_consistency(self):
        sheet = corpus_specs("enron", scale=0.1)[3].build()
        taco, nocomp = build_graph_pair(sheet)
        used = sheet.used_range()
        victim = Range(used.c1, used.r1, used.c1, min(used.r2, used.r1 + 30))
        taco.clear_cells(victim)
        nocomp.clear_cells(victim)
        probe = Range(used.c1 + 1, used.r1, used.c1 + 1, used.r1 + 5)
        assert_same_dependents(taco, nocomp, probe)


class TestCompressionQuality:
    def test_generated_corpus_compresses_strongly(self):
        for spec in corpus_specs("github", scale=0.1)[:3]:
            sheet = spec.build()
            graph = build_from_sheet(sheet)
            raw = graph.raw_edge_count()
            assert raw > 0
            assert len(graph) / raw < 0.35, spec.spec.name

    def test_inrow_between_full_and_nocomp(self):
        for spec in corpus_specs("enron", scale=0.1)[:3]:
            sheet = spec.build()
            deps = dependencies_column_major(sheet)
            full = TacoGraph.full()
            full.build(deps)
            inrow = TacoGraph.inrow()
            inrow.build(deps)
            assert len(full) <= len(inrow) <= len(deps)
