"""Unit tests for greedy compression (Algorithm 2) and its heuristics."""

from repro.core.patterns import FF, FR, RR, RR_CHAIN, SINGLE
from repro.core.taco_graph import TacoGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str, cue: str = "RR") -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell), cue)


def edges_of(graph: TacoGraph):
    return sorted(graph.edges(), key=lambda e: (e.prec.as_tuple(), e.dep.as_tuple()))


class TestInsertion:
    def test_first_dependency_is_single(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:B3", "C1"))
        (edge,) = graph.edges()
        assert edge.pattern is SINGLE

    def test_two_adjacent_rr_merge(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:B3", "C1"))
        graph.add_dependency(dep("A2:B4", "C2"))
        (edge,) = graph.edges()
        assert edge.pattern is RR
        assert edge.dep == Range.from_a1("C1:C2")

    def test_incompatible_stays_single(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:B3", "C1"))
        graph.add_dependency(dep("F9:G9", "C2"))
        assert len(graph) == 2
        assert all(e.pattern is SINGLE for e in graph.edges())

    def test_long_run_single_edge(self):
        graph = TacoGraph.full()
        for i in range(1, 101):
            graph.add_dependency(dep(f"A{i}:B{i + 2}", f"C{i}"))
        (edge,) = graph.edges()
        assert edge.pattern is RR
        assert edge.member_count == 100

    def test_multi_reference_formulae_separate_edges(self):
        graph = TacoGraph.full()
        for i in range(1, 21):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
            graph.add_dependency(dep("$F$1:$F$9", f"C{i}", cue="FF"))
        assert len(graph) == 2
        patterns = {e.pattern.name for e in graph.edges()}
        assert patterns == {"RR", "FF"}

    def test_gap_then_fill_creates_two_runs(self):
        # C1, C2 then C4, C5 (gap at C3): two RR edges.
        graph = TacoGraph.full()
        for i in (1, 2, 4, 5):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        assert len(graph) == 2
        # Filling C3 merges into one of the runs (greedy, not optimal).
        graph.add_dependency(dep("A3", "C3"))
        assert len(graph) == 2


class TestHeuristics:
    def test_chain_preferred_over_rr(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "A2"))
        graph.add_dependency(dep("A2", "A3"))
        (edge,) = graph.edges()
        assert edge.pattern is RR_CHAIN

    def test_column_preferred_over_row(self):
        # C4's dependency can merge with C3 (column) or D4 (row).
        graph = TacoGraph.full()
        graph.add_dependency(dep("B3", "C3"))   # column candidate
        graph.add_dependency(dep("C4", "D4"))   # row candidate (rel (-1,0))
        graph.add_dependency(dep("B4", "C4"))
        edges = edges_of(graph)
        merged = [e for e in edges if e.dep.size == 2]
        assert len(merged) == 1
        assert merged[0].dep == Range.from_a1("C3:C4"), "column-wise merge must win"

    def test_dollar_cue_steers_pattern_choice(self):
        # B1:B4 -> C4 can extend an FR edge or pair as RR with D4's edge;
        # the $B$1 cue says FR (paper's Fig. 8 walk-through).
        graph = TacoGraph.full()
        graph.add_dependency(dep("$B$1:B1", "C1", cue="FR"))
        graph.add_dependency(dep("$B$1:B2", "C2", cue="FR"))
        graph.add_dependency(dep("$B$1:B3", "C3", cue="FR"))
        graph.add_dependency(dep("B1:B4", "D4"))
        graph.add_dependency(dep("B1:B4", "C4", cue="FR"))
        fr_edges = [e for e in graph.edges() if e.pattern is FR]
        assert len(fr_edges) == 1
        assert fr_edges[0].dep == Range.from_a1("C1:C4")

    def test_cue_disabled_falls_back_to_priority(self):
        graph = TacoGraph.full(use_cues=False)
        graph.add_dependency(dep("$B$1:B1", "C1", cue="FR"))
        graph.add_dependency(dep("$B$1:B2", "C2", cue="FR"))
        graph.add_dependency(dep("B1:B4", "C4", cue="FR"))
        graph.add_dependency(dep("B1:B4", "C3", cue="FR"))
        # Still compresses (into FR or FF depending on tie-breaks).
        assert len(graph) < 4

    def test_prefers_growing_existing_run(self):
        graph = TacoGraph.full()
        # Existing RR run at C1:C2 and a lone single at D3.
        graph.add_dependency(dep("A1", "C1"))
        graph.add_dependency(dep("A2", "C2"))
        graph.add_dependency(dep("B3", "D3"))  # would pair as row RR with C3
        graph.add_dependency(dep("A3", "C3"))
        runs = [e for e in graph.edges() if e.dep.size == 3]
        assert len(runs) == 1
        assert runs[0].dep == Range.from_a1("C1:C3")


class TestFig8Scenario:
    """The paper's Fig. 8 walk-through: insert SUM($B$1:B4)*A1 at C4."""

    def _setup(self) -> TacoGraph:
        graph = TacoGraph.full()
        for i in (1, 2, 3):
            graph.add_dependency(dep(f"$B$1:B{i}", f"C{i}", cue="FR"))
            graph.add_dependency(dep("$A$1", f"C{i}", cue="FF"))
        graph.add_dependency(dep("B1:B4", "D4"))
        return graph

    def test_setup_matches_figure(self):
        graph = self._setup()
        names = sorted(e.pattern.name for e in graph.edges())
        assert names == ["FF", "FR", "Single"]

    def test_insertion_selects_column_wise_fr(self):
        graph = self._setup()
        graph.add_dependency(dep("B1:B4", "C4", cue="FR"))
        graph.add_dependency(dep("$A$1", "C4", cue="FF"))
        by_pattern = {e.pattern.name: e for e in graph.edges()}
        assert by_pattern["FR"].dep == Range.from_a1("C1:C4")
        assert by_pattern["FR"].prec == Range.from_a1("B1:B4")
        assert by_pattern["FF"].dep == Range.from_a1("C1:C4")
        # The old Single D4 edge must be untouched.
        assert by_pattern["Single"].dep == Range.from_a1("D4")


class TestCandidateSearch:
    def test_candidates_are_axis_neighbours_only(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "C3"))   # diagonal neighbour of D4
        graph.add_dependency(dep("A2", "D3"))   # above D4
        graph.add_dependency(dep("A9", "F9"))   # far away
        candidates = graph.candidate_edges((4, 4))  # D4
        deps = {e.dep.to_a1() for e in candidates}
        assert deps == {"D3"}

    def test_candidate_inside_run(self):
        graph = TacoGraph.full()
        for i in range(1, 6):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        candidates = graph.candidate_edges((3, 6))  # C6 extends C1:C5
        assert len(candidates) == 1
