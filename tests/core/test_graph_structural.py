"""Graph-level structural maintenance == rebuild from the edited sheet."""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_fig2_sheet, build_mixed_sheet

from repro.core import structural as graph_structural
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.grid.range import Range
from repro.sheet import structural as sheet_structural
from repro.sheet.sheet import Dependency, Sheet


def dep(prec: str, dep_cell: str, cue: str = "RR") -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell), cue)


def dependency_set(graph: TacoGraph) -> set:
    return {(d.prec.as_tuple(), d.dep.head) for d in graph.decompress()}


def rebuilt_from(sheet: Sheet) -> TacoGraph:
    graph = TacoGraph.full()
    graph.build(dependencies_column_major(sheet))
    return graph


class TestInsertRows:
    def test_wholesale_shift_of_run(self):
        graph = TacoGraph.full()
        for i in range(5, 10):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        graph_structural.insert_rows(graph, 2, 3)
        (edge,) = graph.edges()
        assert edge.dep == Range.from_a1("C8:C12")
        assert edge.prec == Range.from_a1("A8:A12")

    def test_untouched_above(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph_structural.insert_rows(graph, 5, 2)
        (edge,) = graph.edges()
        assert edge.dep == Range.from_a1("B1")

    def test_straddling_run_splits_and_stretches(self):
        sheet = Sheet("s")
        for r in range(1, 11):
            sheet.set_value((1, r), float(r))
        from repro.sheet.autofill import fill_formula_column

        fill_formula_column(sheet, 2, 1, 10, "=A1*2")
        graph = rebuilt_from(sheet)
        graph_structural.insert_rows(graph, 5, 2)
        sheet_structural.insert_rows(sheet, 5, 2)
        assert dependency_set(graph) == dependency_set(rebuilt_from(sheet))

    def test_ff_meta_shifts(self):
        graph = TacoGraph.full()
        for i in range(4, 8):
            graph.add_dependency(dep("$F$4:$F$6", f"C{i}", cue="FF"))
        graph_structural.insert_rows(graph, 2, 1)
        (edge,) = graph.edges()
        assert edge.pattern.name == "FF"
        assert edge.prec == Range.from_a1("F5:F7")
        assert edge.meta == ((6, 5), (6, 7))

    def test_matches_sheet_oracle_fig2(self):
        sheet = build_fig2_sheet(rows=30)
        graph = rebuilt_from(sheet)
        graph_structural.insert_rows(graph, 12, 3)
        sheet_structural.insert_rows(sheet, 12, 3)
        assert dependency_set(graph) == dependency_set(rebuilt_from(sheet))


class TestDeleteRows:
    def test_formula_rows_removed(self):
        graph = TacoGraph.full()
        for i in range(1, 11):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        graph_structural.delete_rows(graph, 4, 3)
        assert graph.raw_edge_count() == 7
        deps = dependency_set(graph)
        assert ((1, 4, 1, 4), (3, 4)) in deps  # old A7->C7 shifted up

    def test_reference_into_deleted_band_drops_edge(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A5", "C1"))
        graph_structural.delete_rows(graph, 5, 1)
        assert len(graph) == 0

    def test_matches_sheet_oracle_mixed(self):
        sheet = build_mixed_sheet(seed=21)
        graph = rebuilt_from(sheet)
        graph_structural.delete_rows(graph, 10, 4)
        sheet_structural.delete_rows(sheet, 10, 4)
        assert dependency_set(graph) == dependency_set(rebuilt_from(sheet))


class TestColumns:
    def test_insert_columns_matches_oracle(self):
        sheet = build_mixed_sheet(seed=22)
        graph = rebuilt_from(sheet)
        graph_structural.insert_columns(graph, 3, 2)
        sheet_structural.insert_columns(sheet, 3, 2)
        assert dependency_set(graph) == dependency_set(rebuilt_from(sheet))

    def test_delete_columns_matches_oracle(self):
        sheet = build_mixed_sheet(seed=23)
        graph = rebuilt_from(sheet)
        graph_structural.delete_columns(graph, 4, 1)
        sheet_structural.delete_columns(sheet, 4, 1)
        assert dependency_set(graph) == dependency_set(rebuilt_from(sheet))


@given(
    st.integers(0, 1000),
    st.sampled_from(["insert_rows", "delete_rows", "insert_columns", "delete_columns"]),
    st.integers(1, 30),
    st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_structural_ops_match_sheet_oracle(seed, op, index, count):
    sheet = build_mixed_sheet(seed=seed % 7, rows=20)
    graph = rebuilt_from(sheet)
    getattr(graph_structural, op)(graph, index, count)
    getattr(sheet_structural, op)(sheet, index, count)
    assert dependency_set(graph) == dependency_set(rebuilt_from(sheet))
