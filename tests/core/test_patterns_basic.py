"""Unit tests for the four basic patterns, following the paper's Fig. 4."""

import pytest

from repro.core.patterns import FF, FR, RF, RR, SINGLE
from repro.core.patterns.base import CompressedEdge
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def single(prec: str, dep: str) -> CompressedEdge:
    return CompressedEdge(Range.from_a1(prec), Range.from_a1(dep), SINGLE, None)


def dep(prec: str, dep_cell: str, cue: str = "RR") -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell), cue)


def build_edge(pattern, raw: list[tuple[str, str]]) -> CompressedEdge:
    """Compress a list of (prec, dep) pairs under one pattern."""
    edge = single(*raw[0])
    for prec, dep_cell in raw[1:]:
        merged = (
            pattern.try_pair(edge, dep(prec, dep_cell))
            if edge.pattern is SINGLE
            else pattern.try_merge(edge, dep(prec, dep_cell))
        )
        assert merged is not None, f"could not add {prec}->{dep_cell}"
        edge = merged
    return edge


# The paper's Fig. 4 example edges.
FIG4A_RR = [("A1:B3", "C1"), ("A2:B4", "C2"), ("A3:B5", "C3"), ("A4:B6", "C4")]
FIG4B_RF = [("A1:B4", "C1"), ("A2:B4", "C2"), ("A3:B4", "C3"), ("A4:B4", "C4")]
FIG4C_FR = [("A1:B1", "C1"), ("A1:B2", "C2"), ("A1:B3", "C3")]
FIG4D_FF = [("A1:B3", "C1"), ("A1:B3", "C2"), ("A1:B3", "C3")]


class TestRR:
    def test_fig4a_compression(self):
        edge = build_edge(RR, FIG4A_RR)
        assert edge.prec == Range.from_a1("A1:B6")
        assert edge.dep == Range.from_a1("C1:C4")
        # meta = (hRel, tRel) = ((-2, 0), (-1, 2)) per the paper.
        assert edge.meta == ((-2, 0), (-1, 2))
        assert edge.member_count == 4

    def test_rejects_wrong_offsets(self):
        edge = build_edge(RR, FIG4A_RR[:2])
        assert RR.try_merge(edge, dep("A9:B9", "C3")) is None

    def test_rejects_non_adjacent_dep(self):
        edge = build_edge(RR, FIG4A_RR[:2])
        assert RR.try_merge(edge, dep("A4:B6", "C5")) is None  # gap at C4... C5 not adjacent to C1:C2
        assert RR.try_merge(edge, dep("A9:B11", "E9")) is None

    def test_find_dep_interior(self):
        edge = build_edge(RR, FIG4A_RR)
        # A3 is inside windows of C1 (A1:B3), C2, C3 -> dependents C1:C3.
        (result,) = RR.find_dep(edge, Range.from_a1("A3"))
        assert result == Range.from_a1("C1:C3")

    def test_find_dep_clamps_to_dep_range(self):
        edge = build_edge(RR, FIG4A_RR)
        (result,) = RR.find_dep(edge, Range.from_a1("A1:B6"))
        assert result == Range.from_a1("C1:C4")

    def test_find_prec_single_cell(self):
        edge = build_edge(RR, FIG4A_RR)
        (result,) = RR.find_prec(edge, Range.from_a1("C2"))
        assert result == Range.from_a1("A2:B4")

    def test_find_prec_sub_run(self):
        edge = build_edge(RR, FIG4A_RR)
        (result,) = RR.find_prec(edge, Range.from_a1("C2:C3"))
        assert result == Range.from_a1("A2:B5")

    def test_remove_dep_middle_split(self):
        edge = build_edge(RR, FIG4A_RR)
        pieces = RR.remove_dep(edge, Range.from_a1("C2"))
        by_dep = {p.dep.to_a1(): p for p in pieces}
        assert set(by_dep) == {"C1", "C3:C4"}
        assert by_dep["C1"].pattern is SINGLE
        assert by_dep["C1"].prec == Range.from_a1("A1:B3")
        assert by_dep["C3:C4"].pattern is RR
        assert by_dep["C3:C4"].prec == Range.from_a1("A3:B6")

    def test_remove_dep_all(self):
        edge = build_edge(RR, FIG4A_RR)
        assert RR.remove_dep(edge, Range.from_a1("C1:C4")) == []

    def test_row_wise_run(self):
        edge = build_edge(RR, [("A1", "A2"), ("B1", "B2"), ("C1", "C2")])
        assert edge.dep == Range.from_a1("A2:C2")
        (result,) = RR.find_dep(edge, Range.from_a1("B1"))
        assert result == Range.from_a1("B2")

    def test_grow_upwards(self):
        edge = build_edge(RR, [("A3:B5", "C3"), ("A2:B4", "C2"), ("A1:B3", "C1")])
        assert edge.dep == Range.from_a1("C1:C3")
        assert edge.prec == Range.from_a1("A1:B5")


class TestRF:
    def test_fig4b_compression(self):
        edge = build_edge(RF, FIG4B_RF)
        assert edge.prec == Range.from_a1("A1:B4")
        assert edge.dep == Range.from_a1("C1:C4")
        h_rel, t_fix = edge.meta
        assert h_rel == (-2, 0)
        assert t_fix == (2, 4)  # cell B4

    def test_rejects_moving_tail(self):
        edge = build_edge(RF, FIG4B_RF[:2])
        assert RF.try_merge(edge, dep("A3:B5", "C3")) is None

    def test_find_dep_head_always_included(self):
        edge = build_edge(RF, FIG4B_RF)
        # B4 is in every (shrinking) window.
        (result,) = RF.find_dep(edge, Range.from_a1("B4"))
        assert result == Range.from_a1("C1:C4")

    def test_find_dep_shrinks(self):
        edge = build_edge(RF, FIG4B_RF)
        # A2 is only in the windows of C1 and C2.
        (result,) = RF.find_dep(edge, Range.from_a1("A2"))
        assert result == Range.from_a1("C1:C2")

    def test_find_prec(self):
        edge = build_edge(RF, FIG4B_RF)
        (result,) = RF.find_prec(edge, Range.from_a1("C3"))
        assert result == Range.from_a1("A3:B4")
        (result,) = RF.find_prec(edge, Range.from_a1("C2:C4"))
        assert result == Range.from_a1("A2:B4")

    def test_remove_dep(self):
        edge = build_edge(RF, FIG4B_RF)
        pieces = RF.remove_dep(edge, Range.from_a1("C1:C2"))
        (piece,) = pieces
        assert piece.dep == Range.from_a1("C3:C4")
        assert piece.prec == Range.from_a1("A3:B4")
        assert piece.pattern is RF


class TestFR:
    def test_fig4c_compression(self):
        edge = build_edge(FR, FIG4C_FR)
        assert edge.prec == Range.from_a1("A1:B3")
        assert edge.dep == Range.from_a1("C1:C3")
        h_fix, t_rel = edge.meta
        assert h_fix == (1, 1)
        assert t_rel == (-1, 0)

    def test_rejects_moving_head(self):
        edge = build_edge(FR, FIG4C_FR[:2])
        assert FR.try_merge(edge, dep("A2:B3", "C3")) is None

    def test_find_dep_expands(self):
        edge = build_edge(FR, FIG4C_FR)
        # B2 enters the windows of C2 and C3 only.
        (result,) = FR.find_dep(edge, Range.from_a1("B2"))
        assert result == Range.from_a1("C2:C3")
        # A1 is in every window.
        (result,) = FR.find_dep(edge, Range.from_a1("A1"))
        assert result == Range.from_a1("C1:C3")

    def test_find_prec(self):
        edge = build_edge(FR, FIG4C_FR)
        (result,) = FR.find_prec(edge, Range.from_a1("C2"))
        assert result == Range.from_a1("A1:B2")
        (result,) = FR.find_prec(edge, Range.from_a1("C1:C2"))
        assert result == Range.from_a1("A1:B2")

    def test_remove_dep(self):
        edge = build_edge(FR, FIG4C_FR)
        pieces = FR.remove_dep(edge, Range.from_a1("C2"))
        by_dep = {p.dep.to_a1(): p for p in pieces}
        assert by_dep["C1"].prec == Range.from_a1("A1:B1")
        assert by_dep["C3"].prec == Range.from_a1("A1:B3")


class TestFF:
    def test_fig4d_compression(self):
        edge = build_edge(FF, FIG4D_FF)
        assert edge.prec == Range.from_a1("A1:B3")
        assert edge.dep == Range.from_a1("C1:C3")
        assert edge.meta == ((1, 1), (2, 3))

    def test_rejects_different_prec(self):
        edge = build_edge(FF, FIG4D_FF[:2])
        assert FF.try_merge(edge, dep("A1:B4", "C3")) is None

    def test_find_dep_is_everything(self):
        edge = build_edge(FF, FIG4D_FF)
        assert FF.find_dep(edge, Range.from_a1("B2")) == [Range.from_a1("C1:C3")]

    def test_find_prec_is_fixed(self):
        edge = build_edge(FF, FIG4D_FF)
        assert FF.find_prec(edge, Range.from_a1("C2")) == [Range.from_a1("A1:B3")]

    def test_remove_dep_keeps_prec(self):
        edge = build_edge(FF, FIG4D_FF)
        pieces = FF.remove_dep(edge, Range.from_a1("C3"))
        (piece,) = pieces
        assert piece.prec == Range.from_a1("A1:B3")
        assert piece.dep == Range.from_a1("C1:C2")
        assert piece.pattern is FF


@pytest.mark.parametrize(
    "pattern,raw",
    [(RR, FIG4A_RR), (RF, FIG4B_RF), (FR, FIG4C_FR), (FF, FIG4D_FF)],
    ids=["RR", "RF", "FR", "FF"],
)
class TestReconstruction:
    def test_member_dependencies_round_trip(self, pattern, raw):
        edge = build_edge(pattern, raw)
        reconstructed = {
            (d.prec.to_a1(), d.dep.to_a1()) for d in pattern.member_dependencies(edge)
        }
        assert reconstructed == {(p, d) for p, d in raw}

    def test_find_dep_matches_brute_force(self, pattern, raw):
        edge = build_edge(pattern, raw)
        members = [(Range.from_a1(p), Range.from_a1(d)) for p, d in raw]
        for probe_cell in edge.prec.cell_ranges():
            got = set()
            for rng in pattern.find_dep(edge, probe_cell):
                got |= set(rng.cells())
            expected = {
                dep_rng.head for prec_rng, dep_rng in members if prec_rng.overlaps(probe_cell)
            }
            assert got == expected, f"probe {probe_cell.to_a1()}"

    def test_find_prec_matches_brute_force(self, pattern, raw):
        edge = build_edge(pattern, raw)
        members = {d: p for p, d in raw}
        for dep_a1, prec_a1 in members.items():
            got = pattern.find_prec(edge, Range.from_a1(dep_a1))
            assert got == [Range.from_a1(prec_a1)]
