"""Backend equivalence: TACO and NoComp answer identically under every
spatial-index backend, and index repacking never changes results."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_mixed_sheet

from repro.core.taco_graph import TacoGraph, build_from_sheet, dependencies_column_major
from repro.graphs.base import expand_cells
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency

BACKENDS = ("rtree", "gridbucket")


def build_taco(sheet, index):
    graph = TacoGraph.full(index=index)
    graph.build(dependencies_column_major(sheet))
    return graph


@pytest.mark.parametrize("seed", (1, 5, 9))
def test_taco_queries_identical_across_backends(seed):
    sheet = build_mixed_sheet(seed=seed)
    graphs = [build_taco(sheet, index) for index in BACKENDS]
    assert len({len(g) for g in graphs}) == 1, "edge sets must match"
    for probe in ("A1", "A10", "B3", "C5", "G1", "A1:B5"):
        rng = Range.from_a1(probe)
        deps = [expand_cells(g.find_dependents(rng)) for g in graphs]
        precs = [expand_cells(g.find_precedents(rng)) for g in graphs]
        assert deps[0] == deps[1], f"dependents diverge at {probe}"
        assert precs[0] == precs[1], f"precedents diverge at {probe}"


@pytest.mark.parametrize("seed", (2, 7))
def test_taco_maintenance_identical_across_backends(seed):
    sheet = build_mixed_sheet(seed=seed)
    graphs = [build_taco(sheet, index) for index in BACKENDS]
    victim = Range.from_a1("C3:D8")
    for graph in graphs:
        graph.clear_cells(victim)
    raw = [
        {(d.prec.to_a1(), d.dep.to_a1()) for d in g.decompress()} for g in graphs
    ]
    assert raw[0] == raw[1]


@pytest.mark.parametrize("index", BACKENDS)
def test_nocomp_matches_taco_under_backend(index):
    sheet = build_mixed_sheet(seed=3)
    taco = build_taco(sheet, index)
    nocomp = NoCompGraph(index=index)
    nocomp.build(dependencies_column_major(sheet))
    for probe in ("A1", "B2", "A5:B7"):
        rng = Range.from_a1(probe)
        assert expand_cells(taco.find_dependents(rng)) == expand_cells(
            nocomp.find_dependents(rng)
        )


@pytest.mark.parametrize("index", BACKENDS)
def test_build_from_sheet_repack_preserves_queries(index):
    sheet = build_mixed_sheet(seed=4)
    incremental = build_taco(sheet, index)
    packed = build_from_sheet(sheet, index=index)
    for probe in ("A1", "B4", "G1"):
        rng = Range.from_a1(probe)
        assert expand_cells(incremental.find_dependents(rng)) == expand_cells(
            packed.find_dependents(rng)
        )
    # The packed graph keeps full maintenance ability.
    packed.clear_cells(Range.from_a1("C2:C4"))
    incremental.clear_cells(Range.from_a1("C2:C4"))
    assert {(d.prec.to_a1(), d.dep.to_a1()) for d in packed.decompress()} == {
        (d.prec.to_a1(), d.dep.to_a1()) for d in incremental.decompress()
    }


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_random_dependency_streams_equivalent(seed):
    """Insert a random dependency stream into both backends and compare."""
    rng = random.Random(seed)
    deps = []
    for _ in range(60):
        c, r = rng.randrange(1, 9), rng.randrange(1, 25)
        pc, pr = rng.randrange(1, 9), rng.randrange(1, 25)
        prec = Range(pc, pr, pc, pr + rng.randrange(3))
        deps.append(Dependency(prec, Range.cell(c, r)))
    graphs = []
    for index in BACKENDS:
        graph = TacoGraph.full(index=index)
        graph.build(deps)
        graphs.append(graph)
    probe = Range.cell(rng.randrange(1, 9), rng.randrange(1, 25))
    assert expand_cells(graphs[0].find_dependents(probe)) == expand_cells(
        graphs[1].find_dependents(probe)
    )
    assert expand_cells(graphs[0].find_precedents(probe)) == expand_cells(
        graphs[1].find_precedents(probe)
    )
