"""Edge-case tests for compressed-graph queries."""

import pytest

from repro.core.taco_graph import TacoGraph
from repro.graphs.base import Budget, DNFError, expand_cells, total_cells
from repro.grid.range import Range
from repro.sheet.autofill import fill_formula_row
from repro.sheet.sheet import Dependency, Sheet


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestRowWiseOrientation:
    def test_row_wise_run_query(self):
        sheet = Sheet("row")
        for c in range(1, 31):
            sheet.set_value((c, 1), float(c))
        fill_formula_row(sheet, 2, 1, 30, "=A1*2")
        graph = TacoGraph.full()
        graph.build(list(sheet.iter_dependencies()))
        assert len(graph) == 1
        (edge,) = graph.edges()
        assert edge.dep.is_row_slice
        result = expand_cells(graph.find_dependents(Range.from_a1("E1")))
        assert result == {(5, 2)}

    def test_horizontal_chain(self):
        graph = TacoGraph.full()
        for c in range(1, 40):
            graph.add_dependency(
                Dependency(Range.cell(c, 1), Range.cell(c + 1, 1))
            )
        (edge,) = graph.edges()
        assert edge.pattern.name == "RR-Chain"
        assert total_cells(graph.find_dependents(Range.from_a1("A1"))) == 39

    def test_mixed_orientations_coexist(self):
        graph = TacoGraph.full()
        for i in range(1, 6):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))            # vertical
            graph.add_dependency(
                Dependency(Range.cell(4 + i, 9), Range.cell(4 + i, 10))
            )                                                       # horizontal RR
        assert len(graph) == 2


class TestBudgets:
    def test_taco_query_respects_budget(self):
        graph = TacoGraph.full()
        # Many separate noise edges, so the BFS does real work.
        for i in range(400):
            graph.add_dependency(dep(f"A{2 * i + 1}", f"C{2 * i + 1}"))
        budget = Budget(0.0, "taco query", check_every=1)
        with pytest.raises(DNFError):
            graph.find_dependents(Range(1, 1, 1, 801), budget)

    def test_maintenance_respects_budget(self):
        graph = TacoGraph.full()
        for i in range(400):
            graph.add_dependency(dep(f"A{2 * i + 1}", f"C{2 * i + 1}"))
        budget = Budget(0.0, "taco clear", check_every=1)
        with pytest.raises(DNFError):
            graph.clear_cells(Range(3, 1, 3, 801), budget)


class TestDiamondAndOverlap:
    def test_diamond_counted_once(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("A1", "B2"))
        graph.add_dependency(dep("B1:B2", "C1"))
        result = expand_cells(graph.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1), (2, 2), (3, 1)}

    def test_overlapping_precedent_vertices(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:A5", "C1"))
        graph.add_dependency(dep("A3:A8", "D1"))
        result = expand_cells(graph.find_dependents(Range.from_a1("A4")))
        assert result == {(3, 1), (4, 1)}
        result = expand_cells(graph.find_dependents(Range.from_a1("A1")))
        assert result == {(3, 1)}

    def test_self_overlapping_query_range(self):
        graph = TacoGraph.full()
        for i in range(1, 20):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        # Query a range inside the chain: its own cells reappear as
        # dependents of earlier cells, and must be reported.
        result = expand_cells(graph.find_dependents(Range.from_a1("A5:A10")))
        assert result == {(1, r) for r in range(6, 21)}

    def test_wide_2d_precedent_block(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:J20", "M1"))
        result = expand_cells(graph.find_dependents(Range.from_a1("C7:D9")))
        assert result == {(13, 1)}


class TestQueryStats:
    def test_edge_access_accounting(self):
        graph = TacoGraph.full()
        for i in range(1, 30):
            graph.add_dependency(dep(f"A{i}:B{i + 1}", f"C{i}"))
        graph.query_stats.edge_accesses = 0
        graph.find_dependents(Range.from_a1("A10"))
        assert graph.query_stats.edge_accesses >= 1
        stats = graph.stats()
        assert stats.edges == 1
        assert stats.vertices == 2
