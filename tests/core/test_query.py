"""Unit tests for querying the compressed graph (Algorithm 3)."""

from helpers import (
    assert_same_dependents,
    assert_same_precedents,
    build_fig2_sheet,
    build_graph_pair,
    build_mixed_sheet,
)

from repro.core.taco_graph import TacoGraph
from repro.graphs.base import expand_cells, total_cells
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestSmallGraphs:
    def test_paper_fig3_dependents(self):
        # Fig. 3: B1=SUM(A1:A3), B2=SUM(A1:A3), C1=B1+B3, C2=AVG(B2:B3).
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.add_dependency(dep("A1:A3", "B2"))
        graph.add_dependency(dep("B1", "C1"))
        graph.add_dependency(dep("B3", "C1"))
        graph.add_dependency(dep("B2:B3", "C2"))
        result = expand_cells(graph.find_dependents(Range.from_a1("A1")))
        assert result == {(2, 1), (2, 2), (3, 1), (3, 2)}  # B1, B2, C1, C2

    def test_no_dependents(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        assert graph.find_dependents(Range.from_a1("Z9")) == []

    def test_query_range_spanning_edges(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("A9", "C9"))
        result = expand_cells(graph.find_dependents(Range.from_a1("A1:A9")))
        assert result == {(2, 1), (3, 9)}

    def test_precedents_transitive(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:A3", "B1"))
        graph.add_dependency(dep("B1", "C1"))
        result = expand_cells(graph.find_precedents(Range.from_a1("C1")))
        assert result == {(1, 1), (1, 2), (1, 3), (2, 1)}

    def test_partial_overlap_with_compressed_edge(self):
        graph = TacoGraph.full()
        for i in range(1, 11):
            graph.add_dependency(dep(f"A{i}:B{i + 1}", f"C{i}"))
        # A5 only hits windows of C4 and C5.
        result = expand_cells(graph.find_dependents(Range.from_a1("A5")))
        assert result == {(3, 4), (3, 5)}

    def test_dependents_count_chain(self):
        graph = TacoGraph.full()
        for i in range(1, 100):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        assert total_cells(graph.find_dependents(Range.from_a1("A1"))) == 99
        assert total_cells(graph.find_dependents(Range.from_a1("A50"))) == 50

    def test_chain_edge_accessed_constant_times(self):
        graph = TacoGraph.full()
        for i in range(1, 200):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        graph.query_stats.edge_accesses = 0
        graph.find_dependents(Range.from_a1("A1"))
        # One chain edge, accessed O(1) times (vs O(n) under plain RR).
        assert graph.query_stats.edge_accesses <= 4


class TestEquivalenceWithNoComp:
    def test_fig2_sheet_all_probes(self):
        sheet = build_fig2_sheet(rows=40)
        taco, nocomp = build_graph_pair(sheet)
        for probe in ("A1", "A10", "M5", "N2", "N39", "M1:M40", "A5:A8"):
            assert_same_dependents(taco, nocomp, Range.from_a1(probe))

    def test_fig2_sheet_precedents(self):
        sheet = build_fig2_sheet(rows=40)
        taco, nocomp = build_graph_pair(sheet)
        for probe in ("N10", "N2", "N40", "N5:N8"):
            assert_same_precedents(taco, nocomp, Range.from_a1(probe))

    def test_mixed_sheet_dependents(self):
        sheet = build_mixed_sheet(seed=3)
        taco, nocomp = build_graph_pair(sheet)
        for probe in ("A1", "A15", "B30", "B1:B5", "G1", "A1:B35"):
            assert_same_dependents(taco, nocomp, Range.from_a1(probe))

    def test_mixed_sheet_precedents(self):
        sheet = build_mixed_sheet(seed=3)
        taco, nocomp = build_graph_pair(sheet)
        for probe in ("C10", "D20", "E5", "F12", "G25"):
            assert_same_precedents(taco, nocomp, Range.from_a1(probe))

    def test_decompression_is_lossless(self):
        sheet = build_mixed_sheet(seed=5)
        taco, nocomp = build_graph_pair(sheet)
        raw = {(p.to_a1(), f"{c[0]}_{c[1]}") for p, c in nocomp.edges()}
        reconstructed = {
            (d.prec.to_a1(), f"{d.dep.c1}_{d.dep.r1}") for d in taco.decompress()
        }
        assert reconstructed == raw
