"""Unit tests for grouped multi-seed dependent queries.

``find_dependents_multi_grouped`` is the read-only region *preview*
behind ``repro.engine.parallel``: seeds whose dependent frontiers never
touch are provably independent.  Pinned here: group membership, the
disjoint-cover contract against ``find_dependents_multi``, and the
conservative-merge behaviour on shared range pieces.
"""

from repro.core.query import find_dependents_multi, find_dependents_multi_grouped
from repro.core.taco_graph import TacoGraph
from repro.engine.parallel import preview_regions
from repro.graphs.base import expand_cells
from repro.grid.range import Range
from repro.sheet.sheet import Dependency

from helpers import engine_for, realize_program


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


def build_two_island_graph() -> TacoGraph:
    """A1→B1→C1 on one island, F1→G1 on another, X9 isolated."""
    graph = TacoGraph.full()
    graph.add_dependency(dep("A1", "B1"))
    graph.add_dependency(dep("B1", "C1"))
    graph.add_dependency(dep("F1", "G1"))
    return graph


def test_independent_seeds_stay_separate():
    graph = build_two_island_graph()
    seeds = [Range.from_a1("A1"), Range.from_a1("F1")]
    groups = find_dependents_multi_grouped(graph, seeds)
    assert [group.seeds for group in groups] == [[0], [1]]
    assert expand_cells(groups[0].ranges) == {(2, 1), (3, 1)}   # B1, C1
    assert expand_cells(groups[1].ranges) == {(7, 1)}           # G1


def test_touching_frontiers_merge():
    """Two seeds whose BFS lands on shared territory join one group."""
    graph = build_two_island_graph()
    graph.add_dependency(dep("C1", "H1"))
    graph.add_dependency(dep("G1", "H1"))
    seeds = [Range.from_a1("A1"), Range.from_a1("F1")]
    groups = find_dependents_multi_grouped(graph, seeds)
    assert len(groups) == 1
    assert groups[0].seeds == [0, 1]
    assert expand_cells(groups[0].ranges) == {
        (2, 1), (3, 1), (7, 1), (8, 1),
    }


def test_seed_without_dependents_keeps_empty_group():
    graph = build_two_island_graph()
    seeds = [Range.from_a1("A1"), Range.from_a1("X9")]
    groups = find_dependents_multi_grouped(graph, seeds)
    assert [group.seeds for group in groups] == [[0], [1]]
    assert groups[1].ranges == []


def test_shared_range_piece_merges_conservatively():
    """B1 and B2 feed disjoint cells of one stored range edge; the
    preview may not split a stored piece, so the seeds merge."""
    graph = TacoGraph.full()
    for r in (1, 2):
        graph.add_dependency(dep(f"B{r}", f"C{r}"))
    seeds = [Range.from_a1("B1"), Range.from_a1("B2")]
    groups = find_dependents_multi_grouped(graph, seeds)
    union = set()
    for group in groups:
        cells = expand_cells(group.ranges)
        assert not (union & cells)                    # disjoint
        union |= cells
    assert union == expand_cells(find_dependents_multi(graph, seeds))


def test_groups_cover_multi_seed_bfs_exactly():
    """Disjoint-cover contract on a compressed mixed-pattern graph."""
    program = (
        [((1, r), float(r)) for r in range(1, 21)]
        + [((2, r), float(r % 5)) for r in range(1, 21)],
        [(3, 1, 20, "=SUM($A$1:A1)"), (5, 1, 20, "=B1*2")],
    )
    sheet = realize_program(program)
    engine = engine_for(sheet)
    seeds = [Range(1, 1, 1, 4), Range(2, 7, 2, 9), Range(1, 15, 2, 15)]
    groups = find_dependents_multi_grouped(engine.graph, seeds)
    assert [group.seeds for group in groups] == sorted(
        (group.seeds for group in groups), key=lambda s: s[0]
    )
    union = set()
    for group in groups:
        cells = expand_cells(group.ranges)
        assert not (union & cells)
        union |= cells
    assert union == expand_cells(find_dependents_multi(engine.graph, seeds))


def test_preview_regions_matches_grouped_query():
    program = (
        [((1, r), float(r)) for r in range(1, 11)]
        + [((2, r), float(r)) for r in range(1, 11)],
        [(3, 1, 10, "=A1*2"), (4, 1, 10, "=B1+1")],
    )
    sheet = realize_program(program)
    engine = engine_for(sheet)
    seeds = [Range(1, 1, 1, 10), Range(2, 1, 2, 10)]
    preview = preview_regions(engine, seeds)
    assert len(preview) == 2                         # C-block vs D-block
    direct = find_dependents_multi_grouped(engine.graph, seeds)
    assert [g.seeds for g in preview] == [g.seeds for g in direct]
    assert [expand_cells(g.ranges) for g in preview] == [
        expand_cells(g.ranges) for g in direct
    ]
