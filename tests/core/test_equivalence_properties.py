"""Property-based lossless-ness: TACO answers == NoComp answers.

The central correctness claim of the paper is that the compressed graph
is *equivalent* to the uncompressed one for finding dependents and
precedents.  These tests generate random spreadsheets mixing autofilled
regions (which compress) with arbitrary individual formulae (which often
do not), then compare TACO against NoComp on random probes, including
after random maintenance operations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.graphs.base import expand_cells
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

GRID = 18  # data region is A1:R18 (columns 1..18)


@st.composite
def random_sheets(draw) -> Sheet:
    """A sheet with 1-3 autofilled runs plus 0-8 arbitrary formulae."""
    seed = draw(st.integers(0, 2 ** 20))
    rng = random.Random(seed)
    sheet = Sheet("prop")
    for col in (1, 2):
        for row in range(1, GRID + 1):
            sheet.set_value((col, row), float(rng.randrange(50)))

    run_count = draw(st.integers(1, 3))
    for i in range(run_count):
        out_col = 3 + i
        start = draw(st.integers(1, 6))
        length = draw(st.integers(2, 10))
        kind = draw(st.sampled_from(["rr", "fr", "rf", "ff", "chain"]))
        if kind == "rr":
            formula = f"=SUM(A{start}:B{start + 1})"
        elif kind == "fr":
            formula = f"=SUM($A$1:A{start})"
        elif kind == "rf":
            formula = f"=SUM(A{start}:$B${GRID})"
        elif kind == "ff":
            formula = "=SUM($A$1:$B$4)"
        else:
            sheet.set_formula((out_col, start), f"=A{start}")
            if length >= 2:
                from repro.grid.ref import col_to_letters

                letters = col_to_letters(out_col)
                fill_formula_column(
                    sheet, out_col, start + 1, start + length - 1,
                    f"={letters}{start}+B{start + 1}",
                )
            continue
        fill_formula_column(sheet, out_col, start, start + length - 1, formula)

    extra = draw(st.integers(0, 8))
    for _ in range(extra):
        col = draw(st.integers(3, 10))
        row = draw(st.integers(1, GRID))
        cell = sheet.cell_at((col, row))
        if cell is not None and cell.is_formula:
            continue
        c1 = draw(st.integers(1, 4))
        r1 = draw(st.integers(1, GRID - 2))
        c2 = draw(st.integers(c1, min(4, c1 + 2)))
        r2 = draw(st.integers(r1, min(GRID, r1 + 3)))
        ref = Range(c1, r1, c2, r2).to_a1()
        sheet.set_formula((col, row), f"=SUM({ref})")
    return sheet


@st.composite
def probes(draw) -> Range:
    c1 = draw(st.integers(1, 10))
    r1 = draw(st.integers(1, GRID))
    c2 = draw(st.integers(c1, min(10, c1 + 2)))
    r2 = draw(st.integers(r1, min(GRID, r1 + 4)))
    return Range(c1, r1, c2, r2)


def build_pair(sheet: Sheet):
    deps = dependencies_column_major(sheet)
    taco = TacoGraph.full()
    taco.build(deps)
    nocomp = NoCompGraph()
    nocomp.build(deps)
    return taco, nocomp


@given(random_sheets(), probes())
@settings(max_examples=60, deadline=None)
def test_find_dependents_equivalent(sheet, probe):
    taco, nocomp = build_pair(sheet)
    assert expand_cells(taco.find_dependents(probe)) == expand_cells(
        nocomp.find_dependents(probe)
    )


@given(random_sheets(), probes())
@settings(max_examples=60, deadline=None)
def test_find_precedents_equivalent(sheet, probe):
    taco, nocomp = build_pair(sheet)
    assert expand_cells(taco.find_precedents(probe)) == expand_cells(
        nocomp.find_precedents(probe)
    )


@given(random_sheets())
@settings(max_examples=40, deadline=None)
def test_compression_is_lossless(sheet):
    taco, nocomp = build_pair(sheet)
    raw = {(p.as_tuple(), c) for p, c in nocomp.edges()}
    reconstructed = {
        (d.prec.as_tuple(), d.dep.head) for d in taco.decompress()
    }
    assert reconstructed == raw
    assert taco.raw_edge_count() == nocomp.num_edges
    assert len(taco) <= nocomp.num_edges


@given(random_sheets(), probes(), probes())
@settings(max_examples=40, deadline=None)
def test_equivalence_survives_maintenance(sheet, victim, probe):
    taco, nocomp = build_pair(sheet)
    taco.clear_cells(victim)
    nocomp.clear_cells(victim)
    assert expand_cells(taco.find_dependents(probe)) == expand_cells(
        nocomp.find_dependents(probe)
    )
    assert expand_cells(taco.find_precedents(probe)) == expand_cells(
        nocomp.find_precedents(probe)
    )


@given(random_sheets())
@settings(max_examples=30, deadline=None)
def test_inrow_variant_also_lossless(sheet):
    deps = dependencies_column_major(sheet)
    inrow = TacoGraph.inrow()
    inrow.build(deps)
    nocomp = NoCompGraph()
    nocomp.build(deps)
    raw = {(p.as_tuple(), c) for p, c in nocomp.edges()}
    reconstructed = {(d.prec.as_tuple(), d.dep.head) for d in inrow.decompress()}
    assert reconstructed == raw
