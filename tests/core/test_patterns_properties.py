"""Property-based tests for pattern key-function algebra.

For randomly generated runs under each basic pattern, the O(1)
``find_dep`` / ``find_prec`` formulas must agree with brute-force
enumeration of the member dependencies, and ``remove_dep`` must behave
like set subtraction on the members.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import FF, FR, RF, RR, RR_CHAIN, SINGLE
from repro.core.patterns.base import CompressedEdge
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


@st.composite
def rr_edges(draw):
    """A random column-wise RR run and its member dependencies."""
    h_p = draw(st.integers(-4, -1))
    h_q = draw(st.integers(-3, 3))
    t_p = draw(st.integers(h_p, -1))
    t_q = draw(st.integers(h_q, h_q + 4))
    col = draw(st.integers(6, 10))
    start = draw(st.integers(max(1, 1 - h_q, 1 - t_q) + 3, 12))
    length = draw(st.integers(2, 8))
    members = []
    for i in range(length):
        row = start + i
        prec = Range(col + h_p, row + h_q, col + t_p, row + t_q)
        members.append(Dependency(prec, Range.cell(col, row)))
    return members


@st.composite
def fr_edges(draw):
    col = draw(st.integers(5, 9))
    head = (draw(st.integers(1, 3)), draw(st.integers(1, 3)))
    # The relative tail column must not cross left of the fixed head.
    t_p = draw(st.integers(head[0] - col, -1))
    start = max(head[1] + 1, 4)
    length = draw(st.integers(2, 8))
    members = []
    for i in range(length):
        row = start + i
        prec = Range(head[0], head[1], col + t_p, row)
        members.append(Dependency(prec, Range.cell(col, row)))
    return members


def build(pattern, members):
    edge = CompressedEdge(members[0].prec, members[0].dep, SINGLE, None)
    for dep in members[1:]:
        merged = (
            pattern.try_pair(edge, dep)
            if edge.pattern is SINGLE
            else pattern.try_merge(edge, dep)
        )
        assert merged is not None
        edge = merged
    return edge


def brute_force_dependents(members, probe: Range) -> set:
    return {m.dep.head for m in members if m.prec.overlaps(probe)}


@st.composite
def probes_in(draw, bounds: Range):
    c1 = draw(st.integers(bounds.c1, bounds.c2))
    r1 = draw(st.integers(bounds.r1, bounds.r2))
    c2 = draw(st.integers(c1, bounds.c2))
    r2 = draw(st.integers(r1, bounds.r2))
    return Range(c1, r1, c2, r2)


@given(rr_edges(), st.data())
@settings(max_examples=120)
def test_rr_find_dep_matches_brute_force(members, data):
    edge = build(RR, members)
    probe = data.draw(probes_in(edge.prec))
    got = set()
    for rng in RR.find_dep(edge, probe):
        got |= set(rng.cells())
    assert got == brute_force_dependents(members, probe)


@given(rr_edges(), st.data())
@settings(max_examples=80)
def test_rr_find_prec_is_union_of_windows(members, data):
    edge = build(RR, members)
    sub = data.draw(probes_in(edge.dep))
    (got,) = RR.find_prec(edge, sub)
    expected = None
    for member in members:
        if sub.overlaps(member.dep):
            expected = member.prec if expected is None else expected.bounding(member.prec)
    assert got == expected


@given(fr_edges(), st.data())
@settings(max_examples=100)
def test_fr_find_dep_matches_brute_force(members, data):
    edge = build(FR, members)
    probe = data.draw(probes_in(edge.prec))
    got = set()
    for rng in FR.find_dep(edge, probe):
        got |= set(rng.cells())
    assert got == brute_force_dependents(members, probe)


@given(rr_edges(), st.data())
@settings(max_examples=80)
def test_rr_remove_dep_is_set_subtraction(members, data):
    edge = build(RR, members)
    victim = data.draw(probes_in(edge.dep))
    pieces = RR.remove_dep(edge, victim)
    surviving = set()
    for piece in pieces:
        for dep in piece.pattern.member_dependencies(piece):
            surviving.add((dep.prec.as_tuple(), dep.dep.head))
    expected = {
        (m.prec.as_tuple(), m.dep.head)
        for m in members
        if not victim.overlaps(m.dep)
    }
    assert surviving == expected


@given(st.integers(3, 20), st.integers(1, 5), st.data())
@settings(max_examples=60)
def test_chain_transitive_closure(length, col, data):
    members = [
        Dependency(Range.cell(col, row), Range.cell(col, row + 1))
        for row in range(1, length)
    ]
    edge = build(RR_CHAIN, members)
    probe_row = data.draw(st.integers(1, length - 1))
    (got,) = RR_CHAIN.find_dep(edge, Range.cell(col, probe_row))
    # Transitive closure within the chain: all rows strictly below probe.
    assert got == Range(col, probe_row + 1, col, length)
    (prec,) = RR_CHAIN.find_prec(edge, Range.cell(col, probe_row + 1))
    assert prec == Range(col, 1, col, probe_row)


@given(st.integers(2, 8), st.data())
@settings(max_examples=60)
def test_ff_members_identical(count, data):
    prec = Range(1, 1, 2, 3)
    col = data.draw(st.integers(5, 9))
    start = data.draw(st.integers(1, 10))
    members = [
        Dependency(prec, Range.cell(col, start + i)) for i in range(count)
    ]
    edge = build(FF, members)
    assert edge.prec == prec
    assert FF.find_dep(edge, Range.cell(1, 2)) == [edge.dep]
    for member in members:
        assert FF.find_prec(edge, member.dep) == [prec]
