"""Unit tests for TacoGraph bookkeeping, variants, and statistics."""

from helpers import build_fig2_sheet, build_mixed_sheet

from repro.core.taco_graph import TacoGraph, build_from_sheet, dependencies_column_major
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestStats:
    def test_vertices_and_edges(self):
        graph = TacoGraph.full()
        for i in range(1, 6):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        stats = graph.stats()
        assert stats.edges == 1
        assert stats.vertices == 2  # A1:A5 and C1:C5
        assert graph.raw_edge_count() == 5

    def test_shared_vertex_counted_once(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1:A5", "C1"))
        graph.add_dependency(dep("A1:A5", "E7"))
        assert graph.stats().vertices == 3

    def test_pattern_breakdown(self):
        sheet = build_fig2_sheet(rows=30)
        graph = build_from_sheet(sheet)
        breakdown = graph.pattern_breakdown()
        assert "RR" in breakdown and "RR-Chain" in breakdown
        total_members = sum(info["members"] for info in breakdown.values())
        assert total_members == graph.raw_edge_count()
        for info in breakdown.values():
            assert info["reduced"] == info["members"] - info["edges"]

    def test_dependencies_column_major_order(self):
        sheet = build_fig2_sheet(rows=10)
        deps = dependencies_column_major(sheet)
        keys = [(d.dep.c1, d.dep.r1) for d in deps]
        assert keys == sorted(keys)


class TestVariants:
    def test_inrow_compresses_less(self):
        sheet = build_mixed_sheet(seed=2)
        deps = dependencies_column_major(sheet)
        full = TacoGraph.full()
        full.build(deps)
        inrow = TacoGraph.inrow()
        inrow.build(deps)
        nocomp = NoCompGraph()
        nocomp.build(deps)
        assert len(full) <= len(inrow) <= nocomp.num_edges
        assert inrow.name == "TACO-InRow"

    def test_inrow_only_compresses_same_row_refs(self):
        graph = TacoGraph.inrow()
        # Derived column: compressible in-row.
        for i in range(1, 5):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        # Sliding window over other rows: not compressible in-row.
        for i in range(1, 5):
            graph.add_dependency(dep(f"A{i}:A{i + 1}", f"D{i}"))
        by_dep = {e.dep.to_a1(): e.pattern.name for e in graph.edges()}
        assert by_dep["C1:C4"] == "RR-InRow"
        assert sum(1 for name in by_dep.values() if name == "Single") == 4

    def test_build_from_sheet_default_is_full(self):
        sheet = build_fig2_sheet(rows=12)
        graph = build_from_sheet(sheet)
        assert isinstance(graph, TacoGraph)
        assert graph.raw_edge_count() == len(dependencies_column_major(sheet))


class TestEdgeBookkeeping:
    def test_replace_edge_updates_indexes(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "C1"))
        graph.add_dependency(dep("A2", "C2"))  # merges, replacing the single
        assert len(graph.prec_overlapping(Range.from_a1("A1"))) == 1
        assert len(graph.dep_overlapping(Range.from_a1("C2"))) == 1
        # The old single edge must be gone from the indexes.
        assert len(graph.prec_overlapping(Range.from_a1("A1:A2"))) == 1

    def test_len_counts_compressed_edges(self):
        graph = TacoGraph.full()
        for i in range(1, 10):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        assert len(graph) == 1
