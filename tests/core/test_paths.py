"""Unit tests for dependency-path explanation."""

from helpers import build_fig2_sheet, build_graph_pair

from repro.core.paths import explain_dependency
from repro.core.taco_graph import TacoGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


def rng(a1: str) -> Range:
    return Range.from_a1(a1)


class TestDirectPaths:
    def test_single_hop(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        path = explain_dependency(graph, rng("A1"), rng("B1"))
        assert [s.describe() for s in path] == ["A1 -[Single]-> B1"]

    def test_no_path_returns_none(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        assert explain_dependency(graph, rng("B1"), rng("A1")) is None
        assert explain_dependency(graph, rng("Z9"), rng("B1")) is None

    def test_multi_hop(self):
        # Scattered dependencies that no pattern can compress.
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "C5"))
        graph.add_dependency(dep("C5", "F9"))
        graph.add_dependency(dep("F9", "H2"))
        path = explain_dependency(graph, rng("A1"), rng("H2"))
        assert len(path) == 3
        assert path[0].prec == rng("A1")
        assert path[-1].dep == rng("H2")
        # Consecutive steps chain: each dep feeds the next hop's frontier.
        for earlier, later in zip(path, path[1:]):
            assert earlier.dep == later.prec

    def test_adjacent_unit_refs_compress_to_one_chain_hop(self):
        # A1->B1->C1->D1 is a row-wise RR-Chain: one compressed hop.
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("B1", "C1"))
        graph.add_dependency(dep("C1", "D1"))
        path = explain_dependency(graph, rng("A1"), rng("D1"))
        assert len(path) == 1
        assert path[0].pattern == "RR-Chain"


class TestCompressedPaths:
    def test_path_through_chain_edge(self):
        graph = TacoGraph.full()
        for i in range(1, 50):
            graph.add_dependency(dep(f"A{i}", f"A{i + 1}"))
        path = explain_dependency(graph, rng("A1"), rng("A50"))
        # One compressed hop explains the whole chain.
        assert len(path) == 1
        assert path[0].pattern == "RR-Chain"
        assert path[0].dep.contains(rng("A50"))

    def test_path_through_rr_edge_narrows(self):
        graph = TacoGraph.full()
        for i in range(1, 20):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        path = explain_dependency(graph, rng("A7"), rng("C7"))
        (step,) = path
        assert step.pattern == "RR"
        assert step.dep == rng("C7")  # narrowed to the actual dependent

    def test_fig2_provenance(self):
        sheet = build_fig2_sheet(rows=30)
        taco, nocomp = build_graph_pair(sheet)
        path = explain_dependency(taco, rng("M2"), rng("N25"))
        assert path is not None
        assert path[0].prec == rng("M2")
        assert path[-1].dep.overlaps(rng("N25"))
        # Every claimed hop must be a real dependency direction.
        for step in path:
            dependents = nocomp.find_dependents(step.prec)
            assert any(step.dep.overlaps(d) for d in dependents)

    def test_path_respects_reachability(self):
        sheet = build_fig2_sheet(rows=30)
        taco, nocomp = build_graph_pair(sheet)
        # M30 feeds only N30; N5 is upstream of it -> no path.
        assert explain_dependency(taco, rng("M30"), rng("N5")) is None
