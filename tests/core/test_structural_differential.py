"""Differential suite: incrementally maintained ≡ rebuilt-from-sheet
graphs under structural edits.

For any sheet, applying a row/column insert/delete to the compressed
graph (:mod:`repro.core.structural`) must leave exactly the dependency
set of a graph rebuilt from the sheet after the same edit through the
sheet-level oracle (:mod:`repro.sheet.structural`) — for every
registered spatial-index backend, every pattern registry (TACO-Full,
TACO-InRow, the extended registry with RR-GapOne), and sheets that
actually exercise every pattern kind.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import build_mixed_sheet

from repro.core import structural as graph_structural
from repro.core.patterns.registry import (
    default_patterns,
    extended_patterns,
    inrow_patterns,
)
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.graphs.base import expand_cells
from repro.grid.range import Range
from repro.sheet import structural as sheet_structural
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet
from repro.spatial.registry import available_indexes

BACKENDS = available_indexes()
OPS = ("insert_rows", "delete_rows", "insert_columns", "delete_columns")

REGISTRIES = {
    "full": default_patterns,
    "inrow": inrow_patterns,
    "extended": extended_patterns,
}


def build_gapone_sheet(rows: int = 24) -> Sheet:
    """Every-other-row formulas (RR-GapOne bait) plus all basic patterns."""
    sheet = Sheet("g")
    for r in range(1, rows + 6):
        sheet.set_value((1, r), float(r))
        sheet.set_value((2, r), float(r * 3 % 11))
    for r in range(1, rows, 2):
        sheet.set_formula((3, r), f"=A{r}*2")            # stride-2 RR
    fill_formula_column(sheet, 4, 1, rows, "=SUM($A$1:A1)")      # FR
    fill_formula_column(sheet, 5, 1, rows, f"=SUM(A1:$A${rows})")  # RF
    fill_formula_column(sheet, 6, 1, rows, "=SUM($A$1:$B$4)")    # FF
    sheet.set_formula((7, 1), "=A1")
    fill_formula_column(sheet, 7, 2, rows, "=G1+B2")             # RR-Chain
    return sheet


def dependency_set(graph: TacoGraph) -> set:
    return {(d.prec.as_tuple(), d.dep.head) for d in graph.decompress()}


def build(sheet: Sheet, registry: str, index: str) -> TacoGraph:
    graph = TacoGraph(patterns=REGISTRIES[registry](), index=index)
    graph.build(dependencies_column_major(sheet))
    return graph


def check(sheet: Sheet, registry: str, index: str, op: str, at: int, count: int):
    graph = build(sheet, registry, index)
    getattr(graph_structural, op)(graph, at, count)
    getattr(sheet_structural, op)(sheet, at, count)
    rebuilt = build(sheet, registry, index)
    assert dependency_set(graph) == dependency_set(rebuilt)
    # The maintained indexes answer queries like the rebuilt graph's.
    used = sheet.used_range()
    if used is not None:
        for probe in (Range.cell(used.c1, used.r1), used):
            assert expand_cells(graph.find_dependents(probe)) == expand_cells(
                rebuilt.find_dependents(probe)
            )
            assert expand_cells(graph.find_precedents(probe)) == expand_cells(
                rebuilt.find_precedents(probe)
            )


@pytest.mark.parametrize("index", BACKENDS)
@pytest.mark.parametrize("registry", sorted(REGISTRIES))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_maintained_equals_rebuilt(index, registry, data):
    if registry == "extended":
        sheet = build_gapone_sheet(rows=data.draw(st.integers(10, 26)))
    else:
        sheet = build_mixed_sheet(
            seed=data.draw(st.integers(0, 8)), rows=data.draw(st.integers(8, 26))
        )
    op = data.draw(st.sampled_from(OPS))
    at = data.draw(st.integers(1, 30))
    count = data.draw(st.integers(1, 3))
    check(sheet, registry, index, op, at, count)


@pytest.mark.parametrize("index", BACKENDS)
def test_sequences_of_edits(index):
    """Edits compose: maintain through a whole sequence, compare once each."""
    sheet = build_mixed_sheet(seed=3, rows=24)
    graph = build(sheet, "full", index)
    for op, at, count in (
        ("insert_rows", 5, 2),
        ("delete_rows", 12, 3),
        ("insert_columns", 2, 1),
        ("delete_columns", 5, 2),
        ("insert_rows", 1, 1),
    ):
        getattr(graph_structural, op)(graph, at, count)
        getattr(sheet_structural, op)(sheet, at, count)
        assert dependency_set(graph) == dependency_set(build(sheet, "full", index))


def test_gapone_wholesale_and_straddle():
    """RR-GapOne edges shift wholesale (phase retag) and survive straddles."""
    sheet = build_gapone_sheet(rows=20)
    for op, at, count in (("insert_rows", 1, 1), ("insert_rows", 9, 2),
                          ("delete_rows", 7, 3)):
        graph = build(sheet, "extended", "rtree")
        edited = _clone(sheet)
        getattr(graph_structural, op)(graph, at, count)
        getattr(sheet_structural, op)(edited, at, count)
        rebuilt = TacoGraph(patterns=extended_patterns())
        rebuilt.build(dependencies_column_major(edited))
        assert dependency_set(graph) == dependency_set(rebuilt)


def _clone(sheet: Sheet) -> Sheet:
    copy = Sheet(sheet.name)
    for pos, cell in sheet.items():
        if cell.is_formula:
            copy.set_formula(pos, cell.formula_text)
        else:
            copy.set_value(pos, cell.value)
    return copy
