"""Unit tests for the exact CEM solver and greedy-vs-optimal."""

import pytest

from repro.core.optimal import enumerate_valid_blocks, optimal_edge_count
from repro.core.taco_graph import TacoGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestValidBlocks:
    def test_singletons_always_valid(self):
        deps = [dep("A1", "C1"), dep("Z9", "E5")]
        blocks = enumerate_valid_blocks(deps)
        assert frozenset([0]) in blocks and frozenset([1]) in blocks

    def test_rr_run_blocks(self):
        deps = [dep(f"A{i}", f"C{i}") for i in range(1, 4)]
        blocks = enumerate_valid_blocks(deps)
        assert frozenset([0, 1]) in blocks
        assert frozenset([0, 1, 2]) in blocks
        assert frozenset([0, 2]) not in blocks  # not adjacent

    def test_incompatible_pair_not_a_block(self):
        deps = [dep("A1", "C1"), dep("F7:G9", "C2")]
        blocks = enumerate_valid_blocks(deps)
        assert frozenset([0, 1]) not in blocks


class TestOptimal:
    def test_uniform_run_is_one_edge(self):
        deps = [dep(f"A{i}:B{i + 1}", f"C{i}") for i in range(1, 7)]
        result = optimal_edge_count(deps)
        assert result.edge_count == 1

    def test_all_singles(self):
        deps = [dep("A1", "C1"), dep("B7", "E3"), dep("D2:D9", "H8")]
        assert optimal_edge_count(deps).edge_count == 3

    def test_blocks_partition_everything(self):
        deps = [dep(f"A{i}", f"C{i}") for i in range(1, 6)]
        result = optimal_edge_count(deps)
        covered = set()
        for block in result.blocks:
            assert not (covered & block)
            covered |= block
        assert covered == set(range(len(deps)))

    def test_greedy_never_beats_optimal(self):
        # Mixed workload where greedy may split runs suboptimally.
        deps = [dep(f"A{i}", f"C{i}") for i in (1, 2, 4, 5)]
        deps.append(dep("A3", "C3"))  # inserted last, joins one side
        greedy = TacoGraph.full()
        for d in deps:
            greedy.add_dependency(d)
        optimal = optimal_edge_count(deps)
        assert optimal.edge_count <= len(greedy)
        assert optimal.edge_count == 1  # C1..C5 contiguous under RR

    def test_greedy_matches_optimal_on_clean_runs(self):
        deps = []
        for i in range(1, 5):
            deps.append(dep(f"A{i}", f"C{i}"))
            deps.append(dep("$H$1:$H$4", f"D{i}"))
        greedy = TacoGraph.full()
        for d in deps:
            greedy.add_dependency(d)
        assert len(greedy) == optimal_edge_count(deps).edge_count == 2

    def test_size_limit_enforced(self):
        deps = [dep(f"A{i}", f"C{i}") for i in range(1, 30)]
        with pytest.raises(ValueError):
            optimal_edge_count(deps)

    def test_ff_2d_block_structure(self):
        # Two adjacent columns both referencing the same fixed range: the
        # 1-D greedy and the 1-D optimal both need two edges (one per
        # column); this mirrors the RPC-reduction structure.
        deps = [dep("$Z$1:$Z$4", f"C{i}") for i in range(1, 4)]
        deps += [dep("$Z$1:$Z$4", f"D{i}") for i in range(1, 4)]
        result = optimal_edge_count(deps)
        assert result.edge_count == 2
