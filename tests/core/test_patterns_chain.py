"""Unit tests for RR-Chain (paper Sec. V, Fig. 9) and RR-GapOne."""

from repro.core.patterns import RR_CHAIN, RR_GAPONE, SINGLE
from repro.core.patterns.base import CompressedEdge
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def single(prec: str, dep: str) -> CompressedEdge:
    return CompressedEdge(Range.from_a1(prec), Range.from_a1(dep), SINGLE, None)


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


def build_chain(raw):
    edge = single(*raw[0])
    for prec, dep_cell in raw[1:]:
        merged = (
            RR_CHAIN.try_pair(edge, dep(prec, dep_cell))
            if edge.pattern is SINGLE
            else RR_CHAIN.try_merge(edge, dep(prec, dep_cell))
        )
        assert merged is not None
        edge = merged
    return edge


# Fig. 9: A2=A1+1, A3=A2+1, A4=A3+1.
FIG9 = [("A1", "A2"), ("A2", "A3"), ("A3", "A4")]


class TestChainAbove:
    def test_fig9_compression(self):
        edge = build_chain(FIG9)
        assert edge.prec == Range.from_a1("A1:A3")
        assert edge.dep == Range.from_a1("A2:A4")
        assert edge.meta == (0, -1)  # l = ABOVE

    def test_find_dep_is_transitive(self):
        edge = build_chain(FIG9)
        # Paper: dependents of A2 within the edge = A3:A4 in one step.
        (result,) = RR_CHAIN.find_dep(edge, Range.from_a1("A2"))
        assert result == Range.from_a1("A3:A4")
        (result,) = RR_CHAIN.find_dep(edge, Range.from_a1("A1"))
        assert result == Range.from_a1("A2:A4")

    def test_find_prec_is_transitive(self):
        edge = build_chain(FIG9)
        (result,) = RR_CHAIN.find_prec(edge, Range.from_a1("A4"))
        assert result == Range.from_a1("A1:A3")
        (result,) = RR_CHAIN.find_prec(edge, Range.from_a1("A3"))
        assert result == Range.from_a1("A1:A2")

    def test_remove_dep_uses_direct_precedents(self):
        edge = build_chain(FIG9)
        pieces = RR_CHAIN.remove_dep(edge, Range.from_a1("A3"))
        by_dep = {p.dep.to_a1(): p for p in pieces}
        assert by_dep["A2"].pattern is SINGLE
        assert by_dep["A2"].prec == Range.from_a1("A1")
        assert by_dep["A4"].pattern is SINGLE
        assert by_dep["A4"].prec == Range.from_a1("A3")

    def test_member_dependencies(self):
        edge = build_chain(FIG9)
        got = {(d.prec.to_a1(), d.dep.to_a1()) for d in RR_CHAIN.member_dependencies(edge)}
        assert got == set(FIG9)


class TestChainDirections:
    def test_below(self):
        edge = build_chain([("A3", "A2"), ("A2", "A1")])
        assert edge.meta == (0, 1)
        (result,) = RR_CHAIN.find_dep(edge, Range.from_a1("A3"))
        assert result == Range.from_a1("A1:A2")
        (result,) = RR_CHAIN.find_prec(edge, Range.from_a1("A1"))
        assert result == Range.from_a1("A2:A3")

    def test_left(self):
        edge = build_chain([("A1", "B1"), ("B1", "C1"), ("C1", "D1")])
        assert edge.meta == (-1, 0)
        (result,) = RR_CHAIN.find_dep(edge, Range.from_a1("B1"))
        assert result == Range.from_a1("C1:D1")

    def test_right(self):
        edge = build_chain([("D1", "C1"), ("C1", "B1")])
        assert edge.meta == (1, 0)
        (result,) = RR_CHAIN.find_dep(edge, Range.from_a1("D1"))
        assert result == Range.from_a1("B1:C1")


class TestChainRejections:
    def test_non_unit_reference_is_not_chain(self):
        edge = single("A1:B1", "C1")
        assert RR_CHAIN.try_pair(edge, dep("A2:B2", "C2")) is None

    def test_unit_but_not_adjacent_reference(self):
        # Each cell references the cell two above: RR, not a chain.
        edge = single("A1", "A3")
        assert RR_CHAIN.try_pair(edge, dep("A2", "A4")) is None

    def test_perpendicular_unit_refs_are_not_chain(self):
        # A2=A1, B2=B1: vertical references merged horizontally -> plain RR.
        edge = single("A1", "A2")
        assert RR_CHAIN.try_pair(edge, dep("B1", "B2")) is None

    def test_direction_mismatch(self):
        edge = build_chain(FIG9[:2])
        assert RR_CHAIN.try_merge(edge, dep("A5", "A4")) is None


class TestGapOne:
    def test_pair_and_merge_stride_two(self):
        edge = single("A1", "B1")
        merged = RR_GAPONE.try_pair(edge, dep("A3", "B3"))
        assert merged is not None
        assert merged.dep == Range.from_a1("B1:B3")
        merged = RR_GAPONE.try_merge(merged, dep("A5", "B5"))
        assert merged.dep == Range.from_a1("B1:B5")
        assert merged.member_count == 3

    def test_member_cells_respect_parity(self):
        edge = single("A1", "B1")
        edge = RR_GAPONE.try_pair(edge, dep("A3", "B3"))
        edge = RR_GAPONE.try_merge(edge, dep("A5", "B5"))
        assert RR_GAPONE.member_cells(edge) == [(2, 1), (2, 3), (2, 5)]

    def test_find_dep_skips_gap_rows(self):
        edge = single("A1", "B1")
        edge = RR_GAPONE.try_pair(edge, dep("A3", "B3"))
        edge = RR_GAPONE.try_merge(edge, dep("A5", "B5"))
        assert RR_GAPONE.find_dep(edge, Range.from_a1("A3")) == [Range.from_a1("B3")]
        assert RR_GAPONE.find_dep(edge, Range.from_a1("A2")) == []

    def test_adjacent_cell_rejected(self):
        edge = single("A1", "B1")
        assert RR_GAPONE.try_pair(edge, dep("A2", "B2")) is None

    def test_remove_dep_regroups_runs(self):
        edge = single("A1", "B1")
        edge = RR_GAPONE.try_pair(edge, dep("A3", "B3"))
        edge = RR_GAPONE.try_merge(edge, dep("A5", "B5"))
        edge = RR_GAPONE.try_merge(edge, dep("A7", "B7"))
        pieces = RR_GAPONE.remove_dep(edge, Range.from_a1("B3"))
        kinds = sorted((p.pattern.name, p.dep.to_a1()) for p in pieces)
        assert kinds == [("RR-GapOne", "B5:B7"), ("Single", "B1")]

    def test_reconstruction(self):
        edge = single("A1", "B1")
        edge = RR_GAPONE.try_pair(edge, dep("A3", "B3"))
        got = {(d.prec.to_a1(), d.dep.to_a1()) for d in RR_GAPONE.member_dependencies(edge)}
        assert got == {("A1", "B1"), ("A3", "B3")}
