"""Unit tests for incremental maintenance (paper Sec. IV-C)."""

from helpers import assert_same_dependents, build_graph_pair, build_mixed_sheet

from repro.core.maintain import clear_cells, update_cell
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def dep(prec: str, dep_cell: str) -> Dependency:
    return Dependency(Range.from_a1(prec), Range.from_a1(dep_cell))


class TestClear:
    def test_clear_whole_single(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph.clear_cells(Range.from_a1("B1"))
        assert len(graph) == 0
        assert graph.find_dependents(Range.from_a1("A1")) == []

    def test_clear_middle_of_run_splits(self):
        graph = TacoGraph.full()
        for i in range(1, 11):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        graph.clear_cells(Range.from_a1("C4:C6"))
        deps = sorted(e.dep.to_a1() for e in graph.edges())
        assert deps == ["C1:C3", "C7:C10"]

    def test_clear_does_not_touch_precedent_side(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("B1", "C1"))
        # Clearing B1's formula removes A1->B1 but C1 still references B1.
        graph.clear_cells(Range.from_a1("B1"))
        (edge,) = graph.edges()
        assert edge.prec == Range.from_a1("B1")
        assert edge.dep == Range.from_a1("C1")

    def test_clear_range_spanning_multiple_edges(self):
        graph = TacoGraph.full()
        for i in range(1, 6):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))      # RR run
            graph.add_dependency(dep("$F$1", f"D{i}"))       # FF run
        graph.clear_cells(Range(3, 2, 4, 3))  # C2:D3
        remaining = sorted(e.dep.to_a1() for e in graph.edges())
        assert remaining == ["C1", "C4:C5", "D1", "D4:D5"]

    def test_clear_empty_region_is_noop(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        graph.clear_cells(Range.from_a1("X1:X100"))
        assert len(graph) == 1

    def test_clear_returns_count_of_edges_actually_touched(self):
        graph = TacoGraph.full()
        for i in range(1, 6):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))      # one RR run C1:C5
        graph.add_dependency(dep("F1", "G1"))                # unrelated single
        assert clear_cells(graph, Range.from_a1("C2:C3")) == 1
        assert clear_cells(graph, Range.from_a1("X1:X50")) == 0
        assert clear_cells(graph, Range.from_a1("G1")) == 1

    def test_clear_count_excludes_non_intersecting_index_hits(self):
        """A backend may over-approximate; only real removals count."""

        class ChattyIndex:
            """Index stand-in whose search returns every stored entry."""

            def __init__(self):
                from repro.spatial.gridbucket import GridBucketIndex

                self._inner = GridBucketIndex()

            def search(self, query):
                return list(self._inner)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        graph = TacoGraph.full(index=ChattyIndex)
        graph.add_dependency(dep("A1", "B1"))
        graph.add_dependency(dep("A9", "H9"))
        # The chatty index reports both edges; only B1's is really cleared.
        assert clear_cells(graph, Range.from_a1("B1")) == 1
        assert len(graph) == 1


class TestClearMatchesRebuild:
    def test_against_nocomp_after_clear(self):
        sheet = build_mixed_sheet(seed=11)
        taco, nocomp = build_graph_pair(sheet)
        victim = Range.from_a1("C5:C12")
        taco.clear_cells(victim)
        nocomp.clear_cells(victim)
        for probe in ("A1", "A10", "B3", "G1"):
            assert_same_dependents(taco, nocomp, Range.from_a1(probe))

    def test_against_fresh_build_after_clear(self):
        sheet = build_mixed_sheet(seed=12)
        taco, _ = build_graph_pair(sheet)
        victim = Range.from_a1("D3:D9")
        taco.clear_cells(victim)
        # Rebuild from the mutated sheet.
        sheet.clear_range(victim)
        fresh = TacoGraph.full()
        fresh.build(dependencies_column_major(sheet))
        incremental = {(d.prec.to_a1(), d.dep.to_a1()) for d in taco.decompress()}
        rebuilt = {(d.prec.to_a1(), d.dep.to_a1()) for d in fresh.decompress()}
        assert incremental == rebuilt


class TestUpdate:
    def test_update_cell_replaces_dependencies(self):
        graph = TacoGraph.full()
        graph.add_dependency(dep("A1", "B1"))
        update_cell(graph, Range.from_a1("B1"), [dep("C9:D9", "B1")])
        (edge,) = graph.edges()
        assert edge.prec == Range.from_a1("C9:D9")

    def test_update_can_rejoin_run(self):
        graph = TacoGraph.full()
        for i in range(1, 6):
            graph.add_dependency(dep(f"A{i}", f"C{i}"))
        update_cell(graph, Range.from_a1("C3"), [dep("A3", "C3")])
        # The run is restored into a single edge (greedy re-merge).
        assert sorted(e.dep.to_a1() for e in graph.edges()) in (
            [ "C1:C5"], ["C1:C3", "C4:C5"], ["C1:C2", "C3:C5"],
        )
        raw = {(d.prec.to_a1(), d.dep.to_a1()) for d in graph.decompress()}
        assert raw == {(f"A{i}", f"C{i}") for i in range(1, 6)}

    def test_insert_after_clear_on_sheet(self):
        sheet = build_mixed_sheet(seed=13)
        taco, nocomp = build_graph_pair(sheet)
        cell = Range.from_a1("C7")
        new_deps = [dep("A1:B2", "C7")]
        update_cell(taco, cell, new_deps)
        nocomp.clear_cells(cell)
        for d in new_deps:
            nocomp.add_dependency(d)
        for probe in ("A1", "A20", "B2"):
            assert_same_dependents(taco, nocomp, Range.from_a1(probe))
