"""Unit tests for graph serialization and visualisation export."""

import io
import json

import pytest

from helpers import build_fig2_sheet, build_graph_pair, build_mixed_sheet

from repro.core.export import summarize_graph, to_adjacency_json, to_dot
from repro.core.serialize import (
    GraphFormatError,
    dump_graph,
    dumps_graph,
    load_graph,
    loads_graph,
)
from repro.graphs.base import expand_cells
from repro.grid.range import Range


def dependency_set(graph) -> set:
    return {(d.prec.as_tuple(), d.dep.head) for d in graph.decompress()}


class TestRoundTrip:
    def test_identity_on_edges(self):
        taco, _ = build_graph_pair(build_mixed_sheet(seed=30))
        restored = loads_graph(dumps_graph(taco))
        assert len(restored) == len(taco)
        assert dependency_set(restored) == dependency_set(taco)

    def test_queries_survive(self):
        taco, nocomp = build_graph_pair(build_fig2_sheet(rows=25))
        restored = loads_graph(dumps_graph(taco))
        probe = Range.from_a1("M5")
        assert expand_cells(restored.find_dependents(probe)) == expand_cells(
            nocomp.find_dependents(probe)
        )

    def test_maintenance_survives(self):
        taco, _ = build_graph_pair(build_fig2_sheet(rows=25))
        restored = loads_graph(dumps_graph(taco))
        restored.clear_cells(Range.from_a1("N10:N12"))
        # Each cleared Fig.2 formula cell carried four dependencies.
        assert restored.raw_edge_count() == taco.raw_edge_count() - 12

    def test_file_round_trip(self, tmp_path):
        taco, _ = build_graph_pair(build_mixed_sheet(seed=31))
        path = str(tmp_path / "graph.json")
        dump_graph(taco, path)
        assert dependency_set(load_graph(path)) == dependency_set(taco)

    def test_stream_round_trip(self):
        taco, _ = build_graph_pair(build_mixed_sheet(seed=32))
        buffer = io.StringIO()
        dump_graph(taco, buffer)
        buffer.seek(0)
        assert dependency_set(load_graph(buffer)) == dependency_set(taco)


class TestConstructionParameters:
    """Version 2 records how the graph was built, and a load honours it."""

    def test_index_and_registry_round_trip(self):
        from repro.core.patterns.registry import extended_patterns
        from repro.core.taco_graph import TacoGraph, dependencies_column_major

        sheet = build_mixed_sheet(seed=40)
        graph = TacoGraph(patterns=extended_patterns(), index="gridbucket")
        graph.build(dependencies_column_major(sheet))
        payload = json.loads(dumps_graph(graph))
        assert payload["version"] == 2
        assert payload["index"] == "gridbucket"
        assert payload["patterns"] == [p.name for p in graph.patterns]
        restored = loads_graph(dumps_graph(graph))
        assert restored.index_spec == "gridbucket"
        assert [p.name for p in restored.patterns] == [p.name for p in graph.patterns]
        assert restored.use_cues == graph.use_cues
        assert restored.prefer_column == graph.prefer_column

    def test_compact_dump_round_trips(self):
        taco, _ = build_graph_pair(build_mixed_sheet(seed=41))
        text = dumps_graph(taco, compact=True)
        assert "\n" not in text
        assert dependency_set(loads_graph(text)) == dependency_set(taco)

    def test_version1_payload_still_loads(self):
        payload = {
            "format": "taco-graph", "version": 1, "edge_count": 1,
            "edges": [{"prec": "A1", "dep": "B1", "pattern": "Single", "meta": None}],
        }
        graph = loads_graph(json.dumps(payload))
        assert len(graph) == 1

    def test_unknown_index_backend_rejected(self):
        payload = {
            "format": "taco-graph", "version": 2, "index": "quadtree",
            "patterns": ["RR"], "edges": [],
        }
        with pytest.raises(GraphFormatError, match="quadtree"):
            loads_graph(json.dumps(payload))


class TestValidation:
    def test_not_json(self):
        with pytest.raises(GraphFormatError):
            loads_graph("not json {")

    def test_wrong_header(self):
        with pytest.raises(GraphFormatError):
            loads_graph(json.dumps({"format": "something-else", "version": 1}))

    def test_wrong_version(self):
        with pytest.raises(GraphFormatError):
            loads_graph(json.dumps({"format": "taco-graph", "version": 99, "edges": []}))

    def test_future_version_error_names_both_versions(self):
        from repro.core.serialize import FORMAT_VERSION

        with pytest.raises(GraphFormatError) as err:
            loads_graph(json.dumps(
                {"format": "taco-graph", "version": 99, "edges": []}
            ))
        message = str(err.value)
        assert "99" in message and str(FORMAT_VERSION) in message

    def test_non_integer_version_rejected(self):
        with pytest.raises(GraphFormatError, match="version"):
            loads_graph(json.dumps(
                {"format": "taco-graph", "version": "two", "edges": []}
            ))

    def test_pattern_outside_recorded_registry_rejected(self):
        # RR-GapOne is a real pattern, but not in the recorded registry:
        # the payload's own registry is what validates, not ALL_PATTERNS.
        payload = {
            "format": "taco-graph", "version": 2, "index": "rtree",
            "patterns": ["RR-Chain", "RR", "RF", "FR", "FF"],
            "edges": [{
                "prec": "A1:A2", "dep": "B1:B2",
                "pattern": "RR-GapOne", "meta": [0, 0, 1],
            }],
        }
        with pytest.raises(GraphFormatError, match="registry in use"):
            loads_graph(json.dumps(payload))

    def test_single_always_allowed(self):
        payload = {
            "format": "taco-graph", "version": 2, "index": "rtree",
            "patterns": ["RR"],
            "edges": [{"prec": "A1", "dep": "B1", "pattern": "Single", "meta": None}],
        }
        assert len(loads_graph(json.dumps(payload))) == 1

    def test_unknown_registry_pattern_rejected(self):
        payload = {
            "format": "taco-graph", "version": 2, "index": "rtree",
            "patterns": ["Bogus"], "edges": [],
        }
        with pytest.raises(GraphFormatError, match="Bogus"):
            loads_graph(json.dumps(payload))

    def test_unknown_pattern(self):
        payload = {
            "format": "taco-graph", "version": 1, "edge_count": 1,
            "edges": [{"prec": "A1", "dep": "B1", "pattern": "Bogus", "meta": None}],
        }
        with pytest.raises(GraphFormatError):
            loads_graph(json.dumps(payload))

    def test_count_mismatch(self):
        payload = {
            "format": "taco-graph", "version": 1, "edge_count": 5,
            "edges": [{"prec": "A1", "dep": "B1", "pattern": "Single", "meta": None}],
        }
        with pytest.raises(GraphFormatError):
            loads_graph(json.dumps(payload))

    def test_bad_range(self):
        payload = {
            "format": "taco-graph", "version": 1, "edge_count": 1,
            "edges": [{"prec": "??", "dep": "B1", "pattern": "Single", "meta": None}],
        }
        with pytest.raises(GraphFormatError):
            loads_graph(json.dumps(payload))


class TestExport:
    def test_dot_contains_pattern_annotations(self):
        taco, _ = build_graph_pair(build_fig2_sheet(rows=20))
        dot = to_dot(taco, title="fig2")
        assert dot.startswith("digraph")
        assert "RR-Chain x" in dot
        assert '"fig2"' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_node_per_vertex(self):
        taco, _ = build_graph_pair(build_fig2_sheet(rows=20))
        dot = to_dot(taco)
        assert dot.count("shape=box") == 1
        assert dot.count(" -> ") == len(taco)

    def test_adjacency_json(self):
        taco, _ = build_graph_pair(build_fig2_sheet(rows=20))
        payload = json.loads(to_adjacency_json(taco))
        assert len(payload["edges"]) == len(taco)
        assert sum(e["members"] for e in payload["edges"]) == taco.raw_edge_count()
        assert all(v in payload["vertices"] for e in payload["edges"] for v in (e["prec"], e["dep"]))

    def test_summary_text(self):
        taco, _ = build_graph_pair(build_fig2_sheet(rows=20))
        text = summarize_graph(taco)
        assert "compressed into" in text
        assert "RR-Chain" in text
