"""Unit tests for the benchmark harness utilities."""

import time

import pytest

from repro.bench.harness import Measurement, best_of, measure, time_call
from repro.bench.percentiles import Summary, cdf_points, percentile
from repro.bench.reporting import ascii_table, banner, format_count, format_ms, format_pct
from repro.graphs.base import Budget, DNFError


class TestMeasure:
    def test_measure_success(self):
        m = measure(lambda: 42)
        assert not m.dnf and m.result == 42
        assert m.seconds >= 0

    def test_measure_with_budget_passes(self):
        def op(budget):
            budget.check_now()
            return "ok"

        m = measure(op, budget_seconds=10.0)
        assert not m.dnf and m.result == "ok"

    def test_measure_dnf(self):
        def op(budget):
            deadline = time.perf_counter() + 0.05
            while time.perf_counter() < deadline:
                budget.check_now()
            return "never"

        m = measure(op, budget_seconds=0.01)
        assert m.dnf and m.result is None
        assert "DNF" in m.render()

    def test_measure_memory_error_is_dnf(self):
        def op():
            raise MemoryError("too big")

        m = measure(op)
        assert m.dnf and "memory" in m.error

    def test_render_formats(self):
        assert "ms" in Measurement(0.002, False).render()
        assert "s" in Measurement(2.5, False).render()

    def test_time_call_and_best_of(self):
        elapsed, result = time_call(lambda: sum(range(100)))
        assert result == 4950 and elapsed >= 0
        m = best_of(lambda: 7, repeats=3)
        assert m.result == 7 and not m.dnf


class TestBudget:
    def test_amortised_check(self):
        budget = Budget(100.0, check_every=4)
        for _ in range(10):
            budget.check()  # never raises under a generous limit

    def test_expired_budget_raises(self):
        budget = Budget(0.0, "op", check_every=1)
        time.sleep(0.002)
        with pytest.raises(DNFError):
            budget.check()

    def test_dnf_error_message(self):
        err = DNFError("building", 300.0)
        assert "building" in str(err) and "300" in str(err)


class TestPercentiles:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_percentile_single(self):
        assert percentile([7.0], 75) == 7.0

    def test_percentile_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summary(self):
        s = Summary.of([4.0, 1.0, 3.0, 2.0])
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == 2.5 and s.mean == 2.5

    def test_cdf_points_default_grid(self):
        points = cdf_points([float(i) for i in range(1, 101)])
        assert points[0][0] == 40
        assert points[-1] == (100, 100.0)


class TestReporting:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert lines[1].startswith("| name")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_banner(self):
        text = banner("Title", "sub")
        assert "Title" in text and "sub" in text

    def test_format_count(self):
        assert format_count(1_500_000) == "1.5M"
        assert format_count(25_000) == "25.0K"
        assert format_count(42) == "42"

    def test_format_ms(self):
        assert format_ms(0.0005).endswith("ms")
        assert format_ms(12.0).endswith("s")

    def test_format_pct(self):
        assert format_pct(0.0742) == "7.42%"
        assert format_pct(0.5) == "50.0%"
        assert format_pct(0.00042) == "0.0420%"
