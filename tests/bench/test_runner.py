"""Unit tests for the benchmark corpus cache."""

import pytest

from repro.bench.runner import BenchSheet, get_corpus, top_sheets
from repro.datasets.corpora import corpus_specs


@pytest.fixture
def bench_sheet(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    spec = corpus_specs("enron", scale=0.1)[0]
    return BenchSheet(spec.corpus, spec.spec)


class TestBenchSheet:
    def test_lazy_sheet_and_deps(self, bench_sheet):
        assert bench_sheet._sheet is None
        deps = bench_sheet.deps()
        assert deps and bench_sheet._sheet is not None
        assert bench_sheet.deps() is deps  # cached

    def test_cached_graphs_are_reused(self, bench_sheet):
        assert bench_sheet.taco() is bench_sheet.taco()
        assert bench_sheet.nocomp() is bench_sheet.nocomp()
        assert bench_sheet.inrow() is bench_sheet.inrow()

    def test_fresh_builds_are_new_objects(self, bench_sheet):
        assert bench_sheet.fresh_taco() is not bench_sheet.fresh_taco()
        assert bench_sheet.fresh_nocomp() is not bench_sheet.taco()

    def test_probes_cached(self, bench_sheet):
        cell, count = bench_sheet.max_dependents_probe()
        assert count > 0
        assert bench_sheet.max_dependents_probe() == (cell, count)
        lp_cell, lp = bench_sheet.longest_path_probe()
        assert lp >= 1

    def test_modify_range_targets_formula_cells(self, bench_sheet):
        cell, _ = bench_sheet.max_dependents_probe()
        victim = bench_sheet.modify_range(50)
        assert victim.height == 50 and victim.width == 1
        # The victim column must contain formula cells (graph maintenance
        # is a no-op on pure data), and they must depend on the probe.
        dependents = bench_sheet.taco().find_dependents(cell)
        assert any(victim.overlaps(rng) for rng in dependents)

    def test_graph_consistency(self, bench_sheet):
        assert bench_sheet.taco().raw_edge_count() == bench_sheet.nocomp().num_edges


class TestCorpusCache:
    def test_get_corpus_caches(self):
        a = get_corpus("enron")
        b = get_corpus("enron")
        assert a is b

    def test_top_sheets_ordering(self):
        top = top_sheets("enron", key=lambda s: len(s.deps()), count=3)
        sizes = [len(s.deps()) for s in top]
        assert sizes == sorted(sizes, reverse=True)
        assert len(top) == 3
