"""Evict-to-snapshot → journal-replay re-admit round trips.

The LRU must be invisible: a workbook that was evicted and re-admitted
(possibly several times, under concurrent readers) must end bit-identical
to one that stayed resident the whole time — and to a plain synchronous
engine fed the same edit sequence.
"""

import asyncio
import os

import pytest

from repro.engine.journal import read_journal
from repro.engine.recalc import RecalcEngine
from repro.server import WorkbookService
from repro.sheet.sheet import Sheet


def run(coro):
    return asyncio.run(coro)


def seed_edits(rows: int = 12) -> list[dict]:
    edits = [{"op": "set_value", "cell": f"A{r}", "value": float(r)}
             for r in range(1, rows + 1)]
    edits += [{"op": "set_formula", "cell": f"B{r}", "formula": f"=A{r}*2+1"}
              for r in range(1, rows + 1)]
    edits.append({"op": "set_formula", "cell": "C1", "formula": f"=SUM(B1:B{rows})"})
    return edits


def oracle_sheet(point_writes) -> Sheet:
    """The same workbook built through the synchronous engine."""
    sheet = Sheet("Sheet1")
    for edit in seed_edits():
        if edit["op"] == "set_value":
            sheet.set_value(edit["cell"], edit["value"])
        else:
            sheet.set_formula(edit["cell"], edit["formula"])
    engine = RecalcEngine(sheet)
    engine.recalculate_all()
    for cell, value in point_writes:
        engine.set_value(cell, value)
    return sheet


async def grid_of(svc, wb_id, rng="A1:C12"):
    await svc.execute(wb_id, "recalculate")
    result = await svc.execute(wb_id, "get_range", {"range_ref": rng})
    assert result["dirty_cells"] == 0
    return result["values"]


class TestRoundTrips:
    @pytest.mark.parametrize("fsync", [True, False])
    def test_evicted_workbook_matches_never_evicted(self, tmp_path, fsync):
        async def scenario():
            async with WorkbookService(
                str(tmp_path), max_resident=2, fsync=fsync
            ) as svc:
                # "hot" never leaves; "cold" gets cycled out repeatedly.
                await svc.create_workbook("hot")
                await svc.create_workbook("cold")
                for wb in ("hot", "cold"):
                    await svc.execute(wb, "batch_edit", {"edits": seed_edits()})
                writes = []
                for i in range(6):
                    cell, value = f"A{i + 1}", float(100 + i)
                    writes.append((cell, value))
                    await svc.execute("cold", "set_cell", {"cell": cell, "value": value})
                    await svc.execute("hot", "set_cell", {"cell": cell, "value": value})
                    # Admitting a fresh workbook evicts "cold" (LRU);
                    # touching it again re-admits from snapshot+journal.
                    await svc.create_workbook(f"filler{i}")
                    await svc.execute(f"filler{i}", "set_cell", {"cell": "A1", "value": i})
                assert svc.metrics.evictions >= 6
                assert svc.metrics.readmissions >= 5
                cold = await grid_of(svc, "cold")
                hot = await grid_of(svc, "hot")
                assert cold == hot
                # And both match the plain synchronous engine.
                oracle = oracle_sheet(writes)
                expected = [
                    [oracle.get_value((c, r)) for c in (1, 2, 3)]
                    for r in range(1, 13)
                ]
                assert cold == expected

        run(scenario())

    def test_round_trip_under_concurrent_reads(self, tmp_path):
        async def scenario():
            async with WorkbookService(
                str(tmp_path), max_resident=2, fsync=False
            ) as svc:
                await svc.create_workbook("target")
                await svc.execute("target", "batch_edit", {"edits": seed_edits()})
                await svc.execute("target", "recalculate")
                stop = False
                read_values = []

                async def reader():
                    while not stop:
                        view = await svc.execute("target", "get_cell", {"cell": "C1"})
                        if not view["dirty"]:
                            read_values.append(view["value"])
                        await asyncio.sleep(0)

                readers = [asyncio.ensure_future(reader()) for _ in range(3)]
                writes = []
                for i in range(5):
                    cell, value = f"A{i + 1}", float(100 + i)
                    writes.append((cell, value))
                    await svc.execute("target", "set_cell", {"cell": cell, "value": value})
                    await svc.create_workbook(f"spin{i}a")
                    await svc.create_workbook(f"spin{i}b")
                    await asyncio.sleep(0)
                stop = True
                await asyncio.gather(*readers)
                assert svc.metrics.evictions > 0
                assert svc.metrics.readmissions > 0
                assert read_values  # readers made progress throughout
                grid = await grid_of(svc, "target")
                oracle = oracle_sheet(writes)
                expected = [
                    [oracle.get_value((c, r)) for c in (1, 2, 3)]
                    for r in range(1, 13)
                ]
                assert grid == expected

        run(scenario())

    def test_service_restart_over_same_data_dir(self, tmp_path):
        async def first():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await svc.execute("wb", "batch_edit", {"edits": seed_edits()})
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 500.0})

        async def second():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                grid = await grid_of(svc, "wb")
                oracle = oracle_sheet([("A1", 500.0)])
                expected = [
                    [oracle.get_value((c, r)) for c in (1, 2, 3)]
                    for r in range(1, 13)
                ]
                assert grid == expected
                await svc.execute("wb", "set_cell", {"cell": "A2", "value": 600.0})

        async def third():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                view = await svc.execute("wb", "get_cell", {"cell": "A2"})
                assert view["value"] == 600.0

        run(first())
        run(second())
        run(third())


class TestDurabilityPath:
    def test_fsync_false_journal_still_records_and_replays(self, tmp_path):
        async def scenario():
            svc = WorkbookService(str(tmp_path), fsync=False)
            await svc.create_workbook("wb")
            await svc.execute("wb", "set_cell", {"cell": "A1", "value": 4})
            await svc.execute("wb", "set_formula", {"cell": "B1", "formula": "=A1*3"})
            # Abandon without close(): the journal prefix alone must
            # carry the acknowledged writes.
            for res in svc._residents.values():
                res.journal.close()
                res.writer.cancel()
            records = read_journal(str(tmp_path / "wb.wal")).records
            kinds = [r["kind"] for r in records]
            assert kinds == ["open", "cell", "cell"]

        run(scenario())

        async def reopen():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert view["dirty"] is False
                assert view["value"] == 12.0

        run(reopen())

    def test_eviction_rotates_journal_to_new_snapshot(self, tmp_path):
        async def scenario():
            async with WorkbookService(
                str(tmp_path), max_resident=1, fsync=False
            ) as svc:
                await svc.create_workbook("wb")
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 1})
                await svc.create_workbook("other")  # evicts wb
                records = read_journal(str(tmp_path / "wb.wal")).records
                # Post-eviction journal: just the fresh pairing stamp.
                assert [r["kind"] for r in records] == ["open"]
                view = await svc.execute("wb", "get_cell", {"cell": "A1"})
                assert view["value"] == 1

        run(scenario())

    def test_crashed_eviction_rotation_is_repaired(self, tmp_path):
        """Crash window: eviction wrote the new snapshot but died before
        rotating the journal.  Admission detects the superseded journal
        by its pairing stamp and repairs instead of failing."""

        async def build():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 9})
                await svc.execute(
                    "wb", "set_formula", {"cell": "B1", "formula": "=A1+1"}
                )

        run(build())
        # close() evicted: snapshot is fresh, journal is just the stamp.
        # Simulate the crash by regressing the journal to the *previous*
        # epoch's stamp (an id the current snapshot no longer carries).
        from repro.engine.journal import Journal

        wal = str(tmp_path / "wb.wal")
        os.remove(wal)
        stale = Journal(wal, fsync=False, truncate=True, snapshot_id="stale-epoch")
        stale.close()

        async def reopen():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert view["value"] == 10.0
                assert svc.metrics.rotation_repairs == 1
                # The repaired journal is rotated forward: new writes land.
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 20})

        run(reopen())

        async def verify():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                view = await grid_of(svc, "wb", rng="B1:B1")
                assert view == [[21.0]]

        run(verify())
