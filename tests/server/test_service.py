"""The multi-tenant workbook service: dispatch, serialization, reads."""

import asyncio

import pytest

from repro.server import OpValidationError, WorkbookService


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_create_and_point_ops(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                created = await svc.create_workbook("wb")
                assert created == {"workbook": "wb", "sheets": ["Sheet1"]}
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 6})
                ticket = await svc.execute(
                    "wb", "set_formula", {"cell": "B1", "formula": "=A1*7"}
                )
                assert ticket["dirty_count"] == 1
                assert ticket["control_return_seconds"] >= 0
                await svc.execute("wb", "recalculate")
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert view["value"] == 42.0
                assert view["dirty"] is False

        run(scenario())

    def test_duplicate_create_rejected(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                with pytest.raises(OpValidationError, match="already exists"):
                    await svc.create_workbook("wb")

        run(scenario())

    def test_unknown_workbook_and_sheet(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                with pytest.raises(OpValidationError, match="unknown workbook"):
                    await svc.execute("ghost", "get_cell", {"cell": "A1"})
                await svc.create_workbook("wb")
                with pytest.raises(OpValidationError, match="unknown sheet"):
                    await svc.execute(
                        "wb", "get_cell", {"cell": "A1", "sheet": "Nope"}
                    )

        run(scenario())

    def test_invalid_workbook_id(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                with pytest.raises(OpValidationError, match="invalid workbook id"):
                    await svc.create_workbook("../escape")

        run(scenario())

    def test_closed_service_refuses_ops(self, tmp_path):
        async def scenario():
            svc = WorkbookService(str(tmp_path), fsync=False)
            await svc.create_workbook("wb")
            await svc.close()
            with pytest.raises(RuntimeError, match="closed"):
                await svc.execute("wb", "get_cell", {"cell": "A1"})

        run(scenario())


class TestDeferredReads:
    def test_read_reports_staleness_before_pump(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 1})
                await svc.execute(
                    "wb", "set_formula", {"cell": "B1", "formula": "=A1+1"}
                )
                await svc.execute("wb", "recalculate")
                # The write returns at the control-return point; reading
                # immediately (same loop tick) sees the stale value flagged.
                ticket = await svc.execute("wb", "set_cell", {"cell": "A1", "value": 50})
                assert ticket["dirty_count"] == 1
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                if view["dirty"]:
                    assert view["value"] == 2.0  # stale but honestly flagged
                await svc.execute("wb", "recalculate")
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert (view["value"], view["dirty"]) == (51.0, False)

        run(scenario())

    def test_get_range_counts_dirty_cells(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                edits = [{"op": "set_value", "cell": f"A{r}", "value": r}
                         for r in range(1, 6)]
                edits += [{"op": "set_formula", "cell": f"B{r}", "formula": f"=A{r}*2"}
                          for r in range(1, 6)]
                await svc.execute("wb", "batch_edit", {"edits": edits})
                await svc.execute("wb", "recalculate")
                grid = await svc.execute("wb", "get_range", {"range_ref": "A1:B5"})
                assert grid["dirty_cells"] == 0
                assert grid["values"] == [[float(r), float(r * 2)] for r in range(1, 6)]

        run(scenario())

    def test_get_range_size_cap(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                with pytest.raises(OpValidationError, match="limit"):
                    await svc.execute("wb", "get_range", {"range_ref": "A1:ZZ9999"})

        run(scenario())

    def test_summarize_sheet(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await svc.execute("wb", "set_cell", {"cell": "C7", "value": 3})
                await svc.execute(
                    "wb", "set_formula", {"cell": "D2", "formula": "=C7"}
                )
                summary = await svc.execute("wb", "summarize_sheet")
                assert summary["cells"] == 2
                assert summary["formulas"] == 1
                assert summary["extent"] == "A1:D7"
                assert summary["sheets"] == ["Sheet1"]

        run(scenario())


class TestWriteSerialization:
    def test_same_workbook_writes_apply_in_submission_order(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await asyncio.gather(*[
                    svc.execute("wb", "set_cell", {"cell": "A1", "value": i})
                    for i in range(40)
                ])
                view = await svc.execute("wb", "get_cell", {"cell": "A1"})
                assert view["value"] == 39

        run(scenario())

    def test_queue_depth_observed_under_burst(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await asyncio.gather(*[
                    svc.execute("wb", "set_cell", {"cell": "A1", "value": i})
                    for i in range(20)
                ])
                assert svc.metrics.max_queue_depth > 1

        run(scenario())

    def test_reads_never_block_on_other_workbooks_writes(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("busy")
                await svc.create_workbook("calm")
                await svc.execute("calm", "set_cell", {"cell": "A1", "value": 7})
                await svc.execute("calm", "recalculate")
                writes = [
                    asyncio.ensure_future(
                        svc.execute("busy", "set_cell", {"cell": "A1", "value": i})
                    )
                    for i in range(200)
                ]
                await asyncio.sleep(0)  # let the writes enqueue
                # With 200 writes queued on "busy", a read of "calm"
                # returns before that queue drains.
                view = await svc.execute("calm", "get_cell", {"cell": "A1"})
                assert view["value"] == 7
                assert any(not f.done() for f in writes)
                await asyncio.gather(*writes)

        run(scenario())

    def test_write_error_propagates_without_killing_the_writer(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                with pytest.raises(OpValidationError):
                    await svc.execute("wb", "set_cell", {"cell": "not-a-ref", "value": 1})
                await svc.execute("wb", "set_cell", {"cell": "A1", "value": 5})
                view = await svc.execute("wb", "get_cell", {"cell": "A1"})
                assert view["value"] == 5
                assert svc.metrics.op("set_cell").errors == 1

        run(scenario())


class TestBatchAndStructural:
    def test_batch_edit_is_one_journal_record(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                before = svc.metrics.journal_records
                result = await svc.execute("wb", "batch_edit", {"edits": [
                    {"op": "set_value", "cell": "A1", "value": 2},
                    {"op": "set_value", "cell": "A2", "value": 3},
                    {"op": "set_formula", "cell": "B1", "formula": "=SUM(A1:A2)"},
                ]})
                assert result["edits"] == 3
                assert svc.metrics.journal_records == before + 1
                await svc.execute("wb", "recalculate")
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert view["value"] == 5.0

        run(scenario())

    def test_batch_edit_validates_before_applying(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                with pytest.raises(OpValidationError, match="unknown op"):
                    await svc.execute("wb", "batch_edit", {"edits": [
                        {"op": "set_value", "cell": "A1", "value": 1},
                        {"op": "paint", "cell": "A2"},
                    ]})
                # Nothing from the failed batch landed.
                view = await svc.execute("wb", "get_cell", {"cell": "A1"})
                assert view["value"] is None

        run(scenario())

    def test_structural_edit_shifts_and_rewrites(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb")
                await svc.execute("wb", "batch_edit", {"edits": [
                    {"op": "set_value", "cell": "A1", "value": 1},
                    {"op": "set_value", "cell": "A2", "value": 2},
                    {"op": "set_formula", "cell": "B1", "formula": "=SUM(A1:A2)"},
                ]})
                await svc.execute("wb", "recalculate")
                result = await svc.execute("wb", "insert_rows", {"row": 2, "count": 2})
                assert result["rewritten_formulas"] >= 1  # =SUM(A1:A2) stretched
                await svc.execute("wb", "recalculate")
                # The straddled range stretched: =SUM(A1:A4), still 3.
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert view["value"] == 3.0
                moved = await svc.execute("wb", "get_cell", {"cell": "A4"})
                assert moved["value"] == 2

        run(scenario())

    def test_structural_edit_quiesces_pending_recomputation(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False, step_cells=1) as svc:
                await svc.create_workbook("wb")
                edits = [{"op": "set_value", "cell": f"A{r}", "value": r}
                         for r in range(1, 21)]
                edits += [{"op": "set_formula", "cell": f"B{r}", "formula": f"=A{r}+1"}
                          for r in range(1, 21)]
                await svc.execute("wb", "batch_edit", {"edits": edits})
                # Immediately shift while the pump has barely started:
                # the writer drains before shifting, so no dirty (col,
                # row) position goes stale.
                await svc.execute("wb", "delete_rows", {"row": 1, "count": 5})
                await svc.execute("wb", "recalculate")
                view = await svc.execute("wb", "get_cell", {"cell": "B1"})
                assert view["value"] == 7.0  # old row 6: =A6+1

        run(scenario())

    def test_multi_sheet_ops_route_by_sheet_param(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False) as svc:
                await svc.create_workbook("wb", sheets=("Data", "Report"))
                await svc.execute(
                    "wb", "set_cell", {"cell": "A1", "value": 10, "sheet": "Data"}
                )
                await svc.execute(
                    "wb", "set_cell", {"cell": "A1", "value": 20, "sheet": "Report"}
                )
                data = await svc.execute("wb", "get_cell", {"cell": "A1", "sheet": "Data"})
                report = await svc.execute(
                    "wb", "get_cell", {"cell": "A1", "sheet": "Report"}
                )
                assert (data["value"], report["value"]) == (10, 20)
                # Structural edit on Data rewrites Report's reference text.
                await svc.execute(
                    "wb", "set_formula",
                    {"cell": "B1", "formula": "=Data!A1", "sheet": "Report"},
                )
                await svc.execute("wb", "insert_rows", {"row": 1, "sheet": "Data"})
                await svc.execute("wb", "recalculate")
                moved = await svc.execute(
                    "wb", "get_cell", {"cell": "A2", "sheet": "Data"}
                )
                assert moved["value"] == 10

        run(scenario())


class TestAdmissionRaces:
    def test_concurrent_admissions_under_churn_never_strand_a_writer(self, tmp_path):
        """Regression: capacity enforcement after install used to let a
        concurrent admission evict a workbook between its admission and
        the caller's enqueue — the op landed on a dead writer's queue
        and its future never resolved.  Hammer many workbooks through
        few slots concurrently; every write must complete."""

        async def scenario():
            async with WorkbookService(
                str(tmp_path), max_resident=2, fsync=False
            ) as svc:
                ids = [f"wb{i}" for i in range(6)]
                for wb_id in ids:
                    await svc.create_workbook(wb_id)
                for round_no in range(8):
                    ops = [
                        svc.execute(wb_id, "set_cell",
                                    {"cell": "A1", "value": float(round_no)})
                        for wb_id in ids
                    ]
                    ops += [
                        svc.execute(wb_id, "get_cell", {"cell": "A1"})
                        for wb_id in ids
                    ]
                    await asyncio.wait_for(asyncio.gather(*ops), timeout=30)
                assert svc.metrics.evictions > 0
                for wb_id in ids:
                    view = await svc.execute(wb_id, "get_cell", {"cell": "A1"})
                    assert view["value"] == 7.0

        run(scenario())


class TestMetrics:
    def test_ops_and_pool_counters(self, tmp_path):
        async def scenario():
            async with WorkbookService(str(tmp_path), fsync=False, max_resident=1) as svc:
                await svc.create_workbook("a")
                await svc.create_workbook("b")     # evicts a
                await svc.execute("a", "set_cell", {"cell": "A1", "value": 1})  # readmits
                stats = svc.stats()
                assert stats["evictions"] >= 1
                assert stats["readmissions"] >= 1
                assert stats["cold_admissions"] >= 2
                assert stats["total_ops"] >= 1
                assert stats["ops_per_second"] > 0
                assert stats["per_op"]["set_cell"]["count"] == 1
                assert stats["max_resident"] == 1

        run(scenario())

    def test_catalog_introspection(self, tmp_path):
        svc = WorkbookService(str(tmp_path))
        names = {entry["name"] for entry in svc.catalog()}
        assert "get_cell" in names and "batch_edit" in names
