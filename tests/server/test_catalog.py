"""The typed operation catalog and its validation choke point."""

import pytest

from repro.server.catalog import CATALOG, TOOL_CATALOG, OpValidationError, validate_op


class TestCatalogShape:
    def test_every_entry_is_fully_typed(self):
        for entry in TOOL_CATALOG:
            assert isinstance(entry["name"], str) and entry["name"]
            assert isinstance(entry["description"], str) and entry["description"]
            assert isinstance(entry["read_only"], bool)
            schema = entry["parameters"]
            assert schema["type"] == "object"
            assert isinstance(schema["properties"], dict)
            assert set(schema["required"]) <= set(schema["properties"])

    def test_names_are_unique_and_indexed(self):
        names = [entry["name"] for entry in TOOL_CATALOG]
        assert len(names) == len(set(names))
        assert set(CATALOG) == set(names)

    def test_expected_surface(self):
        expected = {
            "get_cell", "get_range", "summarize_sheet",
            "set_cell", "set_formula", "clear_cell", "batch_edit",
            "insert_rows", "delete_rows", "insert_columns", "delete_columns",
            "recalculate",
        }
        assert expected <= set(CATALOG)

    def test_read_write_split(self):
        reads = {n for n, e in CATALOG.items() if e["read_only"]}
        assert reads == {"get_cell", "get_range", "summarize_sheet"}


class TestValidateOp:
    def test_unknown_operation(self):
        with pytest.raises(OpValidationError, match="unknown operation"):
            validate_op("explode", {})

    def test_missing_required_parameter(self):
        with pytest.raises(OpValidationError, match="missing required"):
            validate_op("set_cell", {"value": 1})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(OpValidationError, match="unknown parameter"):
            validate_op("get_cell", {"cell": "A1", "font": "bold"})

    def test_type_mismatch(self):
        with pytest.raises(OpValidationError, match="expects"):
            validate_op("get_cell", {"cell": 7})
        with pytest.raises(OpValidationError, match="expects"):
            validate_op("insert_rows", {"row": "three"})
        with pytest.raises(OpValidationError, match="expects"):
            validate_op("batch_edit", {"edits": "not-a-list"})

    def test_boolean_is_not_an_integer(self):
        with pytest.raises(OpValidationError, match="expects"):
            validate_op("insert_rows", {"row": True})

    def test_scalar_union_accepts_null(self):
        params = validate_op("set_cell", {"cell": "A1", "value": None})
        assert params["value"] is None

    def test_minimum_enforced(self):
        with pytest.raises(OpValidationError, match=">= 1"):
            validate_op("insert_rows", {"row": 0})
        with pytest.raises(OpValidationError, match=">= 1"):
            validate_op("delete_columns", {"col": 2, "count": 0})

    def test_defaults_applied(self):
        params = validate_op("insert_rows", {"row": 5})
        assert params["count"] == 1

    def test_none_params_means_empty(self):
        params = validate_op("summarize_sheet", None)
        assert params == {}
