"""Recalculation throughput: interpreter vs the compression-aware layer.

The compression-aware evaluation layer (PR 3) claims recalculation cost
follows the *compressed* graph: compiled templates remove per-cell AST
interpretation, windowed runs remove per-cell window rescans.  This
benchmark measures the end-to-end claim on three workloads, each built
twice and recalculated from scratch with ``evaluation="interpreter"``
vs ``evaluation="auto"``:

* **running_total** — a single ``SUM($A$1:A_i)`` column over
  ``REPRO_RECALC_ROWS`` value rows (default 10,000): the quadratic
  poster child.  Gate: **>= 5x** end-to-end.
* **sliding_window** — a shifting ``SUM(A_i:A_{i+49})`` column, the
  O(run x window) shape with a constant window.
* **mixed_corpus** — a realistic sheet mixing value columns, arithmetic
  chains, running totals, sliding averages, MIN/MAX windows, IF logic
  and interpreter-fallback XOR columns.  Gate: **>= 1.5x**.

Besides the ASCII artifact, the run writes machine-readable JSON to
``benchmarks/results/recalc_throughput.json`` (per-workload timings,
speedups, evaluation-path counters) to seed the performance trajectory
across PRs.

CI runs this on a small ``REPRO_RECALC_ROWS`` (the gates are
scale-free: the asymptotic gap only grows with size).
"""

import json
import os
import time

from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.engine.recalc import RecalcEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_RECALC_ROWS", "10000"))
MIXED_ROWS = int(os.environ.get("REPRO_RECALC_MIXED_ROWS", str(max(ROWS // 5, 500))))

RUNNING_TOTAL_GATE = 5.0
MIXED_GATE = 1.5


def build_running_total(rows: int) -> Sheet:
    sheet = Sheet("throughput")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r % 97) + 0.25)
    fill_formula_column(sheet, 2, 1, rows, "=SUM($A$1:A1)")
    return sheet


def build_sliding_window(rows: int) -> Sheet:
    sheet = Sheet("throughput")
    for r in range(1, rows + 50 + 1):
        sheet.set_value((1, r), float(r % 89) / 3.0)
    fill_formula_column(sheet, 2, 1, rows, "=SUM(A1:A50)")
    return sheet


def build_mixed_corpus(rows: int) -> Sheet:
    sheet = Sheet("throughput")
    for r in range(1, rows + 10):
        sheet.set_value((1, r), float((r * 31) % 101))        # A data
        sheet.set_value((2, r), float((r * 17) % 13) + 1.0)   # B data
    fill_formula_column(sheet, 3, 1, rows, "=A1*2+B1")             # arithmetic
    fill_formula_column(sheet, 4, 1, rows, "=SUM($C$1:C1)")        # running total over formulas
    fill_formula_column(sheet, 5, 1, rows, "=AVERAGE(A1:A25)")     # sliding average
    fill_formula_column(sheet, 6, 1, rows, "=MIN(B1:B40)")         # sliding min
    fill_formula_column(sheet, 7, 1, rows, "=IF(A1>B1,C1,D1/B1)")  # lazy logic
    fill_formula_column(sheet, 8, 1, rows, "=XOR(A1>50,B1>6)")     # interpreter fallback
    return sheet


def time_recalc(build, rows: int, mode: str):
    sheet = build(rows)
    engine = RecalcEngine(sheet, evaluation=mode)
    start = time.perf_counter()
    recomputed = engine.recalculate_all()
    elapsed = time.perf_counter() - start
    return elapsed, recomputed, engine.eval_stats


WORKLOADS = [
    ("running_total", build_running_total, ROWS, RUNNING_TOTAL_GATE),
    ("sliding_window", build_sliding_window, ROWS, None),
    ("mixed_corpus", build_mixed_corpus, MIXED_ROWS, MIXED_GATE),
]


def test_recalc_throughput(benchmark):
    def run():
        results = {}
        for name, build, rows, gate in WORKLOADS:
            interp_s, recomputed, _ = time_recalc(build, rows, "interpreter")
            auto_s, auto_recomputed, stats = time_recalc(build, rows, "auto")
            assert recomputed == auto_recomputed
            results[name] = {
                "rows": rows,
                "recomputed_cells": recomputed,
                "interpreter_seconds": interp_s,
                "optimized_seconds": auto_s,
                "speedup": interp_s / auto_s if auto_s else float("inf"),
                "gate": gate,
                "eval_paths": {
                    "windowed_cells": stats.windowed_cells,
                    "windowed_runs": stats.windowed_runs,
                    "compiled_cells": stats.compiled_cells,
                    "interpreted_cells": stats.interpreted_cells,
                },
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(
        "Recalculation throughput: interpreter vs compiled + windowed",
        f"running/sliding rows={ROWS}, mixed rows={MIXED_ROWS}; "
        "full recalculate_all per arm",
    )]
    table_rows = []
    for name, data in results.items():
        gate = data["gate"]
        table_rows.append([
            name,
            f"{data['rows']:,}",
            format_ms(data["interpreter_seconds"]),
            format_ms(data["optimized_seconds"]),
            f"{data['speedup']:.1f}x",
            f">={gate:.1f}x" if gate else "-",
        ])
    lines.append(ascii_table(
        ["workload", "rows", "interpreter", "optimized", "speedup", "gate"],
        table_rows,
    ))
    paths = results["mixed_corpus"]["eval_paths"]
    lines.append(
        f"\nmixed-corpus path split: {paths['windowed_cells']} windowed "
        f"({paths['windowed_runs']} runs), {paths['compiled_cells']} compiled, "
        f"{paths['interpreted_cells']} interpreted"
    )

    verdicts = []
    ok = True
    for name, data in results.items():
        if data["gate"] is not None:
            passed = data["speedup"] >= data["gate"]
            ok = ok and passed
            verdicts.append(
                f"{'OK' if passed else 'REGRESSION'}: {name} "
                f"{data['speedup']:.1f}x vs gate {data['gate']:.1f}x"
            )
    lines.append("\n" + "\n".join(verdicts))
    emit("recalc_throughput", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "recalc_throughput.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump({"rows": ROWS, "workloads": results}, handle, indent=2)

    assert ok, "\n".join(verdicts)
    # The fast paths must actually engage, or the speedup is a fluke.
    assert results["running_total"]["eval_paths"]["windowed_cells"] == ROWS
    assert results["mixed_corpus"]["eval_paths"]["interpreted_cells"] > 0
