"""Table III — number of edges reduced per spreadsheet (higher is better).

Per-sheet ``|E'| - |E|`` summarised as max / 75th percentile / median /
mean, for TACO-InRow and TACO-Full on both corpora.
"""

from _common import CORPORA, corpus_sheets, emit

from repro.bench.percentiles import Summary
from repro.bench.reporting import ascii_table, banner, format_count


def reductions(corpus: str) -> dict[str, list[float]]:
    out = {"TACO-InRow": [], "TACO-Full": []}
    for sheet in corpus_sheets(corpus):
        raw = len(sheet.deps())
        out["TACO-InRow"].append(float(raw - len(sheet.inrow())))
        out["TACO-Full"].append(float(raw - len(sheet.taco())))
    return out


def test_table3_edges_reduced(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: reductions(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner("Table III — edges reduced by TACO per sheet (higher is better)")]
    rows = []
    for corpus in CORPORA:
        for system in ("TACO-InRow", "TACO-Full"):
            summary = Summary.of(data[corpus][system])
            rows.append([
                f"{corpus} {system}",
                format_count(summary.maximum),
                format_count(summary.p75),
                format_count(summary.median),
                format_count(summary.mean),
            ])
    lines.append(ascii_table(["corpus/system", "max", "75th pct", "median", "mean"], rows))
    lines.append(
        "\nPaper reference (Table III): Enron TACO-Full max 700K / mean 38K;\n"
        "Github TACO-Full max 3.1M / mean 79K.  The scaled corpora preserve\n"
        "the ordering TACO-Full > TACO-InRow and Github > Enron."
    )
    emit("table3_edges_reduced", "\n".join(lines))
