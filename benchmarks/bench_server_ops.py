"""Mixed read/write trace through the multi-tenant workbook service.

The paper's host model (Sec. I, VI-A) returns control as soon as an
update's dependents are identified; ``repro.server`` scales that shape
to many workbooks under one event loop.  This benchmark drives the
full service path — typed catalog, per-workbook writer queues,
deferred recomputation, LRU eviction to snapshot+journal, re-admission
via the restore fast path — with a mixed trace over N hot workbooks
(80% of the traffic) and M cold ones, sized so the LRU must churn.

Functional gates (all hard-asserted):

* the trace forces evictions *and* re-admissions, and every workbook —
  evicted or not — ends bit-identical to an oracle built by feeding
  the same per-workbook write sequence to a plain synchronous engine;
* a read of one workbook completes while another workbook still has a
  backlog of queued writes (reads never enter a write queue);
* sustained throughput stays above ``REPRO_SERVER_OPS_FLOOR`` ops/sec
  (a deliberately conservative floor for shared CI runners).

Besides the ASCII artifact, the run writes machine-readable JSON to
``benchmarks/results/server_ops.json`` (throughput, per-op latency,
queue depth, eviction/re-admission counts).
"""

import asyncio
import json
import os
import random
import shutil
import tempfile
import time

from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner
from repro.engine.recalc import RecalcEngine
from repro.io.snapshot import encode_value
from repro.server import WorkbookService
from repro.sheet.autofill import fill_formula_column
from repro.sheet.workbook import Workbook

ROWS = int(os.environ.get("REPRO_SERVER_ROWS", "300"))
HOT = int(os.environ.get("REPRO_SERVER_HOT", "3"))
COLD = int(os.environ.get("REPRO_SERVER_COLD", "5"))
OPS = int(os.environ.get("REPRO_SERVER_OPS", "1500"))
RESIDENT = int(os.environ.get("REPRO_SERVER_RESIDENT", "4"))
OPS_FLOOR = float(os.environ.get("REPRO_SERVER_OPS_FLOOR", "50"))

BURST = 64          # writes queued on one workbook for the no-block probe
CHUNK = 16          # trace ops submitted concurrently per wave


def build_workbook(wb_id: str, seed: int) -> Workbook:
    """A small ledger: two data columns, an RR chain, a running total,
    and one whole-column aggregate."""
    workbook = Workbook(wb_id)
    sheet = workbook.add_sheet("Ledger")
    rng = random.Random(seed)
    for r in range(1, ROWS + 1):
        sheet.set_value((1, r), round(rng.uniform(1, 100), 2))
        sheet.set_value((2, r), float((r * 7) % 23) + 1.0)
    sheet.set_formula("C1", "=A1+B1")
    fill_formula_column(sheet, 3, 2, ROWS, "=C1+A2")
    fill_formula_column(sheet, 4, 1, ROWS, "=SUM($A$1:A1)")
    sheet.set_formula("E1", f"=SUM(C1:C{ROWS})")
    return workbook


def oracle_grid(wb_id: str, seed: int, writes) -> list:
    """The same workbook fed the same writes through the synchronous
    engine — the bit-identity reference for eviction round trips."""
    workbook = build_workbook(wb_id, seed)
    sheet = workbook.active_sheet
    engine = RecalcEngine(sheet)
    engine.recalculate_all()
    for kind, payload in writes:
        if kind == "set":
            cell, value = payload
            engine.set_value(cell, value)
        else:  # batch
            with engine.begin_batch(workbook=workbook) as batch:
                for cell, value in payload:
                    batch.set_value(cell, value)
    return [
        [encode_value(sheet.get_value((col, row))) for col in range(1, 6)]
        for row in range(1, ROWS + 1)
    ]


async def drive(data_dir: str) -> dict:
    rng = random.Random(20230411)
    ids = [f"hot{i}" for i in range(HOT)] + [f"cold{i}" for i in range(COLD)]
    seeds = {wb_id: 1000 + i for i, wb_id in enumerate(ids)}
    write_log = {wb_id: [] for wb_id in ids}

    async with WorkbookService(
        data_dir, max_resident=RESIDENT, fsync=False
    ) as service:
        for wb_id in ids:
            await service.create_workbook(
                wb_id, workbook=build_workbook(wb_id, seeds[wb_id])
            )

        def next_op():
            hot = rng.random() < 0.8
            wb_id = rng.choice(ids[:HOT] if hot else ids[HOT:])
            roll = rng.random()
            if roll < 0.55:
                cell = f"{rng.choice('ABCDE')}{rng.randint(1, ROWS)}"
                return wb_id, "get_cell", {"cell": cell}
            if roll < 0.70:
                top = rng.randint(1, ROWS - 10)
                return wb_id, "get_range", {"range_ref": f"A{top}:E{top + 9}"}
            if roll < 0.75:
                return wb_id, "summarize_sheet", {}
            if roll < 0.95:
                cell = f"{rng.choice('AB')}{rng.randint(1, ROWS)}"
                value = round(rng.uniform(1, 500), 3)
                write_log[wb_id].append(("set", (cell, value)))
                return wb_id, "set_cell", {"cell": cell, "value": value}
            edits = [
                (f"{rng.choice('AB')}{rng.randint(1, ROWS)}",
                 round(rng.uniform(1, 500), 3))
                for _ in range(5)
            ]
            write_log[wb_id].append(("batch", edits))
            return wb_id, "batch_edit", {"edits": [
                {"op": "set_value", "cell": cell, "value": value}
                for cell, value in edits
            ]}

        trace_start = time.perf_counter()
        pending = []
        for _ in range(OPS):
            wb_id, op, params = next_op()
            pending.append(service.execute(wb_id, op, params))
            if len(pending) >= CHUNK:
                await asyncio.gather(*pending)
                pending.clear()
        if pending:
            await asyncio.gather(*pending)
        trace_seconds = time.perf_counter() - trace_start

        # No-block probe: pile writes onto one workbook, then read a
        # different one.  The read must return while the burst is still
        # queued — reads never pass through any write queue.
        burst_writes = []
        for i in range(BURST):
            value = float(i)
            write_log["hot0"].append(("set", ("A1", value)))
            burst_writes.append(asyncio.ensure_future(
                service.execute("hot0", "set_cell", {"cell": "A1", "value": value})
            ))
        await asyncio.sleep(0)  # let the burst enqueue
        probe_start = time.perf_counter()
        view = await service.execute("hot1", "get_cell", {"cell": "C1"})
        probe_seconds = time.perf_counter() - probe_start
        writes_outstanding = sum(1 for f in burst_writes if not f.done())
        assert view["value"] is not None
        await asyncio.gather(*burst_writes)

        # Bit-identity: every workbook (the cold ones went through
        # evict/re-admit cycles) vs the synchronous-engine oracle.
        mismatched = []
        for wb_id in ids:
            await service.execute(wb_id, "recalculate")
            got = (await service.execute(
                wb_id, "get_range", {"range_ref": f"A1:E{ROWS}"}
            ))["values"]
            expected = oracle_grid(wb_id, seeds[wb_id], write_log[wb_id])
            if got != expected:
                mismatched.append(wb_id)

        stats = service.stats()
        return {
            "rows": ROWS,
            "hot_workbooks": HOT,
            "cold_workbooks": COLD,
            "max_resident": RESIDENT,
            "trace_ops": OPS,
            "trace_seconds": trace_seconds,
            "trace_ops_per_second": OPS / trace_seconds,
            "ops_floor": OPS_FLOOR,
            "read_during_burst_seconds": probe_seconds,
            "burst_writes_outstanding": writes_outstanding,
            "mismatched_workbooks": mismatched,
            "evictions": stats["evictions"],
            "readmissions": stats["readmissions"],
            "journal_records": stats["journal_records"],
            "background_cells": stats["background_cells"],
            "mean_queue_depth": stats["mean_queue_depth"],
            "max_queue_depth": stats["max_queue_depth"],
            "per_op": stats["per_op"],
        }


def test_server_mixed_trace(benchmark):
    workdir = tempfile.mkdtemp(prefix="serverbench-")

    def run():
        return asyncio.run(drive(workdir))

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(
        "Multi-tenant service: mixed read/write trace",
        f"{HOT} hot + {COLD} cold workbooks of {ROWS} rows, "
        f"{OPS} ops, max resident {RESIDENT}, fsync off",
    )]
    lines.append(ascii_table(
        ["ops/sec", "evictions", "re-admits", "queue depth (mean/max)",
         "read-under-burst", "background cells"],
        [[
            f"{results['trace_ops_per_second']:.0f}",
            results["evictions"],
            results["readmissions"],
            f"{results['mean_queue_depth']:.2f}/{results['max_queue_depth']}",
            f"{results['read_during_burst_seconds'] * 1e3:.2f} ms "
            f"({results['burst_writes_outstanding']} writes still queued)",
            results["background_cells"],
        ]],
    ))
    lines.append(ascii_table(
        ["op", "count", "mean ms", "max ms"],
        [[name, s["count"], round(s["mean_seconds"] * 1e3, 3),
          round(s["max_seconds"] * 1e3, 3)]
         for name, s in results["per_op"].items()],
    ))

    checks = [
        (not results["mismatched_workbooks"],
         f"evict/re-admit round trips bit-identical "
         f"(mismatched: {results['mismatched_workbooks'] or 'none'})"),
        (results["evictions"] >= 1 and results["readmissions"] >= 1,
         f"LRU exercised: {results['evictions']} evictions, "
         f"{results['readmissions']} re-admissions"),
        (results["burst_writes_outstanding"] > 0,
         f"read returned with {results['burst_writes_outstanding']} writes "
         f"still queued on another workbook"),
        (results["trace_ops_per_second"] >= OPS_FLOOR,
         f"throughput {results['trace_ops_per_second']:.0f} ops/sec "
         f">= floor {OPS_FLOOR:.0f}"),
    ]
    passed = all(ok for ok, _ in checks)
    for ok, text in checks:
        lines.append(f"{'OK' if ok else 'REGRESSION'}: {text}")
    emit("server_ops", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "server_ops.json"), "w",
              encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    shutil.rmtree(workdir, ignore_errors=True)
    assert passed, "; ".join(text for ok, text in checks if not ok)
