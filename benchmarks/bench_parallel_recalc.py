"""Partitioned parallel recalculation: serial auto vs a 4-worker pool.

The region scheduler (``repro.engine.parallel``) claims two things: the
partition is *free enough* (union-find over the already-built plan
adjacency, family-compressed freight, subset value planes) and the
result is *bit-identical* (same plan nodes, executed once each, through
the same tier dispatch).  This benchmark measures both on a corpus
shaped like the scheduler's target workload: ``REPRO_PARALLEL_BLOCKS``
spatially separated blocks (default 8), each a pair of value columns
plus one interpreter-bound formula column (``IF(XOR(...))`` over
``SUM`` windows — uncompilable, so every cell pays real tree-walking
work), ``REPRO_PARALLEL_ROWS`` rows per block (default 12,500 —
~100k formula cells).

Protocol: one untimed warm pass per engine (template-key memos, worker
pool spin-up), then one timed ``recompute`` per arm over the same dirty
ranges.  The differential asserts — identical values and identical
per-run EvalStats cell counters — always run.  The **>= 2.5x** speedup
gate is asserted only when the machine exposes at least 4 usable cores
(CI's runners do); on smaller boxes the artifact still records the
measured ratio and the test skips the gate with a clear message.

Artifacts: ASCII table + ``benchmarks/results/parallel_recalc.json``.
"""

import json
import os
import time

import pytest
from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.grid.range import Range
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_PARALLEL_ROWS", "12500"))
BLOCKS = int(os.environ.get("REPRO_PARALLEL_BLOCKS", "8"))
WINDOW = int(os.environ.get("REPRO_PARALLEL_WINDOW", "100"))
WORKERS = int(os.environ.get("REPRO_PARALLEL_BENCH_WORKERS", "4"))

SPEEDUP_GATE = 2.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def column_letters(col: int) -> str:
    out = ""
    while col:
        col, rem = divmod(col - 1, 26)
        out = chr(ord("A") + rem) + out
    return out


def build_corpus() -> tuple[Sheet, list[Range]]:
    """BLOCKS independent blocks: two value columns feeding one
    interpreter-bound formula column each (no cross-block references,
    so the dirty set partitions into one region per cell and the
    coarsener packs them into per-worker buckets)."""
    sheet = Sheet("parallel", store="columnar")
    ranges = []
    for b in range(BLOCKS):
        cx, cy, cz = 3 * b + 1, 3 * b + 2, 3 * b + 3
        x, y = column_letters(cx), column_letters(cy)
        for r in range(1, ROWS + WINDOW + 1):
            sheet.set_value((cx, r), float((r * 7 + b) % 97))
            sheet.set_value((cy, r), float((r * 13 + b) % 53))
        fill_formula_column(
            sheet, cz, 1, ROWS,
            f"=IF(XOR({x}1>50,{y}1>30),"
            f"SUM({x}1:{x}{WINDOW}),SUM({y}1:{y}{WINDOW}))",
        )
        ranges.append(Range(cz, 1, cz, ROWS))
    return sheet, ranges


def timed_recompute(engine: RecalcEngine, ranges) -> tuple[float, int, tuple]:
    before = engine.eval_stats.counter_snapshot()
    start = time.perf_counter()
    recomputed = engine.recompute(ranges)
    elapsed = time.perf_counter() - start
    after = engine.eval_stats.counter_snapshot()
    delta = tuple(a - b for a, b in zip(after, before))
    return elapsed, recomputed, delta


def test_parallel_recalc(benchmark):
    def run():
        sheet, ranges = build_corpus()
        graph = TacoGraph()
        graph.build(dependencies_column_major(sheet))

        serial = RecalcEngine(sheet, graph)
        serial.recompute(ranges)  # warm: memos, registry
        serial_s, recomputed, serial_counters = timed_recompute(serial, ranges)
        serial_values = {pos: sheet.get_value(pos) for pos in sheet.positions()}

        parallel = RecalcEngine(
            sheet, graph, workers=WORKERS, worker_mode="process"
        )
        parallel.recompute(ranges)  # warm: worker pool spin-up
        parallel_s, par_recomputed, par_counters = timed_recompute(
            parallel, ranges
        )
        parallel_values = {pos: sheet.get_value(pos) for pos in sheet.positions()}

        return {
            "rows": ROWS,
            "blocks": BLOCKS,
            "window": WINDOW,
            "workers": WORKERS,
            "cells": recomputed,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else float("inf"),
            "identical_values": parallel_values == serial_values,
            "identical_counters": par_counters == serial_counters,
            "recomputed_match": par_recomputed == recomputed,
            "counters": list(serial_counters),
            "dispatches": parallel.eval_stats.parallel_dispatches,
            "regions": parallel.eval_stats.parallel_regions,
            "fallbacks": parallel.eval_stats.serial_fallbacks,
            "usable_cores": usable_cores(),
            "gate": SPEEDUP_GATE,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    cores = results["usable_cores"]
    gated = cores >= WORKERS
    lines = [banner(
        "Partitioned parallel recalculation: serial auto vs process pool",
        f"{results['cells']:,} formula cells in {BLOCKS} blocks, "
        f"window={WINDOW}, workers={WORKERS}, {cores} usable cores",
    )]
    lines.append(ascii_table(
        ["arm", "wall", "cells", "dispatches", "fallbacks"],
        [
            ["serial auto", format_ms(results["serial_seconds"]),
             f"{results['cells']:,}", "-", "-"],
            [f"parallel({WORKERS})", format_ms(results["parallel_seconds"]),
             f"{results['cells']:,}", str(results["dispatches"]),
             str(results["fallbacks"])],
        ],
    ))
    lines.append(
        f"\nspeedup: {results['speedup']:.2f}x (gate >= {SPEEDUP_GATE:.1f}x, "
        f"{'enforced' if gated else f'not enforced: {cores} < {WORKERS} cores'})"
    )
    lines.append(
        "differential: values "
        + ("identical" if results["identical_values"] else "DIVERGED")
        + ", stats counters "
        + ("identical" if results["identical_counters"] else "DIVERGED")
    )
    emit("parallel_recalc", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "parallel_recalc.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    # Correctness is unconditional: bit-identical values and stats, the
    # parallel path actually engaged, and nothing fell back to serial.
    assert results["identical_values"], "parallel values diverged from serial"
    assert results["identical_counters"], "parallel EvalStats diverged"
    assert results["recomputed_match"]
    assert results["dispatches"] >= 2, "parallel path did not engage"
    assert results["fallbacks"] == 0, "unexpected serial fallbacks"

    if not gated:
        pytest.skip(
            f"speedup gate requires >= {WORKERS} usable cores, found {cores} "
            f"(measured {results['speedup']:.2f}x, artifact written)"
        )
    assert results["speedup"] >= SPEEDUP_GATE, (
        f"parallel({WORKERS}) speedup {results['speedup']:.2f}x "
        f"below gate {SPEEDUP_GATE:.1f}x"
    )
