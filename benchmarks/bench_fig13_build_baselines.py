"""Fig. 13 — graph construction latency vs Antifreeze and RedisGraph.

The ten hardest sheets per corpus (by TACO build cost), built by TACO,
NoComp, the RedisGraph-like cell-level store, and Antifreeze, under the
scaled DNF budget.  Paper shape: Antifreeze DNFs on 16/20 sheets (it
precomputes per-cell transitive dependents); RedisGraph pays the
cell-level decomposition; TACO ~2x NoComp.
"""

from _common import BUILD_BUDGET_S, CORPORA, emit, hardest_sheets_by_build

from repro.baselines.antifreeze import AntifreezeIndex
from repro.baselines.graphdb import RedisGraphLike
from repro.bench.harness import measure
from repro.bench.reporting import ascii_table, banner
from repro.graphs.nocomp import NoCompGraph
from repro.core.taco_graph import TacoGraph

SYSTEMS = ("TACO", "NoComp", "RedisGraph", "Antifreeze")


def build_system(system: str, deps):
    if system == "TACO":
        graph = TacoGraph.full()
    elif system == "NoComp":
        graph = NoCompGraph()
    elif system == "RedisGraph":
        graph = RedisGraphLike()
    else:
        graph = AntifreezeIndex()
    return graph


def measure_builds() -> dict[str, list]:
    results: dict[str, list] = {}
    for corpus in CORPORA:
        for rank, sheet in enumerate(hardest_sheets_by_build(corpus), start=1):
            deps = sheet.deps()
            row = [f"{corpus} max{rank}", f"{len(deps):,}"]
            for system in SYSTEMS:
                m = measure(
                    lambda budget, s=system: build_system(s, deps).build(deps, budget),
                    budget_seconds=BUILD_BUDGET_S,
                    operation=f"{system} build",
                )
                row.append(m.render())
            results.setdefault(corpus, []).append(row)
    return results


def test_fig13_build_latency(benchmark):
    data = benchmark.pedantic(measure_builds, rounds=1, iterations=1)
    lines = [banner(
        "Fig. 13 — graph construction latency (top-10 hardest sheets)",
        f"DNF budget {BUILD_BUDGET_S:.0f}s (paper used 300s at full scale)",
    )]
    for corpus in CORPORA:
        lines.append(f"\n[{corpus}]")
        lines.append(
            ascii_table(["sheet", "deps"] + list(SYSTEMS), data[corpus])
        )
    lines.append(
        "\nPaper reference (Fig. 13): Antifreeze finished building on only\n"
        "4 of 20 sheets; RedisGraph's bulk load pays the cell-level edge\n"
        "blow-up; TACO is within ~2x of NoComp everywhere."
    )
    emit("fig13_build_baselines", "\n".join(lines))
