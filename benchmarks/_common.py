"""Shared helpers for the benchmark suite.

Every benchmark regenerates one artifact of the paper's evaluation
(Sec. VI): it prints the table/figure as ASCII and also writes it under
``benchmarks/results/`` so a full run leaves a reviewable record.

Scaled-down configuration (documented in EXPERIMENTS.md): corpora are
generated at REPRO_SCALE (default 1.0), the paper's 300 s build cap
becomes ``BUILD_BUDGET_S`` and its 60 s query cap ``QUERY_BUDGET_S``.
"""

from __future__ import annotations

import os

from repro.bench.runner import BenchSheet, get_corpus

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BUILD_BUDGET_S = float(os.environ.get("REPRO_BUILD_BUDGET", "10.0"))
QUERY_BUDGET_S = float(os.environ.get("REPRO_QUERY_BUDGET", "5.0"))
MODIFY_BUDGET_S = float(os.environ.get("REPRO_MODIFY_BUDGET", "5.0"))
TOP_N = int(os.environ.get("REPRO_TOP_N", "10"))

CORPORA = ("enron", "github")


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def corpus_sheets(name: str) -> list[BenchSheet]:
    return get_corpus(name)


def hardest_sheets_by_build(name: str, count: int = TOP_N) -> list[BenchSheet]:
    """The paper's Fig. 13-15 selection: top sheets by TACO build time.

    Build time is proxied by dependency count, which avoids timing every
    sheet twice; the ordering matches the actual build-time ranking on
    our generator (build cost is linear in insertions).
    """
    sheets = get_corpus(name)
    return sorted(sheets, key=lambda s: len(s.deps()), reverse=True)[:count]


def hardest_sheets_by_query(name: str, count: int = TOP_N) -> list[BenchSheet]:
    """The paper's Fig. 16 selection: top sheets by TACO query time,
    proxied by the size of the max-dependents closure."""
    sheets = get_corpus(name)
    return sorted(sheets, key=lambda s: s.max_dependents_probe()[1], reverse=True)[:count]
