"""Table V — edges reduced by each pattern (higher is better).

Per-pattern ``sum(|E'_i| - 1)`` totals and single-sheet maxima across
each corpus, plus the Sec. V RR-GapOne prevalence comparison (the paper:
GapOne reduces 195K/275K edges vs RR's 17.4M/141.9M, hence it is left
out of the default pattern set).
"""

from collections import Counter

from _common import CORPORA, corpus_sheets, emit

from repro.bench.reporting import ascii_table, banner, format_count
from repro.core.patterns.registry import extended_patterns
from repro.core.taco_graph import TacoGraph

PATTERNS = ["RR", "RF", "FR", "FF", "RR-Chain"]


def pattern_reductions(corpus: str) -> tuple[Counter, Counter]:
    totals: Counter = Counter()
    maxima: Counter = Counter()
    for sheet in corpus_sheets(corpus):
        breakdown = sheet.taco().pattern_breakdown()
        for name, info in breakdown.items():
            totals[name] += info["reduced"]
            maxima[name] = max(maxima[name], info["reduced"])
    return totals, maxima


def gapone_reduction(corpus: str, sample: int = 6) -> tuple[int, int]:
    """(RR-GapOne reduced, RR reduced) under the extended pattern set.

    Rebuilt on a sample of sheets — enough to compare prevalence without
    doubling the whole corpus build time.
    """
    sheets = corpus_sheets(corpus)[:sample]
    gapone = rr = 0
    for sheet in sheets:
        graph = TacoGraph(patterns=extended_patterns())
        graph.build(sheet.deps())
        breakdown = graph.pattern_breakdown()
        gapone += breakdown.get("RR-GapOne", {}).get("reduced", 0)
        rr += breakdown.get("RR", {}).get("reduced", 0)
    return gapone, rr


def test_table5_pattern_effectiveness(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: pattern_reductions(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner("Table V — edges reduced by each pattern (higher is better)")]
    headers = ["pattern"]
    for corpus in CORPORA:
        headers += [f"{corpus} total", f"{corpus} max"]
    rows = []
    for name in PATTERNS:
        row = [name]
        for corpus in CORPORA:
            totals, maxima = data[corpus]
            row += [format_count(totals.get(name, 0)), format_count(maxima.get(name, 0))]
        rows.append(row)
    lines.append(ascii_table(headers, rows))
    lines.append(
        "\nPaper reference (Table V): RR dominates (17.4M Enron / 141.9M\n"
        "Github), then FF (3.8M / 24.8M), RR-Chain (566K / 5.9M),\n"
        "FR > RF far behind."
    )
    emit("table5_pattern_effect", "\n".join(lines))


def test_table5_gapone_prevalence(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: gapone_reduction(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner("Sec. V — RR-GapOne prevalence (sampled sheets)")]
    rows = []
    for corpus in CORPORA:
        gapone, rr = data[corpus]
        rows.append([corpus, format_count(gapone), format_count(rr)])
    lines.append(ascii_table(["corpus", "RR-GapOne reduced", "RR reduced"], rows))
    lines.append(
        "\nPaper reference: GapOne reduces 195K/275K edges vs RR's\n"
        "17.4M/141.9M — two orders of magnitude less prevalent, so TACO\n"
        "leaves it out of the default set."
    )
    emit("table5_gapone_prevalence", "\n".join(lines))
