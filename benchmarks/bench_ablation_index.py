"""Ablation — spatial-index backend: R-Tree vs grid buckets.

The paper treats the vertex index as a fixed implementation detail ("an
R-Tree over the vertices", Sec. VI-A); this reproduction makes it
pluggable.  This sweep measures build, query and modify time for TACO
and NoComp under both backends on two workloads:

* ``chain`` — a Fig.-2-style running-total sheet.  TACO compresses it to
  a handful of edges, so its vertex index is tiny and backend choice is
  noise; NoComp keeps every vertex and shows the index cost directly.
* ``scatter`` — formulas referencing random far-away single cells, which
  no pattern can compress.  TACO retains one edge per dependency, making
  its build and query index-bound: the workload the grid-bucket index is
  optimised for (point probes answered by one bucket instead of a tree
  descent).

The verdict line checks the point-probe-heavy cases (scatter TACO,
chain NoComp query): gridbucket is expected to win there, and the
artifact flags a regression if it does not.
"""

import os
import random

from _common import emit

from repro.bench.harness import best_of, time_call
from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.datasets.regions import fig2_region
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Sheet

BACKENDS = ("rtree", "gridbucket")
CHAIN_ROWS = int(os.environ.get("REPRO_INDEX_ABLATION_ROWS", "2000"))
SCATTER_FORMULAS = int(os.environ.get("REPRO_INDEX_ABLATION_SCATTER", "4000"))


def chain_sheet(rows: int) -> Sheet:
    sheet = Sheet(f"chain-{rows}")
    fig2_region(sheet, 1, 2, rows, random.Random(7))
    return sheet


def scatter_sheet(formulas: int) -> Sheet:
    """Point references with no exploitable adjacency structure."""
    rng = random.Random(3)
    sheet = Sheet(f"scatter-{formulas}")
    cols, data_rows = 120, max(2000, formulas // 2)
    for i in range(formulas):
        sheet.set_value((rng.randrange(1, cols), rng.randrange(1, data_rows)), float(i))
    placed = 0
    while placed < formulas:
        pos = (rng.randrange(1, cols), rng.randrange(data_rows + 1, 2 * data_rows))
        if sheet.cell_at(pos) is not None:
            continue
        prec = Range.cell(rng.randrange(1, cols), rng.randrange(1, data_rows))
        sheet.set_formula(pos, f"=SUM({prec.to_a1()})")
        placed += 1
    return sheet


def measure(system: str, index: str, deps, probes, clear_range):
    """(build_s, query_s, modify_s, edges) for one system/index pair."""
    graph = (
        TacoGraph.full(index=index) if system == "TACO" else NoCompGraph(index=index)
    )

    def run_build():
        # Production build path: NoComp bulk-loads inside build(); TACO
        # repacks after the incremental build, as build_from_sheet does.
        graph.build(deps)
        if system == "TACO":
            graph.rebuild_indexes()

    build_s = time_call(run_build)[0]

    def run_queries():
        for probe in probes:
            graph.find_dependents(probe)

    query_s = best_of(run_queries, repeats=3).seconds
    modify_s = time_call(lambda: graph.clear_cells(clear_range))[0]
    return build_s, query_s, modify_s, graph.num_edges


def test_index_backend_ablation(benchmark):
    rng = random.Random(1)
    workloads = []
    chain = chain_sheet(CHAIN_ROWS)
    workloads.append((
        "chain",
        dependencies_column_major(chain),
        [Range.cell(2, 2)],
        Range(3, CHAIN_ROWS // 2, 3, CHAIN_ROWS // 2 + 200),
    ))
    scatter = scatter_sheet(SCATTER_FORMULAS)
    workloads.append((
        "scatter",
        dependencies_column_major(scatter),
        [Range.cell(rng.randrange(1, 120), rng.randrange(1, 2000)) for _ in range(100)],
        Range(1, 1, 120, 200),
    ))

    def sweep():
        out_rows = []
        timings = {}
        for workload, deps, probes, clear_range in workloads:
            for system in ("TACO", "NoComp"):
                per_backend = {
                    index: measure(system, index, deps, probes, clear_range)
                    for index in BACKENDS
                }
                timings[(workload, system)] = per_backend
                rt, gb = per_backend["rtree"], per_backend["gridbucket"]
                out_rows.append([
                    workload, system, len(deps), rt[3],
                    format_ms(rt[0]), format_ms(gb[0]),
                    format_ms(rt[1]), format_ms(gb[1]),
                    format_ms(rt[2]), format_ms(gb[2]),
                    f"{rt[0] / max(gb[0], 1e-9):.2f}x",
                    f"{rt[1] / max(gb[1], 1e-9):.2f}x",
                ])
        return out_rows, timings

    out_rows, timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [banner(
        "Ablation — spatial-index backend (rtree vs gridbucket)",
        "point-probe-heavy workloads should favour the grid-bucket index",
    )]
    lines.append(ascii_table(
        [
            "workload", "system", "deps", "edges",
            "build rtree", "build gridbkt",
            "query rtree", "query gridbkt",
            "modify rtree", "modify gridbkt",
            "build speedup", "query speedup",
        ],
        out_rows,
    ))
    # Regression verdict, required by the perf-trajectory contract: the
    # grid-bucket index must win where point probes dominate — the
    # uncompressible scatter workload (index-bound TACO build + query)
    # and the chain NoComp query.
    scatter_rt, scatter_gb = (
        timings[("scatter", "TACO")]["rtree"],
        timings[("scatter", "TACO")]["gridbucket"],
    )
    nocomp_rt, nocomp_gb = (
        timings[("chain", "NoComp")]["rtree"],
        timings[("chain", "NoComp")]["gridbucket"],
    )
    checks = [
        ("scatter TACO build", scatter_rt[0], scatter_gb[0]),
        ("scatter TACO query", scatter_rt[1], scatter_gb[1]),
        ("chain NoComp query", nocomp_rt[1], nocomp_gb[1]),
    ]
    losses = [
        f"{name}: gridbucket {format_ms(gb)} vs rtree {format_ms(rt)}"
        for name, rt, gb in checks
        if gb > rt * 1.10  # 10% tolerance for timer noise
    ]
    if losses:
        lines.append(
            "\nverdict: REGRESSION — gridbucket did not win on "
            + "; ".join(losses)
            + "; investigate bucket geometry before relying on this backend"
        )
    else:
        summary = ", ".join(
            f"{name} {rt / max(gb, 1e-9):.1f}x" for name, rt, gb in checks
        )
        lines.append(f"\nverdict: OK — gridbucket wins the point-probe cases ({summary})")
    emit("ablation_index", "\n".join(lines))
