"""Table II — total graph sizes after compression.

Total vertices and edges of NoComp vs TACO-InRow vs TACO-Full across all
files of each corpus (lower is better).  Paper: TACO-Full keeps 5.0% of
Enron's edges and 1.9% of Github's.
"""

from _common import CORPORA, corpus_sheets, emit

from repro.bench.reporting import ascii_table, banner, format_count, format_pct


def corpus_totals(corpus: str) -> dict[str, tuple[int, int]]:
    totals = {"NoComp": [0, 0], "TACO-InRow": [0, 0], "TACO-Full": [0, 0]}
    for sheet in corpus_sheets(corpus):
        nocomp = sheet.nocomp().stats()
        totals["NoComp"][0] += nocomp.vertices
        totals["NoComp"][1] += nocomp.edges
        inrow = sheet.inrow()
        totals["TACO-InRow"][0] += inrow.stats().vertices
        totals["TACO-InRow"][1] += len(inrow)
        taco = sheet.taco()
        totals["TACO-Full"][0] += taco.stats().vertices
        totals["TACO-Full"][1] += len(taco)
    return {k: (v[0], v[1]) for k, v in totals.items()}


def test_table2_graph_sizes(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: corpus_totals(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner("Table II — graph sizes after TACO compression (lower is better)")]
    headers = ["system"]
    for corpus in CORPORA:
        headers += [f"{corpus} vertices", f"{corpus} edges"]
    rows = []
    for system in ("NoComp", "TACO-InRow", "TACO-Full"):
        row = [system]
        for corpus in CORPORA:
            vertices, edges = data[corpus][system]
            base_v, base_e = data[corpus]["NoComp"]
            if system == "NoComp":
                row += [format_count(vertices), format_count(edges)]
            else:
                row += [
                    f"{format_count(vertices)} ({format_pct(vertices / base_v)})",
                    f"{format_count(edges)} ({format_pct(edges / base_e)})",
                ]
        rows.append(row)
    lines.append(ascii_table(headers, rows))
    lines.append(
        "\nPaper reference (Table II): TACO-Full kept 6.3%/5.0% of Enron\n"
        "vertices/edges and 2.5%/1.9% of Github's; TACO-InRow kept ~41-53%\n"
        "(Enron) and ~31-33% (Github)."
    )
    emit("table2_graph_sizes", "\n".join(lines))


def test_table2_taco_full_build_op(benchmark):
    """Micro-benchmark: TACO-Full build on a representative sheet."""
    sheet = corpus_sheets("enron")[0]
    sheet.deps()  # warm the dependency cache
    benchmark(sheet.fresh_taco)
