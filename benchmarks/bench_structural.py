"""Structural edits: incremental maintenance + dirty recalc vs full rebuild.

The paper maintains the compressed graph *in place* under row/column
inserts and deletes (Sec. IV-C); the PR-4 pipeline extends that to the
whole engine — sheet rewrite, O(1) splitting of straddling compressed
edges, one deferred index settle, and a dirty-set recalculation that
keeps windowed columns as super-nodes.  This benchmark times the claim
end-to-end on a 10k-row corpus, two ways per scenario:

* **full rebuild**: edit the sheet with the sheet-level rewriter, build
  a fresh TACO graph from scratch (the pre-pipeline option), and
  recalculate every formula cell;
* **incremental**: one ``RecalcEngine.insert_rows``/``delete_rows`` call
  — incremental graph maintenance plus recalculation of only the dirty
  set.

Scenarios hit the edit positions that matter: *middle* (half the sheet
shifts, straddling run edges split), *tail* (small dirty set — the
common interactive case).  Gate: incremental beats the rebuild by
**>= 3x** on every scenario.  The gate is scale-free — both arms grow
linearly in sheet size but the rebuild's constant (re-compressing every
dependency plus recomputing every cell) dominates at any size — so CI
runs it on a small ``REPRO_STRUCTURAL_ROWS``.

Besides the ASCII artifact, the run writes machine-readable JSON to
``benchmarks/results/structural_edits.json`` in the same shape as
``bench_recalc_throughput.py``'s artifact (per-workload timings,
speedups, maintenance counters).
"""

import json
import os
import time

from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import build_from_sheet
from repro.engine.recalc import RecalcEngine
from repro.sheet import structural as sheet_structural
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_STRUCTURAL_ROWS", "10000"))

SPEEDUP_GATE = 3.0


def build_corpus(rows: int) -> Sheet:
    """A 10k-row ledger mixing the hot compressed shapes: data columns,
    an RR chain, FR running totals, a sliding RR window, and FF lookups."""
    sheet = Sheet("structbench")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float((r * 31) % 101))        # A: data
        sheet.set_value((2, r), float((r * 17) % 13) + 1.0)   # B: data
    sheet.set_formula("C1", "=A1")
    fill_formula_column(sheet, 3, 2, rows, "=C1+A2")          # RR-Chain balance
    fill_formula_column(sheet, 4, 1, rows, "=SUM($A$1:A1)")   # FR running total
    fill_formula_column(sheet, 5, 1, rows, "=SUM(B1:B25)")    # RR sliding window
    fill_formula_column(sheet, 6, 1, rows, "=A1*$B$1")        # FF scale factor
    return sheet


SCENARIOS = [
    ("insert_middle", "insert_rows", lambda rows: rows // 2, 3),
    ("delete_middle", "delete_rows", lambda rows: rows // 2, 2),
    ("insert_tail", "insert_rows", lambda rows: rows - 10, 5),
]


def time_full_rebuild(op: str, at: int, count: int) -> tuple[float, int]:
    sheet = build_corpus(ROWS)
    engine = RecalcEngine(sheet, build_from_sheet(sheet))
    engine.recalculate_all()
    start = time.perf_counter()
    getattr(sheet_structural, op)(sheet, at, count)
    rebuilt = build_from_sheet(sheet)
    engine = RecalcEngine(sheet, rebuilt)
    recomputed = engine.recalculate_all()
    return time.perf_counter() - start, recomputed


def time_incremental(op: str, at: int, count: int):
    sheet = build_corpus(ROWS)
    engine = RecalcEngine(sheet, build_from_sheet(sheet))
    engine.recalculate_all()
    start = time.perf_counter()
    result = getattr(engine, op)(at, count)
    return time.perf_counter() - start, result


def test_structural_edit_throughput(benchmark):
    def run():
        results = {}
        for name, op, position, count in SCENARIOS:
            at = position(ROWS)
            full_s, full_recomputed = time_full_rebuild(op, at, count)
            inc_s, inc_result = time_incremental(op, at, count)
            m = inc_result.maintenance
            results[name] = {
                "rows": ROWS,
                "op": op,
                "at": at,
                "count": count,
                "full_rebuild_seconds": full_s,
                "incremental_seconds": inc_s,
                "speedup": full_s / inc_s if inc_s else float("inf"),
                "gate": SPEEDUP_GATE,
                "full_recomputed_cells": full_recomputed,
                "incremental_recomputed_cells": inc_result.recomputed,
                "maintenance": {
                    "edges_shifted": m.shifted,
                    "edges_split": m.split,
                    "edges_decompressed": m.decompressed,
                    "reinserted_dependencies": m.reinserted,
                    "repacked": inc_result.repacked,
                    "dirty_cells": inc_result.dirty_count,
                },
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(
        "Structural edits: incremental maintenance + dirty recalc vs rebuild",
        f"rows={ROWS}; full arm = sheet rewrite + build_from_sheet + "
        "recalculate_all; incremental arm = one engine.insert/delete call",
    )]
    table_rows = []
    for name, data in results.items():
        m = data["maintenance"]
        table_rows.append([
            name,
            f"{data['at']}:{data['count']}",
            format_ms(data["full_rebuild_seconds"]),
            format_ms(data["incremental_seconds"]),
            f"{data['speedup']:.1f}x",
            f"{data['incremental_recomputed_cells']:,}/{data['full_recomputed_cells']:,}",
            f"{m['edges_split']}/{m['edges_decompressed']}",
        ])
    lines.append(ascii_table(
        ["scenario", "edit", "full rebuild", "incremental", "speedup",
         "recomputed (inc/full)", "edges split/decompressed"],
        table_rows,
    ))

    verdicts = []
    ok = True
    for name, data in results.items():
        passed = data["speedup"] >= data["gate"]
        ok = ok and passed
        verdicts.append(
            f"{'OK' if passed else 'REGRESSION'}: {name} "
            f"{data['speedup']:.1f}x vs gate {data['gate']:.1f}x"
        )
    lines.append("\n" + "\n".join(verdicts))
    emit("structural_edits", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "structural_edits.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump({"rows": ROWS, "workloads": results}, handle, indent=2)

    assert ok, "\n".join(verdicts)
    # The split path must actually engage on the straddling middle edits,
    # or the speedup is coming from somewhere else.
    assert results["insert_middle"]["maintenance"]["edges_split"] > 0
