"""Micro-benchmark: non-materialising aggregate iteration.

``SUM``/``AVERAGE``/``MIN``/``MAX`` used to funnel through
``_flatten_numbers``, which coerces and **materialises** a Python list
of every numeric cell in the argument ranges — on a 200k-cell range
that is a transient multi-megabyte allocation per evaluation, purely to
feed ``fsum``/``min``/``max`` once.  PR 3 switched the single-pass
aggregates to the lazy ``_iter_numbers`` generator (AVERAGE pairs it
with ``fsum_count``, which is bit-identical to fsum-over-a-list).

This benchmark measures both the time and the *peak transient
allocation* (via tracemalloc) of SUM over a large range, against a
reference reimplementation of the materialising path, and asserts the
allocation win.
"""

import os
import time
import tracemalloc

from _common import emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.formula.evaluator import Evaluator
from repro.sheet.sheet import Sheet, SheetResolver

ROWS = int(os.environ.get("REPRO_MICRO_AGG_ROWS", "200000"))


def build_sheet(rows: int) -> Sheet:
    sheet = Sheet("micro")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r % 1009))
    return sheet


def materializing_sum(rng_value) -> float:
    """The historical implementation: coerce into a list, then fsum."""
    import math

    numbers = [v for v in rng_value.iter_numbers()]
    return math.fsum(numbers)


def measure(fn):
    tracemalloc.start()
    start = time.perf_counter()
    value = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return value, elapsed, peak


def test_aggregate_iteration_allocation(benchmark):
    sheet = build_sheet(ROWS)
    evaluator = Evaluator(SheetResolver(sheet))
    formula = f"=SUM(A1:A{ROWS})"

    from repro.formula.parser import parse_formula
    from repro.formula.values import RangeValue
    from repro.grid.range import Range

    ast = parse_formula(formula)
    rng_value = RangeValue(Range(1, 1, 1, ROWS), "micro", SheetResolver(sheet))

    def run():
        lazy_value, lazy_s, lazy_peak = measure(
            lambda: evaluator.evaluate(ast, "micro", 2, 1)
        )
        mat_value, mat_s, mat_peak = measure(lambda: materializing_sum(rng_value))
        assert lazy_value == mat_value
        return lazy_s, lazy_peak, mat_s, mat_peak

    lazy_s, lazy_peak, mat_s, mat_peak = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    win = mat_peak / max(lazy_peak, 1)
    verdict = (
        f"OK: lazy aggregation peaks at {lazy_peak:,} B vs "
        f"{mat_peak:,} B materialised ({win:.0f}x less transient allocation)"
        if lazy_peak * 4 < mat_peak
        else f"REGRESSION: lazy path peak {lazy_peak:,} B is not well below "
             f"materialised {mat_peak:,} B"
    )
    lines = [banner(
        "Aggregate iteration: lazy generator vs materialised list",
        f"SUM over a {ROWS:,}-cell column, time + tracemalloc peak",
    )]
    lines.append(ascii_table(
        ["path", "time", "peak alloc"],
        [
            ["lazy (_iter_numbers)", format_ms(lazy_s), f"{lazy_peak:,} B"],
            ["materialised (list)", format_ms(mat_s), f"{mat_peak:,} B"],
        ],
    ))
    lines.append("\n" + verdict)
    emit("micro_aggregates", "\n".join(lines))
    assert lazy_peak * 4 < mat_peak, verdict
