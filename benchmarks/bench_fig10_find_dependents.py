"""Fig. 10 — CDFs of the time to find dependents, TACO vs NoComp.

For every sheet, two query cases as in the paper (Sec. VI-C): the cell
with the maximum number of dependents and the cell starting the longest
path.  The paper reports CDFs; we print their percentile tables and the
headline maxima/speedups (paper: TACO max 78/167 ms vs NoComp max
1,730/48,889 ms; speedup up to 34,972x).
"""

from _common import CORPORA, QUERY_BUDGET_S, corpus_sheets, emit

from repro.bench.harness import best_of, measure
from repro.bench.percentiles import cdf_points
from repro.bench.reporting import ascii_table, banner, format_ms


def time_queries(corpus: str, case: str) -> dict[str, list[float]]:
    """Per-sheet query seconds for the given case ('max' or 'longest')."""
    taco_times, nocomp_times = [], []
    for sheet in corpus_sheets(corpus):
        probe = (
            sheet.max_dependents_probe()[0]
            if case == "max"
            else sheet.longest_path_probe()[0]
        )
        taco = sheet.taco()
        nocomp = sheet.nocomp()
        taco_times.append(best_of(lambda: taco.find_dependents(probe), repeats=3).seconds)
        m = measure(
            lambda budget: nocomp.find_dependents(probe, budget),
            budget_seconds=QUERY_BUDGET_S,
            operation="NoComp find_dependents",
        )
        nocomp_times.append(QUERY_BUDGET_S if m.dnf else m.seconds)
    return {"TACO": taco_times, "NoComp": nocomp_times}


def render_case(corpus: str, case: str, data: dict[str, list[float]]) -> str:
    title = "Maximum Dependents" if case == "max" else "Longest Path"
    rows = []
    for system in ("TACO", "NoComp"):
        points = cdf_points(data[system])
        rows.append([system] + [format_ms(v) for _, v in points])
    headers = ["system"] + [f"p{int(p)}" for p, _ in cdf_points([0.0])]
    speedups = [n / t for t, n in zip(data["TACO"], data["NoComp"]) if t > 0]
    table = ascii_table(headers, rows)
    return (
        f"\n[{corpus} — {title} case]\n{table}\n"
        f"max speedup TACO over NoComp: {max(speedups):,.0f}x "
        f"(median {sorted(speedups)[len(speedups) // 2]:,.0f}x)"
    )


def test_fig10_find_dependents_cdfs(benchmark):
    def compute():
        return {
            (corpus, case): time_queries(corpus, case)
            for corpus in CORPORA
            for case in ("max", "longest")
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [banner(
        "Fig. 10 — time to find dependents (CDF percentiles)",
        "paper shape: TACO orders of magnitude below NoComp at every percentile",
    )]
    for corpus in CORPORA:
        for case in ("max", "longest"):
            lines.append(render_case(corpus, case, data[(corpus, case)]))
    lines.append(
        "\nPaper reference: TACO max 78 ms (Enron) / 167 ms (Github);\n"
        "NoComp max 1,730 ms / 48,889 ms; speedup up to 34,972x."
    )
    emit("fig10_find_dependents", "\n".join(lines))


def test_fig10_taco_query_op(benchmark):
    """Micro-benchmark: one TACO dependents query at the hardest probe."""
    sheet = max(corpus_sheets("github"), key=lambda s: s.max_dependents_probe()[1])
    probe = sheet.max_dependents_probe()[0]
    taco = sheet.taco()
    benchmark(lambda: taco.find_dependents(probe))


def test_fig10_nocomp_query_op(benchmark):
    """Micro-benchmark: the same query on NoComp (one round: it is slow)."""
    sheet = max(corpus_sheets("github"), key=lambda s: s.max_dependents_probe()[1])
    probe = sheet.max_dependents_probe()[0]
    nocomp = sheet.nocomp()
    benchmark.pedantic(lambda: nocomp.find_dependents(probe), rounds=1, iterations=1)
