"""Snapshot + journal replay vs cold parse+build+full-recalc.

The paper's one-off compression cost (Fig. 11) is only "one-off" if it
is persisted: without snapshots, every reopen of a workbook pays xlsx
parsing, formula parsing, graph compression, and a full recalculation —
the exact critical-path costs TACO exists to avoid.  This benchmark
times the claim end-to-end on the 10k-row structural corpus, two ways:

* **cold load**: ``read_xlsx`` (ZIP + XML parse) + ``build_from_sheet``
  (formula parse + compression) + ``recalculate_all`` + replaying a
  realistic edit mix per-edit through the engine — what a service
  without persistence pays on every open;
* **snapshot load**: ``Workbook.restore(snapshot, journal)`` — decode
  values, formula source, and the *compressed* graph (no re-parse, no
  re-compression), replay the same edit mix from the write-ahead
  journal through the batch/structural pipelines, and recompute only
  the journal-dirtied cells with one multi-seed BFS.

Both arms end in the identical workbook state (asserted cell-by-cell).
Gate: snapshot load beats cold load by **>= 3x**.  The gate is
scale-free — both arms are linear in workbook size, but the cold arm's
constant (XML + formula parsing plus full recompute) dominates at any
size — so CI runs it on a small ``REPRO_SNAPSHOT_ROWS``.

Besides the ASCII artifact, the run writes machine-readable JSON to
``benchmarks/results/snapshot_load.json`` (arm timings, speedup,
snapshot size, journal record count), like ``bench_structural.py``.
"""

import json
import os
import shutil
import tempfile
import time

from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import build_from_sheet
from repro.engine.journal import Journal, read_journal
from repro.engine.recalc import RecalcEngine
from repro.io import read_xlsx, write_xlsx
from repro.sheet.autofill import fill_formula_column
from repro.sheet.workbook import Workbook

ROWS = int(os.environ.get("REPRO_SNAPSHOT_ROWS", "10000"))

SPEEDUP_GATE = 3.0


def build_corpus(rows: int) -> Workbook:
    """The structural-bench ledger: data columns, an RR chain, FR running
    totals, a sliding RR window, and FF lookups."""
    workbook = Workbook("snapbench")
    sheet = workbook.add_sheet("Ledger")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float((r * 31) % 101))        # A: data
        sheet.set_value((2, r), float((r * 17) % 13) + 1.0)   # B: data
    sheet.set_formula("C1", "=A1")
    fill_formula_column(sheet, 3, 2, rows, "=C1+A2")          # RR-Chain balance
    fill_formula_column(sheet, 4, 1, rows, "=SUM($A$1:A1)")   # FR running total
    fill_formula_column(sheet, 5, 1, rows, "=SUM(B1:B25)")    # RR sliding window
    fill_formula_column(sheet, 6, 1, rows, "=A1*$B$1")        # FF scale factor
    return workbook


def apply_edit_mix(engine: RecalcEngine, workbook: Workbook, rows: int) -> None:
    """A realistic post-snapshot session: scattered cell edits, one
    batched burst, one tail append (the common interactive structural
    edit, cf. ``bench_structural``) — identical for both arms."""
    # Scattered edits stay off B1: it is the broadcast input of the FF
    # column (=A1*$B$1), and editing it makes *recompute* — identical in
    # both arms — dominate the load costs this benchmark isolates.
    for i in range(10):
        engine.set_value((2, 5 + (i * rows) // 11), float(i + 2))
    with engine.begin_batch(workbook=workbook) as batch:
        for i in range(10):
            batch.set_value((2, 6 + (i * rows) // 11), float(i + 3))
        batch.set_formula((7, 1), "=SUM(B2:B50)")
    engine.insert_rows(rows - 10, 2, workbook=workbook)
    engine.set_value((2, 5), 42.0)
    engine.clear_cell((6, rows - 20))


def sheet_values(workbook: Workbook) -> dict:
    sheet = workbook.active_sheet
    return {pos: cell.value for pos, cell in sheet.items()}


def time_cold_load(xlsx_path: str, rows: int):
    start = time.perf_counter()
    workbook = read_xlsx(xlsx_path)
    sheet = workbook.active_sheet
    engine = RecalcEngine(sheet, build_from_sheet(sheet))
    recomputed = engine.recalculate_all()
    apply_edit_mix(engine, workbook, rows)
    return time.perf_counter() - start, workbook, recomputed


def time_snapshot_load(snapshot_path: str, journal_path: str):
    start = time.perf_counter()
    result = Workbook.restore(snapshot_path, journal_path)
    return time.perf_counter() - start, result


def test_snapshot_load_throughput(benchmark):
    workdir = tempfile.mkdtemp(prefix="snapbench-")
    xlsx_path = os.path.join(workdir, "corpus.xlsx")
    snapshot_path = os.path.join(workdir, "corpus.snap")
    journal_path = os.path.join(workdir, "corpus.wal")

    # Setup (untimed): the live session that produced the persisted state.
    live = build_corpus(ROWS)
    sheet = live.active_sheet
    write_xlsx(live, xlsx_path)
    engine = RecalcEngine(sheet, build_from_sheet(sheet))
    engine.recalculate_all()
    stats = live.snapshot(snapshot_path, {sheet.name: engine.graph})
    engine.journal = Journal(journal_path, truncate=True)
    apply_edit_mix(engine, live, ROWS)
    engine.journal.close()
    reference = sheet_values(live)
    journal_records = len(read_journal(journal_path).records)

    def run():
        cold_s, cold_workbook, cold_recomputed = time_cold_load(xlsx_path, ROWS)
        warm_s, recovery = time_snapshot_load(snapshot_path, journal_path)
        assert sheet_values(cold_workbook) == reference, \
            "cold arm diverged from the live session"
        assert sheet_values(recovery.workbook) == reference, \
            "snapshot+replay diverged from the live session"
        return {
            "rows": ROWS,
            "cold_seconds": cold_s,
            "snapshot_seconds": warm_s,
            "speedup": cold_s / warm_s if warm_s else float("inf"),
            "gate": SPEEDUP_GATE,
            "cold_recomputed_cells": cold_recomputed,
            "replay_recomputed_cells": recovery.recomputed,
            "journal_records": recovery.records_applied,
            "snapshot_bytes": stats.bytes_written,
            "snapshot_edges": stats.edges,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["journal_records"] == journal_records

    lines = [banner(
        "Snapshot + journal replay vs cold parse+build+full-recalc",
        f"rows={ROWS}; cold arm = read_xlsx + build_from_sheet + "
        "recalculate_all + per-edit replay; snapshot arm = "
        "Workbook.restore(snapshot, journal)",
    )]
    lines.append(ascii_table(
        ["cold load", "snapshot load", "speedup", "recomputed (snap/cold)",
         "journal records", "snapshot bytes"],
        [[
            format_ms(results["cold_seconds"]),
            format_ms(results["snapshot_seconds"]),
            f"{results['speedup']:.1f}x",
            f"{results['replay_recomputed_cells']:,}/{results['cold_recomputed_cells']:,}",
            results["journal_records"],
            f"{results['snapshot_bytes']:,}",
        ]],
    ))
    passed = results["speedup"] >= results["gate"]
    verdict = (
        f"{'OK' if passed else 'REGRESSION'}: snapshot load "
        f"{results['speedup']:.1f}x vs gate {results['gate']:.1f}x"
    )
    lines.append("\n" + verdict)
    emit("snapshot_load", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "snapshot_load.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    shutil.rmtree(workdir, ignore_errors=True)
    assert passed, verdict
