"""Fig. 12 — CDFs of the time to modify formula graphs.

The paper's modification workload: remove the contents of a column of 1K
cells starting at the cell with the most dependents (anchored at that
cell's largest run of formula dependents, so the clear actually touches
graph edges).  Shape to match: TACO ahead wherever the clear does real
maintenance work (paper Github p99: 33 ms vs 41 ms).

Fresh graphs are built per sheet so the cached ones used elsewhere stay
intact.
"""

from _common import CORPORA, corpus_sheets, emit

from repro.bench.harness import time_call
from repro.bench.percentiles import cdf_points
from repro.bench.reporting import ascii_table, banner, format_ms

MODIFY_CELLS = 1000


def time_modifications(corpus: str) -> dict[str, list[float]]:
    taco_times, nocomp_times = [], []
    for sheet in corpus_sheets(corpus):
        victim = sheet.modify_range(MODIFY_CELLS)
        taco = sheet.fresh_taco()
        nocomp = sheet.fresh_nocomp()
        taco_times.append(time_call(lambda: taco.clear_cells(victim))[0])
        nocomp_times.append(time_call(lambda: nocomp.clear_cells(victim))[0])
    return {"TACO": taco_times, "NoComp": nocomp_times}


def test_fig12_modify_cdfs(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: time_modifications(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner(
        "Fig. 12 — time to modify formula graphs (CDF percentiles)",
        f"clear {MODIFY_CELLS} formula cells below the max-dependents cell",
    )]
    grid = [10, 25, 50, 75, 90, 99, 100]
    for corpus in CORPORA:
        rows = []
        for system in ("TACO", "NoComp"):
            points = cdf_points(data[corpus][system], grid)
            rows.append([system] + [format_ms(v) for _, v in points])
        lines.append(f"\n[{corpus}]")
        lines.append(ascii_table(["system"] + [f"p{p}" for p in grid], rows))
    lines.append(
        "\nPaper reference: for the easy first 90% both are <10 ms with\n"
        "NoComp slightly ahead; in the hard tail TACO wins (Github p99:\n"
        "33 ms TACO vs 41 ms NoComp)."
    )
    emit("fig12_modify", "\n".join(lines))


def test_fig12_taco_clear_op(benchmark):
    """Micro-benchmark: one TACO clear on a fresh mid-size graph."""
    sheet = corpus_sheets("enron")[2]
    victim = sheet.modify_range(MODIFY_CELLS)

    def setup():
        return (sheet.fresh_taco(),), {}

    benchmark.pedantic(
        lambda graph: graph.clear_cells(victim), setup=setup, rounds=3, iterations=1
    )
