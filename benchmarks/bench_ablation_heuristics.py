"""Ablation (Sec. IV-A) — the edge-selection heuristics.

TACO picks among valid merge candidates by: column-wise first, special
pattern (RR-Chain) first, then dollar-sign cues.  This ablation rebuilds
a corpus sample with each heuristic disabled and reports the resulting
edge counts, plus the effect of dropping RR-Chain from the pattern set
on query-time edge accesses (the reason Sec. V introduces it).
"""

from _common import corpus_sheets, emit

from repro.bench.harness import best_of
from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.patterns.registry import default_patterns
from repro.core.patterns.rr_chain import RRChainPattern
from repro.core.taco_graph import TacoGraph

SAMPLE = 8


def build_variant(sheets, **kwargs) -> tuple[int, dict[str, int]]:
    total = 0
    mix: dict[str, int] = {}
    for sheet in sheets:
        graph = TacoGraph.full(**kwargs)
        graph.build(sheet.deps())
        total += len(graph)
        for name, info in graph.pattern_breakdown().items():
            mix[name] = mix.get(name, 0) + info["edges"]
    return total, mix


def test_heuristic_edge_counts(benchmark):
    sheets = corpus_sheets("enron")[:SAMPLE]

    def compute():
        return {
            "all heuristics (default)": build_variant(sheets),
            "no dollar-sign cues": build_variant(sheets, use_cues=False),
            "no column-first preference": build_variant(sheets, prefer_column=False),
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    pattern_names = sorted({name for _, mix in data.values() for name in mix})
    lines = [banner(
        "Ablation — compression heuristics (edges after compression,"
        f" {SAMPLE} Enron sheets)"
    )]
    rows = [
        [variant, total] + [mix.get(name, 0) for name in pattern_names]
        for variant, (total, mix) in data.items()
    ]
    lines.append(ascii_table(["variant", "edges"] + pattern_names, rows))
    lines.append(
        "\nThe heuristics mainly affect *which* pattern a dependency joins\n"
        "(the per-pattern mix), not how many edges result: on clean\n"
        "autofill runs exactly one pattern admits each run, so edge counts\n"
        "are stable while the cue-guided choice keeps semantically-matching\n"
        "patterns in ambiguous cases (cf. Fig. 8)."
    )
    emit("ablation_heuristics", "\n".join(lines))


def test_chain_pattern_effect(benchmark):
    """RR-Chain on vs off: edge accesses and query time on a chain sheet."""
    sheets = [s for s in corpus_sheets("enron") if "fig2" in str(s.spec.regions)]
    sheet = max(sheets or corpus_sheets("enron"), key=lambda s: len(s.deps()))

    def compute():
        probe = sheet.max_dependents_probe()[0]
        with_chain = TacoGraph.full()
        with_chain.build(sheet.deps())
        no_chain = TacoGraph(
            patterns=[p for p in default_patterns() if not isinstance(p, RRChainPattern)]
        )
        no_chain.build(sheet.deps())
        rows = []
        for label, graph in (("with RR-Chain", with_chain), ("without RR-Chain", no_chain)):
            graph.query_stats.edge_accesses = 0
            seconds = best_of(lambda: graph.find_dependents(probe), repeats=3).seconds
            rows.append([label, len(graph), graph.query_stats.edge_accesses, format_ms(seconds)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [banner(
        "Ablation — RR-Chain (Sec. V): repeated edge accesses without it",
        f"sheet {sheet.name}, max-dependents probe",
    )]
    lines.append(ascii_table(
        ["variant", "edges", "edge accesses during BFS", "query time"], rows
    ))
    lines.append(
        "\nWithout RR-Chain the chain compresses under plain RR and the BFS\n"
        "re-accesses that one edge once per link — exactly the bottleneck\n"
        "the paper's extended pattern removes."
    )
    emit("ablation_chain", "\n".join(lines))
