"""Batched vs. per-edit maintenance + recalculation (the PR-2 pipeline).

The paper's Figs. 12/15 time individual graph modifications; this
benchmark times the *workload* an interactive engine actually faces — a
burst of edits — two ways over identical sheets:

* **per-edit**: every edit pays graph maintenance, a dependents BFS, and
  a topological re-evaluation through ``RecalcEngine`` (the pre-batch
  behaviour);
* **batched**: the same edits recorded in one ``BatchEditSession`` and
  committed once — coalesced clears, column-major re-inserts, one
  deferred index settle (STR repack when the touched share is large),
  one multi-seed BFS, one topological pass.

The workload mixes value writes into the data column with formula
rewrites (the expensive kind: clear + re-insert + re-compress), spread
over the sheet so coalescing has real work to do.  Configuration:
``REPRO_BATCH_ROWS`` (sheet height, default 4000) and
``REPRO_BATCH_EDITS`` (edit count, default 10000).

The artifact ends with a verdict line: the acceptance bar is that the
batched commit beats per-edit end-to-end on a >=10k-edit workload.
"""

import os
import time

from _common import emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.engine.recalc import RecalcEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_BATCH_ROWS", "4000"))
EDITS = int(os.environ.get("REPRO_BATCH_EDITS", "10000"))
FORMULA_EDIT_SHARE = 0.2


def build_workload_sheet(rows: int = ROWS) -> Sheet:
    sheet = Sheet("batchbench")
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float(r % 97))                 # A: data
    fill_formula_column(sheet, 2, 1, rows, "=A1*2")            # B: doubles
    fill_formula_column(sheet, 3, 1, rows, "=B1+A1")           # C: sums
    return sheet


def edit_stream(rows: int, edits: int):
    """Deterministic mixed edit stream: value writes + formula rewrites."""
    formula_every = int(1 / FORMULA_EDIT_SHARE)
    for i in range(edits):
        row = (i * 7) % rows + 1                   # strided, so runs coalesce
        if i % formula_every == 0:
            yield ("formula", (2, row), f"=A{row}*3+{i % 5}")
        else:
            yield ("value", (1, row), float(i % 101))


def run_per_edit(rows: int, edits: int) -> float:
    engine = RecalcEngine(build_workload_sheet(rows))
    engine.recalculate_all()
    ops = list(edit_stream(rows, edits))
    start = time.perf_counter()
    for kind, target, payload in ops:
        if kind == "value":
            engine.set_value(target, payload)
        else:
            engine.set_formula(target, payload)
    return time.perf_counter() - start


def run_batched(rows: int, edits: int):
    engine = RecalcEngine(build_workload_sheet(rows))
    engine.recalculate_all()
    ops = list(edit_stream(rows, edits))
    start = time.perf_counter()
    with engine.begin_batch() as batch:
        for kind, target, payload in ops:
            if kind == "value":
                batch.set_value(target, payload)
            else:
                batch.set_formula(target, payload)
    return time.perf_counter() - start, batch.result


def test_batch_vs_per_edit(benchmark):
    data = benchmark.pedantic(
        lambda: (run_per_edit(ROWS, EDITS), run_batched(ROWS, EDITS)),
        rounds=1, iterations=1,
    )
    per_edit_s, (batched_s, result) = data
    speedup = per_edit_s / batched_s if batched_s else float("inf")
    verdict = (
        "OK: batched commit beats per-edit maintenance + recalc"
        if batched_s < per_edit_s
        else "REGRESSION: batched commit is not faster than per-edit"
    )
    lines = [banner(
        "Batched vs. per-edit modification (maintenance + recalc)",
        f"{EDITS} edits ({int(FORMULA_EDIT_SHARE * 100)}% formula rewrites) "
        f"on a {ROWS}-row sheet, {ROWS * 2} formula cells",
    )]
    lines.append(ascii_table(
        ["strategy", "total", "per edit"],
        [
            ["per-edit", format_ms(per_edit_s), format_ms(per_edit_s / EDITS)],
            ["batched", format_ms(batched_s), format_ms(batched_s / EDITS)],
        ],
    ))
    lines.append(
        f"\nbatch breakdown: {result.ops} ops -> {result.coalesced_cells} cells "
        f"-> {len(result.cleared_ranges)} cleared ranges; "
        f"{result.edges_touched} edges touched, "
        f"{result.inserted_dependencies} deps re-inserted, "
        f"repacked={result.repacked}; "
        f"maintain {format_ms(result.maintain_seconds)}, "
        f"recalc {format_ms(result.recalc_seconds)} "
        f"({result.recomputed} cells re-evaluated)"
    )
    lines.append(f"\nspeedup: {speedup:.1f}x\n{verdict}")
    emit("batch_modify", "\n".join(lines))
    assert batched_s < per_edit_s, verdict


def test_batch_maintenance_only(benchmark):
    """Graph maintenance in isolation: per-edit clear+insert vs batch_update.

    No sheet mutation, no recalculation on either side — both arms see
    the identical (cell, dependencies) stream, so the comparison is
    purely incremental maintenance vs the coalesced deferred wave.

    The workload is a contiguous fill-down (rewrite every formula in the
    B column): the shape where coalescing collapses the clears to one
    index search and the deferred settle repacks once.  On *scattered*
    single-cell edits maintenance alone is near parity (stale entries
    accumulate during the deferred wave and nothing coalesces); the
    end-to-end win measured above comes from amortising the BFS and the
    recalculation, not from maintenance.
    """
    from repro.core import maintain
    from repro.core.taco_graph import build_from_sheet
    from repro.formula.references import references_of_formula
    from repro.grid.range import Range
    from repro.sheet.sheet import Dependency

    rows = min(ROWS, 2000)
    sheet = build_workload_sheet(rows)
    ops = []
    for row in range(1, rows + 1):
        cell = Range.cell(2, row)
        deps = [Dependency(ref.range, cell, ref.cue)
                for ref in references_of_formula(f"=A{row}*3")]
        ops.append((cell, deps))

    def run() -> tuple[float, float]:
        graph_a = build_from_sheet(sheet)
        start = time.perf_counter()
        for cell, deps in ops:
            maintain.update_cell(graph_a, cell, deps)
        per_edit_s = time.perf_counter() - start

        graph_b = build_from_sheet(sheet)
        start = time.perf_counter()
        dedup = dict(ops)  # last writer wins, as the batch session coalesces
        coalesced = maintain.coalesce_cells(cell.head for cell in dedup)
        all_deps = [d for deps in dedup.values() for d in deps]
        maintain.batch_update(graph_b, coalesced, all_deps)
        return per_edit_s, time.perf_counter() - start

    per_edit_s, batched_s = benchmark.pedantic(run, rounds=1, iterations=1)
    assert batched_s < per_edit_s, (
        f"bulk maintenance regression: batched {batched_s:.3f}s "
        f"vs per-edit {per_edit_s:.3f}s on a contiguous fill-down"
    )
