"""Persistent shard runtime vs the per-recalc pooled scheduler.

The shard runtime (``repro.engine.shard``) exists for exactly one
workload shape: a *hot edit loop* over a sheet whose read surface is
much larger than its per-edit dirty delta.  The pooled process
scheduler re-ships every region's read columns (and rebuilds the worker
sheet and plan) on every recalculation; resident shards pay that
freight once at bootstrap and thereafter ship only the columns whose
version stamps moved — here, one control cell per block per iteration,
while the big static data planes never travel again.

Corpus: ``REPRO_SHARD_BLOCKS`` independent blocks (default 8), each a
large static value column (``REPRO_SHARD_ROWS`` rows, default 5,000),
one control cell, and ``REPRO_SHARD_FORMULAS`` windowed formulas
(default 100) reading both.  Protocol: per arm — serial auto, pooled
``workers=N, worker_mode="process"``, sharded ``shards=N`` — one
untimed warm edit (pool spin-up / shard bootstrap), then
``REPRO_SHARD_ITERS`` (default 50) timed iterations of the same batched
one-control-cell-per-block edit on independent sheet+graph copies.

The differential asserts — bit-identical values and identical per-loop
EvalStats cell-counter deltas across all three arms — always run.  The
**>= 2x sharded-over-pooled** gate is asserted only when the machine
exposes at least 4 usable cores (CI's runners do); on smaller boxes the
artifact still records the measured ratio and the test skips the gate
with a clear message.

Artifacts: ASCII table + ``benchmarks/results/shard_recalc.json``.
"""

import json
import os
import time

import pytest
from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_SHARD_ROWS", "5000"))
BLOCKS = int(os.environ.get("REPRO_SHARD_BLOCKS", "8"))
FORMULAS = int(os.environ.get("REPRO_SHARD_FORMULAS", "100"))
WINDOW = int(os.environ.get("REPRO_SHARD_WINDOW", "50"))
ITERS = int(os.environ.get("REPRO_SHARD_ITERS", "50"))
WORKERS = int(os.environ.get("REPRO_SHARD_BENCH_WORKERS", "4"))

SPEEDUP_GATE = 2.0


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def column_letters(col: int) -> str:
    out = ""
    while col:
        col, rem = divmod(col - 1, 26)
        out = chr(ord("A") + rem) + out
    return out


def build_corpus() -> Sheet:
    """BLOCKS independent blocks: a big static data column feeding
    windowed formulas scaled by one hot control cell."""
    sheet = Sheet("shard", store="columnar")
    for b in range(BLOCKS):
        cx, cy, cz = 3 * b + 1, 3 * b + 2, 3 * b + 3
        x, y = column_letters(cx), column_letters(cy)
        for r in range(1, ROWS + WINDOW + 1):
            sheet.set_value((cx, r), float((r * 7 + b) % 97))
        sheet.set_value((cy, 1), 1.0)
        fill_formula_column(
            sheet, cz, 1, FORMULAS,
            f"=SUM({x}1:{x}{WINDOW})*${y}$1",
        )
    return sheet


def control_cells() -> list[tuple[int, int]]:
    return [(3 * b + 2, 1) for b in range(BLOCKS)]


def build_engine(**kwargs) -> RecalcEngine:
    sheet = build_corpus()
    graph = TacoGraph()
    graph.build(dependencies_column_major(sheet))
    engine = RecalcEngine(sheet, graph, **kwargs)
    engine.recalculate_all()
    return engine


def hot_edit(engine: RecalcEngine, value: float) -> None:
    """One iteration: touch every block's control cell in one batch."""
    with engine.begin_batch() as batch:
        for pos in control_cells():
            batch.set_value(pos, value)


def run_arm(engine: RecalcEngine) -> tuple[float, tuple]:
    hot_edit(engine, 2.0)                   # warm: pools / residents
    before = engine.eval_stats.counter_snapshot()
    start = time.perf_counter()
    for i in range(ITERS):
        hot_edit(engine, 3.0 + i)
    elapsed = time.perf_counter() - start
    after = engine.eval_stats.counter_snapshot()
    return elapsed, tuple(a - b for a, b in zip(after, before))


def test_shard_recalc(benchmark):
    def run():
        serial = build_engine()
        serial_s, serial_delta = run_arm(serial)
        serial_values = {
            pos: serial.sheet.get_value(pos)
            for pos in serial.sheet.positions()
        }

        pooled = build_engine(workers=WORKERS, worker_mode="process",
                              parallel_min_dirty=1)
        pooled_s, pooled_delta = run_arm(pooled)
        pooled_values = {
            pos: pooled.sheet.get_value(pos)
            for pos in pooled.sheet.positions()
        }

        sharded = build_engine(shards=WORKERS, parallel_min_dirty=1)
        sharded_s, sharded_delta = run_arm(sharded)
        sharded_values = {
            pos: sharded.sheet.get_value(pos)
            for pos in sharded.sheet.positions()
        }

        return {
            "rows": ROWS,
            "blocks": BLOCKS,
            "formulas_per_block": FORMULAS,
            "window": WINDOW,
            "iterations": ITERS,
            "workers": WORKERS,
            "serial_seconds": serial_s,
            "pooled_seconds": pooled_s,
            "sharded_seconds": sharded_s,
            "sharded_over_pooled":
                pooled_s / sharded_s if sharded_s else float("inf"),
            "sharded_over_serial":
                serial_s / sharded_s if sharded_s else float("inf"),
            "identical_values": (sharded_values == serial_values
                                 and pooled_values == serial_values),
            "identical_counters": (sharded_delta == serial_delta
                                   and pooled_delta == serial_delta),
            "counter_delta": list(serial_delta),
            "shard_bootstraps": sharded.eval_stats.shard_bootstraps,
            "shard_delta_bytes": sharded.eval_stats.shard_delta_bytes,
            "shard_dispatches": sharded.eval_stats.parallel_dispatches,
            "shard_fallbacks": sharded.eval_stats.shard_fallbacks,
            "pooled_dispatches": pooled.eval_stats.parallel_dispatches,
            "pooled_fallbacks": pooled.eval_stats.serial_fallbacks,
            "usable_cores": usable_cores(),
            "gate": SPEEDUP_GATE,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    cores = results["usable_cores"]
    gated = cores >= 4
    lines = [banner(
        "Persistent shard runtime: hot edit loop vs pooled process recalc",
        f"{BLOCKS} blocks x {ROWS:,} static rows, {FORMULAS} formulas each, "
        f"{ITERS} iterations, workers/shards={WORKERS}, {cores} usable cores",
    )]
    lines.append(ascii_table(
        ["arm", "wall", "per-iter", "dispatches", "fallbacks"],
        [
            ["serial auto", format_ms(results["serial_seconds"]),
             format_ms(results["serial_seconds"] / ITERS), "-", "-"],
            [f"pooled process({WORKERS})", format_ms(results["pooled_seconds"]),
             format_ms(results["pooled_seconds"] / ITERS),
             str(results["pooled_dispatches"]),
             str(results["pooled_fallbacks"])],
            [f"sharded({WORKERS})", format_ms(results["sharded_seconds"]),
             format_ms(results["sharded_seconds"] / ITERS),
             str(results["shard_dispatches"]),
             str(results["shard_fallbacks"])],
        ],
    ))
    lines.append(
        f"\nsharded over pooled: {results['sharded_over_pooled']:.2f}x "
        f"(gate >= {SPEEDUP_GATE:.1f}x, "
        f"{'enforced' if gated else f'not enforced: {cores} < 4 cores'}); "
        f"over serial: {results['sharded_over_serial']:.2f}x"
    )
    lines.append(
        f"residency: {results['shard_bootstraps']} bootstraps, "
        f"{results['shard_delta_bytes']:,} delta bytes shipped over "
        f"{results['shard_dispatches']} dispatches"
    )
    lines.append(
        "differential: values "
        + ("identical" if results["identical_values"] else "DIVERGED")
        + ", stats counter deltas "
        + ("identical" if results["identical_counters"] else "DIVERGED")
    )
    emit("shard_recalc", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "shard_recalc.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    # Correctness is unconditional: bit-identical values and stats
    # deltas across all three arms, residency held (bootstraps happened
    # at warm-up, not per iteration), and nothing fell back.
    assert results["identical_values"], "sharded values diverged from serial"
    assert results["identical_counters"], "sharded EvalStats diverged"
    assert results["shard_dispatches"] >= ITERS, "shard path did not engage"
    assert results["shard_fallbacks"] == 0, "unexpected shard fallbacks"
    assert results["shard_bootstraps"] <= WORKERS, (
        "residents re-bootstrapped during the hot loop"
    )

    if not gated:
        pytest.skip(
            f"speedup gate requires >= 4 usable cores, found {cores} "
            f"(measured {results['sharded_over_pooled']:.2f}x "
            "sharded-over-pooled, artifact written)"
        )
    assert results["sharded_over_pooled"] >= SPEEDUP_GATE, (
        f"sharded({WORKERS}) only {results['sharded_over_pooled']:.2f}x "
        f"over pooled process, gate {SPEEDUP_GATE:.1f}x"
    )
