"""Fig. 11 — CDFs of the time to build formula graphs.

TACO pays a compression overhead at construction (paper: up to ~2x
NoComp; Enron max 16.6 s vs 7.7 s, Github 82.6 s vs 40.1 s), which the
paper argues is acceptable because construction happens once at load
time, off the interactive path.
"""

from _common import CORPORA, corpus_sheets, emit

from repro.bench.harness import time_call
from repro.bench.percentiles import cdf_points
from repro.bench.reporting import ascii_table, banner, format_ms


def time_builds(corpus: str) -> dict[str, list[float]]:
    taco_times, nocomp_times = [], []
    for sheet in corpus_sheets(corpus):
        sheet.deps()  # exclude generation/parsing from the measurement
        taco_times.append(time_call(sheet.fresh_taco)[0])
        nocomp_times.append(time_call(sheet.fresh_nocomp)[0])
    return {"TACO": taco_times, "NoComp": nocomp_times}


def test_fig11_build_cdfs(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: time_builds(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner(
        "Fig. 11 — time to build formula graphs (CDF percentiles)",
        "paper shape: TACO ~1.5-2x NoComp, paid once at load time",
    )]
    grid = [10, 25, 50, 75, 90, 100]
    for corpus in CORPORA:
        rows = []
        for system in ("TACO", "NoComp"):
            points = cdf_points(data[corpus][system], grid)
            rows.append([system] + [format_ms(v) for _, v in points])
        lines.append(f"\n[{corpus}]")
        lines.append(ascii_table(["system"] + [f"p{p}" for p in grid], rows))
        ratio = max(data[corpus]["TACO"]) / max(data[corpus]["NoComp"])
        lines.append(f"max build time ratio TACO/NoComp: {ratio:.2f}x")
    lines.append(
        "\nPaper reference: Enron max 16,626 ms (TACO) vs 7,704 ms (NoComp);\n"
        "Github 82,567 ms vs 40,103 ms — TACO ~2x slower to build."
    )
    emit("fig11_build", "\n".join(lines))
