"""Fig. 16 — find-dependents latency vs Excel-like and NoComp-Calc.

The ten sheets where TACO spends the most query time, probed at the
max-dependents cell, across TACO, NoComp, NoComp-Calc (container index
instead of R-Tree) and the Excel-like engine (shared-formula storage,
decompress-to-query).  Paper shape: TACO up to 632x faster than Excel
and up to 1,682x faster than NoComp-Calc; Excel is slower than NoComp in
all cases (the decompression hypothesis); NoComp-Calc DNFs on two.
"""

from _common import CORPORA, QUERY_BUDGET_S, emit, hardest_sheets_by_query

from repro.baselines.excel_like import ExcelLikeEngine
from repro.bench.harness import best_of, measure
from repro.bench.reporting import ascii_table, banner

SYSTEMS = ("TACO", "NoComp", "NoComp-Calc", "Excel")


def measure_queries() -> dict[str, list]:
    results: dict[str, list] = {}
    for corpus in CORPORA:
        for rank, sheet in enumerate(hardest_sheets_by_query(corpus), start=1):
            probe, count = sheet.max_dependents_probe()
            row = [f"{corpus} max{rank}", f"{count:,}"]
            taco = sheet.taco()
            row.append(best_of(lambda: taco.find_dependents(probe), repeats=3).render())
            nocomp = sheet.nocomp()
            row.append(
                measure(
                    lambda budget: nocomp.find_dependents(probe, budget),
                    budget_seconds=QUERY_BUDGET_S,
                    operation="NoComp query",
                ).render()
            )
            calc = sheet.fresh_calc()
            row.append(
                measure(
                    lambda budget: calc.find_dependents(probe, budget),
                    budget_seconds=QUERY_BUDGET_S,
                    operation="NoComp-Calc query",
                ).render()
            )
            excel = ExcelLikeEngine.from_sheet(sheet.sheet())
            row.append(
                measure(
                    lambda budget: excel.find_dependents(probe, budget),
                    budget_seconds=QUERY_BUDGET_S,
                    operation="Excel query",
                ).render()
            )
            results.setdefault(corpus, []).append(row)
    return results


def test_fig16_excel_calc_latency(benchmark):
    data = benchmark.pedantic(measure_queries, rounds=1, iterations=1)
    lines = [banner(
        "Fig. 16 — find-dependents latency vs Excel-like and NoComp-Calc",
        "top-10 sheets by TACO query time; X marks a DNF",
    )]
    for corpus in CORPORA:
        lines.append(f"\n[{corpus}]")
        lines.append(
            ascii_table(["sheet", "deps found"] + list(SYSTEMS), data[corpus])
        )
    lines.append(
        "\nPaper reference (Fig. 16): TACO max 442 ms vs Excel max 79,761 ms\n"
        "(up to 632x); Excel slower than NoComp everywhere (decompression\n"
        "overhead); NoComp-Calc DNF on 2 sheets, TACO up to 1,682x faster."
    )
    emit("fig16_excel_calc", "\n".join(lines))
