"""Table IV — remaining edge fraction after compression (lower is better).

Per-sheet ``|E| / |E'|`` summarised as min / 25th percentile / median /
mean.  Paper: Enron TACO-Full mean 7.37%, median 1.93%; Github mean
3.44%, median 0.19%.
"""

from _common import CORPORA, corpus_sheets, emit

from repro.bench.percentiles import Summary
from repro.bench.reporting import ascii_table, banner, format_pct


def fractions(corpus: str) -> dict[str, list[float]]:
    out = {"TACO-InRow": [], "TACO-Full": []}
    for sheet in corpus_sheets(corpus):
        raw = len(sheet.deps())
        out["TACO-InRow"].append(len(sheet.inrow()) / raw)
        out["TACO-Full"].append(len(sheet.taco()) / raw)
    return out


def test_table4_remaining_edges(benchmark):
    data = benchmark.pedantic(
        lambda: {corpus: fractions(corpus) for corpus in CORPORA},
        rounds=1, iterations=1,
    )
    lines = [banner("Table IV — remaining edges after compression (lower is better)")]
    rows = []
    for corpus in CORPORA:
        for system in ("TACO-InRow", "TACO-Full"):
            summary = Summary.of(data[corpus][system])
            rows.append([
                f"{corpus} {system}",
                format_pct(summary.minimum),
                format_pct(summary.p25),
                format_pct(summary.median),
                format_pct(summary.mean),
            ])
    lines.append(ascii_table(["corpus/system", "min", "25th pct", "median", "mean"], rows))
    lines.append(
        "\nPaper reference (Table IV): Enron full 0.0042%/0.47%/1.93%/7.37%;\n"
        "Github full 0.0005%/0.03%/0.19%/3.44%; InRow means 42%/36%."
    )
    emit("table4_remaining_edges", "\n".join(lines))
