"""Shared-plan scenario sweeps vs K independent recalculations.

The scenario engine (``repro.engine.scenario``) claims a K-scenario
sweep over the same seed cells should not pay K times the per-edit
pipeline: the dirty frontier and the Kahn/super-node plan are computed
once, each scenario just writes its trial values and replays the frozen
plan, and ``workers=N`` fans whole scenarios across the PR 7 process
pool.  This benchmark measures that on the what-if dashboard corpus
(``examples/whatif_dashboard.py``): three ``$``-fixed assumption seeds
driving ``REPRO_SCENARIO_MONTHS`` months of chained/elementwise/
windowed projections (default 360), swept over ``REPRO_SCENARIO_K``
scenarios (default 64).

The baseline arm is the workflow the engine replaces — write each
assumption with ``engine.set_value`` (every write pays its own
dependents-BFS, ordering, and recompute) and read the KPIs.  The shared
arms run the same sweep through one :class:`ScenarioEngine`, serially
and with ``workers=N``.  All three produce identical results — asserted
unconditionally, along with the fan-out actually dispatching and never
falling back.  The **>= 10x** gate compares the baseline against the
best shared arm and is asserted only when the machine exposes enough
usable cores for the pool; smaller boxes record the ratio and skip.

Artifacts: ASCII table + ``benchmarks/results/scenario_sweep.json``.
"""

import json
import os
import time

import pytest
from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.engine.scenario import ScenarioEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

MONTHS = int(os.environ.get("REPRO_SCENARIO_MONTHS", "360"))
K = int(os.environ.get("REPRO_SCENARIO_K", "64"))
WORKERS = int(os.environ.get("REPRO_SCENARIO_WORKERS", "4"))

SPEEDUP_GATE = 10.0

SEEDS = ("B1", "B2", "B3")


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_dashboard() -> Sheet:
    """The what-if dashboard: an assumptions block (growth, cost ratio,
    fx) driving MONTHS of revenue/costs/profit/cumulative projections."""
    sheet = Sheet("plan", store="columnar")
    sheet.set_value("B1", 1.02)
    sheet.set_value("B2", 0.62)
    sheet.set_value("B3", 1.08)
    sheet.set_value("D6", 1000.0)
    fill_formula_column(sheet, 4, 7, 5 + MONTHS, "=D6*$B$1")        # revenue
    fill_formula_column(sheet, 5, 6, 5 + MONTHS, "=D6*$B$2")        # costs
    fill_formula_column(sheet, 6, 6, 5 + MONTHS, "=(D6-E6)*$B$3")   # profit
    sheet.set_formula("G6", "=F6")
    fill_formula_column(sheet, 7, 7, 5 + MONTHS, "=G6+F7")          # cumulative
    sheet.set_formula("I1", f"=G{5 + MONTHS}")                      # KPI
    return sheet


def make_scenarios(count: int) -> list[dict]:
    return [
        {
            "B1": 1.0 + (k % 9) / 100.0,
            "B2": 0.5 + (k % 7) / 50.0,
            "B3": 0.9 + (k % 11) / 40.0,
        }
        for k in range(count)
    ]


def independent_sweep(engine: RecalcEngine, scenarios, outputs) -> list[dict]:
    """The pre-scenario-engine workflow: one engine, every assumption
    write pays the full per-edit pipeline, read the KPIs after each."""
    results = []
    for scenario in scenarios:
        for cell, value in scenario.items():
            engine.set_value(cell, value)
        results.append({out: engine.sheet.get_value(out) for out in outputs})
    return results


def test_scenario_sweep(benchmark):
    def run():
        sheet = build_dashboard()
        graph = TacoGraph()
        graph.build(dependencies_column_major(sheet))
        engine = RecalcEngine(sheet, graph)
        engine.recalculate_all()
        base = {cell: sheet.get_value(cell) for cell in SEEDS}
        baseline_kpi = sheet.get_value("I1")

        outputs = ["I1", f"G{5 + MONTHS}"]
        scenarios = make_scenarios(K)

        independent_sweep(engine, scenarios[:2], outputs)  # warm: memos
        start = time.perf_counter()
        independent = independent_sweep(engine, scenarios, outputs)
        independent_s = time.perf_counter() - start
        for cell, value in base.items():  # the baseline arm must clean up
            engine.set_value(cell, value)

        whatif = ScenarioEngine(engine, SEEDS)
        stats = engine.eval_stats

        whatif.run(scenarios[:2], outputs, workers=0)  # warm: plan, memos
        start = time.perf_counter()
        serial = whatif.run(scenarios, outputs, workers=0)
        serial_s = time.perf_counter() - start

        whatif.run(scenarios[:2], outputs, workers=WORKERS)  # warm: pool
        dispatches0 = stats.parallel_dispatches
        start = time.perf_counter()
        fanned = whatif.run(scenarios, outputs, workers=WORKERS)
        fanned_s = time.perf_counter() - start

        best_s = min(serial_s, fanned_s)
        return {
            "months": MONTHS,
            "scenarios": K,
            "workers": WORKERS,
            "plan_cells": whatif.plan_size,
            "independent_seconds": independent_s,
            "shared_serial_seconds": serial_s,
            "shared_workers_seconds": fanned_s,
            "speedup_serial": independent_s / serial_s if serial_s else float("inf"),
            "speedup_workers": independent_s / fanned_s if fanned_s else float("inf"),
            "speedup": independent_s / best_s if best_s else float("inf"),
            "identical_serial": serial == independent,
            "identical_workers": fanned == independent,
            "restored": (sheet.get_value("I1") == baseline_kpi
                         and all(sheet.get_value(c) == v
                                 for c, v in base.items())),
            "dispatches": stats.parallel_dispatches - dispatches0,
            "fallbacks": stats.serial_fallbacks,
            "plan_reuses": stats.scenario_plan_reuses,
            "usable_cores": usable_cores(),
            "gate": SPEEDUP_GATE,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    cores = results["usable_cores"]
    gated = cores >= WORKERS
    lines = [banner(
        "What-if sweeps: K independent recalcs vs one shared plan",
        f"{K} scenarios x {results['plan_cells']:,} dirty cells "
        f"({MONTHS} months), workers={WORKERS}, {cores} usable cores",
    )]
    lines.append(ascii_table(
        ["arm", "wall", "per scenario", "speedup"],
        [
            ["independent recalcs", format_ms(results["independent_seconds"]),
             format_ms(results["independent_seconds"] / K), "1.00x"],
            ["shared plan (serial)", format_ms(results["shared_serial_seconds"]),
             format_ms(results["shared_serial_seconds"] / K),
             f"{results['speedup_serial']:.2f}x"],
            [f"shared plan (workers={WORKERS})",
             format_ms(results["shared_workers_seconds"]),
             format_ms(results["shared_workers_seconds"] / K),
             f"{results['speedup_workers']:.2f}x"],
        ],
    ))
    lines.append(
        f"\nspeedup: {results['speedup']:.2f}x (gate >= {SPEEDUP_GATE:.1f}x, "
        f"{'enforced' if gated else f'not enforced: {cores} < {WORKERS} cores'})"
    )
    lines.append(
        "differential: serial "
        + ("identical" if results["identical_serial"] else "DIVERGED")
        + ", workers "
        + ("identical" if results["identical_workers"] else "DIVERGED")
        + ", sheet " + ("restored" if results["restored"] else "NOT RESTORED")
    )
    emit("scenario_sweep", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "scenario_sweep.json"), "w",
              encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    # Correctness is unconditional: both shared arms reproduce the
    # independent-recalc results exactly, the sheet comes back to its
    # baseline state, and the fan-out actually dispatched without ever
    # falling back to serial.
    assert results["identical_serial"], "shared-plan results diverged"
    assert results["identical_workers"], "fanned results diverged"
    assert results["restored"], "sheet not restored after the sweeps"
    assert results["dispatches"] >= 1, "process fan-out did not engage"
    assert results["fallbacks"] == 0, "unexpected serial fallbacks"

    if not gated:
        pytest.skip(
            f"speedup gate requires >= {WORKERS} usable cores, found {cores} "
            f"(measured {results['speedup']:.2f}x, artifact written)"
        )
    assert results["speedup"] >= SPEEDUP_GATE, (
        f"shared-plan speedup {results['speedup']:.2f}x "
        f"below gate {SPEEDUP_GATE:.1f}x"
    )
