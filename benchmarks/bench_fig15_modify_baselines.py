"""Fig. 15 — graph modification latency vs Antifreeze and RedisGraph.

Clear a 1K-cell column at the max-dependents cell.  Paper shape: TACO
and NoComp in milliseconds; RedisGraph pays per-cell edge deletion;
Antifreeze must rebuild its lookup table from scratch, so modification
costs as much as construction (and usually DNFs).
"""

from _common import (
    BUILD_BUDGET_S,
    CORPORA,
    MODIFY_BUDGET_S,
    emit,
    hardest_sheets_by_build,
)

from repro.baselines.antifreeze import AntifreezeIndex
from repro.baselines.graphdb import RedisGraphLike
from repro.bench.harness import Measurement, measure, time_call
from repro.bench.reporting import ascii_table, banner

SYSTEMS = ("TACO", "NoComp", "RedisGraph", "Antifreeze")
MODIFY_CELLS = 1000


def measure_modifications() -> dict[str, list]:
    results: dict[str, list] = {}
    for corpus in CORPORA:
        for rank, sheet in enumerate(hardest_sheets_by_build(corpus), start=1):
            victim = sheet.modify_range(MODIFY_CELLS)
            row = [f"{corpus} max{rank}"]
            taco = sheet.fresh_taco()
            row.append(Measurement(time_call(lambda: taco.clear_cells(victim))[0], False).render())
            nocomp = sheet.fresh_nocomp()
            row.append(Measurement(time_call(lambda: nocomp.clear_cells(victim))[0], False).render())
            row.append(_external_modify(RedisGraphLike(), sheet, victim).render())
            row.append(_external_modify(AntifreezeIndex(), sheet, victim).render())
            results.setdefault(corpus, []).append(row)
    return results


def _external_modify(graph, sheet, victim) -> Measurement:
    build = measure(
        lambda budget: graph.build(sheet.deps(), budget),
        budget_seconds=BUILD_BUDGET_S,
        operation="external build",
    )
    if build.dnf:
        return Measurement(build.seconds, True, None, "build DNF")
    return measure(
        lambda budget: graph.clear_cells(victim, budget),
        budget_seconds=MODIFY_BUDGET_S,
        operation="external modify",
    )


def test_fig15_modify_latency(benchmark):
    data = benchmark.pedantic(measure_modifications, rounds=1, iterations=1)
    lines = [banner(
        "Fig. 15 — graph modification latency (top-10 hardest sheets)",
        f"clear {MODIFY_CELLS} formula cells; X marks a DNF",
    )]
    for corpus in CORPORA:
        lines.append(f"\n[{corpus}]")
        lines.append(ascii_table(["sheet"] + list(SYSTEMS), data[corpus]))
    lines.append(
        "\nPaper reference (Fig. 15): TACO and NoComp in single-digit\n"
        "milliseconds; Antifreeze rebuilds from scratch on every change\n"
        "(mostly DNF); RedisGraph pays per-cell deletions."
    )
    emit("fig15_modify_baselines", "\n".join(lines))
