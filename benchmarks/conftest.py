"""Benchmark-suite configuration.

Makes the shared helpers importable and keeps corpus state cached across
benchmark modules (pytest runs them in one process).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
