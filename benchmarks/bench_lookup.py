"""Lookaside lookup indexes: hash/binary-search probes vs linear scans.

The lookup layer (``repro.engine.lookup``) claims the indexed probes are
*bit-identical* to the reference scans they replace and *asymptotically
cheaper*: an exact-match ``VLOOKUP`` over an M-row table drops from
O(M) per query to one O(M log M) build amortised over every query plus
O(1) hash probes, and approximate ``MATCH`` drops to O(log M) binary
searches.  This benchmark measures both claims on the workload the
index targets: ``REPRO_LOOKUP_QUERIES`` exact-match VLOOKUPs (default
2,000) plus a smaller approximate-MATCH column, all probing one
``REPRO_LOOKUP_ROWS``-row unsorted key column (default 10,000).

Protocol: two independently built corpora, one engine per arm (indexed
on / ``lookup_indexes=False``).  Each arm takes one untimed warm pass
(template memos; the indexed arm's first build), then the key column is
touched so the indexed arm's timed pass pays a full cold rebuild *plus*
the probes — the honest edit-then-recalc cost, not just steady state.
The differential asserts — bit-identical values, probes actually fired
on one arm and never on the other — always run.  The **>= 10x** speedup
gate is asserted whenever the table has at least ``GATE_MIN_ROWS`` rows
(scaled-down smoke runs below that still record the measured ratio and
skip the gate with a clear message).

Artifacts: ASCII table + ``benchmarks/results/lookup_index.json``.
"""

import json
import os
import random
import time

import pytest
from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.engine.recalc import RecalcEngine
from repro.grid.range import Range
from repro.sheet.autofill import fill_formula_column
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_LOOKUP_ROWS", "10000"))
QUERIES = int(os.environ.get("REPRO_LOOKUP_QUERIES", "2000"))

SPEEDUP_GATE = 10.0
GATE_MIN_ROWS = 5000  # below this the scans are too cheap to gate honestly


def build_corpus() -> tuple[Sheet, list[Range]]:
    """An M-row unsorted key/payload table probed by two formula columns:
    E = exact-match VLOOKUP (hash probes), F = approximate MATCH (binary
    search on the sorted index).  Every needle hits a real key so the
    arms disagree loudly if a probe goes wrong."""
    rng = random.Random(7)
    keys = [float(k) for k in rng.sample(range(10 * ROWS), ROWS)]
    sheet = Sheet("lookup", store="columnar")
    for r, key in enumerate(keys, start=1):
        sheet.set_value((1, r), key)             # A: shuffled keys
        sheet.set_value((2, r), key * 3.0 + 1.0)  # B: payloads
    for r in range(1, QUERIES + 1):
        sheet.set_value((4, r), keys[(r * 17) % ROWS])   # D: needles
    fill_formula_column(sheet, 5, 1, QUERIES,
                        f"=VLOOKUP(D1,$A$1:$B${ROWS},2,FALSE)")
    approx = max(1, QUERIES // 8)
    fill_formula_column(sheet, 6, 1, approx,
                        f"=MATCH(D1,$A$1:$A${ROWS},1)")
    return sheet, [Range(5, 1, 5, QUERIES), Range(6, 1, 6, approx)]


def run_arm(indexed: bool) -> dict:
    sheet, ranges = build_corpus()
    graph = TacoGraph()
    graph.build(dependencies_column_major(sheet))
    engine = RecalcEngine(sheet, graph, lookup_indexes=indexed)
    engine.recalculate_all()  # warm: memos (+ the indexed arm's first build)

    # Touch the key column so the indexed arm's timed pass pays a full
    # cold rebuild on top of the probes (same-value write: values are
    # unchanged, but the column version bumps and the index goes stale).
    sheet.set_value((1, 1), sheet.get_value((1, 1)))

    stats = engine.eval_stats
    hits0, builds0 = stats.lookup_index_hits, stats.lookup_index_builds
    start = time.perf_counter()
    recomputed = engine.recompute(ranges)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "recomputed": recomputed,
        "hits": stats.lookup_index_hits - hits0,
        "builds": stats.lookup_index_builds - builds0,
        "values": {pos: sheet.get_value(pos) for pos in sheet.positions()},
    }


def test_lookup_index(benchmark):
    def run():
        scan = run_arm(indexed=False)
        indexed = run_arm(indexed=True)
        return {
            "rows": ROWS,
            "queries": QUERIES,
            "lookups": scan["recomputed"],
            "scan_seconds": scan["seconds"],
            "indexed_seconds": indexed["seconds"],
            "speedup": (scan["seconds"] / indexed["seconds"]
                        if indexed["seconds"] else float("inf")),
            "identical_values": indexed["values"] == scan["values"],
            "indexed_hits": indexed["hits"],
            "indexed_builds": indexed["builds"],
            "scan_hits": scan["hits"],
            "gate": SPEEDUP_GATE,
            "gate_min_rows": GATE_MIN_ROWS,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    gated = ROWS >= GATE_MIN_ROWS
    lines = [banner(
        "Lookaside lookup indexes: linear scans vs hash/binary-search probes",
        f"{results['lookups']:,} lookups over a {ROWS:,}-row unsorted table",
    )]
    lines.append(ascii_table(
        ["arm", "wall", "lookups", "index builds", "index hits"],
        [
            ["linear scan", format_ms(results["scan_seconds"]),
             f"{results['lookups']:,}", "-", "-"],
            ["indexed", format_ms(results["indexed_seconds"]),
             f"{results['lookups']:,}", str(results["indexed_builds"]),
             f"{results['indexed_hits']:,}"],
        ],
    ))
    lines.append(
        f"\nspeedup: {results['speedup']:.2f}x (gate >= {SPEEDUP_GATE:.1f}x, "
        + ("enforced"
           if gated else f"not enforced: {ROWS} < {GATE_MIN_ROWS} rows")
        + ", indexed arm pays one cold rebuild inside the timed region)"
    )
    lines.append(
        "differential: values "
        + ("bit-identical" if results["identical_values"] else "DIVERGED")
    )
    emit("lookup_index", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "lookup_index.json"), "w",
              encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    # Correctness is unconditional: identical values, the probes actually
    # served the indexed arm, and the scan arm never touched an index.
    assert results["identical_values"], "indexed values diverged from scans"
    assert results["indexed_hits"] >= QUERIES, "probes never engaged"
    assert results["indexed_builds"] >= 1, "cold rebuild did not happen"
    assert results["scan_hits"] == 0, "scan arm was secretly indexed"

    if not gated:
        pytest.skip(
            f"speedup gate requires >= {GATE_MIN_ROWS} table rows, ran {ROWS} "
            f"(measured {results['speedup']:.2f}x, artifact written)"
        )
    assert results["speedup"] >= SPEEDUP_GATE, (
        f"indexed speedup {results['speedup']:.2f}x "
        f"below gate {SPEEDUP_GATE:.1f}x"
    )
