"""Columnar value store vs dict-of-Cells: memory and recalc throughput.

The compressed formula graph is O(patterns), but the seed's sheet model
spent a boxed ``Cell`` (plus a dict entry and a boxed float) on every
cell — on dense corpora that per-cell object overhead dominated both
resident memory and recalculation time.  This benchmark quantifies what
the typed columnar store (:mod:`repro.sheet.columnar`) buys, two ways:

* **memory**: build the same dense value population on both stores and
  measure the allocation delta with ``tracemalloc``, cross-checked by a
  deterministic ``sys.getsizeof`` walk over each store's internals.
  Gate: the object store allocates **>= 5x** the columnar store's bytes
  per value cell.
* **throughput**: a broadcast-input edit (``$F$1``) dirties an entire
  ``=A1*$F$1+B1`` column; the columnar engine re-evaluates it as one
  numpy array sweep, the object store falls back to the compiled
  per-cell closure, the interpreter walks the tree per cell.  All three
  arms must end bit-identical; the sweep speedups are reported (and the
  sweep must actually dispatch when numpy is available).

Besides the ASCII artifact, the run writes machine-readable JSON to
``benchmarks/results/columnar_store.json`` (per-arm bytes, bytes/cell,
ratio, per-arm edit timings, speedups), like ``bench_snapshot_load.py``.
"""

import gc
import json
import os
import sys
import time
import tracemalloc

from _common import RESULTS_DIR, emit

from repro.bench.reporting import ascii_table, banner, format_ms
from repro.engine import vectorized
from repro.engine.recalc import RecalcEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.columnar import ColumnarStore
from repro.sheet.sheet import Sheet

ROWS = int(os.environ.get("REPRO_COLUMNAR_ROWS", "20000"))
VALUE_COLS = 4
EDIT_ROUNDS = 5

MEMORY_GATE = 5.0


# -- memory arm ----------------------------------------------------------------

def fill_values(sheet: Sheet, rows: int) -> int:
    for col in range(1, VALUE_COLS + 1):
        for r in range(1, rows + 1):
            sheet.set_value((col, r), float((r * 31 + col) % 1013) / 7.0)
    return VALUE_COLS * rows


def traced_build(store: str, rows: int) -> tuple[Sheet, int]:
    """Build the population and return (sheet, allocated bytes)."""
    gc.collect()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    sheet = Sheet("M", store=store)
    fill_values(sheet, rows)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return sheet, after - before


def sized_store_bytes(sheet: Sheet) -> int:
    """Deterministic ``getsizeof`` walk over the store's own structures
    (cross-check for the tracemalloc delta; excludes interpreter
    overheads like small-int caches either way)."""
    cells = sheet._cells
    if isinstance(cells, ColumnarStore):
        total = sys.getsizeof(cells._columns)
        for column in cells._columns.values():
            total += (sys.getsizeof(column) + sys.getsizeof(column.values)
                      + sys.getsizeof(column.tags) + sys.getsizeof(column.side))
        return total
    total = sys.getsizeof(cells)
    for pos, cell in cells.items():
        total += sys.getsizeof(pos) + sys.getsizeof(cell)
        total += sys.getsizeof(cell.value)
    return total


# -- throughput arm ------------------------------------------------------------

def build_formula_sheet(store: str, rows: int) -> Sheet:
    sheet = Sheet("T", store=store)
    for r in range(1, rows + 1):
        sheet.set_value((1, r), float((r * 37) % 101) / 3.0)
        sheet.set_value((2, r), float(r % 13) - 6.5)
    sheet.set_value((6, 1), 1.0)                       # $F$1 broadcast input
    fill_formula_column(sheet, 3, 1, rows, "=A1*$F$1+B1")
    return sheet


def time_broadcast_edits(engine: RecalcEngine) -> float:
    start = time.perf_counter()
    for i in range(EDIT_ROUNDS):
        engine.set_value((6, 1), 1.0 + float(i + 1) / 8.0)
    return time.perf_counter() - start


def test_columnar_store_memory_and_throughput(benchmark):
    def run():
        # Memory: same dense population, both stores.
        columnar_sheet, columnar_bytes = traced_build("columnar", ROWS)
        object_sheet, object_bytes = traced_build("object", ROWS)
        cells = VALUE_COLS * ROWS
        sized_columnar = sized_store_bytes(columnar_sheet)
        sized_object = sized_store_bytes(object_sheet)
        del columnar_sheet, object_sheet

        # Throughput: broadcast edit over an elementwise column.
        engines = {}
        for arm, (store, mode) in {
            "columnar-sweep": ("columnar", "auto"),
            "object-compiled": ("object", "auto"),
            "interpreter": ("columnar", "interpreter"),
        }.items():
            engine = RecalcEngine(build_formula_sheet(store, ROWS),
                                  evaluation=mode)
            engine.recalculate_all()
            engines[arm] = engine
        timings = {arm: time_broadcast_edits(engine)
                   for arm, engine in engines.items()}
        reference = engines["interpreter"].sheet
        for arm in ("columnar-sweep", "object-compiled"):
            subject = engines[arm].sheet
            for r in range(1, ROWS + 1):
                got, want = subject.get_value((3, r)), reference.get_value((3, r))
                assert got == want, (arm, r, got, want)
        swept = engines["columnar-sweep"].eval_stats.elementwise_cells
        if vectorized._np is not None:
            assert swept > 0, "sweep never dispatched despite numpy"

        return {
            "rows": ROWS,
            "value_cells": cells,
            "columnar_bytes": columnar_bytes,
            "object_bytes": object_bytes,
            "columnar_bytes_per_cell": columnar_bytes / cells,
            "object_bytes_per_cell": object_bytes / cells,
            "memory_ratio": object_bytes / columnar_bytes,
            "sized_columnar_bytes": sized_columnar,
            "sized_object_bytes": sized_object,
            "sized_ratio": sized_object / sized_columnar,
            "memory_gate": MEMORY_GATE,
            "edit_rounds": EDIT_ROUNDS,
            "numpy": vectorized._np is not None,
            "elementwise_cells": swept,
            "seconds": timings,
            "sweep_speedup_vs_compiled":
                timings["object-compiled"] / timings["columnar-sweep"],
            "sweep_speedup_vs_interpreter":
                timings["interpreter"] / timings["columnar-sweep"],
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(
        "Columnar value store vs dict-of-Cells",
        f"rows={ROWS} x {VALUE_COLS} value columns; "
        f"{EDIT_ROUNDS} broadcast edits over =A1*$F$1+B1",
    )]
    lines.append(ascii_table(
        ["store", "alloc bytes", "bytes/cell", "getsizeof bytes"],
        [
            ["columnar", f"{results['columnar_bytes']:,}",
             f"{results['columnar_bytes_per_cell']:.1f}",
             f"{results['sized_columnar_bytes']:,}"],
            ["object", f"{results['object_bytes']:,}",
             f"{results['object_bytes_per_cell']:.1f}",
             f"{results['sized_object_bytes']:,}"],
        ],
    ))
    lines.append(ascii_table(
        ["arm", "edit time", "speedup vs sweep"],
        [
            ["columnar-sweep", format_ms(results["seconds"]["columnar-sweep"]),
             "1.0x"],
            ["object-compiled", format_ms(results["seconds"]["object-compiled"]),
             f"{results['sweep_speedup_vs_compiled']:.1f}x"],
            ["interpreter", format_ms(results["seconds"]["interpreter"]),
             f"{results['sweep_speedup_vs_interpreter']:.1f}x"],
        ],
    ))
    passed = results["memory_ratio"] >= results["memory_gate"]
    verdict = (
        f"{'OK' if passed else 'REGRESSION'}: object store allocates "
        f"{results['memory_ratio']:.1f}x the columnar store's bytes "
        f"(gate {results['memory_gate']:.1f}x); elementwise sweep "
        f"{results['sweep_speedup_vs_compiled']:.1f}x vs compiled per-cell, "
        f"{results['sweep_speedup_vs_interpreter']:.1f}x vs interpreter"
    )
    lines.append("\n" + verdict)
    emit("columnar_store", "\n".join(lines))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "columnar_store.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    assert passed, verdict
