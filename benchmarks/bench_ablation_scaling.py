"""Ablation (Sec. IV-D) — complexity shape: TACO vs NoComp scaling.

Table I of the paper compares asymptotic costs.  This sweep grows one
Fig.-2-style sheet and measures build, query and modify time for both
systems: query time should stay near-flat for TACO (compressed graph
size is constant in the row count) while NoComp grows linearly.
"""

import random

from _common import emit

from repro.bench.harness import best_of, time_call
from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.taco_graph import TacoGraph, dependencies_column_major
from repro.datasets.regions import fig2_region
from repro.graphs.nocomp import NoCompGraph
from repro.grid.range import Range
from repro.sheet.sheet import Sheet

SIZES = (250, 500, 1000, 2000, 4000)


def build_sheet(rows: int) -> Sheet:
    sheet = Sheet(f"scale-{rows}")
    fig2_region(sheet, 1, 2, rows, random.Random(7))
    return sheet


def test_scaling_sweep(benchmark):
    def sweep():
        rows_out = []
        for rows in SIZES:
            sheet = build_sheet(rows)
            deps = dependencies_column_major(sheet)
            probe = Range.cell(2, 2)  # the amount column head (M-analogue)

            taco = TacoGraph.full()
            taco_build = time_call(lambda: taco.build(deps))[0]
            nocomp = NoCompGraph()
            nocomp_build = time_call(lambda: nocomp.build(deps))[0]
            taco_query = best_of(lambda: taco.find_dependents(probe), repeats=3).seconds
            nocomp_query = best_of(lambda: nocomp.find_dependents(probe), repeats=1).seconds
            rows_out.append([
                rows,
                len(deps),
                len(taco),
                format_ms(taco_build),
                format_ms(nocomp_build),
                format_ms(taco_query),
                format_ms(nocomp_query),
                f"{nocomp_query / max(taco_query, 1e-9):,.0f}x",
            ])
        return rows_out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [banner(
        "Ablation — scaling in sheet size (Fig. 2-style chain sheet)",
        "TACO query cost is flat in rows; NoComp grows linearly (Table I)",
    )]
    lines.append(ascii_table(
        [
            "rows", "deps", "TACO edges", "TACO build", "NoComp build",
            "TACO query", "NoComp query", "query speedup",
        ],
        rows,
    ))
    emit("ablation_scaling", "\n".join(lines))
