"""Fig. 1 — workload characterisation of the two corpora.

Regenerates the paper's probability distributions of, per spreadsheet,
the maximum number of dependents of any cell and the longest path in the
formula graph.  The paper buckets both quantities into
(0,100], (100,1000], (1000,10000], (10000,+); we report the same buckets
plus the raw extremes.
"""

from _common import CORPORA, corpus_sheets, emit

from repro.bench.reporting import ascii_table, banner

BUCKETS = [(0, 100), (100, 1_000), (1_000, 10_000), (10_000, float("inf"))]
BUCKET_LABELS = ["(0,100]", "(100,1K]", "(1K,10K]", "(10K,+)"]


def bucket_shares(values: list[int]) -> list[float]:
    shares = []
    for low, high in BUCKETS:
        count = sum(1 for v in values if low < v <= high)
        shares.append(count / len(values) if values else 0.0)
    return shares


def characterise(corpus: str) -> tuple[list[int], list[int]]:
    max_deps, longest = [], []
    for sheet in corpus_sheets(corpus):
        max_deps.append(sheet.max_dependents_probe()[1])
        longest.append(sheet.longest_path_probe()[1])
    return max_deps, longest


def test_fig01_distributions(benchmark):
    def compute():
        return {corpus: characterise(corpus) for corpus in CORPORA}

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [banner(
        "Fig. 1 — max dependents and longest path distributions",
        "probability mass per bucket; paper shape: heavy tails, Github heavier",
    )]
    rows = []
    for corpus in CORPORA:
        max_deps, longest = data[corpus]
        rows.append(
            [f"{corpus} max-dependents"]
            + [f"{share:.2f}" for share in bucket_shares(max_deps)]
            + [max(max_deps)]
        )
        rows.append(
            [f"{corpus} longest-path"]
            + [f"{share:.2f}" for share in bucket_shares(longest)]
            + [max(longest)]
        )
    lines.append(ascii_table(["metric"] + BUCKET_LABELS + ["max"], rows))
    lines.append(
        "\nPaper reference: dependents up to 300K and paths up to 200K edges\n"
        "on the unscaled corpora; the scaled corpora preserve the heavy-tail\n"
        "shape with Github > Enron in both tails."
    )
    emit("fig01_workload", "\n".join(lines))
