"""Fig. 14 — find-dependents latency vs Antifreeze and RedisGraph.

Same top-10 sheets as Fig. 13, querying the max-dependents cell.  Paper
shape: where Antifreeze finishes building, its O(1) lookup ties TACO;
RedisGraph is orders of magnitude slower (up to 19,555x) and DNFs on the
deep graphs.  Systems whose build DNF'd are marked X, as in the paper.
"""

from _common import BUILD_BUDGET_S, CORPORA, QUERY_BUDGET_S, emit, hardest_sheets_by_build

from repro.baselines.antifreeze import AntifreezeIndex
from repro.baselines.graphdb import RedisGraphLike
from repro.bench.harness import Measurement, best_of, measure
from repro.bench.reporting import ascii_table, banner

SYSTEMS = ("TACO", "NoComp", "RedisGraph", "Antifreeze")


def measure_queries() -> dict[str, list]:
    results: dict[str, list] = {}
    for corpus in CORPORA:
        for rank, sheet in enumerate(hardest_sheets_by_build(corpus), start=1):
            probe, count = sheet.max_dependents_probe()
            row = [f"{corpus} max{rank}", f"{count:,}"]
            taco = sheet.taco()
            row.append(best_of(lambda: taco.find_dependents(probe), repeats=3).render())
            nocomp = sheet.nocomp()
            row.append(
                measure(
                    lambda budget: nocomp.find_dependents(probe, budget),
                    budget_seconds=QUERY_BUDGET_S,
                    operation="NoComp query",
                ).render()
            )
            row.append(_external_query(RedisGraphLike(), sheet, probe).render())
            row.append(_external_query(AntifreezeIndex(), sheet, probe).render())
            results.setdefault(corpus, []).append(row)
    return results


def _external_query(graph, sheet, probe) -> Measurement:
    """Build an external system under its budget, then time the query.

    A build DNF propagates to the query, matching the paper's 'other
    numbers are not reported' handling.
    """
    build = measure(
        lambda budget: graph.build(sheet.deps(), budget),
        budget_seconds=BUILD_BUDGET_S,
        operation="external build",
    )
    if build.dnf:
        return Measurement(build.seconds, True, None, "build DNF")
    return measure(
        lambda budget: graph.find_dependents(probe, budget),
        budget_seconds=QUERY_BUDGET_S,
        operation="external query",
    )


def test_fig14_query_latency(benchmark):
    data = benchmark.pedantic(measure_queries, rounds=1, iterations=1)
    lines = [banner(
        "Fig. 14 — find-dependents latency (top-10 hardest sheets)",
        "X marks a DNF (of the query, or of the build it depends on)",
    )]
    for corpus in CORPORA:
        lines.append(f"\n[{corpus}]")
        lines.append(
            ascii_table(["sheet", "deps found"] + list(SYSTEMS), data[corpus])
        )
    lines.append(
        "\nPaper reference (Fig. 14): TACO == Antifreeze where Antifreeze\n"
        "finished building; TACO up to 19,555x faster than RedisGraph."
    )
    emit("fig14_query_baselines", "\n".join(lines))
