"""Ablation (Sec. IV-A) — exact CEM vs greedy compression.

The paper proves CEM NP-hard and reports that exhaustive partitioning
cannot finish within 30 minutes at 96 edges.  This ablation (a) measures
the wall-clock growth of the exact solver on small inputs and (b) checks
how close the greedy algorithm's edge counts get to the optimum.
"""

import random

from _common import emit

from repro.bench.harness import time_call
from repro.bench.reporting import ascii_table, banner, format_ms
from repro.core.optimal import optimal_edge_count
from repro.core.taco_graph import TacoGraph
from repro.grid.range import Range
from repro.sheet.sheet import Dependency


def random_dependencies(n: int, seed: int) -> list[Dependency]:
    """A tiny messy sheet: several short runs plus one-off formulae."""
    rng = random.Random(seed)
    deps: list[Dependency] = []
    col = 3
    remaining = n
    while remaining > 0:
        run = min(remaining, rng.randint(1, 4))
        start = rng.randint(1, 6)
        kind = rng.choice(["rr", "ff", "chain"])
        for i in range(run):
            row = start + i
            if kind == "rr":
                prec = Range(1, row, 2, row + 1)
            elif kind == "ff":
                prec = Range(1, 1, 2, 3)
            else:
                prec = Range(col, row - 1, col, row - 1) if row > 1 else Range(1, 1, 1, 1)
            deps.append(Dependency(prec, Range.cell(col, row)))
        col += 2
        remaining -= run
    return deps


def test_exact_solver_growth(benchmark):
    def sweep():
        rows = []
        for n in (6, 8, 10, 12, 14, 16):
            deps = random_dependencies(n, seed=n)
            seconds, result = time_call(lambda: optimal_edge_count(deps))
            rows.append([n, result.edge_count, format_ms(seconds)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [banner(
        "Ablation — exact CEM solver runtime growth (NP-hard)",
        "paper: brute-force partitioning DNFs at 96 edges after 30 min",
    )]
    lines.append(ascii_table(["deps", "optimal edges", "solve time"], rows))
    emit("ablation_optimal_growth", "\n".join(lines))


def test_greedy_vs_optimal_quality(benchmark):
    def compare():
        total_greedy = total_optimal = 0
        worst = 0.0
        for seed in range(20):
            deps = random_dependencies(12, seed=100 + seed)
            greedy = TacoGraph.full()
            for dep in deps:
                greedy.add_dependency(dep)
            optimal = optimal_edge_count(deps).edge_count
            total_greedy += len(greedy)
            total_optimal += optimal
            worst = max(worst, len(greedy) / optimal)
        return total_greedy, total_optimal, worst

    greedy, optimal, worst = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [banner("Ablation — greedy compression quality vs exact optimum")]
    lines.append(
        ascii_table(
            ["metric", "value"],
            [
                ["total greedy edges (20 trials)", greedy],
                ["total optimal edges", optimal],
                ["aggregate ratio", f"{greedy / optimal:.3f}"],
                ["worst single ratio", f"{worst:.3f}"],
            ],
        )
    )
    lines.append(
        "\nThe greedy insertion order can split a run that the optimum\n"
        "keeps whole, but stays within a few percent of optimal on these\n"
        "autofill-like workloads — consistent with the paper's choice of a\n"
        "greedy algorithm over exact (NP-hard) minimisation."
    )
    emit("ablation_greedy_quality", "\n".join(lines))
