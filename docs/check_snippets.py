"""Execute every Python snippet in README.md and docs/*.md.

CI runs this so the documentation cannot drift from the code: each
fenced ```python block is executed, with blocks from the same file
sharing one namespace (so a page reads like a console session).
Blocks fenced as ```python no-run are skipped, as are non-Python
fences (console, text, ...) and indented/quoted pseudo-code.

Usage:  PYTHONPATH=src python docs/check_snippets.py [files...]
"""

from __future__ import annotations

import os
import re
import sys

DOCS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(DOCS_DIR)

FENCE = re.compile(r"^```(\S*)[ \t]*([^\n]*)$")


def extract_blocks(path: str) -> list[tuple[int, str]]:
    """(start_line, source) for every runnable python block in ``path``."""
    blocks: list[tuple[int, str]] = []
    lang = None
    info = ""
    buf: list[str] = []
    start = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.rstrip("\n")
            match = FENCE.match(stripped.strip())
            if match and lang is None:
                lang, info = match.group(1).lower(), match.group(2)
                buf, start = [], lineno + 1
                continue
            if stripped.strip() == "```" and lang is not None:
                if lang == "python" and "no-run" not in info:
                    blocks.append((start, "\n".join(buf)))
                lang = None
                continue
            if lang is not None:
                buf.append(line.rstrip("\n"))
    return blocks


def run_file(path: str) -> int:
    blocks = extract_blocks(path)
    rel = os.path.relpath(path, REPO_ROOT)
    if not blocks:
        print(f"  {rel}: no runnable python blocks")
        return 0
    namespace: dict = {"__name__": "__docs__"}
    failures = 0
    for start, source in blocks:
        try:
            code = compile(source, f"{rel}:{start}", "exec")
            exec(code, namespace)  # noqa: S102 - that is the point
        except Exception as err:  # pragma: no cover - failure reporting
            failures += 1
            print(f"FAIL {rel}:{start}: {type(err).__name__}: {err}")
            for i, line in enumerate(source.splitlines(), start=start):
                print(f"    {i:4d} | {line}")
    status = "ok" if not failures else f"{failures} FAILED"
    print(f"  {rel}: {len(blocks)} blocks, {status}")
    return failures


def main(argv: list[str]) -> int:
    if argv:
        targets = argv
    else:
        targets = [os.path.join(REPO_ROOT, "README.md")] + sorted(
            os.path.join(DOCS_DIR, name)
            for name in os.listdir(DOCS_DIR)
            if name.endswith(".md")
        )
    print("checking documentation snippets:")
    failures = sum(run_file(path) for path in targets)
    if failures:
        print(f"{failures} snippet(s) failed")
        return 1
    print("all documentation snippets ran cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
