"""Exact Compressed-Edge-Minimisation (CEM) for tiny inputs.

The paper proves CEM NP-hard (Theorem 1, by reduction from rectilinear
picture compression) and reports that enumerating partitions "cannot
finish within 30 mins for a spreadsheet with 96 edges".  This module
provides an exact solver for small dependency sets so the ablation
benchmark can (a) measure how greedy compares with the optimum and (b)
exhibit the exponential wall-clock growth of exact search.

The solver enumerates every *valid block* — a subset of dependencies
compressible into one edge by one pattern, which for the basic patterns
means a contiguous run of dependent cells — and then runs a minimum
set-partition DP over bitmasks.
"""

from __future__ import annotations

import time

from ..graphs.base import Budget
from ..sheet.sheet import Dependency
from .patterns.base import CompressedEdge, Pattern
from .patterns.registry import default_patterns
from .patterns.single import SINGLE

__all__ = ["optimal_edge_count", "enumerate_valid_blocks", "OptimalResult"]

MAX_EXACT_DEPS = 24


class OptimalResult:
    """Outcome of the exact solver."""

    __slots__ = ("edge_count", "blocks", "elapsed_seconds")

    def __init__(self, edge_count: int, blocks: list[frozenset[int]], elapsed_seconds: float):
        self.edge_count = edge_count
        self.blocks = blocks
        self.elapsed_seconds = elapsed_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptimalResult(edges={self.edge_count}, blocks={len(self.blocks)})"


def enumerate_valid_blocks(
    deps: list[Dependency],
    patterns: list[Pattern] | None = None,
    budget: Budget | None = None,
) -> dict[frozenset[int], None]:
    """All dependency subsets compressible into a single edge.

    Performs a BFS over partial runs: each state is the set of member
    indices together with the (pattern, edge) interpretations that remain
    viable; a run grows by absorbing any dependency that a viable
    interpretation's ``addDep`` accepts.
    """
    if patterns is None:
        patterns = default_patterns()
    blocks: dict[frozenset[int], None] = {}
    n = len(deps)
    # Start states: every singleton is a valid (Single) block.
    frontier: list[tuple[frozenset[int], list[CompressedEdge]]] = []
    for i, dep in enumerate(deps):
        members = frozenset([i])
        blocks[members] = None
        single = CompressedEdge(dep.prec, dep.dep, SINGLE, None)
        frontier.append((members, [single]))

    seen: set[frozenset[int]] = set(blocks)
    while frontier:
        members, states = frontier.pop()
        for j in range(n):
            if j in members:
                continue
            if budget is not None:
                budget.check()
            dep = deps[j]
            next_states: list[CompressedEdge] = []
            for state in states:
                if state.pattern is SINGLE:
                    for pattern in patterns:
                        merged = pattern.try_pair(state, dep)
                        if merged is not None:
                            next_states.append(merged)
                else:
                    merged = state.pattern.try_merge(state, dep)
                    if merged is not None:
                        next_states.append(merged)
            if not next_states:
                continue
            new_members = members | {j}
            blocks[new_members] = None
            if new_members not in seen:
                seen.add(new_members)
                frontier.append((new_members, next_states))
    return blocks


def optimal_edge_count(
    deps: list[Dependency],
    patterns: list[Pattern] | None = None,
    budget: Budget | None = None,
) -> OptimalResult:
    """Minimum number of compressed edges over all valid partitions."""
    if len(deps) > MAX_EXACT_DEPS:
        raise ValueError(
            f"exact CEM is limited to {MAX_EXACT_DEPS} dependencies "
            f"(got {len(deps)}); the problem is NP-hard"
        )
    start = time.perf_counter()
    blocks = list(enumerate_valid_blocks(deps, patterns, budget))
    n = len(deps)
    full_mask = (1 << n) - 1
    block_masks = [sum(1 << i for i in block) for block in blocks]
    # Group blocks by their lowest set bit for the set-partition DP.
    by_lowest: dict[int, list[int]] = {}
    for mask in block_masks:
        lowest = (mask & -mask).bit_length() - 1
        by_lowest.setdefault(lowest, []).append(mask)

    best: dict[int, int] = {0: 0}
    choice: dict[int, int] = {}
    # Process states in increasing popcount order so predecessors exist.
    states = [0]
    index = 0
    while index < len(states):
        covered = states[index]
        index += 1
        if covered == full_mask:
            continue
        if budget is not None:
            budget.check()
        # The lowest uncovered dependency must belong to the next block.
        uncovered = (~covered) & full_mask
        lowest = (uncovered & -uncovered).bit_length() - 1
        base_cost = best[covered]
        for mask in by_lowest.get(lowest, ()):
            if mask & covered:
                continue
            nxt = covered | mask
            cost = base_cost + 1
            if nxt not in best or cost < best[nxt]:
                if nxt not in best:
                    states.append(nxt)
                best[nxt] = cost
                choice[nxt] = mask

    if full_mask not in best:  # pragma: no cover - singletons always cover
        raise RuntimeError("no valid partition found")

    # Reconstruct the chosen blocks.
    chosen: list[frozenset[int]] = []
    covered = full_mask
    while covered:
        mask = choice[covered]
        chosen.append(frozenset(i for i in range(n) if mask & (1 << i)))
        covered &= ~mask
    elapsed = time.perf_counter() - start
    return OptimalResult(best[full_mask], chosen, elapsed)
