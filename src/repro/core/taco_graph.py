"""The TACO compressed formula graph.

Storage follows the paper's prototype (Sec. VI-A): compressed edges in an
adjacency structure with a spatial index over the vertices so that the
edges whose precedent (or dependent) overlaps an input range are found
quickly.  The index backend is pluggable (``index="rtree"`` by default;
see :mod:`repro.spatial`).  ``TacoGraph.full()`` is TACO-Full (all
predefined patterns); ``TacoGraph.inrow()`` is the TACO-InRow variant of
Sec. VI-B.

Maintenance invariants (paper Sec. IV-C):

* ``_edges`` is always the true compressed edge set; outside deferred
  mode both vertex indexes contain exactly one entry per edge per side.
* In deferred mode (:meth:`TacoGraph.begin_deferred_maintenance`, used
  by batch commits) the indexes may hold stale entries for removed
  edges; every lookup filters them, and
  :meth:`TacoGraph.end_deferred_maintenance` restores the exact-match
  invariant by replaying the queued deletes or bulk-repacking.
* :meth:`TacoGraph.decompress` always reconstructs the exact raw
  dependency set — compression and maintenance are lossless.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from ..graphs.base import Budget, FormulaGraph, GraphStats
from ..grid.range import Range
from ..sheet.sheet import Dependency, Sheet
from ..spatial.registry import IndexFactory, make_index
from . import compress, maintain, query
from .patterns.base import CompressedEdge, Pattern
from .patterns.registry import default_patterns, inrow_patterns
from .patterns.single import SINGLE

__all__ = ["TacoGraph", "build_from_sheet", "dependencies_column_major"]


class TacoGraph(FormulaGraph):
    """Compressed formula graph with pattern-based edges."""

    name = "TACO"

    def __init__(
        self,
        patterns: list[Pattern] | None = None,
        use_cues: bool = True,
        prefer_column: bool = True,
        index: IndexFactory = "rtree",
    ):
        self.patterns = default_patterns() if patterns is None else list(patterns)
        self.use_cues = use_cues
        self.prefer_column = prefer_column
        self._reach = max((p.reach for p in self.patterns), default=1)
        # Selection-heuristic rank of each pattern, fixed at construction
        # so edge insertion does not rebuild it per dependency.
        self.pattern_priority = {p.name: i for i, p in enumerate(self.patterns)}
        self._edges: set[CompressedEdge] = set()
        self.index_spec = index
        self._prec_index = make_index(index)
        self._dep_index = make_index(index)
        self.query_stats = GraphStats()
        # Deferred-maintenance state (see begin_deferred_maintenance).
        self._deferred = False
        self._pending_index_deletes: list[CompressedEdge] = []

    # -- variants ---------------------------------------------------------------

    @classmethod
    def full(cls, **kwargs) -> "TacoGraph":
        return cls(patterns=default_patterns(), **kwargs)

    @classmethod
    def inrow(cls, **kwargs) -> "TacoGraph":
        graph = cls(patterns=inrow_patterns(), **kwargs)
        graph.name = "TACO-InRow"
        return graph

    # -- edge storage -----------------------------------------------------------

    def add_edge_raw(self, edge: CompressedEdge) -> None:
        """Insert an edge without attempting any compression.

        Two backend inserts — ``O(log n)`` on the R-Tree, ``O(area)`` on
        the grid buckets.  Inserts are applied eagerly even in deferred
        mode, because the compression probes of Algorithm 2 must see an
        edge as soon as it exists.
        """
        self._edges.add(edge)
        self._prec_index.insert(edge.prec, edge)
        self._dep_index.insert(edge.dep, edge)

    def remove_edge(self, edge: CompressedEdge) -> None:
        """Drop an edge from the graph (and, eventually, its indexes).

        In deferred-maintenance mode the backend deletes — the expensive
        half of maintenance (R-Tree condense can cascade re-inserts) —
        are queued; the edge leaves ``_edges`` immediately, and lookups
        filter the stale index entries until
        :meth:`end_deferred_maintenance` settles the indexes.
        """
        self._edges.remove(edge)
        if self._deferred:
            self._pending_index_deletes.append(edge)
            return
        self._prec_index.delete(edge.prec, edge)
        self._dep_index.delete(edge.dep, edge)

    def edges(self) -> Iterator[CompressedEdge]:
        return iter(self._edges)

    def rebuild_indexes(self) -> None:
        """Repack both vertex indexes from the final edge set.

        Incremental construction leaves the indexes shaped by insertion
        order (and, for the R-Tree, loosely packed); a bulk load over the
        settled edges produces the tightest layout the backend supports,
        which pays off across the subsequent query workload.
        """
        self._prec_index.bulk_load((edge.prec, edge) for edge in self._edges)
        self._dep_index.bulk_load((edge.dep, edge) for edge in self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    # -- deferred maintenance -----------------------------------------------------

    def begin_deferred_maintenance(self) -> None:
        """Enter deferred mode: queue index deletes instead of applying them.

        Invariants while deferred: ``_edges`` is always the true edge
        set; the vertex indexes are a *superset* of it (stale entries for
        removed edges remain), so every lookup filters hits through an
        ``O(1)`` membership check.  Net effect: a commit touching ``k``
        edges pays ``k`` set-removals now and either ``k`` backend
        deletes or one bulk repack later — never both, and never the
        R-Tree's per-delete condense cascades.
        """
        if self._deferred:
            raise RuntimeError("deferred maintenance is already active")
        self._deferred = True

    def end_deferred_maintenance(
        self, repack_fraction: float = 0.25, repack_min: int = 64
    ) -> bool:
        """Leave deferred mode and settle the vertex indexes.

        When the queued deletes amount to a large share of the graph
        (``>= repack_fraction`` of the live edges, and at least
        ``repack_min``), both indexes are rebuilt from the live edge set
        in one bulk load — STR packing on the R-Tree — which is ``O(n
        log n)`` total instead of ``O(k log n)`` scattered deletes and
        leaves the tightest layout the backend supports.  Otherwise the
        queued deletes are replayed individually.  Returns ``True`` when
        the bulk repack path ran.
        """
        if not self._deferred:
            raise RuntimeError("deferred maintenance is not active")
        self._deferred = False
        pending, self._pending_index_deletes = self._pending_index_deletes, []
        if not pending:
            return False
        threshold = max(repack_min, repack_fraction * max(len(self._edges), 1))
        if len(pending) >= threshold:
            self.rebuild_indexes()
            return True
        for edge in pending:
            self._prec_index.delete(edge.prec, edge)
            self._dep_index.delete(edge.dep, edge)
        return False

    # -- index lookups ------------------------------------------------------------

    def prec_overlapping(self, rng: Range) -> list[CompressedEdge]:
        """Edges whose precedent range overlaps ``rng`` (one index search)."""
        entries = self._prec_index.search(rng)
        if self._deferred:
            return [e.payload for e in entries if e.payload in self._edges]
        return [entry.payload for entry in entries]

    def dep_overlapping(self, rng: Range) -> list[CompressedEdge]:
        """Edges whose dependent range overlaps ``rng`` (one index search)."""
        entries = self._dep_index.search(rng)
        if self._deferred:
            return [e.payload for e in entries if e.payload in self._edges]
        return [entry.payload for entry in entries]

    def dependent_column_runs(self, rng: Range) -> list[Range]:
        """Dependent ranges of compressed edges that are vertical runs.

        One index search.  The returned 1-wide, multi-row ranges are the
        autofill families the compression discovered (RR/FR/... edges
        whose dependents stack down a column); the evaluation layer uses
        them as candidate spans for windowed-aggregate runs
        (:mod:`repro.engine.vectorized`) instead of re-deriving the
        grouping from raw cells.
        """
        out: list[Range] = []
        seen: set[Range] = set()
        for edge in self.dep_overlapping(rng):
            dep = edge.dep
            if dep.c1 == dep.c2 and dep.r2 > dep.r1 and dep not in seen:
                seen.add(dep)
                out.append(dep)
        out.sort()
        return out

    def candidate_edges(self, cell: tuple[int, int]) -> list[CompressedEdge]:
        """Edges whose dependent is adjacent to ``cell`` on a row/column axis.

        Implemented as the paper describes: probe the vertex index around
        the cell (one expanded search instead of four shifted point
        searches) and keep the edges containing an axis-neighbour.
        """
        col, row = cell
        probe = Range.cell(col, row).expand(self._reach)
        neighbours = [
            pos
            for distance in range(1, self._reach + 1)
            for pos in (
                (col, row - distance),
                (col, row + distance),
                (col - distance, row),
                (col + distance, row),
            )
        ]
        out: list[CompressedEdge] = []
        seen: set[int] = set()
        deferred = self._deferred
        for entry in self._dep_index.search(probe):
            dep_range = entry.key
            if id(entry.payload) in seen:
                continue
            if deferred and entry.payload not in self._edges:
                continue
            for ncol, nrow in neighbours:
                if ncol >= 1 and nrow >= 1 and dep_range.contains_cell(ncol, nrow):
                    seen.add(id(entry.payload))
                    out.append(entry.payload)
                    break
        return out

    # -- FormulaGraph interface ----------------------------------------------------

    def add_dependency(self, dep: Dependency, budget: Budget | None = None) -> None:
        """Compress one dependency into the graph (paper Algorithm 2).

        One bounded index probe around the formula cell plus a
        constant number of pattern fit checks per candidate —
        ``O(S + C)`` for search cost ``S`` and ``C`` candidates, never
        proportional to the size of the ranges involved.
        """
        compress.insert_dependency(self, dep)

    def find_dependents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        """Transitive dependents of ``rng`` by BFS on compressed edges
        (paper Algorithm 3); cost tracks compressed edges reached, not
        raw dependencies."""
        return query.find_dependents(self, rng, budget)

    def find_dependents_multi(
        self, seeds: Iterable[Range], budget: Budget | None = None
    ) -> list[Range]:
        """Dependents of all ``seeds`` in one shared BFS (see query module)."""
        return query.find_dependents_multi(self, seeds, budget)

    def find_precedents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        """Transitive precedents of ``rng`` — the symmetric dual of
        :meth:`find_dependents` over the dependent-side index."""
        return query.find_precedents(self, rng, budget)

    def clear_cells(self, rng: Range, budget: Budget | None = None) -> int:
        """Remove the dependencies of the formula cells in ``rng``;
        returns the number of compressed edges removed or replaced
        (see :func:`repro.core.maintain.clear_cells` for the cost)."""
        return maintain.clear_cells(self, rng, budget)

    # -- statistics -----------------------------------------------------------------

    def vertices(self) -> set[Range]:
        """The vertex set induced from the compressed edge set."""
        out: set[Range] = set()
        for edge in self._edges:
            out.add(edge.prec)
            out.add(edge.dep)
        return out

    def raw_edge_count(self) -> int:
        """Number of uncompressed dependencies the graph represents."""
        return sum(edge.member_count for edge in self._edges)

    def stats(self) -> GraphStats:
        stats = GraphStats(
            vertices=len(self.vertices()),
            edges=len(self._edges),
            edge_accesses=self.query_stats.edge_accesses,
            index_searches=self._prec_index.search_ops + self._dep_index.search_ops,
        )
        return stats

    def pattern_breakdown(self) -> dict[str, dict[str, int]]:
        """Per-pattern edge counts and edges-reduced (paper Table V).

        The number of edges reduced by a pattern is
        ``sum(|E'_i| - 1)`` over the compressed edges with that pattern.
        """
        edge_count: Counter[str] = Counter()
        reduced: Counter[str] = Counter()
        members: Counter[str] = Counter()
        for edge in self._edges:
            name = edge.pattern.name
            edge_count[name] += 1
            count = edge.member_count
            members[name] += count
            reduced[name] += count - 1
        return {
            name: {
                "edges": edge_count[name],
                "members": members[name],
                "reduced": reduced[name],
            }
            for name in edge_count
        }

    def decompress(self) -> list[Dependency]:
        """Reconstruct every raw dependency (lossless-ness check)."""
        out: list[Dependency] = []
        for edge in self._edges:
            out.extend(edge.pattern.member_dependencies(edge))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        singles = sum(1 for e in self._edges if e.pattern is SINGLE)
        return (
            f"TacoGraph(edges={len(self._edges)}, singles={singles}, "
            f"raw={self.raw_edge_count()})"
        )


def dependencies_column_major(sheet: Sheet) -> list[Dependency]:
    """The sheet's dependency stream in column-major dependent order.

    The paper configures POI to load spreadsheets by columns (Sec. VI-A);
    feeding dependents column-by-column maximises the chance that each
    dependency finds its already-inserted neighbour.  The sort is stable,
    so the multiple references of one formula keep their formula order.
    """
    return sorted(sheet.iter_dependencies(), key=lambda d: (d.dep.c1, d.dep.r1))


def build_from_sheet(
    sheet: Sheet,
    graph: FormulaGraph | None = None,
    budget: Budget | None = None,
    index: IndexFactory | None = None,
) -> FormulaGraph:
    """Build a formula graph (TACO-Full by default) from a sheet.

    After the column-major incremental build, graphs that support it get
    their vertex indexes bulk-repacked (STR for the R-Tree), replacing
    the one-vertex-at-a-time layout with a packed one.
    """
    if graph is None:
        graph = TacoGraph.full() if index is None else TacoGraph.full(index=index)
    graph.build(dependencies_column_major(sheet), budget)
    rebuild = getattr(graph, "rebuild_indexes", None)
    if rebuild is not None:
        rebuild()
    return graph
