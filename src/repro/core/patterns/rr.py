"""RR (Relative plus Relative): the sliding-window pattern.

Every dependent cell has the same relative offsets (hRel, tRel) to the
head and tail of its referenced range (paper Fig. 4a, Algorithm 1).  The
meta is the pair ``(hRel, tRel)``.

The ``in_row_only`` flag restricts the pattern to TACO-InRow semantics
(Sec. VI-B): only column runs of formulae whose referenced range lies in
the formula's own row — the "derived column" case — are compressed.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import (
    COLUMN_AXIS,
    CompressedEdge,
    Pattern,
    clamp_to,
    extension_axis,
    rel_offsets,
)
from .single import SINGLE

__all__ = ["RRPattern", "RR", "RR_INROW"]


class RRPattern(Pattern):
    cue = "RR"

    def __init__(self, in_row_only: bool = False):
        self.in_row_only = in_row_only
        self.name = "RR-InRow" if in_row_only else "RR"

    # -- compression ---------------------------------------------------------

    def _admits(self, rel: tuple[tuple[int, int], tuple[int, int]], axis: str) -> bool:
        if not self.in_row_only:
            return True
        # TACO-InRow: column-wise runs referencing the formula's own row.
        (_, hq), (_, tq) = rel
        return axis == COLUMN_AXIS and hq == 0 and tq == 0

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        axis = extension_axis(edge.dep, dep.dep.head)
        if axis is None:
            return None
        rel_new = rel_offsets(dep.prec, dep.dep.head)
        rel_old = rel_offsets(edge.prec, edge.dep.head)
        if rel_new != rel_old or not self._admits(rel_new, axis):
            return None
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, rel_new
        )

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        axis = extension_axis(edge.dep, dep.dep.head)
        if axis is None:
            return None
        rel_new = rel_offsets(dep.prec, dep.dep.head)
        if rel_new != edge.meta or not self._admits(rel_new, axis):
            return None
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, edge.meta
        )

    # -- queries ---------------------------------------------------------------

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        """Back-calculate the dependent window (paper Fig. 6).

        A cell d is a dependent of r iff its window [d+hRel, d+tRel]
        overlaps r, i.e. ``r.head - tRel <= d <= r.tail - hRel``.
        """
        (hp, hq), (tp, tq) = edge.meta
        candidate = (r.c1 - tp, r.r1 - tq, r.c2 - hp, r.r2 - hq)
        result = clamp_to(candidate, edge.dep)
        return [result] if result is not None else []

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        """Union of the sliding windows of the cells in s."""
        (hp, hq), (tp, tq) = edge.meta
        return [Range(s.c1 + hp, s.r1 + hq, s.c2 + tp, s.r2 + tq)]

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        pieces = edge.dep.subtract(s)
        out: list[CompressedEdge] = []
        (hp, hq), (tp, tq) = edge.meta
        for piece in pieces:
            prec = Range(piece.c1 + hp, piece.r1 + hq, piece.c2 + tp, piece.r2 + tq)
            if piece.size == 1:
                out.append(CompressedEdge(prec, piece, SINGLE, None))
            else:
                out.append(CompressedEdge(prec, piece, self, edge.meta))
        return out


RR = RRPattern()
RR_INROW = RRPattern(in_row_only=True)
