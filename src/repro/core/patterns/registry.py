"""Pattern registries: which patterns each TACO variant compresses with.

The list order is the tie-break priority used by the compression
heuristics (special patterns first, then the basic four).
"""

from __future__ import annotations

from .base import Pattern
from .ff import FF
from .fr import FR
from .rf import RF
from .rr import RR, RR_INROW
from .rr_chain import RR_CHAIN
from .rr_gapone import RR_GAPONE
from .single import SINGLE

__all__ = [
    "default_patterns",
    "inrow_patterns",
    "extended_patterns",
    "pattern_by_name",
    "ALL_PATTERNS",
]

ALL_PATTERNS: dict[str, Pattern] = {
    pattern.name: pattern
    for pattern in (SINGLE, RR, RR_INROW, RF, FR, FF, RR_CHAIN, RR_GAPONE)
}


def default_patterns() -> list[Pattern]:
    """TACO-Full: the four basic patterns plus the RR-Chain extension."""
    return [RR_CHAIN, RR, RF, FR, FF]


def inrow_patterns() -> list[Pattern]:
    """TACO-InRow: column-wise RR restricted to same-row references."""
    return [RR_INROW]


def extended_patterns() -> list[Pattern]:
    """Default set plus RR-GapOne (Sec. V ablation only)."""
    return [RR_CHAIN, RR, RF, FR, FF, RR_GAPONE]


def pattern_by_name(name: str) -> Pattern:
    try:
        return ALL_PATTERNS[name]
    except KeyError:
        raise KeyError(f"unknown pattern {name!r}; known: {sorted(ALL_PATTERNS)}") from None
