"""TACO compression patterns."""

from .base import COLUMN_AXIS, ROW_AXIS, CompressedEdge, Pattern, rel_offsets
from .ff import FF, FFPattern
from .fr import FR, FRPattern
from .registry import (
    ALL_PATTERNS,
    default_patterns,
    extended_patterns,
    inrow_patterns,
    pattern_by_name,
)
from .rf import RF, RFPattern
from .rr import RR, RR_INROW, RRPattern
from .rr_chain import RR_CHAIN, RRChainPattern
from .rr_gapone import RR_GAPONE, RRGapOnePattern
from .single import SINGLE, SinglePattern

__all__ = [
    "ALL_PATTERNS",
    "COLUMN_AXIS",
    "CompressedEdge",
    "FF",
    "FFPattern",
    "FR",
    "FRPattern",
    "Pattern",
    "RF",
    "RFPattern",
    "ROW_AXIS",
    "RR",
    "RRChainPattern",
    "RRGapOnePattern",
    "RRPattern",
    "RR_CHAIN",
    "RR_GAPONE",
    "RR_INROW",
    "SINGLE",
    "SinglePattern",
    "default_patterns",
    "extended_patterns",
    "inrow_patterns",
    "pattern_by_name",
    "rel_offsets",
]
