"""FF (Fixed plus Fixed): the fixed-window pattern.

Every dependent references the same fixed range (paper Fig. 4d) — the
lookup-table / conversion-rate idiom.  Meta is ``(hFix, tFix)``, which
also equals the edge's precedent bounding range.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import CompressedEdge, Pattern, extension_axis
from .single import SINGLE

__all__ = ["FFPattern", "FF"]


class FFPattern(Pattern):
    name = "FF"
    cue = "FF"

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if extension_axis(edge.dep, dep.dep.head) is None:
            return None
        if dep.prec != edge.prec:
            return None
        meta = (edge.prec.head, edge.prec.tail)
        return CompressedEdge(edge.prec, edge.dep.bounding(dep.dep), self, meta)

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if extension_axis(edge.dep, dep.dep.head) is None:
            return None
        if dep.prec != edge.prec:
            return None
        return CompressedEdge(edge.prec, edge.dep.bounding(dep.dep), self, edge.meta)

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        # Every dependent references the full fixed range, so any r that
        # overlaps it makes all of them dependents.
        return [edge.dep]

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        return [edge.prec]

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        out: list[CompressedEdge] = []
        for piece in edge.dep.subtract(s):
            if piece.size == 1:
                out.append(CompressedEdge(edge.prec, piece, SINGLE, None))
            else:
                out.append(CompressedEdge(edge.prec, piece, self, edge.meta))
        return out

    def member_dependencies(self, edge: CompressedEdge):
        from ...sheet.sheet import Dependency as Dep

        return [Dep(edge.prec, Range.cell(col, row)) for col, row in edge.dep.cells()]


FF = FFPattern()
