"""RF (Relative plus Fixed): the shrinking-window pattern.

Each dependent cell references a range whose head is at a constant
relative offset (hRel) while the tail is one fixed cell (tFix) — paper
Fig. 4b.  As the formula cells advance, their windows shrink towards the
fixed tail.  Meta is ``(hRel, tFix)``.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import CompressedEdge, Pattern, clamp_to, extension_axis, rel_offsets
from .single import SINGLE

__all__ = ["RFPattern", "RF"]


class RFPattern(Pattern):
    name = "RF"
    cue = "RF"

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if extension_axis(edge.dep, dep.dep.head) is None:
            return None
        h_new, _ = rel_offsets(dep.prec, dep.dep.head)
        h_old, _ = rel_offsets(edge.prec, edge.dep.head)
        if h_new != h_old or dep.prec.tail != edge.prec.tail:
            return None
        meta = (h_new, edge.prec.tail)
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, meta
        )

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if extension_axis(edge.dep, dep.dep.head) is None:
            return None
        h_rel, t_fix = edge.meta
        h_new, _ = rel_offsets(dep.prec, dep.dep.head)
        if h_new != h_rel or dep.prec.tail != t_fix:
            return None
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, edge.meta
        )

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        """Paper Fig. 7: the head dependent sees everything; the window
        shrinks towards the tail, so d is a dependent iff
        ``d <= r.tail - hRel``."""
        (hp, hq), _ = edge.meta
        candidate = (edge.dep.c1, edge.dep.r1, r.c2 - hp, r.r2 - hq)
        result = clamp_to(candidate, edge.dep)
        return [result] if result is not None else []

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        """The precedent of s.head contains every other cell's precedent."""
        (hp, hq), (tc, tr) = edge.meta
        return [Range(s.c1 + hp, s.r1 + hq, tc, tr)]

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        (hp, hq), (tc, tr) = edge.meta
        out: list[CompressedEdge] = []
        for piece in edge.dep.subtract(s):
            prec = Range(piece.c1 + hp, piece.r1 + hq, tc, tr)
            if piece.size == 1:
                out.append(CompressedEdge(prec, piece, SINGLE, None))
            else:
                out.append(CompressedEdge(prec, piece, self, edge.meta))
        return out

    def member_dependencies(self, edge: CompressedEdge):
        from ...sheet.sheet import Dependency as Dep

        (hp, hq), (tc, tr) = edge.meta
        out = []
        for col, row in edge.dep.cells():
            out.append(Dep(Range(col + hp, row + hq, tc, tr), Range.cell(col, row)))
        return out


RF = RFPattern()
