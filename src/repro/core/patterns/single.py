"""The Single pattern: an uncompressed dependency.

Every dependency enters the graph as a Single edge; the framework then
tries to pair it with an adjacent edge under one of the real patterns.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import CompressedEdge, Pattern

__all__ = ["SinglePattern", "SINGLE"]


class SinglePattern(Pattern):
    name = "Single"
    cue = "RR"

    def make(self, dep: Dependency) -> CompressedEdge:
        return CompressedEdge(dep.prec, dep.dep, self, None)

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> None:
        # Two Singles never merge *as* Single; real patterns handle pairing.
        return None

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> None:
        return None

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        # The framework guarantees r overlaps edge.prec, so the (only)
        # dependent cell depends on r.
        return [edge.dep]

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        return [edge.prec]

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        # s covers the single dependent cell, removing the whole edge.
        return []

    def member_count(self, edge: CompressedEdge) -> int:
        return 1


SINGLE = SinglePattern()
