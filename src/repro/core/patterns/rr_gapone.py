"""RR-GapOne: the every-other-row extension pattern (paper Sec. V).

The paper sketches RR-GapOne as an example of patterns beyond the basic
set: the referenced ranges of the formula cells of *every other* row
follow the RR pattern.  The authors measured its prevalence and found it
far less common than RR, so TACO does not enable it by default; we
implement it for the Sec.-V ablation benchmark and keep it out of the
default registry, matching the paper.

Because its dependent set is non-contiguous, the dependent bounding range
over-approximates membership and ``find_dep``/``find_prec`` return one
range per member cell — an O(k) deviation from the O(1) contract of the
basic patterns, which is precisely why the paper leaves such patterns to
future work.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import COLUMN_AXIS, ROW_AXIS, CompressedEdge, Pattern, rel_offsets
from .single import SINGLE

__all__ = ["RRGapOnePattern", "RR_GAPONE"]


class RRGapOnePattern(Pattern):
    name = "RR-GapOne"
    cue = "RR"
    reach = 2

    # meta: (hRel, tRel, axis, phase) — phase is the parity of member
    # rows (column axis) or columns (row axis) within the bounding run.

    def _gap_extension(self, dep_range: Range, cell: tuple[int, int]) -> str | None:
        col, row = cell
        vertical = dep_range.width == 1 and col == dep_range.c1
        horizontal = dep_range.height == 1 and row == dep_range.r1
        if vertical and (row == dep_range.r1 - 2 or row == dep_range.r2 + 2):
            return COLUMN_AXIS
        if horizontal and (col == dep_range.c1 - 2 or col == dep_range.c2 + 2):
            return ROW_AXIS
        return None

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if not edge.dep.is_cell:
            return None
        axis = self._gap_extension(edge.dep, dep.dep.head)
        if axis is None:
            return None
        rel_new = rel_offsets(dep.prec, dep.dep.head)
        rel_old = rel_offsets(edge.prec, edge.dep.head)
        if rel_new != rel_old:
            return None
        new_dep = edge.dep.bounding(dep.dep)
        phase = (new_dep.r1 % 2) if axis == COLUMN_AXIS else (new_dep.c1 % 2)
        meta = (rel_new[0], rel_new[1], axis, phase)
        return CompressedEdge(edge.prec.bounding(dep.prec), new_dep, self, meta)

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        h_rel, t_rel, axis, phase = edge.meta
        if self._gap_extension(edge.dep, dep.dep.head) != axis:
            return None
        if rel_offsets(dep.prec, dep.dep.head) != (h_rel, t_rel):
            return None
        new_dep = edge.dep.bounding(dep.dep)
        new_phase = (new_dep.r1 % 2) if axis == COLUMN_AXIS else (new_dep.c1 % 2)
        meta = (h_rel, t_rel, axis, new_phase)
        return CompressedEdge(edge.prec.bounding(dep.prec), new_dep, self, meta)

    # -- membership ------------------------------------------------------------

    def member_cells(self, edge: CompressedEdge) -> list[tuple[int, int]]:
        h_rel, t_rel, axis, phase = edge.meta
        dep = edge.dep
        if axis == COLUMN_AXIS:
            return [(dep.c1, row) for row in range(dep.r1, dep.r2 + 1, 2)]
        return [(col, dep.r1) for col in range(dep.c1, dep.c2 + 1, 2)]

    def member_count(self, edge: CompressedEdge) -> int:
        h_rel, t_rel, axis, _ = edge.meta
        span = edge.dep.height if axis == COLUMN_AXIS else edge.dep.width
        return (span + 1) // 2

    # -- queries ---------------------------------------------------------------

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        (hp, hq), (tp, tq) = edge.meta[0], edge.meta[1]
        lo = (r.c1 - tp, r.r1 - tq)
        hi = (r.c2 - hp, r.r2 - hq)
        out: list[Range] = []
        for col, row in self.member_cells(edge):
            if lo[0] <= col <= hi[0] and lo[1] <= row <= hi[1]:
                out.append(Range.cell(col, row))
        return out

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        (hp, hq), (tp, tq) = edge.meta[0], edge.meta[1]
        out: list[Range] = []
        for col, row in self.member_cells(edge):
            if s.contains_cell(col, row):
                out.append(Range(col + hp, row + hq, col + tp, row + tq))
        return out

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        h_rel, t_rel, axis, _ = edge.meta
        survivors = [cell for cell in self.member_cells(edge) if not s.contains_cell(*cell)]
        return self._rebuild_runs(survivors, h_rel, t_rel, axis)

    def _rebuild_runs(
        self,
        cells: list[tuple[int, int]],
        h_rel: tuple[int, int],
        t_rel: tuple[int, int],
        axis: str,
    ) -> list[CompressedEdge]:
        """Regroup surviving member cells into maximal stride-2 runs."""
        out: list[CompressedEdge] = []
        run: list[tuple[int, int]] = []

        def flush() -> None:
            if not run:
                return
            head, tail = run[0], run[-1]
            dep = Range(head[0], head[1], tail[0], tail[1])
            if len(run) == 1:
                prec = Range(
                    head[0] + h_rel[0], head[1] + h_rel[1],
                    head[0] + t_rel[0], head[1] + t_rel[1],
                )
                out.append(CompressedEdge(prec, dep, SINGLE, None))
            else:
                prec = Range(
                    head[0] + h_rel[0], head[1] + h_rel[1],
                    tail[0] + t_rel[0], tail[1] + t_rel[1],
                )
                phase = (dep.r1 % 2) if axis == COLUMN_AXIS else (dep.c1 % 2)
                out.append(CompressedEdge(prec, dep, self, (h_rel, t_rel, axis, phase)))
            run.clear()

        for cell in cells:
            if run:
                prev = run[-1]
                step_ok = (
                    (axis == COLUMN_AXIS and cell[0] == prev[0] and cell[1] == prev[1] + 2)
                    or (axis == ROW_AXIS and cell[1] == prev[1] and cell[0] == prev[0] + 2)
                )
                if not step_ok:
                    flush()
            run.append(cell)
        flush()
        return out

    def member_dependencies(self, edge: CompressedEdge):
        from ...sheet.sheet import Dependency as Dep

        (hp, hq), (tp, tq) = edge.meta[0], edge.meta[1]
        return [
            Dep(Range(col + hp, row + hq, col + tp, row + tq), Range.cell(col, row))
            for col, row in self.member_cells(edge)
        ]


RR_GAPONE = RRGapOnePattern()
