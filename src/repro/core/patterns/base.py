"""Pattern framework: compressed edges and the four key functions.

A *pattern* is a constant-size representation of an arbitrarily large set
of dependencies that supports constant-time reconstruction and lookup
(paper Sec. II-B).  To plug into TACO, a pattern implements the four key
functions of Sec. III-B:

* ``try_pair``  / ``try_merge`` — the paper's ``addDep(e, e')`` for an
  uncompressed and a compressed target edge respectively; they return the
  merged edge or ``None`` when the dependency does not fit the pattern.
* ``find_dep(e, r)``   — dependents of ``r`` within ``e`` (``r ⊆ e.prec``);
* ``find_prec(e, s)``  — precedents of ``s`` within ``e`` (``s ⊆ e.dep``);
* ``remove_dep(e, s)`` — the edges left after clearing the formula cells
  ``s ⊆ e.dep``.

``find_dep``/``find_prec`` return lists of ranges so that extension
patterns whose dependent sets are not contiguous (RR-GapOne) fit the same
interface; every basic pattern returns at most one range.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency

__all__ = [
    "CompressedEdge",
    "Pattern",
    "rel_offsets",
    "run_axis",
    "extension_axis",
    "COLUMN_AXIS",
    "ROW_AXIS",
]

# Orientation constants: a column-wise compressed edge stacks formula
# cells vertically (the paper's primary case); row-wise is its transpose.
COLUMN_AXIS = "column"
ROW_AXIS = "row"


class CompressedEdge:
    """One edge of the compressed graph: ``(prec, dep, pattern, meta)``.

    ``prec`` and ``dep`` are the minimal bounding ranges of the member
    dependencies' precedents and dependents; ``meta`` is the pattern's
    constant-size reconstruction information.  Edges compare by identity:
    the graph may legitimately contain two structurally equal edges.
    """

    __slots__ = ("prec", "dep", "pattern", "meta")

    def __init__(self, prec: Range, dep: Range, pattern: "Pattern", meta):
        self.prec = prec
        self.dep = dep
        self.pattern = pattern
        self.meta = meta

    @property
    def member_count(self) -> int:
        """Number of raw dependencies this edge represents."""
        return self.pattern.member_count(self)

    def describe(self) -> str:
        return f"{self.prec.to_a1()} -> {self.dep.to_a1()} [{self.pattern.name}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompressedEdge({self.describe()})"


def rel_offsets(prec: Range, dep_cell: tuple[int, int]) -> tuple[tuple[int, int], tuple[int, int]]:
    """The paper's ``rel(e)``: (hRel, tRel) of a single dependency.

    ``hRel = prec.head - dep`` and ``tRel = prec.tail - dep``.
    """
    col, row = dep_cell
    return (
        (prec.c1 - col, prec.r1 - row),
        (prec.c2 - col, prec.r2 - row),
    )


def run_axis(dep: Range) -> str | None:
    """Orientation of a compressed edge's dependent run.

    Compressed dependent ranges are one-dimensional runs: a 1-wide column
    or a 1-tall row.  A single cell has no orientation yet (``None`` is
    only returned for degenerate or 2-D ranges, which never occur as
    compressed dependents).
    """
    if dep.width == 1 and dep.height > 1:
        return COLUMN_AXIS
    if dep.height == 1 and dep.width > 1:
        return ROW_AXIS
    return None


def extension_axis(dep: Range, cell: tuple[int, int]) -> str | None:
    """How a new formula cell extends an existing dependent run.

    Returns COLUMN_AXIS / ROW_AXIS when ``cell`` sits immediately past one
    end of the run along that axis, ``None`` otherwise.  For a single-cell
    run either axis is acceptable.
    """
    col, row = cell
    axis = run_axis(dep)
    if axis in (COLUMN_AXIS, None):
        if col == dep.c1 and (row == dep.r1 - 1 or row == dep.r2 + 1):
            return COLUMN_AXIS
    if axis in (ROW_AXIS, None):
        if row == dep.r1 and (col == dep.c1 - 1 or col == dep.c2 + 1):
            return ROW_AXIS
    return None


def clamp_to(candidate: tuple[int, int, int, int], bounds: Range) -> Range | None:
    """Intersect raw candidate coordinates with ``bounds``.

    The candidate corners may be out of the sheet (row 0 etc.) before
    clamping, so this works on bare integers rather than a Range.
    """
    c1 = candidate[0] if candidate[0] > bounds.c1 else bounds.c1
    r1 = candidate[1] if candidate[1] > bounds.r1 else bounds.r1
    c2 = candidate[2] if candidate[2] < bounds.c2 else bounds.c2
    r2 = candidate[3] if candidate[3] < bounds.r2 else bounds.r2
    if c1 > c2 or r1 > r2:
        return None
    return Range(c1, r1, c2, r2)


class Pattern:
    """Base class for compression patterns."""

    #: Short name used in stats tables (RR, RF, FR, FF, RR-Chain, Single).
    name = "abstract"
    #: Cue name matched against the dollar-sign cue of a dependency.
    cue = "RR"
    #: Special-case patterns (RR-Chain) win ties against their general form.
    is_special = False
    #: How far (in cells) a mergeable neighbour may sit from a new formula
    #: cell; the basic patterns are strictly adjacent, RR-GapOne skips one.
    reach = 1

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        """Try to compress an uncompressed ``edge`` with a new dependency."""
        raise NotImplementedError

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        """Try to absorb a new dependency into a compressed ``edge``."""
        raise NotImplementedError

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        raise NotImplementedError

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        raise NotImplementedError

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        raise NotImplementedError

    def member_count(self, edge: CompressedEdge) -> int:
        """Raw dependencies represented; basic patterns have one per cell."""
        return edge.dep.size

    def member_dependencies(self, edge: CompressedEdge) -> list[Dependency]:
        """Reconstruct the raw dependencies (tests and decompression)."""
        out = []
        for col, row in edge.dep.cells():
            cell = Range.cell(col, row)
            precs = self.find_prec(edge, cell)
            for prec in precs:
                out.append(Dependency(prec, cell))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pattern {self.name}>"
