"""FR (Fixed plus Relative): the expanding-window pattern.

The dual of RF (paper Fig. 4c): every dependent references a range with
one fixed head cell (hFix) and a tail at a constant relative offset
(tRel) — the cumulative-total idiom (``SUM($B$1:B4)``).  Meta is
``(hFix, tRel)``.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import CompressedEdge, Pattern, clamp_to, extension_axis, rel_offsets
from .single import SINGLE

__all__ = ["FRPattern", "FR"]


class FRPattern(Pattern):
    name = "FR"
    cue = "FR"

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if extension_axis(edge.dep, dep.dep.head) is None:
            return None
        _, t_new = rel_offsets(dep.prec, dep.dep.head)
        _, t_old = rel_offsets(edge.prec, edge.dep.head)
        if t_new != t_old or dep.prec.head != edge.prec.head:
            return None
        meta = (edge.prec.head, t_new)
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, meta
        )

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        if extension_axis(edge.dep, dep.dep.head) is None:
            return None
        h_fix, t_rel = edge.meta
        _, t_new = rel_offsets(dep.prec, dep.dep.head)
        if t_new != t_rel or dep.prec.head != h_fix:
            return None
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, edge.meta
        )

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        """Windows expand towards the tail dependent, so d is a dependent
        iff ``d >= r.head - tRel``."""
        _, (tp, tq) = edge.meta
        candidate = (r.c1 - tp, r.r1 - tq, edge.dep.c2, edge.dep.r2)
        result = clamp_to(candidate, edge.dep)
        return [result] if result is not None else []

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        """The precedent of s.tail contains every other cell's precedent."""
        (hc, hr), (tp, tq) = edge.meta
        return [Range(hc, hr, s.c2 + tp, s.r2 + tq)]

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        (hc, hr), (tp, tq) = edge.meta
        out: list[CompressedEdge] = []
        for piece in edge.dep.subtract(s):
            prec = Range(hc, hr, piece.c2 + tp, piece.r2 + tq)
            if piece.size == 1:
                out.append(CompressedEdge(prec, piece, SINGLE, None))
            else:
                out.append(CompressedEdge(prec, piece, self, edge.meta))
        return out

    def member_dependencies(self, edge: CompressedEdge):
        from ...sheet.sheet import Dependency as Dep

        (hc, hr), (tp, tq) = edge.meta
        out = []
        for col, row in edge.dep.cells():
            out.append(Dep(Range(hc, hr, col + tp, row + tq), Range.cell(col, row)))
        return out


FR = FRPattern()
