"""RR-Chain: the extended pattern for dependency chains (paper Sec. V).

A column (or row) of formula cells where each references its adjacent
neighbour forms a chain: plain RR would compress it into one edge, but
finding dependents would then re-access that edge once per chain link.
RR-Chain is the special case of RR whose offsets are a unit vector; its
``find_dep``/``find_prec`` return the *transitive* closure within the edge
in a single O(1) step, eliminating the repeated accesses.

Meta is the unit direction ``dir`` (= hRel = tRel): (0,-1) means each
formula references the cell ABOVE it, (0,1) BELOW, (-1,0) LEFT, (1,0)
RIGHT.
"""

from __future__ import annotations

from ...grid.range import Range
from ...sheet.sheet import Dependency
from .base import (
    COLUMN_AXIS,
    ROW_AXIS,
    CompressedEdge,
    Pattern,
    clamp_to,
    extension_axis,
    rel_offsets,
)
from .single import SINGLE

__all__ = ["RRChainPattern", "RR_CHAIN", "CHAIN_DIRECTIONS"]

CHAIN_DIRECTIONS = {
    (0, -1): "ABOVE",
    (0, 1): "BELOW",
    (-1, 0): "LEFT",
    (1, 0): "RIGHT",
}


def _direction_axis(direction: tuple[int, int]) -> str:
    return COLUMN_AXIS if direction[0] == 0 else ROW_AXIS


def _is_backward(direction: tuple[int, int]) -> bool:
    """True for ABOVE/LEFT: the precedent precedes the dependent, so
    dependency flows forward along the run."""
    return direction[0] < 0 or direction[1] < 0


class RRChainPattern(Pattern):
    name = "RR-Chain"
    cue = "RR"
    is_special = True

    # -- compression ---------------------------------------------------------

    def _chain_direction(self, dep: Dependency) -> tuple[int, int] | None:
        h_rel, t_rel = rel_offsets(dep.prec, dep.dep.head)
        if h_rel != t_rel or h_rel not in CHAIN_DIRECTIONS:
            return None
        return h_rel

    def try_pair(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        direction = self._chain_direction(dep)
        if direction is None or self._chain_direction_of_single(edge) != direction:
            return None
        axis = extension_axis(edge.dep, dep.dep.head)
        # The run must grow along the chain's own axis; a perpendicular
        # merge of unit references is plain RR, not a chain.
        if axis != _direction_axis(direction):
            return None
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, direction
        )

    @staticmethod
    def _chain_direction_of_single(edge: CompressedEdge) -> tuple[int, int] | None:
        if not edge.prec.is_cell or not edge.dep.is_cell:
            return None
        h_rel, t_rel = rel_offsets(edge.prec, edge.dep.head)
        if h_rel != t_rel or h_rel not in CHAIN_DIRECTIONS:
            return None
        return h_rel

    def try_merge(self, edge: CompressedEdge, dep: Dependency) -> CompressedEdge | None:
        direction = self._chain_direction(dep)
        if direction is None or direction != edge.meta:
            return None
        axis = extension_axis(edge.dep, dep.dep.head)
        if axis != _direction_axis(direction):
            return None
        return CompressedEdge(
            edge.prec.bounding(dep.prec), edge.dep.bounding(dep.dep), self, edge.meta
        )

    # -- queries (transitive within the edge) -----------------------------------

    def find_dep(self, edge: CompressedEdge, r: Range) -> list[Range]:
        """All chain cells downstream of r, in one step (paper Fig. 9)."""
        dc, dr = edge.meta
        if _is_backward(edge.meta):
            # Flow runs head -> tail: everything past r.head's dependent.
            candidate = (r.c1 - dc, r.r1 - dr, edge.dep.c2, edge.dep.r2)
        else:
            # Flow runs tail -> head: everything before r.tail's dependent.
            candidate = (edge.dep.c1, edge.dep.r1, r.c2 - dc, r.r2 - dr)
        result = clamp_to(candidate, edge.dep)
        return [result] if result is not None else []

    def find_prec(self, edge: CompressedEdge, s: Range) -> list[Range]:
        """All chain cells upstream of s, in one step."""
        dc, dr = edge.meta
        if _is_backward(edge.meta):
            candidate = (edge.prec.c1, edge.prec.r1, s.c2 + dc, s.r2 + dr)
        else:
            candidate = (s.c1 + dc, s.r1 + dr, edge.prec.c2, edge.prec.r2)
        result = clamp_to(candidate, edge.prec)
        return [result] if result is not None else []

    # -- maintenance (direct, not transitive) ------------------------------------

    def _direct_prec(self, piece: Range, direction: tuple[int, int]) -> Range:
        return piece.shift(direction[0], direction[1])

    def remove_dep(self, edge: CompressedEdge, s: Range) -> list[CompressedEdge]:
        out: list[CompressedEdge] = []
        for piece in edge.dep.subtract(s):
            prec = self._direct_prec(piece, edge.meta)
            if piece.size == 1:
                out.append(CompressedEdge(prec, piece, SINGLE, None))
            else:
                out.append(CompressedEdge(prec, piece, self, edge.meta))
        return out

    def member_dependencies(self, edge: CompressedEdge):
        from ...sheet.sheet import Dependency as Dep

        dc, dr = edge.meta
        return [
            Dep(Range.cell(col + dc, row + dr), Range.cell(col, row))
            for col, row in edge.dep.cells()
        ]


RR_CHAIN = RRChainPattern()
