"""TACO core: patterns, compression, querying, and maintenance."""

from .compress import insert_dependency, select_final_edge
from .export import summarize_graph, to_adjacency_json, to_dot
from .maintain import clear_cells, update_cell
from .optimal import OptimalResult, enumerate_valid_blocks, optimal_edge_count
from .paths import PathStep, explain_dependency
from .serialize import (
    GraphFormatError,
    dump_graph,
    dumps_graph,
    load_graph,
    loads_graph,
)
from .structural import delete_columns, delete_rows, insert_columns, insert_rows
from .patterns import (
    FF,
    FR,
    RF,
    RR,
    RR_CHAIN,
    RR_GAPONE,
    RR_INROW,
    SINGLE,
    CompressedEdge,
    Pattern,
    default_patterns,
    extended_patterns,
    inrow_patterns,
    pattern_by_name,
)
from .query import find_dependents, find_precedents
from .taco_graph import TacoGraph, build_from_sheet, dependencies_column_major

__all__ = [
    "CompressedEdge",
    "FF",
    "FR",
    "GraphFormatError",
    "OptimalResult",
    "PathStep",
    "Pattern",
    "RF",
    "RR",
    "RR_CHAIN",
    "RR_GAPONE",
    "RR_INROW",
    "SINGLE",
    "TacoGraph",
    "build_from_sheet",
    "clear_cells",
    "default_patterns",
    "delete_columns",
    "delete_rows",
    "dependencies_column_major",
    "dump_graph",
    "explain_dependency",
    "dumps_graph",
    "enumerate_valid_blocks",
    "extended_patterns",
    "find_dependents",
    "find_precedents",
    "inrow_patterns",
    "insert_columns",
    "insert_dependency",
    "insert_rows",
    "load_graph",
    "loads_graph",
    "optimal_edge_count",
    "pattern_by_name",
    "select_final_edge",
    "summarize_graph",
    "to_adjacency_json",
    "to_dot",
    "update_cell",
]
