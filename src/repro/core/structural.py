"""Structural maintenance of the compressed graph: row/column edits.

Inserting or deleting whole rows or columns is the other maintenance
operation a host spreadsheet system performs.  TACO handles it without a
full rebuild:

* edges entirely *before* the edit point are untouched;
* edges entirely *past* it translate wholesale — bounding ranges and any
  absolute cells in the pattern meta shift, while the relative offsets
  that define RR/RR-Chain are translation-invariant;
* only the edges *straddling* the edit decompress into their member
  dependencies, which are transformed per spreadsheet semantics
  (stretch / shrink / ``#REF!``-drop) and re-inserted through the normal
  greedy compressor.

Correctness oracle: rebuilding the graph from a sheet edited with
:mod:`repro.sheet.structural` yields the same dependency set.
"""

from __future__ import annotations

from ..grid.range import Range
from ..sheet.sheet import Dependency
from ..sheet.structural import shift_range_for_delete, shift_range_for_insert
from .patterns.base import COLUMN_AXIS, CompressedEdge
from .patterns.rr_gapone import RRGapOnePattern
from .taco_graph import TacoGraph

__all__ = ["insert_rows", "delete_rows", "insert_columns", "delete_columns"]


def _shift_meta(edge: CompressedEdge, dc: int, dr: int):
    """Translate the pattern meta: absolute cells move, offsets do not."""
    pattern_name = edge.pattern.name
    meta = edge.meta
    if meta is None:
        return None
    if pattern_name == "RF":
        h_rel, (tc, tr) = meta
        return (h_rel, (tc + dc, tr + dr))
    if pattern_name == "FR":
        (hc, hr), t_rel = meta
        return ((hc + dc, hr + dr), t_rel)
    if pattern_name == "FF":
        (hc, hr), (tc, tr) = meta
        return ((hc + dc, hr + dr), (tc + dc, tr + dr))
    if isinstance(edge.pattern, RRGapOnePattern):
        h_rel, t_rel, axis, _ = meta
        new_dep = edge.dep.shift(dc, dr)
        phase = (new_dep.r1 % 2) if axis == COLUMN_AXIS else (new_dep.c1 % 2)
        return (h_rel, t_rel, axis, phase)
    # RR, RR-Chain, Single: purely relative metadata.
    return meta


def _shift_edge(edge: CompressedEdge, dc: int, dr: int) -> CompressedEdge:
    return CompressedEdge(
        edge.prec.shift(dc, dr),
        edge.dep.shift(dc, dr),
        edge.pattern,
        _shift_meta(edge, dc, dr),
    )


def _axis_extent(rng: Range, axis: str) -> tuple[int, int]:
    return (rng.r1, rng.r2) if axis == "row" else (rng.c1, rng.c2)


def _transform_insert(dep: Dependency, index: int, count: int, axis: str) -> Dependency | None:
    prec = shift_range_for_insert(dep.prec, index, count, axis)
    cell_lo, _ = _axis_extent(dep.dep, axis)
    if cell_lo >= index:
        cell = dep.dep.shift(0, count) if axis == "row" else dep.dep.shift(count, 0)
    else:
        cell = dep.dep
    return Dependency(prec, cell, dep.cue)


def _transform_delete(dep: Dependency, index: int, count: int, axis: str) -> Dependency | None:
    end = index + count - 1
    cell_lo, cell_hi = _axis_extent(dep.dep, axis)
    if index <= cell_lo <= end:
        return None  # the formula cell itself was deleted
    prec = shift_range_for_delete(dep.prec, index, count, axis)
    if prec is None:
        return None  # reference collapsed to #REF!: no edge remains
    if cell_lo > end:
        cell = dep.dep.shift(0, -count) if axis == "row" else dep.dep.shift(-count, 0)
    else:
        cell = dep.dep
    return Dependency(prec, cell, dep.cue)


def _structural_edit(graph: TacoGraph, index: int, count: int, axis: str, mode: str) -> None:
    if index < 1 or count < 1:
        raise ValueError("index and count must be positive")
    end = index + count - 1
    delta = count if mode == "insert" else -count
    dc, dr = (0, delta) if axis == "row" else (delta, 0)

    wholesale: list[CompressedEdge] = []
    boundary: list[CompressedEdge] = []
    for edge in graph.edges():
        lo = min(_axis_extent(edge.prec, axis)[0], _axis_extent(edge.dep, axis)[0])
        hi = max(_axis_extent(edge.prec, axis)[1], _axis_extent(edge.dep, axis)[1])
        if hi < index:
            continue  # entirely before the edit: untouched
        past_threshold = index if mode == "insert" else end + 1
        if lo >= past_threshold:
            wholesale.append(edge)
        else:
            boundary.append(edge)

    for edge in wholesale:
        graph.remove_edge(edge)
        graph.add_edge_raw(_shift_edge(edge, dc, dr))

    transform = _transform_insert if mode == "insert" else _transform_delete
    reinserts: list[Dependency] = []
    for edge in boundary:
        graph.remove_edge(edge)
        for member in edge.pattern.member_dependencies(edge):
            moved = transform(member, index, count, axis)
            if moved is not None:
                reinserts.append(moved)
    reinserts.sort(key=lambda d: (d.dep.c1, d.dep.r1))
    for dep in reinserts:
        graph.add_dependency(dep)


def insert_rows(graph: TacoGraph, row: int, count: int = 1) -> None:
    """Maintain the graph for ``count`` rows inserted before ``row``."""
    _structural_edit(graph, row, count, "row", "insert")


def delete_rows(graph: TacoGraph, row: int, count: int = 1) -> None:
    """Maintain the graph for rows ``[row, row+count)`` being deleted."""
    _structural_edit(graph, row, count, "row", "delete")


def insert_columns(graph: TacoGraph, col: int, count: int = 1) -> None:
    """Maintain the graph for ``count`` columns inserted before ``col``."""
    _structural_edit(graph, col, count, "col", "insert")


def delete_columns(graph: TacoGraph, col: int, count: int = 1) -> None:
    """Maintain the graph for columns ``[col, col+count)`` being deleted."""
    _structural_edit(graph, col, count, "col", "delete")
