"""Structural maintenance of the compressed graph: row/column edits.

Inserting or deleting whole rows or columns is the other maintenance
operation a host spreadsheet system performs.  TACO handles it without a
full rebuild:

* edges entirely *before* the edit point are untouched;
* edges entirely *past* it translate wholesale — bounding ranges and any
  absolute cells in the pattern meta shift, while the relative offsets
  that define RR/RR-Chain are translation-invariant;
* edges *straddling* the edit are split along the dependent run into
  segments whose members all transform uniformly — each segment becomes
  one shifted/stretched edge in O(1), without decompression.  Only the
  few members whose geometry genuinely changes shape (references clipped
  by a deleted band, chain links severed at the edit point) decompress
  into raw dependencies and re-enter the greedy compressor.

The per-edit cost is therefore ``O(E' + m)`` for ``E'`` compressed edges
overlapping or past the edit line and ``m`` boundary members — never
proportional to how many raw dependencies the straddling edges compress,
which is what makes incremental maintenance beat a rebuild on long
autofill columns (see ``benchmarks/bench_structural.py``).

Correctness oracle: rebuilding the graph from a sheet edited with
:mod:`repro.sheet.structural` yields the same dependency set.
"""

from __future__ import annotations

from typing import NamedTuple

from ..grid.range import Range
from ..sheet.sheet import Dependency
from ..sheet.structural import shift_range_for_delete, shift_range_for_insert
from .patterns.base import COLUMN_AXIS, ROW_AXIS, CompressedEdge, run_axis
from .patterns.rr_chain import CHAIN_DIRECTIONS
from .patterns.rr_gapone import RRGapOnePattern
from .patterns.single import SINGLE
from .taco_graph import TacoGraph

__all__ = [
    "StructuralMaintenanceStats",
    "insert_rows",
    "delete_rows",
    "insert_columns",
    "delete_columns",
]


class StructuralMaintenanceStats(NamedTuple):
    """What one structural edit did to the compressed graph."""

    shifted: int        # edges translated wholesale in O(1)
    split: int          # straddling edges re-tagged/split without decompression
    decompressed: int   # edges whose members went back through the compressor
    reinserted: int     # raw dependencies re-inserted (boundary members)

    @property
    def edges_touched(self) -> int:
        return self.shifted + self.split + self.decompressed


def _shift_meta(edge: CompressedEdge, dc: int, dr: int):
    """Translate the pattern meta: absolute cells move, offsets do not."""
    pattern_name = edge.pattern.name
    meta = edge.meta
    if meta is None:
        return None
    if pattern_name == "RF":
        h_rel, (tc, tr) = meta
        return (h_rel, (tc + dc, tr + dr))
    if pattern_name == "FR":
        (hc, hr), t_rel = meta
        return ((hc + dc, hr + dr), t_rel)
    if pattern_name == "FF":
        (hc, hr), (tc, tr) = meta
        return ((hc + dc, hr + dr), (tc + dc, tr + dr))
    if isinstance(edge.pattern, RRGapOnePattern):
        h_rel, t_rel, axis, _ = meta
        new_dep = edge.dep.shift(dc, dr)
        phase = (new_dep.r1 % 2) if axis == COLUMN_AXIS else (new_dep.c1 % 2)
        return (h_rel, t_rel, axis, phase)
    # RR, RR-Chain, Single: purely relative metadata.
    return meta


def _shift_edge(edge: CompressedEdge, dc: int, dr: int) -> CompressedEdge:
    return CompressedEdge(
        edge.prec.shift(dc, dr),
        edge.dep.shift(dc, dr),
        edge.pattern,
        _shift_meta(edge, dc, dr),
    )


def _axis_extent(rng: Range, axis: str) -> tuple[int, int]:
    return (rng.r1, rng.r2) if axis == "row" else (rng.c1, rng.c2)


def _transform_insert(dep: Dependency, index: int, count: int, axis: str) -> Dependency:
    prec = shift_range_for_insert(dep.prec, index, count, axis)
    cell_lo, _ = _axis_extent(dep.dep, axis)
    if cell_lo >= index:
        cell = dep.dep.shift(0, count) if axis == "row" else dep.dep.shift(count, 0)
    else:
        cell = dep.dep
    return Dependency(prec, cell, dep.cue)


def _transform_delete(dep: Dependency, index: int, count: int, axis: str) -> Dependency | None:
    end = index + count - 1
    cell_lo, cell_hi = _axis_extent(dep.dep, axis)
    if index <= cell_lo <= end:
        return None  # the formula cell itself was deleted
    prec = shift_range_for_delete(dep.prec, index, count, axis)
    if prec is None:
        return None  # reference collapsed to #REF!: no edge remains
    if cell_lo > end:
        cell = dep.dep.shift(0, -count) if axis == "row" else dep.dep.shift(-count, 0)
    else:
        cell = dep.dep
    return Dependency(prec, cell, dep.cue)


# ---------------------------------------------------------------------------
# O(1) transformation of straddling edges


def _prec_spec(edge: CompressedEdge):
    """Dissect a pattern's precedent geometry into (hFix, hRel, tFix, tRel).

    Exactly one of the fixed/relative slots is set per endpoint.  Returns
    ``None`` for patterns whose members this module cannot re-tag in
    O(1) (Single is a one-member edge, RR-GapOne has a non-contiguous
    dependent set) — those fall back to full decompression.
    """
    name = edge.pattern.name
    meta = edge.meta
    if name in ("RR", "RR-InRow"):
        h_rel, t_rel = meta
        return (None, h_rel, None, t_rel)
    if name == "RR-Chain":
        return (None, meta, None, meta)
    if name == "FR":
        h_fix, t_rel = meta
        return (h_fix, None, None, t_rel)
    if name == "RF":
        h_rel, t_fix = meta
        return (None, h_rel, t_fix, None)
    if name == "FF":
        h_fix, t_fix = meta
        return (h_fix, None, t_fix, None)
    return None


def _restrict(rng: Range, lo: int, hi: int, axis: str) -> Range:
    if axis == "row":
        return Range(rng.c1, max(rng.r1, lo), rng.c2, min(rng.r2, hi))
    return Range(max(rng.c1, lo), rng.r1, min(rng.c2, hi), rng.r2)


def _make_piece(
    edge: CompressedEdge,
    dep_piece: Range,
    h_fix: tuple[int, int] | None,
    h_rel: tuple[int, int] | None,
    t_fix: tuple[int, int] | None,
    t_rel: tuple[int, int] | None,
) -> CompressedEdge | None:
    """Assemble one uniformly-transformed sub-edge, or ``None`` when the
    pattern cannot express the new offsets (a severed chain link, an
    in-row edge whose offsets left the row)."""
    corners: list[tuple[int, int]] = []
    for fix, rel in ((h_fix, h_rel), (t_fix, t_rel)):
        if fix is not None:
            corners.append(fix)
        else:
            corners.append((dep_piece.c1 + rel[0], dep_piece.r1 + rel[1]))
            corners.append((dep_piece.c2 + rel[0], dep_piece.r2 + rel[1]))
    prec = Range(
        min(c for c, _ in corners),
        min(r for _, r in corners),
        max(c for c, _ in corners),
        max(r for _, r in corners),
    )
    if dep_piece.size == 1:
        return CompressedEdge(prec, dep_piece, SINGLE, None)
    pattern = edge.pattern
    name = pattern.name
    if name == "RR":
        meta = (h_rel, t_rel)
    elif name == "RR-InRow":
        if not pattern._admits((h_rel, t_rel), run_axis(dep_piece)):
            return None
        meta = (h_rel, t_rel)
    elif name == "RR-Chain":
        if h_rel != t_rel or h_rel not in CHAIN_DIRECTIONS:
            return None
        direction_axis = COLUMN_AXIS if h_rel[0] == 0 else ROW_AXIS
        if run_axis(dep_piece) != direction_axis:
            return None
        meta = h_rel
    elif name == "FR":
        meta = (h_fix, t_rel)
    elif name == "RF":
        meta = (h_rel, t_fix)
    else:  # FF
        meta = (h_fix, t_fix)
    return CompressedEdge(prec, dep_piece, pattern, meta)


def _split_straddling(
    edge: CompressedEdge, index: int, count: int, axis: str, mode: str
) -> tuple[list[CompressedEdge], list[Dependency]] | None:
    """Split a straddling edge into uniformly-transformable segments.

    A member's transform under the edit is decided by which *side* of the
    edit line each of its coordinates falls on: the dependent cell, the
    relative precedent endpoints (which track the dependent), and the
    pattern's fixed cells.  Those side assignments are monotone step
    functions of the member's position along the edit axis, so the
    dependent run partitions into at most a handful of contiguous
    segments, each of which shifts/stretches as one edge with adjusted
    meta — no decompression.  Members whose coordinates land *inside* a
    deleted band change shape non-uniformly and are returned raw for the
    caller to transform and re-insert one by one.

    Returns ``(new_edges, boundary_members)`` — boundary members in
    *pre-edit* coordinates — or ``None`` when the whole edge must
    decompress (unsupported pattern, or a fixed cell inside the band).
    """
    spec = _prec_spec(edge)
    if spec is None:
        return None
    h_fix, h_rel, t_fix, t_rel = spec
    end = index + count - 1
    delta = count if mode == "insert" else -count
    comp = 1 if axis == "row" else 0

    def side(pos: int) -> int:
        if pos < index:
            return -1
        if mode == "insert" or pos > end:
            return 1
        return 0

    # Fixed cells transform edge-wide; one inside a deleted band clips
    # every member differently as the run advances -> full decompression.
    new_fix: list[tuple[int, int] | None] = []
    for fix in (h_fix, t_fix):
        if fix is None:
            new_fix.append(None)
            continue
        fix_side = side(fix[comp])
        if fix_side == 0:
            return None
        if fix_side > 0:
            shifted = (fix[0] + delta, fix[1]) if axis == "col" else (fix[0], fix[1] + delta)
            new_fix.append(shifted)
        else:
            new_fix.append(fix)
    h_fix_new, t_fix_new = new_fix

    d_lo, d_hi = _axis_extent(edge.dep, axis)
    rel_offsets = [rel[comp] for rel in (h_rel, t_rel) if rel is not None]
    cuts: set[int] = set()
    marks = (index,) if mode == "insert" else (index, end + 1)
    for mark in marks:
        for rel in [0, *rel_offsets]:
            cut = mark - rel
            if d_lo < cut <= d_hi:
                cuts.add(cut)

    segments: list[tuple[int, int]] = []
    lo = d_lo
    for cut in sorted(cuts):
        segments.append((lo, cut - 1))
        lo = cut
    segments.append((lo, d_hi))

    new_edges: list[CompressedEdge] = []
    boundary: list[Dependency] = []
    for seg_lo, seg_hi in segments:
        dep_side = side(seg_lo)
        if dep_side == 0:
            continue  # formula cells inside the deleted band: members vanish
        piece_pre = _restrict(edge.dep, seg_lo, seg_hi, axis)
        rel_sides = {
            rel[comp]: side(seg_lo + rel[comp])
            for rel in (h_rel, t_rel)
            if rel is not None
        }
        piece_edge = None
        if 0 not in rel_sides.values():
            dep_delta = delta if dep_side > 0 else 0
            if dep_delta:
                piece = piece_pre.shift(0, dep_delta) if axis == "row" else piece_pre.shift(dep_delta, 0)
            else:
                piece = piece_pre

            def adjust(rel):
                if rel is None:
                    return None
                shift = (delta if rel_sides[rel[comp]] > 0 else 0) - dep_delta
                if shift == 0:
                    return rel
                return (rel[0], rel[1] + shift) if axis == "row" else (rel[0] + shift, rel[1])

            piece_edge = _make_piece(
                edge, piece, h_fix_new, adjust(h_rel), t_fix_new, adjust(t_rel)
            )
        if piece_edge is not None:
            new_edges.append(piece_edge)
        else:
            # Clipped by the band (or inexpressible): hand the segment's
            # members back raw.  Segment sub-edges keep the old meta, so
            # member enumeration is safe.
            sub = CompressedEdge(edge.prec, piece_pre, edge.pattern, edge.meta)
            boundary.extend(edge.pattern.member_dependencies(sub))
    return new_edges, boundary


# ---------------------------------------------------------------------------
# the edit driver


def _structural_edit(
    graph: TacoGraph, index: int, count: int, axis: str, mode: str
) -> StructuralMaintenanceStats:
    if index < 1 or count < 1:
        raise ValueError("index and count must be positive")
    end = index + count - 1
    delta = count if mode == "insert" else -count
    dc, dr = (0, delta) if axis == "row" else (delta, 0)

    wholesale: list[CompressedEdge] = []
    straddling: list[CompressedEdge] = []
    for edge in graph.edges():
        lo = min(_axis_extent(edge.prec, axis)[0], _axis_extent(edge.dep, axis)[0])
        hi = max(_axis_extent(edge.prec, axis)[1], _axis_extent(edge.dep, axis)[1])
        if hi < index:
            continue  # entirely before the edit: untouched
        past_threshold = index if mode == "insert" else end + 1
        if lo >= past_threshold:
            wholesale.append(edge)
        else:
            straddling.append(edge)

    for edge in wholesale:
        graph.remove_edge(edge)
        graph.add_edge_raw(_shift_edge(edge, dc, dr))

    transform = _transform_insert if mode == "insert" else _transform_delete
    split_count = 0
    decompressed_count = 0
    raw_members: list[Dependency] = []
    for edge in straddling:
        graph.remove_edge(edge)
        pieces = _split_straddling(edge, index, count, axis, mode)
        if pieces is None:
            decompressed_count += 1
            raw_members.extend(edge.pattern.member_dependencies(edge))
            continue
        split_count += 1
        new_edges, boundary = pieces
        for piece in new_edges:
            graph.add_edge_raw(piece)
        raw_members.extend(boundary)

    reinserts: list[Dependency] = []
    for member in raw_members:
        moved = transform(member, index, count, axis)
        if moved is not None:
            reinserts.append(moved)
    reinserts.sort(key=lambda d: (d.dep.c1, d.dep.r1))
    for dep in reinserts:
        graph.add_dependency(dep)
    return StructuralMaintenanceStats(
        shifted=len(wholesale),
        split=split_count,
        decompressed=decompressed_count,
        reinserted=len(reinserts),
    )


def insert_rows(graph: TacoGraph, row: int, count: int = 1) -> StructuralMaintenanceStats:
    """Maintain the graph for ``count`` rows inserted before ``row``."""
    return _structural_edit(graph, row, count, "row", "insert")


def delete_rows(graph: TacoGraph, row: int, count: int = 1) -> StructuralMaintenanceStats:
    """Maintain the graph for rows ``[row, row+count)`` being deleted."""
    return _structural_edit(graph, row, count, "row", "delete")


def insert_columns(graph: TacoGraph, col: int, count: int = 1) -> StructuralMaintenanceStats:
    """Maintain the graph for ``count`` columns inserted before ``col``."""
    return _structural_edit(graph, col, count, "col", "insert")


def delete_columns(graph: TacoGraph, col: int, count: int = 1) -> StructuralMaintenanceStats:
    """Maintain the graph for columns ``[col, col+count)`` being deleted."""
    return _structural_edit(graph, col, count, "col", "delete")
