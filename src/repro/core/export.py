"""Exporting compressed graphs for visualisation.

Supports the paper's second application — formula dependency
visualisation — by rendering a compressed graph as Graphviz ``dot`` text
or as a plain adjacency JSON for downstream tools (the TACO-Lens-style
plug-in workflow).  Compressed edges render as single arrows annotated
with their pattern and member count, which is exactly what makes large
graphs legible: Fig. 2's 6,948-cell column is one arrow.
"""

from __future__ import annotations

import json

from .patterns.single import SINGLE
from .taco_graph import TacoGraph

__all__ = ["to_dot", "to_adjacency_json", "summarize_graph"]

_PATTERN_COLORS = {
    "RR": "steelblue",
    "RR-Chain": "darkorange",
    "RR-InRow": "slateblue",
    "RF": "seagreen",
    "FR": "olive",
    "FF": "firebrick",
    "RR-GapOne": "purple",
    "Single": "gray50",
}


def to_dot(graph: TacoGraph, title: str = "formula graph") -> str:
    """Render the compressed graph as Graphviz dot text."""
    lines = [
        "digraph formula_graph {",
        f'  label="{title}";',
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    names: dict[str, str] = {}

    def node_id(a1: str) -> str:
        if a1 not in names:
            names[a1] = f"n{len(names)}"
            lines.append(f'  {names[a1]} [label="{a1}"];')
        return names[a1]

    for edge in sorted(graph.edges(), key=lambda e: (e.prec.as_tuple(), e.dep.as_tuple())):
        src = node_id(edge.prec.to_a1())
        dst = node_id(edge.dep.to_a1())
        color = _PATTERN_COLORS.get(edge.pattern.name, "black")
        if edge.pattern is SINGLE:
            label = ""
        else:
            label = f"{edge.pattern.name} x{edge.member_count}"
        attrs = f'color={color}'
        if label:
            attrs += f', label="{label}"'
        lines.append(f"  {src} -> {dst} [{attrs}];")
    lines.append("}")
    return "\n".join(lines)


def to_adjacency_json(graph: TacoGraph) -> str:
    """Adjacency-list JSON: vertices plus annotated compressed edges."""
    vertices = sorted(v.to_a1() for v in graph.vertices())
    edges = [
        {
            "prec": edge.prec.to_a1(),
            "dep": edge.dep.to_a1(),
            "pattern": edge.pattern.name,
            "members": edge.member_count,
        }
        for edge in sorted(
            graph.edges(), key=lambda e: (e.prec.as_tuple(), e.dep.as_tuple())
        )
    ]
    return json.dumps({"vertices": vertices, "edges": edges}, indent=1)


def summarize_graph(graph: TacoGraph) -> str:
    """One-paragraph human summary of a compressed graph."""
    raw = graph.raw_edge_count()
    breakdown = graph.pattern_breakdown()
    parts = [
        f"{raw} dependencies compressed into {len(graph)} edges"
        f" ({len(graph) / raw:.2%})" if raw else "empty graph",
    ]
    for name, info in sorted(breakdown.items(), key=lambda kv: -kv[1]["reduced"]):
        parts.append(f"{name}: {info['edges']} edges covering {info['members']} deps")
    return "; ".join(parts)
