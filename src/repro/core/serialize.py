"""Persisting compressed formula graphs.

A spreadsheet system that has paid the one-off compression cost at load
time (Fig. 11) can avoid paying it again by persisting the compressed
graph alongside the file.  The format is plain JSON: one record per
compressed edge with its pattern name and meta, so it is diff-able and
stable across versions.  Loading validates every record and rebuilds the
vertex indexes; a round-trip is the identity on the edge set.

Format version 2 additionally records the graph's *construction
parameters* — the spatial-index backend, the pattern registry (in
priority order), and the compression heuristics — so a load reconstructs
a graph that compresses future insertions exactly like the one that was
saved.  Version-1 payloads still load (with the default TACO-Full
registry); payloads written by a *newer* format version are rejected
with an error naming both versions.
"""

from __future__ import annotations

import json
from typing import IO

from ..grid.range import Range
from .patterns.base import CompressedEdge
from .patterns.registry import ALL_PATTERNS
from .patterns.single import SINGLE
from .taco_graph import TacoGraph

__all__ = [
    "dump_graph",
    "dumps_graph",
    "graph_from_payload",
    "graph_payload",
    "load_graph",
    "loads_graph",
    "GraphFormatError",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 2


class GraphFormatError(ValueError):
    """Raised when a serialized graph cannot be decoded."""


def _meta_to_json(edge: CompressedEdge):
    meta = edge.meta
    if meta is None:
        return None
    # All metas are (nested) tuples of ints/strings; JSON lists carry them.
    def encode(value):
        if isinstance(value, tuple):
            return [encode(item) for item in value]
        return value

    return encode(meta)


def _meta_from_json(value):
    if value is None:
        return None
    if isinstance(value, list):
        return tuple(_meta_from_json(item) for item in value)
    return value


def graph_payload(graph: TacoGraph) -> dict:
    """The serialization payload for ``graph`` as a JSON-ready dict.

    Besides the edge records, the payload carries the construction
    parameters (index backend, pattern registry, heuristics) so a
    restore rebuilds an equivalent graph without re-compression.  A
    non-string index factory (a custom callable) cannot be named in a
    file and is recorded as ``None`` (the default backend on load).
    """
    edges = sorted(graph.edges(), key=lambda e: (e.prec.as_tuple(), e.dep.as_tuple()))
    index_spec = getattr(graph, "index_spec", None)
    return {
        "format": "taco-graph",
        "version": FORMAT_VERSION,
        "index": index_spec if isinstance(index_spec, str) else None,
        "patterns": [pattern.name for pattern in graph.patterns],
        "use_cues": graph.use_cues,
        "prefer_column": graph.prefer_column,
        "edge_count": len(edges),
        "raw_dependency_count": graph.raw_edge_count(),
        "edges": [
            {
                "prec": edge.prec.to_a1(),
                "dep": edge.dep.to_a1(),
                "pattern": edge.pattern.name,
                "meta": _meta_to_json(edge),
            }
            for edge in edges
        ],
    }


def dumps_graph(graph: TacoGraph, *, compact: bool = False) -> str:
    """Serialize a graph to a JSON string (``compact`` drops whitespace)."""
    payload = graph_payload(graph)
    if compact:
        return json.dumps(payload, separators=(",", ":"))
    return json.dumps(payload, indent=1)


def dump_graph(graph: TacoGraph, target: "str | IO[str]") -> None:
    text = dumps_graph(graph)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)


def graph_from_payload(payload, *, validate: bool = True) -> TacoGraph:
    """Rebuild a graph from a payload dict (see :func:`graph_payload`).

    Version-2 payloads reconstruct the recorded registry and index
    backend; every edge's pattern name is validated against the registry
    actually in use — the recorded one (plus the implicit ``Single``
    fallback), not the union of everything this build knows about.
    ``validate=False`` skips the per-edge member reconstruction check;
    callers whose container already checksums the payload (the snapshot
    format) use it to keep restore cost proportional to *compressed*
    edges rather than raw dependencies.
    """
    if not isinstance(payload, dict) or payload.get("format") != "taco-graph":
        raise GraphFormatError("missing taco-graph header")
    version = payload.get("version")
    if not isinstance(version, int) or version < 1:
        raise GraphFormatError(f"bad format version {version!r}")
    if version > FORMAT_VERSION:
        raise GraphFormatError(
            f"graph was written by format version {version}, but this build "
            f"reads versions 1..{FORMAT_VERSION}; upgrade to load it"
        )

    if version >= 2:
        names = payload.get("patterns")
        if not isinstance(names, list) or not all(isinstance(n, str) for n in names):
            raise GraphFormatError("patterns must be a list of pattern names")
        unknown = [name for name in names if name not in ALL_PATTERNS]
        if unknown:
            raise GraphFormatError(
                f"unknown patterns {unknown} in registry; known: {sorted(ALL_PATTERNS)}"
            )
        index = payload.get("index")
        if index is not None and not isinstance(index, str):
            raise GraphFormatError(f"index must be a backend name, got {index!r}")
        try:
            graph = TacoGraph(
                patterns=[ALL_PATTERNS[name] for name in names],
                use_cues=bool(payload.get("use_cues", True)),
                prefer_column=bool(payload.get("prefer_column", True)),
                index=index if index is not None else "rtree",
            )
        except ValueError as exc:  # unknown spatial-index backend
            raise GraphFormatError(str(exc)) from exc
        # The registry in use: the recorded priority list plus Single,
        # which every variant falls back to for uncompressible edges.
        allowed = set(names) | {SINGLE.name}
    else:
        graph = TacoGraph.full()
        allowed = set(ALL_PATTERNS)

    records = payload.get("edges")
    if not isinstance(records, list):
        raise GraphFormatError("edges must be a list")
    for i, record in enumerate(records):
        try:
            name = record["pattern"]
            prec = Range.from_a1(record["prec"])
            dep = Range.from_a1(record["dep"])
            meta = _meta_from_json(record.get("meta"))
        except (KeyError, ValueError, TypeError) as exc:
            raise GraphFormatError(f"bad edge record {i}: {exc}") from exc
        if name not in allowed:
            raise GraphFormatError(
                f"edge {i} uses pattern {name!r}, which is not in the "
                f"registry in use ({sorted(allowed)})"
            )
        edge = CompressedEdge(prec, dep, ALL_PATTERNS[name], meta)
        if validate:
            _validate_edge(edge, i)
        # Straight into the edge set: the vertex indexes are bulk-loaded
        # once below, so per-edge incremental inserts would be pure waste
        # on the load path.
        graph._edges.add(edge)
    declared = payload.get("edge_count")
    if declared is not None and declared != len(graph):
        raise GraphFormatError(
            f"edge_count mismatch: declared {declared}, decoded {len(graph)}"
        )
    # One bulk load per index (STR packing on the R-Tree) restores the
    # packed layout the saved graph had.
    graph.rebuild_indexes()
    return graph


def loads_graph(text: str, *, validate: bool = True) -> TacoGraph:
    """Deserialize a graph from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"not valid JSON: {exc}") from exc
    return graph_from_payload(payload, validate=validate)


def _validate_edge(edge: CompressedEdge, index: int) -> None:
    """Cheap structural validation: the edge must reconstruct cleanly."""
    try:
        members = edge.pattern.member_dependencies(edge)
    except Exception as exc:  # noqa: BLE001 - any failure means corrupt meta
        raise GraphFormatError(f"edge {index} has inconsistent meta: {exc}") from exc
    if not members:
        raise GraphFormatError(f"edge {index} reconstructs no dependencies")


def load_graph(source: "str | IO[str]", *, validate: bool = True) -> TacoGraph:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return loads_graph(handle.read(), validate=validate)
    return loads_graph(source.read(), validate=validate)
