"""Persisting compressed formula graphs.

A spreadsheet system that has paid the one-off compression cost at load
time (Fig. 11) can avoid paying it again by persisting the compressed
graph alongside the file.  The format is plain JSON: one record per
compressed edge with its pattern name and meta, so it is diff-able and
stable across versions.  Loading validates every record and rebuilds the
vertex indexes; a round-trip is the identity on the edge set.
"""

from __future__ import annotations

import json
from typing import IO

from ..grid.range import Range
from .patterns.base import CompressedEdge
from .patterns.registry import ALL_PATTERNS
from .taco_graph import TacoGraph

__all__ = ["dump_graph", "dumps_graph", "load_graph", "loads_graph", "GraphFormatError"]

FORMAT_VERSION = 1


class GraphFormatError(ValueError):
    """Raised when a serialized graph cannot be decoded."""


def _meta_to_json(edge: CompressedEdge):
    meta = edge.meta
    if meta is None:
        return None
    # All metas are (nested) tuples of ints/strings; JSON lists carry them.
    def encode(value):
        if isinstance(value, tuple):
            return [encode(item) for item in value]
        return value

    return encode(meta)


def _meta_from_json(value):
    if value is None:
        return None
    if isinstance(value, list):
        return tuple(_meta_from_json(item) for item in value)
    return value


def dumps_graph(graph: TacoGraph) -> str:
    """Serialize a graph to a JSON string."""
    edges = sorted(graph.edges(), key=lambda e: (e.prec.as_tuple(), e.dep.as_tuple()))
    payload = {
        "format": "taco-graph",
        "version": FORMAT_VERSION,
        "edge_count": len(edges),
        "raw_dependency_count": graph.raw_edge_count(),
        "edges": [
            {
                "prec": edge.prec.to_a1(),
                "dep": edge.dep.to_a1(),
                "pattern": edge.pattern.name,
                "meta": _meta_to_json(edge),
            }
            for edge in edges
        ],
    }
    return json.dumps(payload, indent=1)


def dump_graph(graph: TacoGraph, target: "str | IO[str]") -> None:
    text = dumps_graph(graph)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)


def loads_graph(text: str) -> TacoGraph:
    """Deserialize a graph from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != "taco-graph":
        raise GraphFormatError("missing taco-graph header")
    if payload.get("version") != FORMAT_VERSION:
        raise GraphFormatError(f"unsupported version {payload.get('version')!r}")
    graph = TacoGraph.full()
    records = payload.get("edges")
    if not isinstance(records, list):
        raise GraphFormatError("edges must be a list")
    for i, record in enumerate(records):
        try:
            pattern = ALL_PATTERNS[record["pattern"]]
            prec = Range.from_a1(record["prec"])
            dep = Range.from_a1(record["dep"])
            meta = _meta_from_json(record.get("meta"))
        except (KeyError, ValueError, TypeError) as exc:
            raise GraphFormatError(f"bad edge record {i}: {exc}") from exc
        edge = CompressedEdge(prec, dep, pattern, meta)
        _validate_edge(edge, i)
        graph.add_edge_raw(edge)
    declared = payload.get("edge_count")
    if declared is not None and declared != len(graph):
        raise GraphFormatError(
            f"edge_count mismatch: declared {declared}, decoded {len(graph)}"
        )
    return graph


def _validate_edge(edge: CompressedEdge, index: int) -> None:
    """Cheap structural validation: the edge must reconstruct cleanly."""
    try:
        members = edge.pattern.member_dependencies(edge)
    except Exception as exc:  # noqa: BLE001 - any failure means corrupt meta
        raise GraphFormatError(f"edge {index} has inconsistent meta: {exc}") from exc
    if not members:
        raise GraphFormatError(f"edge {index} reconstructs no dependencies")


def load_graph(source: "str | IO[str]") -> TacoGraph:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return loads_graph(handle.read())
    return loads_graph(source.read())
