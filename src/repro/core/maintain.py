"""Incremental maintenance of the compressed graph (paper Sec. IV-C).

Inserts go through Algorithm 2 (:mod:`repro.core.compress`).  Clearing a
run of formula cells finds the edges whose dependents overlap the cleared
range through the vertex index, asks each pattern's ``remove_dep`` for the
surviving edges, and swaps them in — no decompression.  An update is
modelled as clear + insert, as in the paper.

Batch commits add a second mode on top of the per-edit primitives:

* :func:`coalesce_cells` merges an edited cell set into its exact
  rectangle cover, so one ``clear_cells`` index search (and one pattern
  ``remove_dep`` split per touched edge) replaces per-cell maintenance;
* :func:`batch_update` wraps a whole clear+insert wave in the graph's
  deferred-maintenance mode, feeding the insertions column-major (the
  order that maximises pattern merges) and letting the graph settle its
  vertex indexes once at the end — replaying the queued deletes when the
  batch was small, bulk-repacking (STR on the R-Tree) when it was large.

Maintenance invariant, both modes: after any sequence of clears and
inserts, :meth:`TacoGraph.decompress` equals the raw dependency set the
same sequence would leave in an uncompressed graph.  The compressed
*edge* set may differ between the two modes (greedy compression is order
sensitive); the represented dependencies never do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, NamedTuple

from ..grid.range import Range
from ..graphs.base import Budget
from ..sheet.sheet import Dependency

if TYPE_CHECKING:  # pragma: no cover
    from .taco_graph import TacoGraph

__all__ = [
    "BatchMaintenanceResult",
    "batch_update",
    "clear_cells",
    "coalesce_cells",
    "update_cell",
]


def clear_cells(graph: "TacoGraph", rng: Range, budget: Budget | None = None) -> int:
    """Remove the dependencies of all formula cells within ``rng``.

    One dependent-index search plus a constant-time ``remove_dep`` per
    overlapping edge: ``O(S + k)`` for ``k`` touched edges, where ``S``
    is the backend's search cost — never proportional to the number of
    raw dependencies the touched edges compress.  Returns the number of
    compressed edges actually removed or replaced — index hits whose
    dependent range turns out not to intersect the cleared range are not
    counted.
    """
    affected = graph.dep_overlapping(rng)
    touched = 0
    for edge in affected:
        if budget is not None:
            budget.check()
        overlap = rng.intersect(edge.dep)
        if overlap is None:
            continue
        replacements = edge.pattern.remove_dep(edge, overlap)
        graph.remove_edge(edge)
        for piece in replacements:
            graph.add_edge_raw(piece)
        touched += 1
    return touched


def update_cell(
    graph: "TacoGraph",
    cell: Range,
    new_dependencies: Iterable[Dependency],
    budget: Budget | None = None,
) -> None:
    """Replace a formula cell's dependencies (clear + insert)."""
    clear_cells(graph, cell, budget)
    for dependency in new_dependencies:
        if budget is not None:
            budget.check()
        graph.add_dependency(dependency, budget)


def coalesce_cells(positions: Iterable[tuple[int, int]]) -> list[Range]:
    """Exact rectangle cover of a cell set: column runs, then stripes.

    Cells are first merged into maximal vertical runs per column, then
    runs with identical row extents in consecutive columns are merged
    into one rectangle — so a rectangular edit region coalesces to a
    single range, a column edit to one run, and scattered edits stay
    single cells.  The cover is *exact* (no cell outside ``positions`` is
    covered), which matters because ``clear_cells`` clears every formula
    cell inside the ranges it is given.  ``O(n log n)`` in the number of
    cells.
    """
    runs: list[tuple[int, int, int]] = []  # (col, r1, r2)
    for col, row in sorted(set(positions)):
        if runs and runs[-1][0] == col and runs[-1][2] == row - 1:
            runs[-1] = (col, runs[-1][1], row)
        else:
            runs.append((col, row, row))
    # Merge consecutive columns whose runs span the same rows.
    by_rows: list[tuple[int, int, int, int]] = []  # (c1, c2, r1, r2)
    for col, r1, r2 in sorted(runs, key=lambda t: (t[1], t[2], t[0])):
        if by_rows and by_rows[-1][2:] == (r1, r2) and by_rows[-1][1] == col - 1:
            c1, _, _, _ = by_rows[-1]
            by_rows[-1] = (c1, col, r1, r2)
        else:
            by_rows.append((col, col, r1, r2))
    return [Range(c1, r1, c2, r2) for c1, c2, r1, r2 in by_rows]


class BatchMaintenanceResult(NamedTuple):
    """What one :func:`batch_update` did to the graph."""

    cleared_ranges: int
    edges_touched: int
    inserted: int
    repacked: bool


def batch_update(
    graph,
    cleared_ranges: Iterable[Range],
    new_dependencies: Iterable[Dependency],
    budget: Budget | None = None,
    repack_fraction: float = 0.25,
    repack_min: int = 64,
) -> BatchMaintenanceResult:
    """Apply a coalesced wave of clears and inserts in one deferred pass.

    Works on any :class:`~repro.graphs.base.FormulaGraph`; graphs that
    expose ``begin/end_deferred_maintenance`` (TACO) get their vertex
    index deletes queued and settled once — replayed when few, bulk
    repacked when the touched share exceeds ``repack_fraction`` (see
    :meth:`TacoGraph.end_deferred_maintenance`).  Insertions are sorted
    into column-major dependent order first, the same order a full build
    uses, so neighbouring formulas merge into compressed runs regardless
    of the order the batch recorded them in.
    """
    ranges = list(cleared_ranges)
    deps = sorted(new_dependencies, key=lambda d: (d.dep.c1, d.dep.r1))
    begin = getattr(graph, "begin_deferred_maintenance", None)
    end = getattr(graph, "end_deferred_maintenance", None)
    deferred = begin is not None and end is not None
    if deferred:
        begin()
    repacked = False
    touched = 0
    try:
        for rng in ranges:
            touched += graph.clear_cells(rng, budget) or 0
        for dep in deps:
            if budget is not None:
                budget.check()
            graph.add_dependency(dep, budget)
    finally:
        if deferred:
            repacked = end(repack_fraction, repack_min)
    return BatchMaintenanceResult(
        cleared_ranges=len(ranges),
        edges_touched=touched,
        inserted=len(deps),
        repacked=repacked,
    )
