"""Incremental maintenance of the compressed graph (paper Sec. IV-C).

Inserts go through Algorithm 2 (:mod:`repro.core.compress`).  Clearing a
run of formula cells finds the edges whose dependents overlap the cleared
range through the vertex index, asks each pattern's ``remove_dep`` for the
surviving edges, and swaps them in — no decompression.  An update is
modelled as clear + insert, as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..grid.range import Range
from ..graphs.base import Budget
from ..sheet.sheet import Dependency

if TYPE_CHECKING:  # pragma: no cover
    from .taco_graph import TacoGraph

__all__ = ["clear_cells", "update_cell"]


def clear_cells(graph: "TacoGraph", rng: Range, budget: Budget | None = None) -> int:
    """Remove the dependencies of all formula cells within ``rng``.

    Returns the number of compressed edges actually removed or replaced —
    index hits whose dependent range turns out not to intersect the
    cleared range are not counted.
    """
    affected = graph.dep_overlapping(rng)
    touched = 0
    for edge in affected:
        if budget is not None:
            budget.check()
        overlap = rng.intersect(edge.dep)
        if overlap is None:
            continue
        replacements = edge.pattern.remove_dep(edge, overlap)
        graph.remove_edge(edge)
        for piece in replacements:
            graph.add_edge_raw(piece)
        touched += 1
    return touched


def update_cell(
    graph: "TacoGraph",
    cell: Range,
    new_dependencies: Iterable[Dependency],
    budget: Budget | None = None,
) -> None:
    """Replace a formula cell's dependencies (clear + insert)."""
    clear_cells(graph, cell, budget)
    for dependency in new_dependencies:
        if budget is not None:
            budget.check()
        graph.add_dependency(dependency, budget)
