"""Greedy compression of dependencies into the graph (paper Algorithm 2).

Exact edge minimisation (CEM) is NP-hard (Theorem 1; see
:mod:`repro.core.optimal` for the exact solver used to demonstrate it), so
TACO inserts dependencies one at a time:

1. *Find candidate edges*: edges whose dependent range is adjacent to the
   new formula cell along the row or column axis, found by probing the
   vertex index around the cell.
2. *Find valid candidates*: ask each pattern's ``addDep`` whether the
   dependency fits (``try_pair`` for uncompressed candidates, the edge's
   own ``try_merge`` otherwise).
3. *Select the final edge* by the paper's heuristics: column-wise
   compression first, then special-case patterns (RR-Chain over RR), then
   the dollar-sign cue, then deterministic tie-breaks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sheet.sheet import Dependency
from .patterns.base import COLUMN_AXIS, CompressedEdge, run_axis
from .patterns.single import SINGLE

if TYPE_CHECKING:  # pragma: no cover
    from .taco_graph import TacoGraph

__all__ = ["insert_dependency", "select_final_edge"]


def insert_dependency(graph: "TacoGraph", dependency: Dependency) -> CompressedEdge:
    """Compress one dependency into the graph; returns the edge it landed in."""
    candidates = graph.candidate_edges(dependency.dep.head)
    valid: list[tuple[CompressedEdge, CompressedEdge]] = []
    for candidate in candidates:
        if candidate.pattern is SINGLE:
            for pattern in graph.patterns:
                merged = pattern.try_pair(candidate, dependency)
                if merged is not None:
                    valid.append((merged, candidate))
        else:
            merged = candidate.pattern.try_merge(candidate, dependency)
            if merged is not None:
                valid.append((merged, candidate))
    if valid:
        merged, old = select_final_edge(graph, valid, dependency)
        graph.remove_edge(old)
        graph.add_edge_raw(merged)
        return merged
    fresh = CompressedEdge(dependency.prec, dependency.dep, SINGLE, None)
    graph.add_edge_raw(fresh)
    return fresh


def select_final_edge(
    graph: "TacoGraph",
    valid: list[tuple[CompressedEdge, CompressedEdge]],
    dependency: Dependency,
) -> tuple[CompressedEdge, CompressedEdge]:
    """Rank valid merges by the paper's heuristics and return the best."""
    pattern_priority = graph.pattern_priority

    def score(pair: tuple[CompressedEdge, CompressedEdge]):
        merged, old = pair
        column_wise = run_axis(merged.dep) == COLUMN_AXIS
        cue_hit = graph.use_cues and merged.pattern.cue == dependency.cue
        return (
            0 if (column_wise or not graph.prefer_column) else 1,
            0 if merged.pattern.is_special else 1,
            0 if cue_hit else 1,
            # Prefer growing an existing compressed run over pairing two
            # singles; larger runs first.
            0 if old.pattern is not SINGLE else 1,
            -old.dep.size,
            pattern_priority.get(merged.pattern.name, len(pattern_priority)),
            old.prec.as_tuple(),
            old.dep.as_tuple(),
        )

    return min(valid, key=score)
