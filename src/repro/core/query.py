"""Querying the compressed graph without decompression (paper Algorithm 3).

A modified BFS: the frontier holds ranges, the vertex index finds the
compressed edges whose precedent overlaps the frontier, each pattern's
``find_dep`` computes — in constant time — which subset of the edge's
dependent range actually depends on the frontier, and a result
:class:`~repro.grid.rangeset.RangeSet` (backed by the graph's own index
backend) keeps only the not-yet-visited pieces.  Finding precedents is
the symmetric dual.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable

from ..grid.range import Range
from ..grid.rangeset import RangeSet
from ..graphs.base import Budget

if TYPE_CHECKING:  # pragma: no cover
    from .taco_graph import TacoGraph

__all__ = [
    "dependents_of_seeds",
    "find_dependents",
    "find_dependents_multi",
    "find_precedents",
]


def dependents_of_seeds(graph, seeds: Iterable[Range]) -> list[Range]:
    """Transitive dependents of ``seeds`` on *any* formula graph.

    Dispatches to the graph's ``find_dependents_multi`` (one shared BFS)
    when it has one — TACO does — and otherwise falls back to one
    ``find_dependents`` call per seed, deduplicating overlapping results
    through a :class:`~repro.grid.rangeset.RangeSet`.  This is the
    common dirty-set probe of the batch-commit and structural-edit
    pipelines.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    multi = getattr(graph, "find_dependents_multi", None)
    if multi is not None:
        return multi(seeds)
    merged = RangeSet(index=getattr(graph, "index_spec", "rtree"))
    for seed in seeds:
        for rng in graph.find_dependents(seed):
            merged.add_new(rng)
    return merged.ranges


def find_dependents(
    graph: "TacoGraph", rng: Range, budget: Budget | None = None
) -> list[Range]:
    """All ranges whose cells (transitively) depend on ``rng``.

    Cost is ``O(E' · (S + P))`` where ``E'`` is the number of compressed
    edges actually reached, ``S`` the backend's search cost and ``P`` the
    pattern's constant-time ``find_dep`` — independent of how many raw
    dependencies the reached edges compress away.
    """
    return find_dependents_multi(graph, (rng,), budget)


def find_dependents_multi(
    graph: "TacoGraph", seeds: Iterable[Range], budget: Budget | None = None
) -> list[Range]:
    """Dependents of *all* ``seeds`` in one BFS pass (batch-commit path).

    Seeding a single traversal with every edited range visits each
    compressed edge at most once per distinct overlap, instead of once
    per seed as repeated :func:`find_dependents` calls would; the shared
    :class:`~repro.grid.rangeset.RangeSet` also deduplicates dependents
    reachable from several seeds.  Returned ranges are disjoint.
    """
    queue: deque[Range] = deque(seeds)
    result = RangeSet(index=graph.index_spec)
    stats = graph.query_stats
    while queue:
        prec_to_visit = queue.popleft()
        for edge in graph.prec_overlapping(prec_to_visit):
            stats.edge_accesses += 1
            if budget is not None:
                budget.check()
            overlap = prec_to_visit.intersect(edge.prec)
            if overlap is None:
                continue
            for dep_range in edge.pattern.find_dep(edge, overlap):
                for fresh in result.add_new(dep_range):
                    queue.append(fresh)
    return result.ranges


def find_precedents(
    graph: "TacoGraph", rng: Range, budget: Budget | None = None
) -> list[Range]:
    """All ranges whose cells ``rng`` (transitively) depends on."""
    queue: deque[Range] = deque([rng])
    result = RangeSet(index=graph.index_spec)
    stats = graph.query_stats
    while queue:
        dep_to_visit = queue.popleft()
        for edge in graph.dep_overlapping(dep_to_visit):
            stats.edge_accesses += 1
            if budget is not None:
                budget.check()
            overlap = dep_to_visit.intersect(edge.dep)
            if overlap is None:
                continue
            for prec_range in edge.pattern.find_prec(edge, overlap):
                for fresh in result.add_new(prec_range):
                    queue.append(fresh)
    return result.ranges
