"""Querying the compressed graph without decompression (paper Algorithm 3).

A modified BFS: the frontier holds ranges, the vertex index finds the
compressed edges whose precedent overlaps the frontier, each pattern's
``find_dep`` computes — in constant time — which subset of the edge's
dependent range actually depends on the frontier, and a result
:class:`~repro.grid.rangeset.RangeSet` (backed by the graph's own index
backend) keeps only the not-yet-visited pieces.  Finding precedents is
the symmetric dual.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable

from ..grid.range import Range
from ..grid.rangeset import RangeSet
from ..graphs.base import Budget

if TYPE_CHECKING:  # pragma: no cover
    from .taco_graph import TacoGraph

__all__ = [
    "GroupedDependents",
    "dependents_of_seeds",
    "find_dependents",
    "find_dependents_multi",
    "find_dependents_multi_grouped",
    "find_precedents",
]


def dependents_of_seeds(graph, seeds: Iterable[Range]) -> list[Range]:
    """Transitive dependents of ``seeds`` on *any* formula graph.

    Dispatches to the graph's ``find_dependents_multi`` (one shared BFS)
    when it has one — TACO does — and otherwise falls back to one
    ``find_dependents`` call per seed, deduplicating overlapping results
    through a :class:`~repro.grid.rangeset.RangeSet`.  This is the
    common dirty-set probe of the batch-commit and structural-edit
    pipelines.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    multi = getattr(graph, "find_dependents_multi", None)
    if multi is not None:
        return multi(seeds)
    merged = RangeSet(index=getattr(graph, "index_spec", "rtree"))
    for seed in seeds:
        for rng in graph.find_dependents(seed):
            merged.add_new(rng)
    return merged.ranges


def find_dependents(
    graph: "TacoGraph", rng: Range, budget: Budget | None = None
) -> list[Range]:
    """All ranges whose cells (transitively) depend on ``rng``.

    Cost is ``O(E' · (S + P))`` where ``E'`` is the number of compressed
    edges actually reached, ``S`` the backend's search cost and ``P`` the
    pattern's constant-time ``find_dep`` — independent of how many raw
    dependencies the reached edges compress away.
    """
    return find_dependents_multi(graph, (rng,), budget)


def find_dependents_multi(
    graph: "TacoGraph", seeds: Iterable[Range], budget: Budget | None = None
) -> list[Range]:
    """Dependents of *all* ``seeds`` in one BFS pass (batch-commit path).

    Seeding a single traversal with every edited range visits each
    compressed edge at most once per distinct overlap, instead of once
    per seed as repeated :func:`find_dependents` calls would; the shared
    :class:`~repro.grid.rangeset.RangeSet` also deduplicates dependents
    reachable from several seeds.  Returned ranges are disjoint.
    """
    queue: deque[Range] = deque(seeds)
    result = RangeSet(index=graph.index_spec)
    stats = graph.query_stats
    while queue:
        prec_to_visit = queue.popleft()
        for edge in graph.prec_overlapping(prec_to_visit):
            stats.edge_accesses += 1
            if budget is not None:
                budget.check()
            overlap = prec_to_visit.intersect(edge.prec)
            if overlap is None:
                continue
            for dep_range in edge.pattern.find_dep(edge, overlap):
                for fresh in result.add_new(dep_range):
                    queue.append(fresh)
    return result.ranges


class GroupedDependents:
    """One weakly-connected dependent group of a multi-seed BFS.

    ``seeds`` are indices into the seed list that ended up in this group;
    ``ranges`` the disjoint dependent ranges their shared frontier
    reached (empty when the seeds have no dependents at all).
    """

    __slots__ = ("seeds", "ranges")

    def __init__(self, seeds: "list[int]", ranges: "list[Range]"):
        self.seeds = seeds
        self.ranges = ranges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupedDependents(seeds={self.seeds}, ranges={len(self.ranges)})"


def find_dependents_multi_grouped(
    graph: "TacoGraph", seeds: Iterable[Range], budget: Budget | None = None
) -> "list[GroupedDependents]":
    """Dependents of ``seeds``, grouped into weakly-connected frontiers.

    The same single-pass range BFS as :func:`find_dependents_multi`, but
    each seed starts its own group and a union-find merges two groups
    whenever one's expansion lands on territory the other already
    visited.  Groups that never touch are provably independent: no
    compressed edge connects their dependent sets, so they can be
    recalculated concurrently (:mod:`repro.engine.parallel` uses this as
    its region *preview*; the execution-time partition is re-derived
    exactly, at plan level, from the dirty set's ordering adjacency).

    Grouping is conservative — two seeds whose dependents merely share a
    stored range piece are merged even if their cell-level dependencies
    are disjoint — which errs on the safe (serial) side.  Groups are
    returned ordered by their smallest seed index; ranges across groups
    are disjoint and their union equals :func:`find_dependents_multi` of
    the same seeds.
    """
    seeds = list(seeds)
    parent = list(range(len(seeds)))

    def find(g: int) -> int:
        while parent[g] != g:
            parent[g] = parent[parent[g]]
            g = parent[g]
        return g

    def union(a: int, b: int) -> int:
        ra, rb = find(a), find(b)
        if ra == rb:
            return ra
        if rb < ra:
            ra, rb = rb, ra
        parent[rb] = ra
        return ra

    queue: deque[tuple[Range, int]] = deque(
        (rng, g) for g, rng in enumerate(seeds)
    )
    result = RangeSet(index=graph.index_spec)
    owner: dict[Range, int] = {}
    stats = graph.query_stats
    while queue:
        prec_to_visit, group = queue.popleft()
        group = find(group)
        for edge in graph.prec_overlapping(prec_to_visit):
            stats.edge_accesses += 1
            if budget is not None:
                budget.check()
            overlap = prec_to_visit.intersect(edge.prec)
            if overlap is None:
                continue
            for dep_range in edge.pattern.find_dep(edge, overlap):
                for member in result.overlapping_members(dep_range):
                    group = union(group, owner[member])
                for fresh in result.add_new(dep_range):
                    owner[fresh] = group
                    queue.append((fresh, group))
    groups: dict[int, GroupedDependents] = {}
    for g in range(len(seeds)):
        root = find(g)
        entry = groups.get(root)
        if entry is None:
            entry = groups[root] = GroupedDependents([], [])
        entry.seeds.append(g)
    for piece, g in owner.items():
        groups[find(g)].ranges.append(piece)
    return [groups[root] for root in sorted(groups)]


def find_precedents(
    graph: "TacoGraph", rng: Range, budget: Budget | None = None
) -> list[Range]:
    """All ranges whose cells ``rng`` (transitively) depends on."""
    queue: deque[Range] = deque([rng])
    result = RangeSet(index=graph.index_spec)
    stats = graph.query_stats
    while queue:
        dep_to_visit = queue.popleft()
        for edge in graph.dep_overlapping(dep_to_visit):
            stats.edge_accesses += 1
            if budget is not None:
                budget.check()
            overlap = dep_to_visit.intersect(edge.dep)
            if overlap is None:
                continue
            for prec_range in edge.pattern.find_prec(edge, overlap):
                for fresh in result.add_new(prec_range):
                    queue.append(fresh)
    return result.ranges
