"""Dependency-path explanation over the compressed graph.

Dependency *tracing* answers "what depends on X"; auditing often needs
the stronger question "*why* does Y depend on X" — the concrete chain of
formulae that carries a bad value from its source to a suspicious
output (the paper's error-provenance application, Sec. I).  This module
finds such a path directly on the compressed graph: BFS with parent
pointers, expanding each compressed edge only at the O(1) granularity of
its pattern.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from ..grid.range import Range
from ..grid.rangeset import RangeSet
from .patterns.base import CompressedEdge
from .taco_graph import TacoGraph

__all__ = ["PathStep", "explain_dependency"]


class PathStep(NamedTuple):
    """One hop of a dependency path."""

    prec: Range
    dep: Range
    pattern: str

    def describe(self) -> str:
        return f"{self.prec.to_a1()} -[{self.pattern}]-> {self.dep.to_a1()}"


def explain_dependency(
    graph: TacoGraph, source: Range, target: Range
) -> "list[PathStep] | None":
    """A shortest chain of dependencies from ``source`` to ``target``.

    Returns None when ``target`` does not (transitively) depend on
    ``source``.  Each step narrows to the sub-range that actually
    carries the dependency, so the path reads like a provenance trace:

        B2 -[RR]-> C2  ...  C2 -[RR-Chain]-> C3:C9
    """
    # parents maps a visited range to (previous frontier range, edge).
    parents: dict[Range, tuple[Range, CompressedEdge] | None] = {}
    visited = RangeSet(index=graph.index_spec)
    queue: deque[Range] = deque([source])
    parents[source] = None
    hit: Range | None = None

    while queue and hit is None:
        frontier = queue.popleft()
        for edge in graph.prec_overlapping(frontier):
            overlap = frontier.intersect(edge.prec)
            if overlap is None:
                continue
            for dep_range in edge.pattern.find_dep(edge, overlap):
                for fresh in visited.add_new(dep_range):
                    parents[fresh] = (frontier, edge)
                    queue.append(fresh)
                    if fresh.overlaps(target):
                        hit = fresh
                        break
                if hit is not None:
                    break
            if hit is not None:
                break

    if hit is None:
        return None

    # Walk the parent chain back to the source.
    steps: list[PathStep] = []
    current: Range | None = hit
    while current is not None:
        link = parents[current]
        if link is None:
            break
        previous, edge = link
        steps.append(PathStep(previous, current, edge.pattern.name))
        current = previous
    steps.reverse()
    return steps
