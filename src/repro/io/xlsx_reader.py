"""Minimal xlsx reader on the standard library.

Parses the SpreadsheetML parts the formula-graph pipeline needs: sheet
names and order from ``xl/workbook.xml`` (resolving relationship targets),
the shared-string table, and per-sheet cell values and formulae.

Shared formulae are reconstructed the way a spreadsheet engine does: the
anchor cell's formula is parsed once and *shifted* to each member cell of
the group (relative references move, ``$``-fixed ones stay), so a
shared-formula file round-trips to the same dependency set as a fully
materialised one.
"""

from __future__ import annotations

import posixpath
import zipfile
from typing import IO
from xml.etree import ElementTree

from ..formula.errors import ExcelError
from ..grid.ref import parse_cell
from ..sheet.sheet import Sheet
from ..sheet.workbook import Workbook
from .shared import strip_ns

__all__ = ["read_xlsx", "XlsxFormatError"]


class XlsxFormatError(ValueError):
    """Raised for files that are not parseable xlsx archives."""


def read_xlsx(source: "str | IO[bytes]") -> Workbook:
    """Read an ``.xlsx`` file (path or binary stream) into a Workbook."""
    try:
        archive = zipfile.ZipFile(source)
    except zipfile.BadZipFile as exc:
        raise XlsxFormatError(f"not a zip archive: {exc}") from exc
    with archive:
        sheet_targets = _sheet_targets(archive)
        shared_strings = _shared_strings(archive)
        workbook = Workbook()
        for name, target in sheet_targets:
            sheet = workbook.add_sheet(name)
            _read_sheet(archive, target, sheet, shared_strings)
        return workbook


def _read_xml(archive: zipfile.ZipFile, path: str) -> ElementTree.Element | None:
    try:
        data = archive.read(path)
    except KeyError:
        return None
    try:
        return ElementTree.fromstring(data)
    except ElementTree.ParseError as exc:
        raise XlsxFormatError(f"malformed XML in {path}: {exc}") from exc


def _sheet_targets(archive: zipfile.ZipFile) -> list[tuple[str, str]]:
    workbook_root = _read_xml(archive, "xl/workbook.xml")
    if workbook_root is None:
        raise XlsxFormatError("missing xl/workbook.xml")
    rels_root = _read_xml(archive, "xl/_rels/workbook.xml.rels")
    rel_targets: dict[str, str] = {}
    if rels_root is not None:
        for rel in rels_root:
            rel_targets[rel.get("Id", "")] = rel.get("Target", "")

    out: list[tuple[str, str]] = []
    fallback_index = 0
    for element in workbook_root.iter():
        if strip_ns(element.tag) != "sheet":
            continue
        name = element.get("name", f"Sheet{len(out) + 1}")
        rel_id = None
        for key, value in element.attrib.items():
            if strip_ns(key) == "id":
                rel_id = value
        target = rel_targets.get(rel_id or "", "")
        if not target:
            fallback_index += 1
            target = f"worksheets/sheet{fallback_index}.xml"
        if not target.startswith("/"):
            target = posixpath.normpath(posixpath.join("xl", target))
        else:
            target = target.lstrip("/")
        out.append((name, target))
    if not out:
        raise XlsxFormatError("workbook declares no sheets")
    return out


def _shared_strings(archive: zipfile.ZipFile) -> list[str]:
    root = _read_xml(archive, "xl/sharedStrings.xml")
    if root is None:
        return []
    strings: list[str] = []
    for si in root:
        if strip_ns(si.tag) != "si":
            continue
        strings.append(_text_of(si))
    return strings


def _text_of(element: ElementTree.Element) -> str:
    """Concatenate all <t> descendants (handles rich-text runs)."""
    parts: list[str] = []
    for node in element.iter():
        if strip_ns(node.tag) == "t" and node.text:
            parts.append(node.text)
    return "".join(parts)


def _read_sheet(
    archive: zipfile.ZipFile,
    target: str,
    sheet: Sheet,
    shared_strings: list[str],
) -> None:
    root = _read_xml(archive, target)
    if root is None:
        raise XlsxFormatError(f"missing worksheet part {target}")
    # si -> (anchor_col, anchor_row, anchor_ast); anchors appear before
    # their followers in document order.
    shared_anchors: dict[str, tuple[int, int, object]] = {}
    for element in root.iter():
        if strip_ns(element.tag) != "c":
            continue
        ref = element.get("r")
        if not ref:
            continue
        col, row = parse_cell(ref)
        cell_type = element.get("t", "n")
        formula_el = None
        value_el = None
        inline_el = None
        for child in element:
            tag = strip_ns(child.tag)
            if tag == "f":
                formula_el = child
            elif tag == "v":
                value_el = child
            elif tag == "is":
                inline_el = child

        if formula_el is not None:
            handled = _apply_formula(sheet, col, row, formula_el, shared_anchors)
            if handled:
                # Attach the cached value, if any, to the formula cell.
                cached = _parse_value(cell_type, value_el, inline_el, shared_strings)
                if cached is not None:
                    sheet.cell_at((col, row)).value = cached
                continue
        value = _parse_value(cell_type, value_el, inline_el, shared_strings)
        if value is not None:
            sheet.set_value((col, row), value)


def _apply_formula(
    sheet: Sheet,
    col: int,
    row: int,
    formula_el: ElementTree.Element,
    shared_anchors: dict[str, tuple[int, int, object]],
) -> bool:
    text = formula_el.text or ""
    f_type = formula_el.get("t", "normal")
    if f_type == "shared":
        si = formula_el.get("si", "")
        if text:
            sheet.set_formula((col, row), text)
            shared_anchors[si] = (col, row, sheet.cell_at((col, row)).formula_ast)
            return True
        anchor = shared_anchors.get(si)
        if anchor is None:
            return False  # dangling follower: fall back to stored value
        anchor_col, anchor_row, anchor_ast = anchor
        sheet.set_formula_ast((col, row), anchor_ast.shifted(col - anchor_col, row - anchor_row))
        return True
    if f_type == "array":
        # Array formulae are out of scope; keep the cached value only.
        return False
    if text:
        sheet.set_formula((col, row), text)
        return True
    return False


def _parse_value(
    cell_type: str,
    value_el: ElementTree.Element | None,
    inline_el: ElementTree.Element | None,
    shared_strings: list[str],
):
    if cell_type == "inlineStr":
        return _text_of(inline_el) if inline_el is not None else None
    if value_el is None or value_el.text is None:
        return None
    raw = value_el.text
    if cell_type == "s":
        try:
            return shared_strings[int(raw)]
        except (ValueError, IndexError) as exc:
            raise XlsxFormatError(f"bad shared-string index {raw!r}") from exc
    if cell_type == "b":
        return raw.strip() in ("1", "true", "TRUE")
    if cell_type == "e":
        return ExcelError(raw.strip())
    if cell_type == "str":
        return raw
    try:
        return float(raw)
    except ValueError:
        return raw


def read_xlsx_dependencies(source: "str | IO[bytes]"):
    """Convenience: read a file and return (workbook, per-sheet deps)."""
    workbook = read_xlsx(source)
    deps = {
        sheet.name: list(sheet.iter_dependencies())
        for sheet in workbook.sheets()
    }
    return workbook, deps
