"""Whole-workbook snapshots: values, formula source, compressed graphs.

The paper's one-off compression cost (Fig. 11) is worth paying once per
*workbook*, not once per process.  A snapshot persists everything a
service needs to reopen a workbook without re-parsing, re-building, or
re-computing anything:

* every cell — pure values, and formula cells as *source text plus the
  cached evaluated value* (restored formulas re-parse lazily, and only
  if something actually touches them);
* every sheet's **compressed** formula graph, via
  :mod:`repro.core.serialize` — including the spatial-index backend and
  the pattern registry, so the restored graph compresses future edits
  exactly like the saved one.

Wire format (version 1), little-endian::

    header   MAGIC(8) = b"TACOSNP1"   version u32
    section  tag(4)   crc32 u32   length u64   payload[length]
    ...
    end      tag b"END."  crc32(b"") u32  length=0 u64

Sections in a version-1 snapshot: ``META`` (workbook name + sheet
order), then one ``CELL`` and one ``GRPH`` per sheet (JSON payloads,
UTF-8).  Readers skip sections with unknown tags, so future versions can
add sections without breaking old readers; every payload is protected by
its CRC32, and a missing ``END.`` section means the snapshot is
truncated.  Snapshots are written atomically (temp file + ``fsync`` +
rename), so unlike the edit journal a torn snapshot is an *error*, not
an expected state.
"""

from __future__ import annotations

import json
import os
import struct
import uuid
import zlib
from typing import IO, Mapping, NamedTuple

from ..core.serialize import GraphFormatError, graph_from_payload, graph_payload
from ..core.taco_graph import build_from_sheet
from ..formula.errors import ExcelError
from ..sheet.sheet import Sheet
from ..sheet.workbook import Workbook

__all__ = [
    "Snapshot",
    "SnapshotFormatError",
    "SnapshotStats",
    "decode_value",
    "encode_value",
    "load_snapshot",
    "save_snapshot",
]

MAGIC = b"TACOSNP1"
FORMAT_VERSION = 1

_TAG_META = b"META"
_TAG_CELLS = b"CELL"
_TAG_GRAPH = b"GRPH"
_TAG_END = b"END."

_SECTION_HEADER = struct.Struct("<4sIQ")


class SnapshotFormatError(ValueError):
    """Raised when a snapshot cannot be decoded (corrupt, truncated,
    or written by an unsupported format version)."""


class Snapshot(NamedTuple):
    """A loaded snapshot: the workbook, its per-sheet graphs, and meta."""

    workbook: Workbook
    graphs: dict            # sheet name -> restored formula graph
    meta: dict              # the META section payload


class SnapshotStats(NamedTuple):
    """What one :func:`save_snapshot` call wrote."""

    sheets: int
    cells: int              # cell records across every sheet
    edges: int              # compressed edges across every sheet
    bytes_written: int
    #: Unique id stamped into META; hand it to
    #: :class:`~repro.engine.journal.Journal` so recovery can reject a
    #: journal that belongs to a different (e.g. stale) snapshot.
    snapshot_id: str = ""


# -- value encoding ---------------------------------------------------------------

def encode_value(value):
    """JSON-encode one cell value (scalars pass through, errors are tagged)."""
    if value is None or isinstance(value, (float, int, str, bool)):
        return value
    if isinstance(value, ExcelError):
        return {"$err": value.code}
    raise SnapshotFormatError(
        f"cannot persist cell value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        code = value.get("$err")
        if not isinstance(code, str):
            raise SnapshotFormatError(f"bad encoded value {value!r}")
        return ExcelError(code)
    return value


# -- section plumbing -------------------------------------------------------------

def _write_section(out: IO[bytes], tag: bytes, payload: bytes) -> int:
    out.write(_SECTION_HEADER.pack(tag, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)))
    out.write(payload)
    return _SECTION_HEADER.size + len(payload)


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` so a freshly created or
    renamed file survives power loss (no-op where unsupported)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


def _read_exact(handle: IO[bytes], size: int, what: str) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise SnapshotFormatError(f"truncated snapshot: incomplete {what}")
    return data


def _read_section(handle: IO[bytes]) -> tuple[bytes, bytes]:
    header = _read_exact(handle, _SECTION_HEADER.size, "section header")
    tag, crc, length = _SECTION_HEADER.unpack(header)
    payload = _read_exact(handle, length, f"{tag!r} section payload")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise SnapshotFormatError(f"checksum mismatch in {tag!r} section")
    return tag, payload


def _json_payload(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _cells_record(sheet: Sheet) -> list:
    records = []
    for (col, row), cell in sorted(sheet.items()):
        formula = cell.formula_text if cell.is_formula else None
        records.append([col, row, formula, encode_value(cell.value)])
    return records


# -- public API -------------------------------------------------------------------

def save_snapshot(
    workbook: Workbook,
    target: "str | IO[bytes]",
    graphs: "Mapping[str, object] | None" = None,
) -> SnapshotStats:
    """Write a snapshot of ``workbook`` (and its graphs) to ``target``.

    ``graphs`` maps sheet names to the formula graphs to persist —
    typically each sheet's live ``engine.graph``, so no compression work
    happens here at all.  Sheets without an entry get a graph built on
    the spot (:func:`~repro.core.taco_graph.build_from_sheet`).  Cached
    cell values are persisted as-is; callers that want the snapshot to
    hold *fresh* values should recalculate before saving.

    A string ``target`` is written atomically: the bytes go to a
    temporary sibling file which is fsync'd and renamed over the
    destination, so a crash mid-save never leaves a torn snapshot behind.
    """
    graphs = dict(graphs) if graphs is not None else {}
    stats_cells = 0
    stats_edges = 0
    snapshot_id = uuid.uuid4().hex
    meta = {
        "format": "taco-snapshot",
        "version": FORMAT_VERSION,
        "workbook": workbook.name,
        "sheets": workbook.sheet_names,
        "snapshot_id": snapshot_id,
    }

    def write_to(out: IO[bytes]) -> int:
        # Sections are built and written one at a time, so peak memory
        # is one section's payload, not the whole snapshot.
        nonlocal stats_cells, stats_edges
        written = len(MAGIC) + 4
        out.write(MAGIC)
        out.write(struct.pack("<I", FORMAT_VERSION))
        written += _write_section(out, _TAG_META, _json_payload(meta))
        for sheet in workbook.sheets():
            graph = graphs.get(sheet.name)
            if graph is None:
                graph = build_from_sheet(sheet)
            cells = _cells_record(sheet)
            stats_cells += len(cells)
            written += _write_section(
                out, _TAG_CELLS,
                _json_payload({"sheet": sheet.name, "cells": cells}),
            )
            payload = graph_payload(graph)
            stats_edges += payload["edge_count"]
            written += _write_section(
                out, _TAG_GRAPH,
                _json_payload({"sheet": sheet.name, "graph": payload}),
            )
        written += _write_section(out, _TAG_END, b"")
        return written

    if isinstance(target, str):
        # A unique sibling temp file per call: concurrent saves of the
        # same path must not interleave into one stream (last complete
        # rename wins instead), and a failing save only removes its own
        # temp file.
        import tempfile

        directory = os.path.dirname(os.path.abspath(target)) or "."
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                written = write_to(handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
            # The rename itself must survive power loss too.
            fsync_directory(target)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
    else:
        written = write_to(target)
    return SnapshotStats(
        sheets=len(workbook), cells=stats_cells, edges=stats_edges,
        bytes_written=written, snapshot_id=snapshot_id,
    )


def load_snapshot(source: "str | IO[bytes]") -> Snapshot:
    """Read a snapshot back into a :class:`Snapshot`.

    Raises :class:`SnapshotFormatError` on a bad magic, a format version
    newer than this build supports (the error names both versions), a
    checksum mismatch, or a truncated stream.  Graph payloads are loaded
    without per-edge member validation — the section checksum already
    vouches for their integrity — so restore cost is proportional to
    *compressed* edges, not raw dependencies.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return _load_stream(handle)
    return _load_stream(source)


def _load_stream(handle: IO[bytes]) -> Snapshot:
    magic = _read_exact(handle, len(MAGIC), "magic")
    if magic != MAGIC:
        raise SnapshotFormatError(f"not a taco snapshot (magic {magic!r})")
    (version,) = struct.unpack("<I", _read_exact(handle, 4, "version"))
    if version > FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot was written by format version {version}, but this "
            f"build reads versions 1..{FORMAT_VERSION}; upgrade to load it"
        )
    meta: dict | None = None
    workbook: Workbook | None = None
    graphs: dict = {}
    while True:
        tag, payload = _read_section(handle)
        if tag == _TAG_END:
            break
        if tag == _TAG_META:
            meta = _decode_json(payload, "META")
            workbook = Workbook(str(meta.get("workbook", "workbook")))
            for name in meta.get("sheets", []):
                workbook.add_sheet(str(name))
        elif tag == _TAG_CELLS:
            record = _decode_json(payload, "CELL")
            sheet = _sheet_for(workbook, record)
            _restore_cells(sheet, record.get("cells", []))
        elif tag == _TAG_GRAPH:
            record = _decode_json(payload, "GRPH")
            sheet = _sheet_for(workbook, record)
            try:
                graphs[sheet.name] = graph_from_payload(
                    record.get("graph"), validate=False
                )
            except GraphFormatError as exc:
                raise SnapshotFormatError(
                    f"bad graph section for sheet {sheet.name!r}: {exc}"
                ) from exc
        # Unknown tags are skipped: their checksum was still verified.
    if workbook is None or meta is None:
        raise SnapshotFormatError("snapshot has no META section")
    return Snapshot(workbook=workbook, graphs=graphs, meta=meta)


def _decode_json(payload: bytes, tag: str) -> dict:
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"bad {tag} section: {exc}") from exc
    if not isinstance(record, dict):
        raise SnapshotFormatError(f"bad {tag} section: expected an object")
    return record


def _sheet_for(workbook: Workbook | None, record: dict) -> Sheet:
    if workbook is None:
        raise SnapshotFormatError("sheet section before META")
    name = record.get("sheet")
    if not isinstance(name, str) or name not in workbook:
        raise SnapshotFormatError(f"section names unknown sheet {name!r}")
    return workbook[name]


def _restore_cells(sheet: Sheet, records) -> None:
    for record in records:
        try:
            col, row, formula, value = record
            pos = (int(col), int(row))
        except (TypeError, ValueError) as exc:
            raise SnapshotFormatError(f"bad cell record {record!r}") from exc
        if formula is not None:
            sheet.set_formula(pos, str(formula))
            sheet.cell_at(pos).value = decode_value(value)
        else:
            sheet.set_value(pos, decode_value(value))
