"""Whole-workbook snapshots: values, formula source, compressed graphs.

The paper's one-off compression cost (Fig. 11) is worth paying once per
*workbook*, not once per process.  A snapshot persists everything a
service needs to reopen a workbook without re-parsing, re-building, or
re-computing anything:

* every cell — pure values, and formula cells as *source text plus the
  cached evaluated value* (restored formulas re-parse lazily, and only
  if something actually touches them);
* every sheet's **compressed** formula graph, via
  :mod:`repro.core.serialize` — including the spatial-index backend and
  the pattern registry, so the restored graph compresses future edits
  exactly like the saved one.

Wire format (version 2), little-endian::

    header   MAGIC(8) = b"TACOSNP1"   version u32
    section  tag(4)   crc32 u32   length u64   payload[length]
    ...
    end      tag b"END."  crc32(b"") u32  length=0 u64

Sections: ``META`` (workbook name + sheet order + per-sheet store
kinds), then per sheet a ``CELL`` section (JSON cell records, UTF-8),
zero or more ``VCOL`` sections, and a ``GRPH`` section.  For sheets on
the columnar store the pure-value population is persisted as ``VCOL``
sections — one per column, carrying the raw tag bytes and float64 value
bytes plus a JSON side table for strings/errors — and the ``CELL``
section holds only formula cells; object-store sheets write every cell
as a ``CELL`` record exactly as format version 1 did.  Version-1
streams load unchanged (they simply contain no ``VCOL`` sections), and
restored sheets always use the *restoring* session's store default, so
an object-store snapshot restores into columnar-backed sheets and vice
versa.

Readers skip sections with unknown tags, so future versions can add
sections without breaking old readers; every payload is protected by
its CRC32, and a missing ``END.`` section means the snapshot is
truncated.  Snapshots are written atomically (temp file + ``fsync`` +
rename), so unlike the edit journal a torn snapshot is an *error*, not
an expected state.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import uuid
import zlib
from array import array
from typing import IO, Iterator, Mapping, NamedTuple

from ..core.serialize import GraphFormatError, graph_from_payload, graph_payload
from ..core.taco_graph import build_from_sheet
from ..formula.errors import ExcelError
from ..sheet.columnar import TAG_BOOL, TAG_EMPTY, TAG_NUMBER, ColumnarStore
from ..sheet.sheet import Sheet
from ..sheet.workbook import Workbook

__all__ = [
    "Snapshot",
    "SnapshotFormatError",
    "SnapshotStats",
    "decode_value",
    "encode_value",
    "load_snapshot",
    "save_snapshot",
]

MAGIC = b"TACOSNP1"
FORMAT_VERSION = 2

_TAG_META = b"META"
_TAG_CELLS = b"CELL"
_TAG_VALUE_COLUMN = b"VCOL"
_TAG_GRAPH = b"GRPH"
_TAG_END = b"END."

_SECTION_HEADER = struct.Struct("<4sIQ")

#: VCOL payload: name_len u16, name bytes, then this, then tag bytes,
#: float64 value bytes, side_len u32, side JSON bytes.
_VCOL_HEADER = struct.Struct("<III")  # col, start_row, count


class SnapshotFormatError(ValueError):
    """Raised when a snapshot cannot be decoded (corrupt, truncated,
    or written by an unsupported format version)."""


class Snapshot(NamedTuple):
    """A loaded snapshot: the workbook, its per-sheet graphs, and meta."""

    workbook: Workbook
    graphs: dict            # sheet name -> restored formula graph
    meta: dict              # the META section payload


class SnapshotStats(NamedTuple):
    """What one :func:`save_snapshot` call wrote."""

    sheets: int
    cells: int              # cell records across every sheet
    edges: int              # compressed edges across every sheet
    bytes_written: int
    #: Unique id stamped into META; hand it to
    #: :class:`~repro.engine.journal.Journal` so recovery can reject a
    #: journal that belongs to a different (e.g. stale) snapshot.
    snapshot_id: str = ""


# -- value encoding ---------------------------------------------------------------

def encode_value(value):
    """JSON-encode one cell value (scalars pass through, errors are tagged)."""
    if value is None or isinstance(value, (float, int, str, bool)):
        return value
    if isinstance(value, ExcelError):
        return {"$err": value.code}
    raise SnapshotFormatError(
        f"cannot persist cell value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        code = value.get("$err")
        if not isinstance(code, str):
            raise SnapshotFormatError(f"bad encoded value {value!r}")
        return ExcelError(code)
    return value


# -- section plumbing -------------------------------------------------------------

def _write_section(out: IO[bytes], tag: bytes, payload: bytes) -> int:
    out.write(_SECTION_HEADER.pack(tag, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)))
    out.write(payload)
    return _SECTION_HEADER.size + len(payload)


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` so a freshly created or
    renamed file survives power loss (no-op where unsupported)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


def _read_exact(handle: IO[bytes], size: int, what: str) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise SnapshotFormatError(f"truncated snapshot: incomplete {what}")
    return data


def _read_section(handle: IO[bytes]) -> tuple[bytes, bytes]:
    header = _read_exact(handle, _SECTION_HEADER.size, "section header")
    tag, crc, length = _SECTION_HEADER.unpack(header)
    payload = _read_exact(handle, length, f"{tag!r} section payload")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise SnapshotFormatError(f"checksum mismatch in {tag!r} section")
    return tag, payload


def _json_payload(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _cells_record(sheet: Sheet) -> list:
    """JSON cell records: every cell for object-store sheets, formula
    cells only for columnar sheets (pure values travel as VCOL)."""
    if isinstance(sheet._cells, ColumnarStore):
        items = sheet.formula_cells()
    else:
        items = sheet.items()
    records = []
    for (col, row), cell in sorted(items):
        formula = cell.formula_text if cell.is_formula else None
        records.append([col, row, formula, encode_value(cell.value)])
    return records


def _value_column_payloads(sheet: Sheet) -> "Iterator[tuple[bytes, int]]":
    """``(payload, cell_count)`` per VCOL section of a columnar sheet.

    Tags and float64 values are written as raw little-endian bytes; the
    sparse side table (strings, errors) rides along as JSON keyed by
    0-based offset within the run.
    """
    name_bytes = sheet.name.encode("utf-8")
    prefix = struct.pack("<H", len(name_bytes)) + name_bytes
    for col, start_row, tags, values, side in sheet._cells.export_value_columns():
        if sys.byteorder == "big":  # pragma: no cover - LE platforms
            values = array("d", values)
            values.byteswap()
        side_json = _json_payload({str(i): encode_value(v) for i, v in side.items()})
        payload = b"".join((
            prefix,
            _VCOL_HEADER.pack(col, start_row, len(tags)),
            tags,
            values.tobytes(),
            struct.pack("<I", len(side_json)),
            side_json,
        ))
        yield payload, len(tags) - tags.count(TAG_EMPTY)


def _restore_value_column(workbook: "Workbook | None", payload: bytes) -> None:
    try:
        (name_len,) = struct.unpack_from("<H", payload, 0)
        offset = 2 + name_len
        name = payload[2:offset].decode("utf-8")
        col, start_row, count = _VCOL_HEADER.unpack_from(payload, offset)
        offset += _VCOL_HEADER.size
        tags = payload[offset:offset + count]
        offset += count
        values = array("d")
        values.frombytes(payload[offset:offset + 8 * count])
        offset += 8 * count
        (side_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        side_record = json.loads(payload[offset:offset + side_len].decode("utf-8"))
        if len(tags) != count or len(values) != count:
            raise ValueError("short tag/value runs")
    except (struct.error, ValueError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"bad VCOL section: {exc}") from exc
    if sys.byteorder == "big":  # pragma: no cover - LE platforms
        values.byteswap()
    sheet = _sheet_for(workbook, {"sheet": name})
    side = {int(i): decode_value(v) for i, v in side_record.items()}
    cells = sheet._cells
    if isinstance(cells, ColumnarStore):
        cells.import_column(col, start_row, bytes(tags), values, side)
        return
    # Restoring into an object-store sheet: expand the run per cell.
    for i in range(count):
        tag = tags[i]
        if tag == TAG_EMPTY:
            continue
        if tag == TAG_NUMBER:
            value = values[i]
        elif tag == TAG_BOOL:
            value = values[i] != 0.0
        else:
            value = side[i]
        sheet.set_value((col, start_row + i), value)


# -- public API -------------------------------------------------------------------

def save_snapshot(
    workbook: Workbook,
    target: "str | IO[bytes]",
    graphs: "Mapping[str, object] | None" = None,
) -> SnapshotStats:
    """Write a snapshot of ``workbook`` (and its graphs) to ``target``.

    ``graphs`` maps sheet names to the formula graphs to persist —
    typically each sheet's live ``engine.graph``, so no compression work
    happens here at all.  Sheets without an entry get a graph built on
    the spot (:func:`~repro.core.taco_graph.build_from_sheet`).  Cached
    cell values are persisted as-is; callers that want the snapshot to
    hold *fresh* values should recalculate before saving.

    A string ``target`` is written atomically: the bytes go to a
    temporary sibling file which is fsync'd and renamed over the
    destination, so a crash mid-save never leaves a torn snapshot behind.
    """
    graphs = dict(graphs) if graphs is not None else {}
    stats_cells = 0
    stats_edges = 0
    snapshot_id = uuid.uuid4().hex
    meta = {
        "format": "taco-snapshot",
        "version": FORMAT_VERSION,
        "workbook": workbook.name,
        "sheets": workbook.sheet_names,
        "snapshot_id": snapshot_id,
        # Provenance only: restored sheets use the restoring session's
        # store default, whatever the saving session ran on.
        "stores": {
            sheet.name: getattr(sheet, "store_kind", "object")
            for sheet in workbook.sheets()
        },
    }

    def write_to(out: IO[bytes]) -> int:
        # Sections are built and written one at a time, so peak memory
        # is one section's payload, not the whole snapshot.
        nonlocal stats_cells, stats_edges
        written = len(MAGIC) + 4
        out.write(MAGIC)
        out.write(struct.pack("<I", FORMAT_VERSION))
        written += _write_section(out, _TAG_META, _json_payload(meta))
        for sheet in workbook.sheets():
            graph = graphs.get(sheet.name)
            if graph is None:
                graph = build_from_sheet(sheet)
            cells = _cells_record(sheet)
            stats_cells += len(cells)
            written += _write_section(
                out, _TAG_CELLS,
                _json_payload({"sheet": sheet.name, "cells": cells}),
            )
            if isinstance(sheet._cells, ColumnarStore):
                for payload, value_cells in _value_column_payloads(sheet):
                    stats_cells += value_cells
                    written += _write_section(out, _TAG_VALUE_COLUMN, payload)
            payload = graph_payload(graph)
            stats_edges += payload["edge_count"]
            written += _write_section(
                out, _TAG_GRAPH,
                _json_payload({"sheet": sheet.name, "graph": payload}),
            )
        written += _write_section(out, _TAG_END, b"")
        return written

    if isinstance(target, str):
        # A unique sibling temp file per call: concurrent saves of the
        # same path must not interleave into one stream (last complete
        # rename wins instead), and a failing save only removes its own
        # temp file.
        import tempfile

        directory = os.path.dirname(os.path.abspath(target)) or "."
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                written = write_to(handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
            # The rename itself must survive power loss too.
            fsync_directory(target)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
    else:
        written = write_to(target)
    return SnapshotStats(
        sheets=len(workbook), cells=stats_cells, edges=stats_edges,
        bytes_written=written, snapshot_id=snapshot_id,
    )


def load_snapshot(source: "str | IO[bytes]") -> Snapshot:
    """Read a snapshot back into a :class:`Snapshot`.

    Raises :class:`SnapshotFormatError` on a bad magic, a format version
    newer than this build supports (the error names both versions), a
    checksum mismatch, or a truncated stream.  Graph payloads are loaded
    without per-edge member validation — the section checksum already
    vouches for their integrity — so restore cost is proportional to
    *compressed* edges, not raw dependencies.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return _load_stream(handle)
    return _load_stream(source)


def _load_stream(handle: IO[bytes]) -> Snapshot:
    magic = _read_exact(handle, len(MAGIC), "magic")
    if magic != MAGIC:
        raise SnapshotFormatError(f"not a taco snapshot (magic {magic!r})")
    (version,) = struct.unpack("<I", _read_exact(handle, 4, "version"))
    if version > FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot was written by format version {version}, but this "
            f"build reads versions 1..{FORMAT_VERSION}; upgrade to load it"
        )
    meta: dict | None = None
    workbook: Workbook | None = None
    graphs: dict = {}
    while True:
        tag, payload = _read_section(handle)
        if tag == _TAG_END:
            break
        if tag == _TAG_META:
            meta = _decode_json(payload, "META")
            workbook = Workbook(str(meta.get("workbook", "workbook")))
            for name in meta.get("sheets", []):
                workbook.add_sheet(str(name))
        elif tag == _TAG_CELLS:
            record = _decode_json(payload, "CELL")
            sheet = _sheet_for(workbook, record)
            _restore_cells(sheet, record.get("cells", []))
        elif tag == _TAG_VALUE_COLUMN:
            _restore_value_column(workbook, payload)
        elif tag == _TAG_GRAPH:
            record = _decode_json(payload, "GRPH")
            sheet = _sheet_for(workbook, record)
            try:
                graphs[sheet.name] = graph_from_payload(
                    record.get("graph"), validate=False
                )
            except GraphFormatError as exc:
                raise SnapshotFormatError(
                    f"bad graph section for sheet {sheet.name!r}: {exc}"
                ) from exc
        # Unknown tags are skipped: their checksum was still verified.
    if workbook is None or meta is None:
        raise SnapshotFormatError("snapshot has no META section")
    return Snapshot(workbook=workbook, graphs=graphs, meta=meta)


def _decode_json(payload: bytes, tag: str) -> dict:
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"bad {tag} section: {exc}") from exc
    if not isinstance(record, dict):
        raise SnapshotFormatError(f"bad {tag} section: expected an object")
    return record


def _sheet_for(workbook: Workbook | None, record: dict) -> Sheet:
    if workbook is None:
        raise SnapshotFormatError("sheet section before META")
    name = record.get("sheet")
    if not isinstance(name, str) or name not in workbook:
        raise SnapshotFormatError(f"section names unknown sheet {name!r}")
    return workbook[name]


def _restore_cells(sheet: Sheet, records) -> None:
    for record in records:
        try:
            col, row, formula, value = record
            pos = (int(col), int(row))
        except (TypeError, ValueError) as exc:
            raise SnapshotFormatError(f"bad cell record {record!r}") from exc
        if formula is not None:
            sheet.set_formula(pos, str(formula))
            sheet.cell_at(pos).value = decode_value(value)
        else:
            sheet.set_value(pos, decode_value(value))
