"""xlsx input/output on the standard library (ZIP + SpreadsheetML XML)."""

from .xlsx_reader import XlsxFormatError, read_xlsx, read_xlsx_dependencies
from .xlsx_writer import write_xlsx

__all__ = ["XlsxFormatError", "read_xlsx", "read_xlsx_dependencies", "write_xlsx"]
