"""Workbook input/output.

xlsx read/write on the standard library (ZIP + SpreadsheetML XML), plus
the snapshot format (:mod:`repro.io.snapshot`) that persists values,
formula source, and the *compressed* per-sheet graphs so a reopen pays
no parse/build/recalc cost.
"""

from .snapshot import (
    Snapshot,
    SnapshotFormatError,
    SnapshotStats,
    load_snapshot,
    save_snapshot,
)
from .xlsx_reader import XlsxFormatError, read_xlsx, read_xlsx_dependencies
from .xlsx_writer import write_xlsx

__all__ = [
    "Snapshot",
    "SnapshotFormatError",
    "SnapshotStats",
    "XlsxFormatError",
    "load_snapshot",
    "read_xlsx",
    "read_xlsx_dependencies",
    "save_snapshot",
    "write_xlsx",
]
