"""Minimal xlsx writer on the standard library.

Produces valid SpreadsheetML: content types, relationships, workbook, and
one worksheet part per sheet.  Strings are written as inline strings (no
shared-string table needed), booleans and numbers natively, and formulae
as ``<f>`` elements.

When ``shared_formulas=True`` (the default) the writer detects vertical
runs of formulae that are identical in R1C1 form — exactly what autofill
produces — and emits them as OOXML *shared formula* groups: the anchor
cell carries ``<f t="shared" ref="..." si="N">body</f>`` and the followers
carry an empty ``<f t="shared" si="N"/>``.  This both shrinks files and
exercises the reader's shared-formula reconstruction, the same mechanism
the paper notes Excel uses to store duplicate formulae once.
"""

from __future__ import annotations

import zipfile
from typing import IO

from ..formula.r1c1 import to_r1c1
from ..formula.errors import ExcelError
from ..grid.range import Range
from ..grid.ref import format_cell
from ..sheet.sheet import Sheet
from ..sheet.workbook import Workbook
from .shared import CT_NS, DOC_REL_NS, MAIN_NS, REL_NS, xml_escape

__all__ = ["write_xlsx", "write_sheet_xml"]


def write_xlsx(workbook: Workbook | Sheet, target: "str | IO[bytes]",
               shared_formulas: bool = True) -> None:
    """Write a workbook (or a bare sheet) to an ``.xlsx`` file or stream."""
    if isinstance(workbook, Sheet):
        wrapper = Workbook()
        wrapper.attach_sheet(workbook)
        workbook = wrapper
    names = workbook.sheet_names
    if not names:
        raise ValueError("cannot write a workbook with no sheets")

    with zipfile.ZipFile(target, "w", zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("[Content_Types].xml", _content_types(len(names)))
        archive.writestr("_rels/.rels", _root_rels())
        archive.writestr("xl/workbook.xml", _workbook_xml(names))
        archive.writestr("xl/_rels/workbook.xml.rels", _workbook_rels(len(names)))
        archive.writestr("xl/styles.xml", _styles_xml())
        for index, name in enumerate(names, start=1):
            sheet_xml = write_sheet_xml(workbook.sheet(name), shared_formulas)
            archive.writestr(f"xl/worksheets/sheet{index}.xml", sheet_xml)


def _content_types(sheet_count: int) -> str:
    overrides = "".join(
        f'<Override PartName="/xl/worksheets/sheet{i}.xml" ContentType='
        '"application/vnd.openxmlformats-officedocument.spreadsheetml.worksheet+xml"/>'
        for i in range(1, sheet_count + 1)
    )
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        f'<Types xmlns="{CT_NS}">'
        '<Default Extension="rels" ContentType='
        '"application/vnd.openxmlformats-package.relationships+xml"/>'
        '<Default Extension="xml" ContentType="application/xml"/>'
        '<Override PartName="/xl/workbook.xml" ContentType='
        '"application/vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml"/>'
        '<Override PartName="/xl/styles.xml" ContentType='
        '"application/vnd.openxmlformats-officedocument.spreadsheetml.styles+xml"/>'
        f"{overrides}</Types>"
    )


def _root_rels() -> str:
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        f'<Relationships xmlns="{REL_NS}">'
        '<Relationship Id="rId1" Type='
        f'"{DOC_REL_NS}/officeDocument" Target="xl/workbook.xml"/>'
        "</Relationships>"
    )


def _workbook_xml(names: list[str]) -> str:
    sheets = "".join(
        f'<sheet name="{xml_escape(name)}" sheetId="{i}" r:id="rId{i}"/>'
        for i, name in enumerate(names, start=1)
    )
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        f'<workbook xmlns="{MAIN_NS}" xmlns:r="{DOC_REL_NS}">'
        f"<sheets>{sheets}</sheets></workbook>"
    )


def _workbook_rels(sheet_count: int) -> str:
    rels = "".join(
        f'<Relationship Id="rId{i}" Type="{DOC_REL_NS}/worksheet" '
        f'Target="worksheets/sheet{i}.xml"/>'
        for i in range(1, sheet_count + 1)
    )
    styles = (
        f'<Relationship Id="rId{sheet_count + 1}" Type="{DOC_REL_NS}/styles" '
        'Target="styles.xml"/>'
    )
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        f'<Relationships xmlns="{REL_NS}">{rels}{styles}</Relationships>'
    )


def _styles_xml() -> str:
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        f'<styleSheet xmlns="{MAIN_NS}">'
        '<fonts count="1"><font><sz val="11"/><name val="Calibri"/></font></fonts>'
        '<fills count="1"><fill><patternFill patternType="none"/></fill></fills>'
        '<borders count="1"><border/></borders>'
        '<cellStyleXfs count="1"><xf/></cellStyleXfs>'
        '<cellXfs count="1"><xf/></cellXfs>'
        "</styleSheet>"
    )


def _plan_shared_groups(sheet: Sheet) -> dict[tuple[int, int], tuple[int, Range, bool]]:
    """Assign shared-formula group ids to vertical runs of identical R1C1.

    Returns ``{cell: (si, group_range, is_anchor)}`` for cells that belong
    to a run of at least two formulae.
    """
    plan: dict[tuple[int, int], tuple[int, Range, bool]] = {}
    by_column: dict[int, list[tuple[int, str]]] = {}
    for (col, row), cell in sheet.formula_cells():
        by_column.setdefault(col, []).append((row, to_r1c1(cell.formula_ast, col, row)))
    si = 0
    for col, entries in by_column.items():
        entries.sort()
        run: list[int] = []
        run_key: str | None = None

        def flush() -> None:
            nonlocal si
            if len(run) >= 2:
                group_range = Range(col, run[0], col, run[-1])
                for i, row in enumerate(run):
                    plan[(col, row)] = (si, group_range, i == 0)
                si += 1
            run.clear()

        previous_row: int | None = None
        for row, key in entries:
            contiguous = previous_row is not None and row == previous_row + 1
            if not (contiguous and key == run_key):
                flush()
                run_key = key
            run.append(row)
            previous_row = row
        flush()
    return plan


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def write_sheet_xml(sheet: Sheet, shared_formulas: bool = True) -> str:
    """Serialise one worksheet part."""
    plan = _plan_shared_groups(sheet) if shared_formulas else {}
    rows: dict[int, list[tuple[int, str]]] = {}
    for (col, row), cell in sheet.items():
        ref = format_cell(col, row)
        value = cell.value
        if cell.is_formula:
            shared = plan.get((col, row))
            if shared is not None:
                si, group_range, is_anchor = shared
                if is_anchor:
                    formula_xml = (
                        f'<f t="shared" ref="{group_range.to_a1()}" si="{si}">'
                        f"{xml_escape(cell.formula_text)}</f>"
                    )
                else:
                    formula_xml = f'<f t="shared" si="{si}"/>'
            else:
                formula_xml = f"<f>{xml_escape(cell.formula_text)}</f>"
            cached = _cached_value_xml(value)
            body = f'<c r="{ref}"{cached[0]}>{formula_xml}{cached[1]}</c>'
        elif isinstance(value, bool):
            body = f'<c r="{ref}" t="b"><v>{1 if value else 0}</v></c>'
        elif isinstance(value, (int, float)):
            body = f'<c r="{ref}"><v>{_format_number(float(value))}</v></c>'
        elif isinstance(value, ExcelError):
            body = f'<c r="{ref}" t="e"><v>{xml_escape(value.code)}</v></c>'
        elif isinstance(value, str):
            body = f'<c r="{ref}" t="inlineStr"><is><t>{xml_escape(value)}</t></is></c>'
        else:
            continue
        rows.setdefault(row, []).append((col, body))

    row_xml: list[str] = []
    for row in sorted(rows):
        cells = "".join(body for _, body in sorted(rows[row]))
        row_xml.append(f'<row r="{row}">{cells}</row>')
    dimension = sheet.used_range()
    dim_attr = f'<dimension ref="{dimension.to_a1()}"/>' if dimension else ""
    return (
        '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>'
        f'<worksheet xmlns="{MAIN_NS}">{dim_attr}'
        f"<sheetData>{''.join(row_xml)}</sheetData></worksheet>"
    )


def _cached_value_xml(value) -> tuple[str, str]:
    """(cell type attribute, cached <v> element) for a formula cell."""
    if value is None:
        return "", ""
    if isinstance(value, bool):
        return ' t="b"', f"<v>{1 if value else 0}</v>"
    if isinstance(value, (int, float)):
        return "", f"<v>{_format_number(float(value))}</v>"
    if isinstance(value, ExcelError):
        return ' t="e"', f"<v>{xml_escape(value.code)}</v>"
    return ' t="str"', f"<v>{xml_escape(str(value))}</v>"
