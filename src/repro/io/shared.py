"""Shared constants and helpers for the xlsx reader/writer.

An ``.xlsx`` file is a ZIP of XML parts (ECMA-376 / OOXML SpreadsheetML).
The paper's prototype used Apache POI to parse them; with no third-party
parser available we implement the subset needed for formula graphs on the
standard library: cell values, formula strings, and shared-formula groups.
"""

from __future__ import annotations

__all__ = [
    "MAIN_NS",
    "REL_NS",
    "DOC_REL_NS",
    "CT_NS",
    "strip_ns",
    "xml_escape",
]

MAIN_NS = "http://schemas.openxmlformats.org/spreadsheetml/2006/main"
REL_NS = "http://schemas.openxmlformats.org/package/2006/relationships"
DOC_REL_NS = "http://schemas.openxmlformats.org/officeDocument/2006/relationships"
CT_NS = "http://schemas.openxmlformats.org/package/2006/content-types"


def strip_ns(tag: str) -> str:
    """``{namespace}local`` -> ``local``."""
    if tag.startswith("{"):
        return tag.split("}", 1)[1]
    return tag


def xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
