"""Synthetic corpora and workload statistics."""

from .corpora import CORPUS_NAMES, CorpusSheet, corpus_specs, generate_corpus, scale_factor
from .corpus_io import FileProfile, directory_summary, iter_corpus_sheets, profile_directory, profile_file
from .generator import RegionSpec, SheetSpec, generate_sheet
from .regions import REGION_BUILDERS, build_region
from .stats import SheetProfile, longest_path, max_dependents, profile_sheet

__all__ = [
    "CORPUS_NAMES",
    "CorpusSheet",
    "FileProfile",
    "directory_summary",
    "iter_corpus_sheets",
    "profile_directory",
    "profile_file",
    "REGION_BUILDERS",
    "RegionSpec",
    "SheetProfile",
    "SheetSpec",
    "build_region",
    "corpus_specs",
    "generate_corpus",
    "generate_sheet",
    "longest_path",
    "max_dependents",
    "profile_sheet",
    "scale_factor",
]
