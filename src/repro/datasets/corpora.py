"""The two synthetic corpora standing in for Enron and Github.

The real corpora (17K Enron xls files; 7.8K crawled Github xlsx files)
are not redistributable here, so we generate two corpora whose structure
matches the paper's measurements:

* **enron-like** — modest sheet sizes (xls-era), hand-made layouts with a
  noticeable fraction of one-off (incompressible) formulae; the paper
  measured a mean remaining-edge fraction of ~7.4% after compression.
* **github-like** — larger, programmatically generated sheets with long
  uniform runs and little noise; the paper measured ~3.4% mean remaining
  edges and heavier tails for max-dependents and longest-path (Fig. 1).

Sheet sizes are scaled down so that the full evaluation runs in minutes
under CPython; set the ``REPRO_SCALE`` environment variable (default 1.0)
to grow or shrink every sheet proportionally.
"""

from __future__ import annotations

import os
import random
from typing import NamedTuple

from ..sheet.sheet import Sheet
from .generator import RegionSpec, SheetSpec, generate_sheet

__all__ = ["CorpusSheet", "corpus_specs", "generate_corpus", "scale_factor", "CORPUS_NAMES"]

CORPUS_NAMES = ("enron", "github")


def scale_factor() -> float:
    """Global size multiplier, from the REPRO_SCALE environment variable."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(0.05, min(value, 100.0))


class CorpusSheet(NamedTuple):
    corpus: str
    spec: SheetSpec

    def build(self) -> Sheet:
        return generate_sheet(self.spec)


def _scaled(rows: int, scale: float) -> int:
    return max(8, int(rows * scale))


# Region-mix profiles; weights follow Table V's pattern prevalence
# (RR dominant, then FF, then chains, FR, RF) plus a noise share that
# controls the incompressible remainder.
_PROFILES: dict[str, list[tuple[str, float]]] = {
    "reporting": [
        ("sliding_window", 1.0),
        ("derived_column", 1.2),
        ("fixed_lookup", 0.7),
        ("noise", 0.5),
    ],
    "finance": [
        ("running_total", 0.8),
        ("chain", 0.6),
        ("fig2", 1.0),
        ("derived_column", 0.8),
        ("noise", 0.4),
    ],
    "inventory": [
        ("fixed_lookup", 1.0),
        ("derived_column", 1.0),
        ("shrinking_window", 0.4),
        ("row_wise", 0.3),
        ("gapone", 0.05),
        ("noise", 0.5),
    ],
    "generated": [
        ("sliding_window", 1.0),
        ("derived_column", 1.0),
        ("chain", 0.8),
        ("fig2", 0.8),
        ("fixed_lookup", 0.6),
        ("running_total", 0.4),
        ("shrinking_window", 0.15),
        ("gapone", 0.02),
    ],
}


def _sheet_spec(
    corpus: str,
    index: int,
    profile: str,
    base_rows: int,
    noise_cells: int,
    seed: int,
) -> SheetSpec:
    rng = random.Random(seed)
    regions: list[RegionSpec] = []
    for kind, weight in _PROFILES[profile]:
        if kind == "noise":
            if noise_cells > 0:
                regions.append(RegionSpec("noise", noise_cells))
            continue
        size = max(8, int(base_rows * weight * rng.uniform(0.7, 1.3)))
        if kind == "row_wise":
            size = min(size, 160)
        regions.append(RegionSpec(kind, size))
    rng.shuffle(regions)
    return SheetSpec(f"{corpus}-{index:03d}", tuple(regions), seed=seed)


def corpus_specs(name: str, scale: float | None = None) -> list[CorpusSheet]:
    """Deterministic sheet specs for a corpus (``enron`` or ``github``)."""
    if scale is None:
        scale = scale_factor()
    if name == "enron":
        return _enron_specs(scale)
    if name == "github":
        return _github_specs(scale)
    raise KeyError(f"unknown corpus {name!r}; known: {CORPUS_NAMES}")


def _enron_specs(scale: float) -> list[CorpusSheet]:
    rng = random.Random(2023)
    out: list[CorpusSheet] = []
    profiles = ["reporting", "finance", "inventory"]
    for i in range(18):
        profile = profiles[i % len(profiles)]
        base = _scaled(rng.choice([60, 90, 140, 220, 320, 480]), scale)
        # Hand-made sheets carry a wide, log-uniform spread of one-off
        # formulae; this reproduces the paper's skewed remaining-edge
        # distribution (Table IV: Enron mean 7.4%, median 1.9%).
        noise = max(4, int(base * 10 ** rng.uniform(-2.0, 0.0)))
        out.append(
            CorpusSheet("enron", _sheet_spec("enron", i, profile, base, noise, 1000 + i))
        )
    # A few heavy-tail sheets: long chains and wide fan-outs.
    for j, base in enumerate([900, 1400, 2200]):
        out.append(
            CorpusSheet(
                "enron",
                _sheet_spec("enron", 18 + j, "finance", _scaled(base, scale),
                            max(8, int(base * 0.02 * scale)), 1900 + j),
            )
        )
    return out


def _github_specs(scale: float) -> list[CorpusSheet]:
    rng = random.Random(777)
    out: list[CorpusSheet] = []
    for i in range(14):
        base = _scaled(rng.choice([200, 320, 500, 800, 1200]), scale)
        # Programmatic generation: long uniform runs with almost no noise
        # (Table IV: Github median 0.19% remaining edges) ...
        noise = max(2, int(base * 10 ** rng.uniform(-2.5, -1.5)))
        out.append(
            CorpusSheet("github", _sheet_spec("github", i, "generated", base, noise, 4000 + i))
        )
    # ... but a couple of messy hand-edited workbooks drag the mean up
    # (Table IV: Github mean 3.4%).
    for j, base in enumerate([160, 240, 360]):
        out.append(
            CorpusSheet(
                "github",
                _sheet_spec("github", 14 + j, "reporting", _scaled(base, scale),
                            max(8, int(base * 1.2)), 4800 + j),
            )
        )
    for j, base in enumerate([2600, 3600, 5200]):
        out.append(
            CorpusSheet(
                "github",
                _sheet_spec("github", 17 + j, "generated", _scaled(base, scale),
                            max(4, int(base * 0.004 * scale)), 4900 + j),
            )
        )
    return out


def generate_corpus(name: str, scale: float | None = None) -> list[tuple[SheetSpec, Sheet]]:
    """Build every sheet of a corpus; prefer the cached accessors in
    :mod:`repro.bench.runner` inside benchmarks."""
    return [(cs.spec, cs.build()) for cs in corpus_specs(name, scale)]
