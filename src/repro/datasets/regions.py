"""Formula-region builders for synthetic spreadsheets.

Each builder writes one rectangular *region* of data and formulae into a
sheet, through the same autofill machinery real users employ — which is
what makes the generated dependencies exhibit tabular locality.  The
catalogue covers the idioms the paper calls out:

* sliding windows (RR, Fig. 4a) and derived columns (TACO-InRow's case);
* running totals ``SUM($A$1:A4)`` (FR) and their shrinking duals (RF);
* fixed lookups — conversion rates and VLOOKUP tables (FF);
* dependency chains (RR-Chain, Fig. 9);
* the Fig. 2 mixed IF-formula with four references per cell;
* pattern-free noise, the incompressible remainder.
"""

from __future__ import annotations

import random

from ..grid.range import Range
from ..grid.ref import col_to_letters, format_cell
from ..sheet.autofill import fill_formula_column, fill_formula_row
from ..sheet.sheet import Sheet

__all__ = [
    "REGION_BUILDERS",
    "build_region",
    "chain_region",
    "derived_column_region",
    "fig2_region",
    "fixed_lookup_region",
    "gapone_region",
    "noise_region",
    "row_wise_region",
    "running_total_region",
    "shrinking_window_region",
    "sliding_window_region",
]


def _fill_data_column(sheet: Sheet, col: int, r1: int, r2: int, rng: random.Random) -> None:
    for row in range(r1, r2 + 1):
        sheet.set_value((col, row), round(rng.uniform(1.0, 500.0), 2))


def sliding_window_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random, window: int = 3
) -> int:
    """``=SUM(A{i}:B{i+w})`` — the RR sliding window of Fig. 4a."""
    data1, data2, out = col, col + 1, col + 2
    _fill_data_column(sheet, data1, row, row + rows + window, rng)
    _fill_data_column(sheet, data2, row, row + rows + window, rng)
    head = f"{col_to_letters(data1)}{row}"
    tail = f"{col_to_letters(data2)}{row + window}"
    return fill_formula_column(sheet, out, row, row + rows - 1, f"=SUM({head}:{tail})")


def derived_column_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random
) -> int:
    """``=A{i}*B{i}`` — same-row references (TACO-InRow's derived column)."""
    data1, data2, out = col, col + 1, col + 2
    _fill_data_column(sheet, data1, row, row + rows - 1, rng)
    _fill_data_column(sheet, data2, row, row + rows - 1, rng)
    a = f"{col_to_letters(data1)}{row}"
    b = f"{col_to_letters(data2)}{row}"
    return fill_formula_column(sheet, out, row, row + rows - 1, f"={a}*{b}")


def running_total_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random
) -> int:
    """``=SUM($A$1:A{i})`` — the FR cumulative total (year-to-date idiom)."""
    data, out = col, col + 1
    _fill_data_column(sheet, data, row, row + rows - 1, rng)
    letters = col_to_letters(data)
    anchor = f"${letters}${row}"
    return fill_formula_column(sheet, out, row, row + rows - 1, f"=SUM({anchor}:{letters}{row})")


def shrinking_window_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random
) -> int:
    """``=SUM(A{i}:$A${last})`` — the RF shrinking window (remaining total)."""
    data, out = col, col + 1
    last = row + rows - 1
    _fill_data_column(sheet, data, row, last, rng)
    letters = col_to_letters(data)
    return fill_formula_column(
        sheet, out, row, last, f"=SUM({letters}{row}:${letters}${last})"
    )


def fixed_lookup_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random, table_rows: int = 16
) -> int:
    """``=VLOOKUP(D{i}, $A$1:$B$16, 2, FALSE)`` — FF table plus RR key."""
    table_key, table_val, key_col, out = col, col + 1, col + 2, col + 3
    for i in range(table_rows):
        sheet.set_value((table_key, row + i), float(i))
        sheet.set_value((table_val, row + i), round(rng.uniform(0.5, 2.0), 4))
    for i in range(rows):
        sheet.set_value((key_col, row + i), float(rng.randrange(table_rows)))
    table = (
        f"${col_to_letters(table_key)}${row}:"
        f"${col_to_letters(table_val)}${row + table_rows - 1}"
    )
    key = f"{col_to_letters(key_col)}{row}"
    return fill_formula_column(
        sheet, out, row, row + rows - 1, f"=VLOOKUP({key},{table},2,FALSE)"
    )


def chain_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random
) -> int:
    """``=C{i-1}+B{i}`` — an RR-Chain running balance."""
    data, out = col, col + 1
    _fill_data_column(sheet, data, row, row + rows - 1, rng)
    sheet.set_formula((out, row), f"={col_to_letters(data)}{row}")
    chain = f"={col_to_letters(out)}{row}+{col_to_letters(data)}{row + 1}"
    fill_formula_column(sheet, out, row + 1, row + rows - 1, chain)
    return rows


def fig2_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random
) -> int:
    """The paper's Fig. 2 formula: ``=IF(A{i}=A{i-1},N{i-1}+M{i},M{i})``."""
    group_col, amount_col, out = col, col + 1, col + 2
    for i in range(rows + 1):
        sheet.set_value((group_col, row + i), float(rng.randrange(max(2, rows // 8))))
    _fill_data_column(sheet, amount_col, row, row + rows, rng)
    g, m, n = col_to_letters(group_col), col_to_letters(amount_col), col_to_letters(out)
    sheet.set_formula((out, row), f"={m}{row}")
    i = row + 1
    formula = f"=IF({g}{i}={g}{i - 1},{n}{i - 1}+{m}{i},{m}{i})"
    fill_formula_column(sheet, out, i, row + rows, formula)
    return rows + 1


def row_wise_region(
    sheet: Sheet, col: int, row: int, cols: int, rng: random.Random
) -> int:
    """A horizontal run ``=A1*1.1`` filled rightwards (row-wise RR)."""
    for i in range(cols):
        sheet.set_value((col + i, row), round(rng.uniform(10.0, 90.0), 2))
    first = format_cell(col, row)
    return fill_formula_row(sheet, row + 1, col, col + cols - 1, f"={first}*1.1")


def gapone_region(
    sheet: Sheet, col: int, row: int, rows: int, rng: random.Random
) -> int:
    """Formulae on every other row with identical relative references.

    Compressible only by the RR-GapOne extension (paper Sec. V); under the
    default pattern set these all stay Single.
    """
    data, out = col, col + 1
    _fill_data_column(sheet, data, row, row + 2 * rows, rng)
    letters = col_to_letters(data)
    count = 0
    for i in range(0, 2 * rows, 2):
        r = row + i
        sheet.set_formula((out, r), f"={letters}{r}*2")
        count += 1
    return count


def noise_region(
    sheet: Sheet, col: int, row: int, count: int, rng: random.Random
) -> int:
    """Scattered one-off formulae with random references (incompressible).

    Noise cells are laid on an every-other-row/column lattice so that no
    two of them are adjacent and none can merge under any pattern; each
    references a random small window of the data column.
    """
    span = max(40, count)
    _fill_data_column(sheet, col, row, row + span, rng)
    letters = col_to_letters(col)
    lattice_cols = 10
    lattice_rows = (count + lattice_cols - 1) // lattice_cols
    positions = [
        (col + 2 + 2 * c, row + 2 * r)
        for r in range(lattice_rows)
        for c in range(lattice_cols)
    ]
    rng.shuffle(positions)
    written = 0
    for target_col, target_row in positions[:count]:
        r1 = row + rng.randrange(span)
        r2 = min(row + span, r1 + rng.randrange(1, 5))
        sheet.set_formula(
            (target_col, target_row), f"=SUM({letters}{r1}:{letters}{r2})"
        )
        written += 1
    return written


REGION_BUILDERS = {
    "sliding_window": sliding_window_region,
    "derived_column": derived_column_region,
    "running_total": running_total_region,
    "shrinking_window": shrinking_window_region,
    "fixed_lookup": fixed_lookup_region,
    "chain": chain_region,
    "fig2": fig2_region,
    "row_wise": row_wise_region,
    "gapone": gapone_region,
    "noise": noise_region,
}


def build_region(
    sheet: Sheet, kind: str, col: int, row: int, size: int, rng: random.Random
) -> int:
    """Dispatch to a region builder; returns the number of formula cells."""
    try:
        builder = REGION_BUILDERS[kind]
    except KeyError:
        raise KeyError(f"unknown region kind {kind!r}; known: {sorted(REGION_BUILDERS)}") from None
    return builder(sheet, col, row, size, rng)
