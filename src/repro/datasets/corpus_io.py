"""Profiling directories of real xlsx files — the paper's corpus workflow.

The paper's evaluation starts from directories of spreadsheet files
(17K Enron xls, 7.8K crawled Github xlsx), keeps the large parseable
ones, and builds graphs per sheet.  This module reproduces that pipeline
for any folder of ``.xlsx`` files: scan, skip the erroneous, filter by
dependency count, and compute per-file compression/profile statistics —
so the harness runs on a user's own corpus, not only the synthetic one.
"""

from __future__ import annotations

import os
from typing import Iterator, NamedTuple

from ..core.taco_graph import TacoGraph, dependencies_column_major
from ..graphs.nocomp import NoCompGraph
from ..io.xlsx_reader import XlsxFormatError, read_xlsx
from ..sheet.sheet import Dependency, Sheet

__all__ = ["FileProfile", "iter_corpus_sheets", "profile_directory", "profile_file"]


class FileProfile(NamedTuple):
    """Per-file compression statistics (one row of Tables II-IV)."""

    path: str
    sheets: int
    cells: int
    formula_cells: int
    dependencies: int
    compressed_edges: int
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error

    @property
    def remaining_fraction(self) -> float:
        if self.dependencies == 0:
            return 1.0
        return self.compressed_edges / self.dependencies


def iter_corpus_sheets(
    directory: str, min_dependencies: int = 0
) -> Iterator[tuple[str, Sheet, list[Dependency]]]:
    """Yield (path, sheet, dependencies) for every parseable sheet.

    Mirrors the paper's corpus preparation: files that fail to parse are
    skipped (the paper drops password-protected/erroneous files), and
    sheets below ``min_dependencies`` are filtered out (the paper keeps
    spreadsheets with >= 10K dependencies).
    """
    for name in sorted(os.listdir(directory)):
        if not name.lower().endswith(".xlsx"):
            continue
        path = os.path.join(directory, name)
        try:
            workbook = read_xlsx(path)
        except (XlsxFormatError, OSError):
            continue
        for sheet in workbook.sheets():
            deps = dependencies_column_major(sheet)
            if len(deps) >= min_dependencies:
                yield path, sheet, deps


def profile_file(path: str) -> FileProfile:
    """Compression profile of one xlsx file (all sheets combined)."""
    try:
        workbook = read_xlsx(path)
    except (XlsxFormatError, OSError) as exc:
        return FileProfile(path, 0, 0, 0, 0, 0, error=str(exc))
    cells = formula_cells = dependencies = compressed = 0
    sheet_count = 0
    for sheet in workbook.sheets():
        sheet_count += 1
        cells += len(sheet)
        formula_cells += sheet.formula_count
        deps = dependencies_column_major(sheet)
        dependencies += len(deps)
        if deps:
            graph = TacoGraph.full()
            graph.build(deps)
            compressed += len(graph)
    return FileProfile(path, sheet_count, cells, formula_cells, dependencies, compressed)


def profile_directory(directory: str, min_dependencies: int = 0) -> list[FileProfile]:
    """Profile every xlsx file in a directory, skipping unreadable ones.

    Files that fail to parse are reported with their error rather than
    silently dropped, so a corpus sweep is auditable.
    """
    out: list[FileProfile] = []
    for name in sorted(os.listdir(directory)):
        if not name.lower().endswith(".xlsx"):
            continue
        profile = profile_file(os.path.join(directory, name))
        if profile.ok and profile.dependencies < min_dependencies:
            continue
        out.append(profile)
    return out


def directory_summary(profiles: list[FileProfile]) -> dict[str, float]:
    """Aggregate Table-II-style totals over a profiled corpus."""
    usable = [p for p in profiles if p.ok]
    dependencies = sum(p.dependencies for p in usable)
    compressed = sum(p.compressed_edges for p in usable)
    return {
        "files": len(profiles),
        "usable_files": len(usable),
        "dependencies": dependencies,
        "compressed_edges": compressed,
        "remaining_fraction": (compressed / dependencies) if dependencies else 1.0,
    }


def build_reference_graph(deps: list[Dependency]) -> NoCompGraph:
    """Uncompressed graph for the same stream (for equivalence checks)."""
    graph = NoCompGraph()
    graph.build(deps)
    return graph
