"""Sheet and corpus generation from declarative specs.

A :class:`SheetSpec` lists the regions a sheet contains; regions are laid
out left-to-right with spacing so they never interfere.  Generation is
fully deterministic in the seed, so every benchmark and test sees the same
corpus.
"""

from __future__ import annotations

import random
from typing import NamedTuple

from ..sheet.sheet import Sheet
from .regions import REGION_BUILDERS, build_region

__all__ = ["RegionSpec", "SheetSpec", "generate_sheet"]

# Horizontal footprint of each region kind (data + output columns),
# used to lay regions out without overlap.
_REGION_WIDTH = {
    "sliding_window": 3,
    "derived_column": 3,
    "running_total": 2,
    "shrinking_window": 2,
    "fixed_lookup": 4,
    "chain": 2,
    "fig2": 3,
    "row_wise": 1,  # horizontal; reserves its own columns via size
    "gapone": 12,   # scatters outputs over several columns
    "noise": 22,    # lattice of 10 noise columns plus the data column
}


class RegionSpec(NamedTuple):
    """One region: its builder kind and its size (rows / cells)."""

    kind: str
    size: int

    def width(self) -> int:
        if self.kind == "row_wise":
            return max(2, self.size)
        return _REGION_WIDTH[self.kind]


class SheetSpec(NamedTuple):
    """A sheet as a named list of regions."""

    name: str
    regions: tuple[RegionSpec, ...]
    seed: int = 0

    def total_rows_hint(self) -> int:
        return max((region.size for region in self.regions), default=0)


def generate_sheet(spec: SheetSpec) -> Sheet:
    """Materialise a spec into a sheet (deterministic in ``spec.seed``)."""
    sheet = Sheet(spec.name)
    rng = random.Random(spec.seed)
    col = 1
    row_wise_row = 2
    for region in spec.regions:
        if region.kind not in REGION_BUILDERS:
            raise KeyError(f"unknown region kind {region.kind!r}")
        if region.kind == "row_wise":
            build_region(sheet, region.kind, col, row_wise_row, region.size, rng)
            row_wise_row += 4
            col += region.width() + 2
        else:
            build_region(sheet, region.kind, col, 2, region.size, rng)
            col += region.width() + 2
    return sheet
