"""Graph statistics: max dependents and longest path (paper Fig. 1).

The paper characterises its corpora by, per spreadsheet, the maximum
number of (transitive) dependents of any cell and the longest path in the
formula graph.  Both are also how the query benchmarks pick their probe
cells: the Maximum-Dependents case and the Longest-Path case (Sec. VI-C).
"""

from __future__ import annotations

from typing import NamedTuple

from ..core.taco_graph import TacoGraph
from ..graphs.base import total_cells
from ..graphs.nocomp import NoCompGraph
from ..grid.range import Range
from ..sheet.sheet import Sheet

__all__ = [
    "SheetProfile",
    "candidate_cells",
    "longest_path",
    "max_dependents",
    "profile_sheet",
]


class SheetProfile(NamedTuple):
    """Per-sheet workload characterisation."""

    name: str
    cells: int
    formula_cells: int
    raw_dependencies: int
    max_dependents: int
    max_dependents_cell: Range
    longest_path: int
    longest_path_cell: Range


def candidate_cells(graph: TacoGraph, limit: int = 160) -> list[Range]:
    """Probe candidates for the max-dependents search.

    The cell with the most dependents is reachable from the head of some
    referenced range, so the head (and tail-row head) cells of the
    compressed precedent vertices cover the candidates cheaply.
    """
    seen: set[tuple[int, int]] = set()
    out: list[Range] = []
    edges = sorted(graph.edges(), key=lambda e: -e.prec.size)
    for edge in edges:
        for pos in (edge.prec.head, (edge.prec.c1, edge.prec.r2)):
            if pos not in seen:
                seen.add(pos)
                out.append(Range.cell(*pos))
                if len(out) >= limit:
                    return out
    return out


def max_dependents(graph: TacoGraph, limit: int = 160) -> tuple[Range, int]:
    """(cell, dependent-count) for the cell with the most dependents.

    Uses the compressed graph to evaluate candidates — the same cell is
    then used to probe every system, so the choice does not bias the
    comparison.
    """
    best_cell = Range.cell(1, 1)
    best_count = 0
    for cell in candidate_cells(graph, limit):
        count = total_cells(graph.find_dependents(cell))
        if count > best_count:
            best_cell, best_count = cell, count
    return best_cell, best_count


def longest_path(graph: NoCompGraph) -> tuple[Range, int]:
    """(start cell, length) of the longest path in the uncompressed graph.

    Edge-level DP: ``longest(e) = 1 + max(longest(successor))`` where a
    successor is any edge whose precedent contains e's dependent cell.
    NoComp stores one edge per raw dependency, so the result counts raw
    edges, matching the paper's definition.
    """
    adjacency = graph._adjacency
    edge_list: list[tuple[Range, tuple[int, int]]] = []
    for prec, dependents in adjacency.items():
        for cell in dependents:
            edge_list.append((prec, cell))
    if not edge_list:
        return Range.cell(1, 1), 0

    # successors(edge) = edges whose prec contains edge's dependent cell.
    successor_cache: dict[tuple[int, int], list[int]] = {}

    def successor_indices(cell: tuple[int, int]) -> list[int]:
        cached = successor_cache.get(cell)
        if cached is not None:
            return cached
        out: list[int] = []
        for prec, _ in graph._prec_index.search_items(Range.cell(*cell)):
            out.extend(index_by_prec[prec])
        successor_cache[cell] = out
        return out

    index_by_prec: dict[Range, list[int]] = {}
    for i, (prec, _) in enumerate(edge_list):
        index_by_prec.setdefault(prec, []).append(i)

    memo: dict[int, int] = {}
    ACTIVE = -1

    for start in range(len(edge_list)):
        if start in memo:
            continue
        stack: list[tuple[int, list[int], int]] = [
            (start, successor_indices(edge_list[start][1]), 0)
        ]
        memo[start] = ACTIVE
        while stack:
            index, successors, cursor = stack.pop()
            pushed = False
            while cursor < len(successors):
                succ = successors[cursor]
                cursor += 1
                state = memo.get(succ)
                if state is None:
                    stack.append((index, successors, cursor))
                    memo[succ] = ACTIVE
                    stack.append((succ, successor_indices(edge_list[succ][1]), 0))
                    pushed = True
                    break
                if state == ACTIVE:
                    raise ValueError("cycle detected in formula graph")
            if pushed:
                continue
            best = 0
            for succ in successors:
                value = memo[succ]
                if value > best:
                    best = value
            memo[index] = 1 + best

    best_index = max(range(len(edge_list)), key=lambda i: memo[i])
    prec, _ = edge_list[best_index]
    return Range.cell(*prec.head), memo[best_index]


def profile_sheet(sheet: Sheet, taco: TacoGraph, nocomp: NoCompGraph) -> SheetProfile:
    """Compute the Fig. 1 characterisation for one sheet."""
    md_cell, md_count = max_dependents(taco)
    lp_cell, lp_length = longest_path(nocomp)
    return SheetProfile(
        name=sheet.name,
        cells=len(sheet),
        formula_cells=sheet.formula_count,
        raw_dependencies=nocomp.num_edges,
        max_dependents=md_count,
        max_dependents_cell=md_cell,
        longest_path=lp_length,
        longest_path_cell=lp_cell,
    )
