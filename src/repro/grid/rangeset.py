"""A set of cell ranges with covered-subset queries.

Algorithm 3 in the paper maintains the BFS ``result`` set together with an
R-Tree over it, so that for every freshly discovered dependent range the
*not-yet-visited* subset can be extracted before being enqueued.  This
module packages that structure: :meth:`RangeSet.subtract_covered` returns
the maximal sub-rectangles of an input range not covered by any member.
"""

from __future__ import annotations

from typing import Iterator

from ..spatial.registry import IndexFactory, make_index
from .range import Range

__all__ = ["RangeSet", "merge_ranges"]


def merge_ranges(groups, index: IndexFactory = "rtree") -> "list[Range]":
    """Disjoint union of possibly-overlapping range lists.

    Feeds every range of every group through one :class:`RangeSet`, so
    overlapping inputs contribute each cell once; ``index`` selects the
    backing spatial index (callers merging graph query results pass the
    graph's own ``index_spec`` so the whole query path shares a backend).
    """
    merged = RangeSet(index=index)
    for ranges in groups:
        for rng in ranges:
            merged.add_new(rng)
    return merged.ranges


class RangeSet:
    """A collection of ranges supporting overlap and coverage queries.

    The member index is any registered spatial backend (``index=`` takes a
    name or factory); graphs thread their own backend choice through so an
    ablation swaps every index in the query path, not just the vertex one.
    """

    def __init__(self, initial: "list[Range] | None" = None, index: IndexFactory = "rtree"):
        self._tree = make_index(index)
        self._ranges: list[Range] = []
        self._cell_count = 0
        if initial:
            for rng in initial:
                self.add(rng)

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[Range]:
        return iter(self._ranges)

    @property
    def ranges(self) -> list[Range]:
        return list(self._ranges)

    @property
    def cell_count(self) -> int:
        """Total member cells, counting each range's area.

        Members added through :meth:`add_new` never overlap, so for that
        usage this is the exact covered-cell count.
        """
        return self._cell_count

    def add(self, rng: Range) -> None:
        """Add a range without any overlap checking."""
        self._tree.insert(rng, rng)
        self._ranges.append(rng)
        self._cell_count += rng.size

    def overlaps(self, rng: Range) -> bool:
        return bool(self._tree.search(rng))

    def overlapping_members(self, rng: Range) -> "list[Range]":
        """The stored member ranges intersecting ``rng`` (one search).

        Members are returned as stored — the disjoint pieces ``add`` /
        ``add_new`` kept — so callers can key per-piece bookkeeping (the
        grouped dependents BFS maps each piece to its seed group).
        """
        return [entry.key for entry in self._tree.search(rng)]

    def covers_cell(self, col: int, row: int) -> bool:
        return bool(self._tree.search(Range.cell(col, row)))

    def covers(self, rng: Range) -> bool:
        """True when every cell of ``rng`` is covered by some member."""
        return not self.subtract_covered(rng)

    def subtract_covered(self, rng: Range) -> list[Range]:
        """Maximal sub-rectangles of ``rng`` not covered by any member.

        This is the paper's "find the subset of the dependent that has not
        yet been visited" step.  Pieces are produced by successive
        rectangle subtraction against each overlapping member.
        """
        overlapping = [entry.key for entry in self._tree.search(rng)]
        if not overlapping:
            return [rng]
        pieces = [rng]
        for member in overlapping:
            next_pieces: list[Range] = []
            for piece in pieces:
                next_pieces.extend(piece.subtract(member))
            pieces = next_pieces
            if not pieces:
                break
        return pieces

    def add_new(self, rng: Range) -> list[Range]:
        """Add only the uncovered parts of ``rng``; return the parts added."""
        fresh = self.subtract_covered(rng)
        for piece in fresh:
            self.add(piece)
        return fresh

    def expand_cells(self) -> set[tuple[int, int]]:
        """Materialise the member cells; intended for tests on small sets."""
        cells: set[tuple[int, int]] = set()
        for rng in self._ranges:
            cells.update(rng.cells())
        return cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(r.to_a1() for r in self._ranges[:6])
        suffix = ", ..." if len(self._ranges) > 6 else ""
        return f"RangeSet([{preview}{suffix}])"
