"""Cell references and A1-style addressing.

A spreadsheet cell is addressed by a column (letters ``A``..``Z``, ``AA``..)
and a 1-based row number.  Internally we use 1-based integer pairs
``(col, row)`` everywhere, matching the paper's ``(i, j)`` convention.

This module provides the letter <-> index conversions, the parsing and
formatting of A1-style addresses (including ``$`` absolute markers), and a
small immutable :class:`CellRef` record carrying the fixedness flags that
TACO's compression heuristics use as pattern cues.
"""

from __future__ import annotations

import re
from typing import NamedTuple

__all__ = [
    "col_to_letters",
    "letters_to_col",
    "parse_cell",
    "format_cell",
    "CellRef",
    "A1_CELL_RE",
    "MAX_COL",
    "MAX_ROW",
]

# xlsx-format limits (the paper notes xls caps rows at 65,536 while xlsx
# allows ~1M rows; we use the xlsx limits as the hard bounds).
MAX_COL = 16_384
MAX_ROW = 1_048_576

A1_CELL_RE = re.compile(r"^(\$?)([A-Za-z]{1,3})(\$?)([0-9]+)$")

_LETTER_CACHE: dict[int, str] = {}


def col_to_letters(col: int) -> str:
    """Convert a 1-based column index to its letter name (1 -> ``A``)."""
    if col < 1:
        raise ValueError(f"column index must be >= 1, got {col}")
    cached = _LETTER_CACHE.get(col)
    if cached is not None:
        return cached
    n = col
    letters = []
    while n > 0:
        n, rem = divmod(n - 1, 26)
        letters.append(chr(ord("A") + rem))
    text = "".join(reversed(letters))
    if len(_LETTER_CACHE) < 65_536:
        _LETTER_CACHE[col] = text
    return text


def letters_to_col(letters: str) -> int:
    """Convert a column letter name to its 1-based index (``A`` -> 1)."""
    if not letters or not letters.isalpha():
        raise ValueError(f"invalid column letters: {letters!r}")
    col = 0
    for ch in letters.upper():
        col = col * 26 + (ord(ch) - ord("A") + 1)
    return col


def parse_cell(text: str) -> tuple[int, int]:
    """Parse a plain A1 address into ``(col, row)``, ignoring ``$`` markers."""
    match = A1_CELL_RE.match(text.strip())
    if match is None:
        raise ValueError(f"invalid cell address: {text!r}")
    col = letters_to_col(match.group(2))
    row = int(match.group(4))
    if row < 1 or row > MAX_ROW or col > MAX_COL:
        raise ValueError(f"cell address out of bounds: {text!r}")
    return col, row


def format_cell(col: int, row: int, col_fixed: bool = False, row_fixed: bool = False) -> str:
    """Format ``(col, row)`` as an A1 address, with optional ``$`` markers."""
    if row < 1:
        raise ValueError(f"row index must be >= 1, got {row}")
    return (
        ("$" if col_fixed else "")
        + col_to_letters(col)
        + ("$" if row_fixed else "")
        + str(row)
    )


class CellRef(NamedTuple):
    """An A1 cell reference with absolute/relative fixedness flags.

    The flags record the ``$`` markers from the source formula; they are the
    cue that autofill (and hence TACO's heuristic edge selection) uses to
    distinguish fixed from relative references.
    """

    col: int
    row: int
    col_fixed: bool = False
    row_fixed: bool = False

    @classmethod
    def from_a1(cls, text: str) -> "CellRef":
        match = A1_CELL_RE.match(text.strip())
        if match is None:
            raise ValueError(f"invalid cell reference: {text!r}")
        col = letters_to_col(match.group(2))
        row = int(match.group(4))
        if row > MAX_ROW or col > MAX_COL:
            raise ValueError(f"cell reference out of bounds: {text!r}")
        return cls(col, row, match.group(1) == "$", match.group(3) == "$")

    def to_a1(self) -> str:
        return format_cell(self.col, self.row, self.col_fixed, self.row_fixed)

    @property
    def pos(self) -> tuple[int, int]:
        """The bare ``(col, row)`` position, dropping fixedness."""
        return (self.col, self.row)

    @property
    def is_fixed(self) -> bool:
        """True when both axes carry a ``$`` marker (a fully absolute ref)."""
        return self.col_fixed and self.row_fixed

    def shifted(self, dc: int, dr: int) -> "CellRef":
        """Shift by ``(dc, dr)``, respecting fixedness per axis.

        This is the autofill rule: a ``$``-fixed axis does not move.  A
        shift that would leave the sheet raises :class:`ReferenceError`
        (the caller converts it into a ``#REF!`` formula error).
        """
        col = self.col if self.col_fixed else self.col + dc
        row = self.row if self.row_fixed else self.row + dr
        if col < 1 or row < 1 or col > MAX_COL or row > MAX_ROW:
            raise ReferenceError(f"shifted reference out of bounds: {self.to_a1()}")
        return CellRef(col, row, self.col_fixed, self.row_fixed)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_a1()
