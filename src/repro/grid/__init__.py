"""Grid substrate: A1 addressing, cell references, and range algebra."""

from .ref import (
    MAX_COL,
    MAX_ROW,
    CellRef,
    col_to_letters,
    format_cell,
    letters_to_col,
    parse_cell,
)
from .range import Offset, Range, cell_range, column_span, row_span
from .rangeset import RangeSet

__all__ = [
    "MAX_COL",
    "MAX_ROW",
    "CellRef",
    "Offset",
    "Range",
    "RangeSet",
    "cell_range",
    "col_to_letters",
    "column_span",
    "format_cell",
    "letters_to_col",
    "parse_cell",
    "row_span",
]
