"""Rectangular ranges and range algebra.

A :class:`Range` is a rectangular region of cells identified by its head
(top-left) and tail (bottom-right) cells, the paper's 2-D windows.  Ranges
are the universal currency of the formula graph: vertices are ranges,
compressed edges store a precedent range and a dependent range, and queries
take and return ranges.  A single cell is the degenerate 1x1 range.

All coordinates are 1-based ``(col, row)`` pairs.  The algebra implemented
here — bounding box (the paper's ``(+)`` operator), intersection,
containment, subtraction into maximal sub-rectangles, and adjacency — is
everything the patterns and the BFS query need.
"""

from __future__ import annotations

from typing import Iterator

from .ref import col_to_letters, format_cell, parse_cell

__all__ = ["Range", "Offset", "cell_range"]

# An offset is a plain (dcol, drow) pair: cheap, hashable, and arithmetic
# stays explicit at call sites.
Offset = tuple[int, int]


class Range:
    """An immutable rectangular range ``[head=(c1,r1), tail=(c2,r2)]``."""

    __slots__ = ("c1", "r1", "c2", "r2")

    def __init__(self, c1: int, r1: int, c2: int, r2: int):
        if c1 > c2 or r1 > r2:
            raise ValueError(f"invalid range corners: ({c1},{r1})..({c2},{r2})")
        if c1 < 1 or r1 < 1:
            raise ValueError(f"range out of sheet bounds: ({c1},{r1})..({c2},{r2})")
        object.__setattr__(self, "c1", c1)
        object.__setattr__(self, "r1", r1)
        object.__setattr__(self, "c2", c2)
        object.__setattr__(self, "r2", r2)

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        raise AttributeError("Range is immutable")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_a1(cls, text: str) -> "Range":
        """Parse ``A1`` or ``A1:B3`` (``$`` markers are accepted and ignored)."""
        text = text.strip()
        if ":" in text:
            head_text, tail_text = text.split(":", 1)
            hc, hr = parse_cell(head_text)
            tc, tr = parse_cell(tail_text)
            # Normalise reversed corners, as spreadsheets do (B3:A1 == A1:B3).
            return cls(min(hc, tc), min(hr, tr), max(hc, tc), max(hr, tr))
        col, row = parse_cell(text)
        return cls(col, row, col, row)

    @classmethod
    def from_cells(cls, head: tuple[int, int], tail: tuple[int, int]) -> "Range":
        return cls(head[0], head[1], tail[0], tail[1])

    @classmethod
    def cell(cls, col: int, row: int) -> "Range":
        return cls(col, row, col, row)

    # -- basic accessors ---------------------------------------------------

    @property
    def head(self) -> tuple[int, int]:
        return (self.c1, self.r1)

    @property
    def tail(self) -> tuple[int, int]:
        return (self.c2, self.r2)

    @property
    def width(self) -> int:
        return self.c2 - self.c1 + 1

    @property
    def height(self) -> int:
        return self.r2 - self.r1 + 1

    @property
    def size(self) -> int:
        return self.width * self.height

    @property
    def is_cell(self) -> bool:
        return self.c1 == self.c2 and self.r1 == self.r2

    @property
    def is_column_slice(self) -> bool:
        """True for a 1-wide vertical run (including a single cell)."""
        return self.c1 == self.c2

    @property
    def is_row_slice(self) -> bool:
        """True for a 1-tall horizontal run (including a single cell)."""
        return self.r1 == self.r2

    def to_a1(self) -> str:
        if self.is_cell:
            return format_cell(self.c1, self.r1)
        return f"{format_cell(self.c1, self.r1)}:{format_cell(self.c2, self.r2)}"

    # -- geometry ----------------------------------------------------------

    def contains_cell(self, col: int, row: int) -> bool:
        return self.c1 <= col <= self.c2 and self.r1 <= row <= self.r2

    def contains(self, other: "Range") -> bool:
        return (
            self.c1 <= other.c1
            and self.r1 <= other.r1
            and other.c2 <= self.c2
            and other.r2 <= self.r2
        )

    def overlaps(self, other: "Range") -> bool:
        return (
            self.c1 <= other.c2
            and other.c1 <= self.c2
            and self.r1 <= other.r2
            and other.r1 <= self.r2
        )

    def intersect(self, other: "Range") -> "Range | None":
        c1 = self.c1 if self.c1 > other.c1 else other.c1
        r1 = self.r1 if self.r1 > other.r1 else other.r1
        c2 = self.c2 if self.c2 < other.c2 else other.c2
        r2 = self.r2 if self.r2 < other.r2 else other.r2
        if c1 > c2 or r1 > r2:
            return None
        return Range(c1, r1, c2, r2)

    def bounding(self, other: "Range") -> "Range":
        """The minimal bounding range of both inputs (the paper's ``(+)``)."""
        return Range(
            self.c1 if self.c1 < other.c1 else other.c1,
            self.r1 if self.r1 < other.r1 else other.r1,
            self.c2 if self.c2 > other.c2 else other.c2,
            self.r2 if self.r2 > other.r2 else other.r2,
        )

    def subtract(self, other: "Range") -> "list[Range]":
        """Maximal sub-rectangles of ``self`` not covered by ``other``.

        Returns up to four pieces (above, below, left, right of the
        intersection); returns ``[self]`` when the ranges are disjoint and
        ``[]`` when ``other`` covers ``self`` entirely.
        """
        inter = self.intersect(other)
        if inter is None:
            return [self]
        pieces: list[Range] = []
        if self.r1 < inter.r1:  # strip above
            pieces.append(Range(self.c1, self.r1, self.c2, inter.r1 - 1))
        if inter.r2 < self.r2:  # strip below
            pieces.append(Range(self.c1, inter.r2 + 1, self.c2, self.r2))
        if self.c1 < inter.c1:  # strip left (middle band)
            pieces.append(Range(self.c1, inter.r1, inter.c1 - 1, inter.r2))
        if inter.c2 < self.c2:  # strip right (middle band)
            pieces.append(Range(inter.c2 + 1, inter.r1, self.c2, inter.r2))
        return pieces

    def shift(self, dc: int, dr: int) -> "Range":
        return Range(self.c1 + dc, self.r1 + dr, self.c2 + dc, self.r2 + dr)

    def expand(self, margin: int = 1) -> "Range":
        """Grow by ``margin`` cells on every side, clamped to sheet bounds."""
        return Range(
            max(1, self.c1 - margin),
            max(1, self.r1 - margin),
            self.c2 + margin,
            self.r2 + margin,
        )

    def is_adjacent_to(self, other: "Range") -> bool:
        """True when the ranges touch edge-to-edge along a row or column axis."""
        if self.overlaps(other):
            return False
        expanded = self.expand(1)
        return expanded.overlaps(other)

    def cells(self) -> Iterator[tuple[int, int]]:
        """Iterate all member cell positions in row-major order."""
        for row in range(self.r1, self.r2 + 1):
            for col in range(self.c1, self.c2 + 1):
                yield (col, row)

    def cell_ranges(self) -> Iterator["Range"]:
        """Iterate all member cells as degenerate ranges."""
        for col, row in self.cells():
            yield Range(col, row, col, row)

    def corner_distance(self, other: "Range") -> int:
        """Chebyshev distance between the two head corners (a tie-breaker)."""
        return max(abs(self.c1 - other.c1), abs(self.r1 - other.r1))

    # -- dunder ------------------------------------------------------------

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.c1, self.r1, self.c2, self.r2)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return (
            self.c1 == other.c1
            and self.r1 == other.r1
            and self.c2 == other.c2
            and self.r2 == other.r2
        )

    def __lt__(self, other: "Range") -> bool:
        return self.as_tuple() < other.as_tuple()

    def __hash__(self) -> int:
        return hash((self.c1, self.r1, self.c2, self.r2))

    def __repr__(self) -> str:
        return f"Range({self.to_a1()})"

    def __str__(self) -> str:
        return self.to_a1()

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Range):
            return self.contains(item)
        if isinstance(item, tuple) and len(item) == 2:
            return self.contains_cell(item[0], item[1])
        return False

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return self.cells()


def cell_range(col: int, row: int) -> Range:
    """Shorthand for a degenerate single-cell range."""
    return Range(col, row, col, row)


def describe_span(rng: Range) -> str:  # pragma: no cover - debugging aid
    """Human-readable description, e.g. ``B2:D9 (3 cols x 8 rows)``."""
    return (
        f"{rng.to_a1()} ({rng.width} col{'s' if rng.width != 1 else ''}"
        f" x {rng.height} row{'s' if rng.height != 1 else ''})"
    )


def column_span(col: int, r1: int, r2: int) -> Range:
    """A vertical run in column ``col`` covering rows ``r1..r2``."""
    return Range(col, r1, col, r2)


def row_span(row: int, c1: int, c2: int) -> Range:
    """A horizontal run in row ``row`` covering columns ``c1..c2``."""
    return Range(c1, row, c2, row)


def format_column(col: int) -> str:
    """Column index to letters; re-exported here for convenience."""
    return col_to_letters(col)
