"""TACO: efficient and compact spreadsheet formula graphs.

A from-scratch Python reproduction of *Efficient and Compact Spreadsheet
Formula Graphs* (Tang et al., ICDE 2023).  The package provides:

* a spreadsheet substrate — A1 grid model, formula language with parser
  and evaluator, sheets/workbooks with autofill, and xlsx I/O;
* the TACO compressed formula graph (:class:`repro.core.TacoGraph`) with
  its pattern framework (RR, RF, FR, FF, RR-Chain), greedy compression,
  direct querying, and incremental maintenance;
* the paper's baselines: NoComp, NoComp-Calc, Antifreeze, a
  graph-database stand-in, and an Excel-like engine;
* synthetic corpus generators and a benchmark harness regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import Sheet, TacoGraph, build_from_sheet, Range

    sheet = Sheet()
    sheet.set_value("A1", 10.0)
    sheet.set_formula("B1", "=SUM(A1:A3)")
    graph = build_from_sheet(sheet)
    graph.find_dependents(Range.from_a1("A1"))
"""

from .core.patterns.base import CompressedEdge
from .core.taco_graph import TacoGraph, build_from_sheet, dependencies_column_major
from .engine import (
    BatchEditSession,
    BatchResult,
    CircularReferenceError,
    RecalcEngine,
    RecalcResult,
    ScenarioEngine,
    StructuralEditResult,
)
from .formula.errors import ExcelError, FormulaSyntaxError
from .formula.evaluator import Evaluator
from .formula.parser import parse_formula
from .formula.references import references_of_formula
from .graphs.base import Budget, DNFError, FormulaGraph, expand_cells
from .graphs.calc import NoCompCalcGraph
from .graphs.nocomp import NoCompGraph
from .grid.range import Range
from .grid.rangeset import RangeSet
from .grid.ref import CellRef
from .sheet.autofill import autofill, fill_formula_column, fill_formula_row
from .sheet.sheet import Dependency, Sheet
from .sheet.workbook import Workbook
from .spatial import SpatialIndex, available_indexes, make_index, register_index

__version__ = "1.0.0"

__all__ = [
    "BatchEditSession",
    "BatchResult",
    "Budget",
    "CellRef",
    "CircularReferenceError",
    "CompressedEdge",
    "DNFError",
    "Dependency",
    "RecalcEngine",
    "RecalcResult",
    "ScenarioEngine",
    "StructuralEditResult",
    "Evaluator",
    "ExcelError",
    "FormulaGraph",
    "FormulaSyntaxError",
    "NoCompCalcGraph",
    "NoCompGraph",
    "Range",
    "RangeSet",
    "Sheet",
    "SpatialIndex",
    "TacoGraph",
    "Workbook",
    "autofill",
    "available_indexes",
    "build_from_sheet",
    "dependencies_column_major",
    "expand_cells",
    "make_index",
    "register_index",
    "fill_formula_column",
    "fill_formula_row",
    "parse_formula",
    "references_of_formula",
    "__version__",
]
