"""Named registry of spatial-index backends.

Consumers (the graphs, :class:`~repro.grid.rangeset.RangeSet`, the
benchmark runner, the CLI) select a backend with
``make_index("rtree" | "gridbucket" | "container")`` instead of importing
a concrete class; new backends plug in through :func:`register_index`
without re-plumbing any consumer.

An ``IndexFactory`` is either a registered name or a zero-argument
callable returning a fresh :class:`~repro.spatial.base.SpatialIndex`
(handy for parameterised backends, e.g.
``lambda: GridBucketIndex(bucket_rows=64)``).
"""

from __future__ import annotations

from typing import Callable, Union

from .base import SpatialIndex

__all__ = ["IndexFactory", "available_indexes", "make_index", "register_index"]

IndexFactory = Union[str, Callable[[], SpatialIndex]]

_REGISTRY: dict[str, Callable[..., SpatialIndex]] = {}
_builtins_loaded = False


def register_index(name: str, factory: Callable[..., SpatialIndex]) -> None:
    """Register (or override) a backend under ``name``."""
    _REGISTRY[name.lower()] = factory


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    # Imported lazily so registry <-> backend imports cannot cycle.
    from .containers import ContainerIndex
    from .gridbucket import GridBucketIndex
    from .rtree import RTree

    _REGISTRY.setdefault("rtree", RTree)
    _REGISTRY.setdefault("gridbucket", GridBucketIndex)
    _REGISTRY.setdefault("container", ContainerIndex)
    _builtins_loaded = True


def available_indexes() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def make_index(spec: IndexFactory = "rtree", **kwargs) -> SpatialIndex:
    """Instantiate a backend from a registered name or a factory callable."""
    if callable(spec):
        return spec(**kwargs)
    _ensure_builtins()
    factory = _REGISTRY.get(spec.lower())
    if factory is None:
        names = ", ".join(available_indexes())
        raise ValueError(f"unknown spatial index {spec!r}; available: {names}")
    return factory(**kwargs)
