"""A bucketed grid index optimised for point-and-neighbour probes.

Spreadsheet formula-graph workloads are dominated by small queries: the
greedy compressor probes a (2·reach+1)-square around each inserted cell
(Algorithm 2) and the query BFS pushes frontier ranges that are usually
single cells or short runs (Algorithm 3).  An R-Tree answers those in a
tree descent; this backend answers them in O(1) by hashing ranges into
fixed-size cell buckets.

Keys are registered in every *fine* bucket they overlap.  Keys too large
for that (long column runs, whole-column references) fall back to a
*coarse* tier of column stripes — unbounded in rows, so a whole-column
range registers in a handful of stripes instead of thousands of buckets —
and keys spanning very many stripes land in a single broadcast list that
every search scans (the same escape hatch OpenOffice Calc uses for its
broadcast areas).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..grid.range import Range
from .base import IndexEntry, SpatialIndex

__all__ = ["GridBucketIndex"]

DEFAULT_BUCKET_COLS = 4
DEFAULT_BUCKET_ROWS = 16
DEFAULT_FINE_BUCKET_LIMIT = 8
DEFAULT_STRIPE_LIMIT = 16

_FINE, _STRIPE, _BROADCAST = 0, 1, 2


class GridBucketIndex(SpatialIndex):
    """Two-tier hashed-bucket spatial index over ranges.

    Functionally interchangeable with the R-Tree backend for overlap
    search, with a different profile: O(1) inserts and point probes, at
    the cost of scanning the broadcast list on every search and paying
    per-bucket registration for mid-size ranges.
    """

    backend_name = "gridbucket"

    def __init__(
        self,
        bucket_cols: int = DEFAULT_BUCKET_COLS,
        bucket_rows: int = DEFAULT_BUCKET_ROWS,
        fine_bucket_limit: int = DEFAULT_FINE_BUCKET_LIMIT,
        stripe_limit: int = DEFAULT_STRIPE_LIMIT,
    ):
        super().__init__()
        if bucket_cols < 1 or bucket_rows < 1:
            raise ValueError("bucket dimensions must be positive")
        if fine_bucket_limit < 1 or stripe_limit < 1:
            raise ValueError("tier limits must be positive")
        self._bucket_cols = bucket_cols
        self._bucket_rows = bucket_rows
        self._fine_limit = fine_bucket_limit
        self._stripe_limit = stripe_limit
        self._fine: dict[tuple[int, int], list[IndexEntry]] = {}
        self._stripes: dict[int, list[IndexEntry]] = {}
        self._broadcast: list[IndexEntry] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- bucket math ---------------------------------------------------------

    def _bucket_span(self, rng: Range) -> tuple[int, int, int, int]:
        bc1 = (rng.c1 - 1) // self._bucket_cols
        bc2 = (rng.c2 - 1) // self._bucket_cols
        br1 = (rng.r1 - 1) // self._bucket_rows
        br2 = (rng.r2 - 1) // self._bucket_rows
        return bc1, br1, bc2, br2

    def _tier_of(self, rng: Range) -> int:
        return self._tier_from_span(*self._bucket_span(rng))

    def _tier_from_span(self, bc1: int, br1: int, bc2: int, br2: int) -> int:
        stripes = bc2 - bc1 + 1
        if stripes * (br2 - br1 + 1) <= self._fine_limit:
            return _FINE
        if stripes <= self._stripe_limit:
            return _STRIPE
        return _BROADCAST

    def _fine_buckets_of(self, rng: Range) -> Iterator[tuple[int, int]]:
        bc1, br1, bc2, br2 = self._bucket_span(rng)
        for bc in range(bc1, bc2 + 1):
            for br in range(br1, br2 + 1):
                yield (bc, br)

    def _stripes_of(self, rng: Range) -> Iterator[int]:
        bc1, _, bc2, _ = self._bucket_span(rng)
        yield from range(bc1, bc2 + 1)

    # -- placement (shared by insert and bulk_load) --------------------------

    def _place(self, entry: IndexEntry) -> None:
        key = entry.key
        bc1, br1, bc2, br2 = self._bucket_span(key)
        tier = self._tier_from_span(bc1, br1, bc2, br2)
        if tier == _FINE:
            fine = self._fine
            for bc in range(bc1, bc2 + 1):
                for br in range(br1, br2 + 1):
                    bucket = fine.get((bc, br))
                    if bucket is None:
                        fine[(bc, br)] = [entry]
                    else:
                        bucket.append(entry)
        elif tier == _STRIPE:
            table = self._stripes
            for bc in range(bc1, bc2 + 1):
                stripe = table.get(bc)
                if stripe is None:
                    table[bc] = [entry]
                else:
                    stripe.append(entry)
        else:
            self._broadcast.append(entry)
        self._size += 1

    # -- operations ------------------------------------------------------------

    def insert(self, key: Range, payload: Any = None) -> None:
        self.insert_ops += 1
        self._place(IndexEntry(key, payload))

    def delete(self, key: Range, payload: Any = None) -> bool:
        self.delete_ops += 1
        tier = self._tier_of(key)
        if tier == _FINE:
            entry = self._remove_registered(
                self._fine, list(self._fine_buckets_of(key)), key, payload
            )
        elif tier == _STRIPE:
            entry = self._remove_registered(
                self._stripes, list(self._stripes_of(key)), key, payload
            )
        else:
            entry = self._match(self._broadcast, key, payload)
            if entry is not None:
                self._broadcast.remove(entry)
        if entry is None:
            return False
        self._size -= 1
        return True

    def search(self, query: Range) -> list[IndexEntry]:
        """All entries whose key overlaps ``query``.

        Entries registered in several visited buckets/stripes are reported
        once (identity de-duplication, as in Calc's listener handling).
        The overlap test is inlined — this is the hottest loop in the
        backend and a ``Range.overlaps`` call per candidate dominates it.
        """
        self.search_ops += 1
        qc1, qr1, qc2, qr2 = query.c1, query.r1, query.c2, query.r2
        bc1 = (qc1 - 1) // self._bucket_cols
        bc2 = (qc2 - 1) // self._bucket_cols
        br1 = (qr1 - 1) // self._bucket_rows
        br2 = (qr2 - 1) // self._bucket_rows
        out: list[IndexEntry] = []
        seen: set[int] = set()
        fine = self._fine
        if (bc2 - bc1 + 1) * (br2 - br1 + 1) <= len(fine):
            buckets = (
                bucket
                for bc in range(bc1, bc2 + 1)
                for br in range(br1, br2 + 1)
                if (bucket := fine.get((bc, br))) is not None
            )
        else:
            # A tall/wide query would probe mostly-absent buckets; walking
            # the populated ones is cheaper.
            buckets = (
                bucket
                for (bc, br), bucket in fine.items()
                if bc1 <= bc <= bc2 and br1 <= br <= br2
            )
        for bucket in buckets:
            for entry in bucket:
                key = entry.key
                if (
                    key.c1 <= qc2 and qc1 <= key.c2
                    and key.r1 <= qr2 and qr1 <= key.r2
                    and id(entry) not in seen
                ):
                    seen.add(id(entry))
                    out.append(entry)
        stripes = self._stripes
        for bc in range(bc1, bc2 + 1):
            stripe = stripes.get(bc)
            if stripe is None:
                continue
            for entry in stripe:
                key = entry.key
                if (
                    key.c1 <= qc2 and qc1 <= key.c2
                    and key.r1 <= qr2 and qr1 <= key.r2
                    and id(entry) not in seen
                ):
                    seen.add(id(entry))
                    out.append(entry)
        for entry in self._broadcast:
            key = entry.key
            if key.c1 <= qc2 and qc1 <= key.c2 and key.r1 <= qr2 and qr1 <= key.r2:
                out.append(entry)
        return out

    def _reset(self) -> None:
        self._fine.clear()
        self._stripes.clear()
        self._broadcast.clear()
        self._size = 0

    def __iter__(self) -> Iterator[IndexEntry]:
        seen: set[int] = set()
        for table in (self._fine, self._stripes):
            for entries in table.values():
                for entry in entries:
                    if id(entry) not in seen:
                        seen.add(id(entry))
                        yield entry
        yield from self._broadcast

    def stats(self) -> dict[str, int | str]:
        out = super().stats()
        out.update(
            fine_buckets=len(self._fine),
            stripes=len(self._stripes),
            broadcast_items=len(self._broadcast),
            registrations=(
                sum(len(v) for v in self._fine.values())
                + sum(len(v) for v in self._stripes.values())
                + len(self._broadcast)
            ),
        )
        return out
