"""Container-partitioned range index, after OpenOffice Calc.

The paper's NoComp-Calc baseline (Sec. VI-E) replaces the R-Tree with the
scheme documented for OpenOffice Calc's formula-dependency tracking: the
sheet space is pre-partitioned into fixed-size containers, each range is
registered in every container it overlaps, and a lookup visits the
containers overlapped by the query.  Ranges spanning very many containers
go to a single broadcast list instead (Calc's "broadcast area" behaviour),
which keeps registration bounded but makes every lookup pay for them.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..grid.range import Range
from .base import IndexEntry, SpatialIndex

__all__ = ["ContainerIndex"]

DEFAULT_BLOCK_COLS = 16
DEFAULT_BLOCK_ROWS = 1024
DEFAULT_BROADCAST_THRESHOLD = 64


class ContainerIndex(SpatialIndex):
    """Block-partitioned spatial index over ranges.

    Functionally interchangeable with :class:`~repro.spatial.rtree.RTree`
    for overlap search, but with Calc's performance profile: cheap inserts,
    lookups that degrade when ranges straddle many blocks or live in the
    broadcast list.
    """

    backend_name = "container"

    def __init__(
        self,
        block_cols: int = DEFAULT_BLOCK_COLS,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
    ):
        super().__init__()
        if block_cols < 1 or block_rows < 1:
            raise ValueError("block dimensions must be positive")
        self._block_cols = block_cols
        self._block_rows = block_rows
        self._broadcast_threshold = broadcast_threshold
        self._blocks: dict[tuple[int, int], list[IndexEntry]] = {}
        self._broadcast: list[IndexEntry] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- block math ----------------------------------------------------------

    def _block_span(self, rng: Range) -> tuple[int, int, int, int]:
        bc1 = (rng.c1 - 1) // self._block_cols
        bc2 = (rng.c2 - 1) // self._block_cols
        br1 = (rng.r1 - 1) // self._block_rows
        br2 = (rng.r2 - 1) // self._block_rows
        return bc1, br1, bc2, br2

    def _blocks_of(self, rng: Range) -> Iterator[tuple[int, int]]:
        bc1, br1, bc2, br2 = self._block_span(rng)
        for bc in range(bc1, bc2 + 1):
            for br in range(br1, br2 + 1):
                yield (bc, br)

    def _is_broadcast(self, rng: Range) -> bool:
        bc1, br1, bc2, br2 = self._block_span(rng)
        return (bc2 - bc1 + 1) * (br2 - br1 + 1) > self._broadcast_threshold

    # -- operations ------------------------------------------------------------

    def _place(self, entry: IndexEntry) -> None:
        if self._is_broadcast(entry.key):
            self._broadcast.append(entry)
        else:
            for block in self._blocks_of(entry.key):
                self._blocks.setdefault(block, []).append(entry)
        self._size += 1

    def insert(self, key: Range, payload: Any = None) -> None:
        self.insert_ops += 1
        self._place(IndexEntry(key, payload))

    def delete(self, key: Range, payload: Any = None) -> bool:
        self.delete_ops += 1
        if self._is_broadcast(key):
            entry = self._match(self._broadcast, key, payload)
            if entry is not None:
                self._broadcast.remove(entry)
        else:
            entry = self._remove_registered(
                self._blocks, list(self._blocks_of(key)), key, payload
            )
        if entry is None:
            return False
        self._size -= 1
        return True

    def search(self, query: Range) -> list[IndexEntry]:
        """All entries whose key overlaps ``query``.

        An item registered in several visited blocks is reported once; we
        deduplicate by identity, mirroring Calc's listener de-duplication.
        """
        self.search_ops += 1
        out: list[IndexEntry] = []
        seen: set[int] = set()
        for block in self._blocks_of(query):
            for entry in self._blocks.get(block, ()):
                if entry.key.overlaps(query) and id(entry) not in seen:
                    seen.add(id(entry))
                    out.append(entry)
        for entry in self._broadcast:
            if entry.key.overlaps(query):
                out.append(entry)
        return out

    def _reset(self) -> None:
        self._blocks.clear()
        self._broadcast.clear()
        self._size = 0

    def __iter__(self) -> Iterator[IndexEntry]:
        seen: set[int] = set()
        for items in self._blocks.values():
            for entry in items:
                if id(entry) not in seen:
                    seen.add(id(entry))
                    yield entry
        yield from self._broadcast

    def stats(self) -> dict[str, int | str]:
        out = super().stats()
        out.update(
            blocks=len(self._blocks),
            broadcast_items=len(self._broadcast),
            registrations=sum(len(v) for v in self._blocks.values()) + len(self._broadcast),
        )
        return out
