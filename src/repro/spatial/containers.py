"""Container-partitioned range index, after OpenOffice Calc.

The paper's NoComp-Calc baseline (Sec. VI-E) replaces the R-Tree with the
scheme documented for OpenOffice Calc's formula-dependency tracking: the
sheet space is pre-partitioned into fixed-size containers, each range is
registered in every container it overlaps, and a lookup visits the
containers overlapped by the query.  Ranges spanning very many containers
go to a single broadcast list instead (Calc's "broadcast area" behaviour),
which keeps registration bounded but makes every lookup pay for them.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..grid.range import Range

__all__ = ["ContainerIndex"]

DEFAULT_BLOCK_COLS = 16
DEFAULT_BLOCK_ROWS = 1024
DEFAULT_BROADCAST_THRESHOLD = 64


class ContainerIndex:
    """Block-partitioned spatial index over ranges.

    Functionally interchangeable with :class:`~repro.spatial.rtree.RTree`
    for overlap search, but with Calc's performance profile: cheap inserts,
    lookups that degrade when ranges straddle many blocks or live in the
    broadcast list.
    """

    def __init__(
        self,
        block_cols: int = DEFAULT_BLOCK_COLS,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
    ):
        if block_cols < 1 or block_rows < 1:
            raise ValueError("block dimensions must be positive")
        self._block_cols = block_cols
        self._block_rows = block_rows
        self._broadcast_threshold = broadcast_threshold
        self._blocks: dict[tuple[int, int], list[tuple[Range, Any]]] = {}
        self._broadcast: list[tuple[Range, Any]] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- block math ----------------------------------------------------------

    def _block_span(self, rng: Range) -> tuple[int, int, int, int]:
        bc1 = (rng.c1 - 1) // self._block_cols
        bc2 = (rng.c2 - 1) // self._block_cols
        br1 = (rng.r1 - 1) // self._block_rows
        br2 = (rng.r2 - 1) // self._block_rows
        return bc1, br1, bc2, br2

    def _blocks_of(self, rng: Range) -> Iterator[tuple[int, int]]:
        bc1, br1, bc2, br2 = self._block_span(rng)
        for bc in range(bc1, bc2 + 1):
            for br in range(br1, br2 + 1):
                yield (bc, br)

    def _is_broadcast(self, rng: Range) -> bool:
        bc1, br1, bc2, br2 = self._block_span(rng)
        return (bc2 - bc1 + 1) * (br2 - br1 + 1) > self._broadcast_threshold

    # -- operations ------------------------------------------------------------

    def insert(self, key: Range, payload: Any = None) -> None:
        item = (key, payload)
        if self._is_broadcast(key):
            self._broadcast.append(item)
        else:
            for block in self._blocks_of(key):
                self._blocks.setdefault(block, []).append(item)
        self._size += 1

    def delete(self, key: Range, payload: Any = None) -> bool:
        removed = False
        if self._is_broadcast(key):
            removed = self._remove_from(self._broadcast, key, payload)
        else:
            for block in self._blocks_of(key):
                items = self._blocks.get(block)
                if items is None:
                    continue
                if self._remove_from(items, key, payload):
                    removed = True
                if not items:
                    del self._blocks[block]
        if removed:
            self._size -= 1
        return removed

    @staticmethod
    def _remove_from(items: list[tuple[Range, Any]], key: Range, payload: Any) -> bool:
        for i, (k, p) in enumerate(items):
            if k == key and (payload is None or p is payload):
                items.pop(i)
                return True
        return False

    def search(self, query: Range) -> list[tuple[Range, Any]]:
        """All (key, payload) pairs whose key overlaps ``query``.

        An item registered in several visited blocks is reported once; we
        deduplicate by identity, mirroring Calc's listener de-duplication.
        """
        out: list[tuple[Range, Any]] = []
        seen: set[int] = set()
        for block in self._blocks_of(query):
            for item in self._blocks.get(block, ()):  # noqa: B020
                if item[0].overlaps(query) and id(item) not in seen:
                    seen.add(id(item))
                    out.append(item)
        for item in self._broadcast:
            if item[0].overlaps(query):
                out.append(item)
        return out

    def search_payloads(self, query: Range) -> list[Any]:
        return [payload for _, payload in self.search(query)]

    def __iter__(self) -> Iterator[tuple[Range, Any]]:
        seen: set[int] = set()
        for items in self._blocks.values():
            for item in items:
                if id(item) not in seen:
                    seen.add(id(item))
                    yield item
        yield from self._broadcast

    def stats(self) -> dict[str, int]:
        return {
            "blocks": len(self._blocks),
            "broadcast_items": len(self._broadcast),
            "registrations": sum(len(v) for v in self._blocks.values()),
            "size": self._size,
        }
