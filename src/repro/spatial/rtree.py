"""A Guttman R-Tree over spreadsheet ranges.

The paper indexes the vertices of both the compressed and uncompressed
formula graphs with an R-Tree so that, given an input range, the vertices
overlapping it can be found quickly (Sec. II-A, IV).  This is a classic
dynamic R-Tree (Guttman, SIGMOD 1984) with quadratic split, specialised to
integer cell rectangles: entry keys are :class:`~repro.grid.Range` values
and every entry carries an arbitrary payload (in the graphs, an edge).

Supported operations match the paper's complexity assumptions: search is
linear in the worst case but logarithmic in practice, insert and delete are
logarithmic.  Duplicate keys are allowed (two edges may share a vertex).
Bulk construction uses sort-tile-recursive (STR) packing, which produces a
tighter tree than one-at-a-time insertion of a known vertex set.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..grid.range import Range
from .base import IndexEntry, SpatialIndex

__all__ = ["RTree", "RTreeEntry"]

DEFAULT_MAX_ENTRIES = 8

# Historical name; R-Tree leaf entries are plain index entries.
RTreeEntry = IndexEntry


class _Node:
    __slots__ = ("leaf", "children", "entries", "c1", "r1", "c2", "r2", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.children: list[_Node] = []
        self.entries: list[RTreeEntry] = []
        self.parent: _Node | None = None
        # Degenerate empty box; fixed on first insert.
        self.c1 = self.r1 = 1
        self.c2 = self.r2 = 0

    # -- bounding-box helpers ---------------------------------------------

    def mbr_is_empty(self) -> bool:
        return self.c2 < self.c1

    def include(self, c1: int, r1: int, c2: int, r2: int) -> None:
        if self.mbr_is_empty():
            self.c1, self.r1, self.c2, self.r2 = c1, r1, c2, r2
            return
        if c1 < self.c1:
            self.c1 = c1
        if r1 < self.r1:
            self.r1 = r1
        if c2 > self.c2:
            self.c2 = c2
        if r2 > self.r2:
            self.r2 = r2

    def recompute_mbr(self) -> None:
        self.c1 = self.r1 = 1
        self.c2 = self.r2 = 0
        if self.leaf:
            for entry in self.entries:
                key = entry.key
                self.include(key.c1, key.r1, key.c2, key.r2)
        else:
            for child in self.children:
                self.include(child.c1, child.r1, child.c2, child.r2)

    def overlaps(self, c1: int, r1: int, c2: int, r2: int) -> bool:
        return (
            not self.mbr_is_empty()
            and self.c1 <= c2
            and c1 <= self.c2
            and self.r1 <= r2
            and r1 <= self.r2
        )

    def area(self) -> int:
        if self.mbr_is_empty():
            return 0
        return (self.c2 - self.c1 + 1) * (self.r2 - self.r1 + 1)

    def count(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)


def _even_chunks(seq: list, capacity: int) -> list[list]:
    """Split ``seq`` into ceil(len/capacity) contiguous chunks of even size.

    Balanced sizes (they differ by at most one) keep every chunk at or
    above half capacity whenever more than one chunk is produced, which
    is what the packed tree's minimum-fill invariant needs.
    """
    count = -(-len(seq) // capacity)
    base, rem = divmod(len(seq), count)
    out: list[list] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < rem else 0)
        out.append(seq[start : start + size])
        start += size
    return out


def _enlargement(node: _Node, c1: int, r1: int, c2: int, r2: int) -> int:
    """Area growth of ``node``'s MBR if it absorbed the given box."""
    if node.mbr_is_empty():
        return (c2 - c1 + 1) * (r2 - r1 + 1)
    nc1 = c1 if c1 < node.c1 else node.c1
    nr1 = r1 if r1 < node.r1 else node.r1
    nc2 = c2 if c2 > node.c2 else node.c2
    nr2 = r2 if r2 > node.r2 else node.r2
    return (nc2 - nc1 + 1) * (nr2 - nr1 + 1) - node.area()


class RTree(SpatialIndex):
    """Dynamic R-Tree mapping :class:`Range` keys to payloads."""

    backend_name = "rtree"

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        super().__init__()
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- search ------------------------------------------------------------

    def search(self, query: Range) -> list[RTreeEntry]:
        """All entries whose key overlaps ``query``."""
        self.search_ops += 1
        out: list[RTreeEntry] = []
        qc1, qr1, qc2, qr2 = query.c1, query.r1, query.c2, query.r2
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.overlaps(qc1, qr1, qc2, qr2):
                continue
            if node.leaf:
                for entry in node.entries:
                    key = entry.key
                    if key.c1 <= qc2 and qc1 <= key.c2 and key.r1 <= qr2 and qr1 <= key.r2:
                        out.append(entry)
            else:
                stack.extend(node.children)
        return out

    def __iter__(self) -> Iterator[RTreeEntry]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    # -- insert ------------------------------------------------------------

    def insert(self, key: Range, payload: Any = None) -> None:
        self.insert_ops += 1
        self._size += 1
        self._insert_entry(RTreeEntry(key, payload))

    def _insert_entry(self, entry: RTreeEntry) -> None:
        """Place an entry without touching counters; also the re-insert
        path used by :meth:`_condense`, so ``insert_ops`` and ``_size``
        reflect caller operations only."""
        key = entry.key
        leaf = self._choose_leaf(self._root, key)
        leaf.entries.append(entry)
        leaf.include(key.c1, key.r1, key.c2, key.r2)
        if len(leaf.entries) > self._max:
            self._split(leaf)
        else:
            self._propagate_mbr(leaf.parent, key)

    def _propagate_mbr(self, node: _Node | None, key: Range) -> None:
        while node is not None:
            node.include(key.c1, key.r1, key.c2, key.r2)
            node = node.parent

    def _choose_leaf(self, node: _Node, key: Range) -> _Node:
        while not node.leaf:
            best = None
            best_growth = None
            best_area = None
            for child in node.children:
                growth = _enlargement(child, key.c1, key.r1, key.c2, key.r2)
                area = child.area()
                if (
                    best is None
                    or growth < best_growth
                    or (growth == best_growth and area < best_area)
                ):
                    best, best_growth, best_area = child, growth, area
            node = best
        return node

    def _split(self, node: _Node) -> None:
        """Quadratic split of an overfull node, propagating upwards."""
        if node.leaf:
            items = node.entries
            boxes = [(e.key.c1, e.key.r1, e.key.c2, e.key.r2) for e in items]
        else:
            items = node.children
            boxes = [(c.c1, c.r1, c.c2, c.r2) for c in items]

        seed_a, seed_b = self._pick_seeds(boxes)
        group_a, group_b = [items[seed_a]], [items[seed_b]]
        box_a, box_b = list(boxes[seed_a]), list(boxes[seed_b])
        remaining = [i for i in range(len(items)) if i not in (seed_a, seed_b)]

        def grow(box: list[int], other: tuple[int, int, int, int]) -> int:
            nc1 = min(box[0], other[0])
            nr1 = min(box[1], other[1])
            nc2 = max(box[2], other[2])
            nr2 = max(box[3], other[3])
            return (nc2 - nc1 + 1) * (nr2 - nr1 + 1) - (box[2] - box[0] + 1) * (
                box[3] - box[1] + 1
            )

        def absorb(box: list[int], other: tuple[int, int, int, int]) -> None:
            box[0] = min(box[0], other[0])
            box[1] = min(box[1], other[1])
            box[2] = max(box[2], other[2])
            box[3] = max(box[3], other[3])

        while remaining:
            # Force-assign when one group must take all the rest to reach
            # the minimum fill factor.
            if len(group_a) + len(remaining) == self._min:
                for i in remaining:
                    group_a.append(items[i])
                    absorb(box_a, boxes[i])
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min:
                for i in remaining:
                    group_b.append(items[i])
                    absorb(box_b, boxes[i])
                remaining = []
                break
            # Pick the item with the largest preference for one group.
            best_i = None
            best_diff = -1
            for i in remaining:
                d1, d2 = grow(box_a, boxes[i]), grow(box_b, boxes[i])
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_i, best_diff, best_pair = i, diff, (d1, d2)
            remaining.remove(best_i)
            if best_pair[0] <= best_pair[1]:
                group_a.append(items[best_i])
                absorb(box_a, boxes[best_i])
            else:
                group_b.append(items[best_i])
                absorb(box_b, boxes[best_i])

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
            for child in group_b:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr()
            self._root = new_root
            return
        parent.children.append(sibling)
        sibling.parent = parent
        parent.recompute_mbr()
        if len(parent.children) > self._max:
            self._split(parent)
        else:
            node2 = parent.parent
            while node2 is not None:
                node2.recompute_mbr()
                node2 = node2.parent

    @staticmethod
    def _pick_seeds(boxes: list[tuple[int, int, int, int]]) -> tuple[int, int]:
        """The pair of boxes wasting the most area when grouped together."""
        worst = (-1, 0, 1)
        n = len(boxes)
        for i in range(n):
            bi = boxes[i]
            area_i = (bi[2] - bi[0] + 1) * (bi[3] - bi[1] + 1)
            for j in range(i + 1, n):
                bj = boxes[j]
                c1 = min(bi[0], bj[0])
                r1 = min(bi[1], bj[1])
                c2 = max(bi[2], bj[2])
                r2 = max(bi[3], bj[3])
                waste = (
                    (c2 - c1 + 1) * (r2 - r1 + 1)
                    - area_i
                    - (bj[2] - bj[0] + 1) * (bj[3] - bj[1] + 1)
                )
                if waste > worst[0]:
                    worst = (waste, i, j)
        return worst[1], worst[2]

    # -- delete ------------------------------------------------------------

    def delete(self, key: Range, payload: Any = None) -> bool:
        """Remove one entry with the given key (and payload, if provided).

        Returns True when an entry was removed.  Underfull leaves are
        condensed by reinserting their survivors, per Guttman.
        """
        self.delete_ops += 1
        leaf, index = self._find_entry(self._root, key, payload)
        if leaf is None:
            return False
        leaf.entries.pop(index)
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_entry(
        self, node: _Node, key: Range, payload: Any
    ) -> tuple[_Node | None, int]:
        stack = [node]
        while stack:
            current = stack.pop()
            if not current.overlaps(key.c1, key.r1, key.c2, key.r2):
                continue
            if current.leaf:
                for i, entry in enumerate(current.entries):
                    if entry.key == key and (payload is None or entry.payload is payload):
                        return current, i
            else:
                stack.extend(current.children)
        return None, -1

    def _condense(self, leaf: _Node) -> None:
        orphans: list[RTreeEntry] = []
        node = leaf
        while node.parent is not None:
            parent = node.parent
            if node.count() < self._min:
                parent.children.remove(node)
                if node.leaf:
                    orphans.extend(node.entries)
                else:
                    # Collect all leaf entries under the pruned subtree.
                    stack = list(node.children)
                    while stack:
                        sub = stack.pop()
                        if sub.leaf:
                            orphans.extend(sub.entries)
                        else:
                            stack.extend(sub.children)
            else:
                node.recompute_mbr()
            node = parent
        self._root.recompute_mbr()
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        # Orphans never left the tree from the caller's point of view:
        # re-place them through the internal path so neither ``_size`` nor
        # ``insert_ops`` records the restructuring.
        for entry in orphans:
            self._insert_entry(entry)

    # -- bulk loading --------------------------------------------------------

    def bulk_load(self, items: Iterable[tuple[Range, Any]]) -> None:
        """Replace the whole contents using sort-tile-recursive packing.

        STR (Leutenegger et al., ICDE 1997): sort by centre column, cut
        into vertical slabs, sort each slab by centre row, and cut into
        full nodes; repeat level by level.  The result is a near-fully
        packed tree, much tighter than the one incremental insertion
        leaves behind — ideal after a column-major build where every
        vertex arrived one at a time.
        """
        self.bulk_loads += 1
        entries = [RTreeEntry(key, payload) for key, payload in items]
        self._size = len(entries)
        if not entries:
            self._root = _Node(leaf=True)
            return
        leaves: list[_Node] = []
        for group in self._str_tiles(
            entries, lambda e: (e.key.c1 + e.key.c2, e.key.r1 + e.key.r2)
        ):
            leaf = _Node(leaf=True)
            leaf.entries = group
            leaf.recompute_mbr()
            leaves.append(leaf)
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for group in self._str_tiles(
                level, lambda n: (n.c1 + n.c2, n.r1 + n.r2)
            ):
                parent = _Node(leaf=False)
                parent.children = group
                for child in group:
                    child.parent = parent
                parent.recompute_mbr()
                parents.append(parent)
            level = parents
        self._root = level[0]
        self._root.parent = None

    def _str_tiles(self, items: list, centre) -> list[list]:
        """Partition ``items`` into node-sized groups by the STR recipe.

        ``centre`` maps an item to its (2*cx, 2*cy) box centre.  Groups
        are evenly sized, which keeps every group within
        ``[self._min, self._max]`` whenever more than one is needed.
        """
        if len(items) <= self._max:
            return [items]
        node_count = -(-len(items) // self._max)
        slab_count = max(1, round(node_count**0.5))
        ordered = sorted(items, key=lambda item: centre(item)[0])
        groups: list[list] = []
        for slab in _even_chunks(ordered, -(-len(ordered) // slab_count)):
            slab.sort(key=lambda item: centre(item)[1])
            groups.extend(_even_chunks(slab, self._max))
        return groups

    # -- diagnostics ---------------------------------------------------------

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.leaf:
            depth += 1
            node = node.children[0]
        return depth

    def stats(self) -> "dict[str, int | str]":
        out = super().stats()
        nodes = leaves = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            if node.leaf:
                leaves += 1
            else:
                stack.extend(node.children)
        out.update(depth=self.depth(), nodes=nodes, leaves=leaves)
        return out

    def check_invariants(self) -> None:
        """Validate structure; used by the property tests."""
        count = self._check_node(self._root, is_root=True)
        assert count == self._size, f"size mismatch: counted {count}, recorded {self._size}"

    def _check_node(self, node: _Node, is_root: bool = False) -> int:
        if not is_root:
            assert self._min <= node.count() <= self._max, (
                f"node fill {node.count()} outside [{self._min}, {self._max}]"
            )
        if node.leaf:
            for entry in node.entries:
                key = entry.key
                assert node.c1 <= key.c1 and key.c2 <= node.c2
                assert node.r1 <= key.r1 and key.r2 <= node.r2
            return len(node.entries)
        total = 0
        for child in node.children:
            assert child.parent is node, "broken parent pointer"
            assert node.c1 <= child.c1 and child.c2 <= node.c2
            assert node.r1 <= child.r1 and child.r2 <= node.r2
            total += self._check_node(child)
        return total
