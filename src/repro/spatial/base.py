"""The pluggable spatial-index protocol.

The paper treats the vertex index as an implementation detail — "an R-Tree
over the vertices" (Sec. VI-A) — but every hot path in this reproduction
(greedy compression probes in Algorithm 2, BFS frontier lookups in
Algorithm 3, maintenance overlap scans) funnels through it.  This module
defines the small surface all of those consumers actually need, so that
backends with different performance profiles (R-Tree, grid buckets,
Calc-style containers, future sorted interval lists) are interchangeable:

* ``insert(key, payload)`` / ``delete(key, payload)`` — dynamic updates;
* ``search(query)`` — all entries whose key overlaps the query range;
* ``covering(query)`` — entries whose key fully contains the query;
* ``bulk_load(items)`` — rebuild from a known item set, letting backends
  use packing algorithms (e.g. sort-tile-recursive for the R-Tree);
* ``stats()`` and the ``*_ops`` counters — benchmark instrumentation.

Backends are selected by name through :mod:`repro.spatial.registry`;
consumers hold a :class:`SpatialIndex` and never a concrete class.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Iterator

from ..grid.range import Range

__all__ = ["IndexEntry", "SpatialIndex"]


class IndexEntry:
    """A stored item: an exact range key and its payload.

    Iterable as a ``(key, payload)`` pair so call sites may unpack it.
    """

    __slots__ = ("key", "payload")

    def __init__(self, key: Range, payload: Any = None):
        self.key = key
        self.payload = payload

    def __iter__(self) -> Iterator[Any]:
        yield self.key
        yield self.payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexEntry({self.key}, {self.payload!r})"


class SpatialIndex(abc.ABC):
    """Abstract spatial index mapping :class:`Range` keys to payloads.

    Duplicate keys are allowed (two edges may share a vertex).  ``delete``
    matches by key equality and, when a payload is given, payload identity.
    The ``search_ops`` / ``insert_ops`` / ``delete_ops`` counters record
    *caller* operations only; internal restructuring work (node splits,
    condense re-inserts, bulk packing) must not inflate them.

    Complexity expectations, ``n`` entries: ``insert``/``delete`` should
    be sub-linear (R-Tree: ``O(log n)`` amortised; grid buckets:
    ``O(key area)``); ``search`` should cost the backend's probe plus
    the number of hits; ``bulk_load`` may take ``O(n log n)`` to buy a
    packed layout — graph builds and large batch commits call it instead
    of incremental inserts/deletes exactly for that trade.  Consumers
    rely on two invariants: an entry inserted and not deleted is
    returned by every overlapping ``search``, and iteration visits each
    stored entry exactly once (the graphs' index-consistency checks are
    built on it).
    """

    backend_name = "abstract"

    def __init__(self):
        self.search_ops = 0
        self.insert_ops = 0
        self.delete_ops = 0
        self.bulk_loads = 0

    # -- required operations -------------------------------------------------

    @abc.abstractmethod
    def insert(self, key: Range, payload: Any = None) -> None:
        """Add one entry."""

    @abc.abstractmethod
    def delete(self, key: Range, payload: Any = None) -> bool:
        """Remove one matching entry; True when something was removed."""

    @abc.abstractmethod
    def search(self, query: Range) -> list[IndexEntry]:
        """All entries whose key overlaps ``query``."""

    def bulk_load(self, items: Iterable[tuple[Range, Any]]) -> None:
        """Replace the whole contents with ``items`` in one packing pass.

        The default drives the bucketed-backend hooks ``_reset`` and
        ``_place``; backends with a real packing algorithm (the R-Tree's
        STR) override the whole method instead.
        """
        self.bulk_loads += 1
        self._reset()
        for key, payload in items:
            self._place(IndexEntry(key, payload))

    def _reset(self) -> None:
        """Hook for the default ``bulk_load``: drop all contents."""
        raise NotImplementedError

    def _place(self, entry: IndexEntry) -> None:
        """Hook for the default ``bulk_load``: register one entry."""
        raise NotImplementedError

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[IndexEntry]:
        """Iterate every stored entry exactly once."""

    # -- shared machinery for slot-registered backends -----------------------

    @staticmethod
    def _match(entries: Iterable[IndexEntry], key: Range, payload: Any) -> "IndexEntry | None":
        """First entry matching ``key`` (and ``payload`` identity, if given)."""
        for entry in entries:
            if entry.key == key and (payload is None or entry.payload is payload):
                return entry
        return None

    @staticmethod
    def _remove_registered(
        table: dict, slots: list, key: Range, payload: Any
    ) -> "IndexEntry | None":
        """Unregister one matching entry from every slot it was placed in.

        An entry is registered in every slot its key overlaps, so the
        first slot identifies the object; empty slots are dropped.
        """
        entry = SpatialIndex._match(table.get(slots[0], ()), key, payload)
        if entry is None:
            return None
        for slot in slots:
            bucket = table[slot]
            bucket.remove(entry)
            if not bucket:
                del table[slot]
        return entry

    # -- derived helpers -----------------------------------------------------

    def search_payloads(self, query: Range) -> list[Any]:
        return [entry.payload for entry in self.search(query)]

    def search_items(self, query: Range) -> list[tuple[Range, Any]]:
        return [(entry.key, entry.payload) for entry in self.search(query)]

    def covering(self, query: Range) -> list[IndexEntry]:
        """All entries whose key fully contains ``query``."""
        return [entry for entry in self.search(query) if entry.key.contains(query)]

    def items(self) -> list[tuple[Range, Any]]:
        return [(entry.key, entry.payload) for entry in self]

    # -- instrumentation -----------------------------------------------------

    def op_counts(self) -> dict[str, int]:
        return {
            "search_ops": self.search_ops,
            "insert_ops": self.insert_ops,
            "delete_ops": self.delete_ops,
            "bulk_loads": self.bulk_loads,
        }

    def reset_ops(self) -> None:
        self.search_ops = self.insert_ops = self.delete_ops = 0
        self.bulk_loads = 0

    def stats(self) -> dict[str, int | str]:
        """Backend-specific shape counters plus the op counters."""
        out: dict[str, int | str] = {"backend": self.backend_name, "size": len(self)}
        out.update(self.op_counts())
        return out
