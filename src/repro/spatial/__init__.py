"""Spatial indexes over ranges: R-Tree and Calc-style containers."""

from .containers import ContainerIndex
from .rtree import RTree, RTreeEntry

__all__ = ["ContainerIndex", "RTree", "RTreeEntry"]
