"""Pluggable spatial indexes over ranges.

:class:`SpatialIndex` is the protocol every backend implements;
:func:`make_index` instantiates one by registered name.  Shipped
backends: ``"rtree"`` (Guttman R-Tree with STR bulk loading),
``"gridbucket"`` (hashed cell buckets with a coarse overflow tier), and
``"container"`` (OpenOffice-Calc-style block partitioning).
"""

from .base import IndexEntry, SpatialIndex
from .containers import ContainerIndex
from .gridbucket import GridBucketIndex
from .registry import IndexFactory, available_indexes, make_index, register_index
from .rtree import RTree, RTreeEntry

__all__ = [
    "ContainerIndex",
    "GridBucketIndex",
    "IndexEntry",
    "IndexFactory",
    "RTree",
    "RTreeEntry",
    "SpatialIndex",
    "available_indexes",
    "make_index",
    "register_index",
]
