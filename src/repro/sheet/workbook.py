"""Workbook: a named collection of sheets with a cross-sheet resolver."""

from __future__ import annotations

from typing import Iterator, NamedTuple

from ..grid.range import Range
from .sheet import Sheet

__all__ = ["Workbook", "WorkbookEditReport", "WorkbookResolver"]


class WorkbookEditReport(NamedTuple):
    """Summary of one workbook-level structural edit (counts only)."""

    sheet: str                 # the edited sheet
    moved: int                 # formula cells relocated on the edited sheet
    rewritten: int             # formulas rewritten, across every sheet
    ref_errors: int            # formulas that gained a #REF!, across every sheet
    cross_sheet_rewrites: int  # rewritten formulas on *other* sheets
    removed: int               # cells deleted with the edited band


class Workbook:
    def __init__(self, name: str = "workbook"):
        self.name = name
        self._sheets: dict[str, Sheet] = {}
        self._order: list[str] = []

    def add_sheet(self, name: str = "Sheet1", store: str | None = None) -> Sheet:
        if name in self._sheets:
            raise ValueError(f"sheet {name!r} already exists")
        sheet = Sheet(name, store=store)
        self._sheets[name] = sheet
        self._order.append(name)
        return sheet

    def attach_sheet(self, sheet: Sheet) -> Sheet:
        if sheet.name in self._sheets:
            raise ValueError(f"sheet {sheet.name!r} already exists")
        self._sheets[sheet.name] = sheet
        self._order.append(sheet.name)
        return sheet

    def sheet(self, name: str) -> Sheet:
        return self._sheets[name]

    def __contains__(self, name: str) -> bool:
        return name in self._sheets

    def __getitem__(self, name: str) -> Sheet:
        return self._sheets[name]

    def __len__(self) -> int:
        return len(self._sheets)

    @property
    def sheet_names(self) -> list[str]:
        return list(self._order)

    @property
    def active_sheet(self) -> Sheet:
        if not self._order:
            raise ValueError("workbook has no sheets")
        return self._sheets[self._order[0]]

    def sheets(self) -> Iterator[Sheet]:
        for name in self._order:
            yield self._sheets[name]

    def begin_batch(self, sheet: str | None = None, graph=None, **kwargs):
        """Open a batched edit session on one sheet (default: the active one).

        See :meth:`repro.sheet.sheet.Sheet.begin_batch`; formula graphs
        are per-sheet (as in the paper), so a workbook batch targets one
        sheet's graph — but structural ops recorded on the session
        rewrite references on the *other* sheets too (the session
        inherits this workbook unless ``workbook=`` overrides it).
        """
        target = self.active_sheet if sheet is None else self._sheets[sheet]
        kwargs.setdefault("workbook", self)
        return target.begin_batch(graph=graph, **kwargs)

    # -- structural edits ---------------------------------------------------------

    def insert_rows(self, sheet: str | Sheet, row: int, count: int = 1) -> WorkbookEditReport:
        """Insert ``count`` blank rows before ``row`` on ``sheet``.

        Sheet-aware, workbook-wide: cells on the edited sheet move and
        its own references shift; on every *other* sheet only references
        qualified with the edited sheet's name are rewritten.  Cached
        formula values are preserved but stale — recalculation is the
        engine's job (:meth:`repro.engine.recalc.RecalcEngine.insert_rows`
        runs this same rewrite *plus* graph maintenance and dirty
        recalculation).
        """
        return self._structural_edit("insert_rows", sheet, row, count)

    def delete_rows(self, sheet: str | Sheet, row: int, count: int = 1) -> WorkbookEditReport:
        """Delete rows ``[row, row+count)`` on ``sheet``; references into
        them — from any sheet — collapse to ``#REF!``."""
        return self._structural_edit("delete_rows", sheet, row, count)

    def insert_columns(self, sheet: str | Sheet, col: int, count: int = 1) -> WorkbookEditReport:
        """Insert ``count`` blank columns before ``col`` on ``sheet``."""
        return self._structural_edit("insert_columns", sheet, col, count)

    def delete_columns(self, sheet: str | Sheet, col: int, count: int = 1) -> WorkbookEditReport:
        """Delete columns ``[col, col+count)`` on ``sheet``."""
        return self._structural_edit("delete_columns", sheet, col, count)

    def _structural_edit(
        self, op: str, sheet: str | Sheet, index: int, count: int
    ) -> WorkbookEditReport:
        from . import structural

        target = self._sheets[sheet] if isinstance(sheet, str) else sheet
        if target.name not in self._sheets or self._sheets[target.name] is not target:
            raise ValueError(f"sheet {target.name!r} is not part of this workbook")
        report = getattr(structural, op)(target, index, count)
        siblings = structural.rewrite_siblings(self, target, op, index, count)
        cross_rewritten = sum(len(r.rewritten) for r in siblings.values())
        cross_struck = sum(len(r.ref_struck) for r in siblings.values())
        return WorkbookEditReport(
            sheet=target.name,
            moved=len(report.moved),
            rewritten=len(report.rewritten) + cross_rewritten,
            ref_errors=len(report.ref_struck) + cross_struck,
            cross_sheet_rewrites=cross_rewritten,
            removed=report.removed,
        )

    # -- persistence --------------------------------------------------------------

    def snapshot(self, target, graphs=None):
        """Write a durable snapshot of this workbook to ``target``.

        Persists every cell (values, formula source, cached results) and
        one compressed formula graph per sheet — pass ``graphs`` (sheet
        name -> graph, e.g. each sheet's live ``engine.graph``) to reuse
        already-built graphs; missing ones are built here.  See
        :func:`repro.io.snapshot.save_snapshot`.  Returns the writer's
        :class:`~repro.io.snapshot.SnapshotStats`.
        """
        from ..io.snapshot import save_snapshot  # deferred: io sits above sheet

        return save_snapshot(self, target, graphs)

    @classmethod
    def restore(cls, snapshot, journal=None, **kwargs):
        """Reopen a workbook from a snapshot plus a write-ahead journal.

        Loads the snapshot (no re-parse, no re-compression, no full
        recalc), replays the journal's complete-record prefix through
        the batch/structural pipelines — a torn tail left by a crash is
        cut at the last complete record, never raised — and recomputes
        only the journal-dirtied cells.  Returns a
        :class:`~repro.engine.journal.RecoveryResult` whose ``workbook``
        is the restored instance.  See :func:`repro.engine.journal.recover`.
        """
        from ..engine.journal import recover  # deferred: engine sits above sheet

        return recover(snapshot, journal, **kwargs)

    def resolver(self) -> "WorkbookResolver":
        return WorkbookResolver(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workbook({self.name!r}, sheets={self._order})"


class WorkbookResolver:
    """CellResolver over a workbook; ``sheet=None`` means the active sheet."""

    __slots__ = ("_workbook", "default_sheet")

    def __init__(self, workbook: Workbook, default_sheet: str | None = None):
        self._workbook = workbook
        self.default_sheet = default_sheet

    def _resolve_sheet(self, sheet: str | None) -> Sheet | None:
        name = sheet if sheet is not None else self.default_sheet
        if name is None:
            return self._workbook.active_sheet if len(self._workbook) else None
        return self._workbook._sheets.get(name)

    def get_value(self, sheet: str | None, col: int, row: int):
        target = self._resolve_sheet(sheet)
        return None if target is None else target.resolver_get_value(None, col, row)

    def iter_cells(self, sheet: str | None, rng: Range):
        target = self._resolve_sheet(sheet)
        if target is None:
            return iter(())
        return target.resolver_iter_cells(None, rng)
