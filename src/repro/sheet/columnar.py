"""Typed columnar value store: O(cells) values without O(cells) objects.

The compressed formula graph is O(patterns), but a dict-of-``Cell``
sheet still spends a boxed Python object (plus a boxed float and a dict
entry) on every cell — on dense corpora that per-cell object overhead,
not graph work, dominates both memory and recalculation time.  This
module stores cell *values* column-wise in typed arrays instead:

======  ==========  ====================================================
tag     name        payload
======  ==========  ====================================================
0       EMPTY       (none — the position is unoccupied / value is None)
1       NUMBER      ``values[i]`` (IEEE-754 float64)
2       STRING      ``side[i]`` (the Python str)
3       BOOL        ``values[i]`` (0.0 / 1.0)
4       ERROR       ``side[i]`` (the :class:`ExcelError`)
5       OBJECT      ``side[i]`` (escape hatch for exotic values)
======  ==========  ====================================================

Each column is one ``array('d')`` of values plus one ``bytearray`` of
tags (9 bytes per cell before growth headroom) and a sparse ``side``
dict for the rare non-numeric payloads.  The store is pure stdlib — no
numpy required — but its buffers expose the buffer protocol, so the
vectorized evaluator (:mod:`repro.engine.vectorized`) wraps them
zero-copy with ``numpy.frombuffer`` when numpy is available.

Formula cells keep a real cell object (the AST, memoised references and
template key need per-cell identity), but as a :class:`ColumnarCell`
whose ``value`` attribute is a *write-through property* over the arrays:
``cell.value = x`` lands in the column arrays, never in a shadow slot,
so bulk array reads can never observe a stale value.  Pure-value
positions materialise a ``ColumnarCell`` view lazily — and only when
someone actually asks for the object via ``Sheet.cell_at``.

:class:`ColumnarStore` also speaks the small mapping dialect the sheet
layer uses (``items``/``get``/``pop``/``__setitem__``/...), so
``Sheet`` code written against the dict-of-Cells store runs against it
unchanged.  Numbers are canonicalised to float64 on write (``42`` comes
back as ``42.0``), exactly as a host spreadsheet stores them.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from ..formula.ast_nodes import Node
from ..formula.errors import ExcelError
from .cell import Cell

__all__ = [
    "TAG_BOOL",
    "TAG_EMPTY",
    "TAG_ERROR",
    "TAG_NUMBER",
    "TAG_OBJECT",
    "TAG_STRING",
    "ColumnarCell",
    "ColumnarStore",
]

TAG_EMPTY = 0
TAG_NUMBER = 1
TAG_STRING = 2
TAG_BOOL = 3
TAG_ERROR = 4
TAG_OBJECT = 5

#: Tags whose payload lives in the ``side`` dict, not the value array.
_SIDE_TAGS = (TAG_STRING, TAG_ERROR, TAG_OBJECT)

_D_ZERO = array("d", (0.0,))


class _Column:
    """One column's arrays: float64 values, tag bytes, sparse side table.

    Rows are 0-based indexes (``row - 1``); the arrays grow geometrically
    to the highest touched row.  Invariant: ``values[i]`` is 0.0 whenever
    ``tags[i]`` is not NUMBER/BOOL, so a raw value-buffer read of an
    empty lane is already the ``to_number(None)`` coercion.

    ``version`` counts content writes (growth excluded — appended lanes
    are EMPTY, which reads identically to out-of-bounds); lookaside
    structures (:mod:`repro.engine.lookup`) stamp it at build time and
    rebuild lazily when it moves.
    """

    __slots__ = ("values", "tags", "side", "version")

    def __init__(self, capacity: int = 0):
        self.values = array("d", bytes(8 * capacity))
        self.tags = bytearray(capacity)
        self.side: dict[int, object] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self.tags)

    def grow_to(self, size: int) -> None:
        have = len(self.tags)
        if size <= have:
            return
        # Geometric headroom so repeated appends stay amortised O(1).
        target = max(size, have + (have >> 1), 16)
        self.values.extend(_D_ZERO * (target - have))
        self.tags.extend(bytes(target - have))

    def occupied(self) -> int:
        return len(self.tags) - self.tags.count(0)


def _classify(value) -> tuple[int, float, object]:
    """``value -> (tag, array payload, side payload)``."""
    if value is None:
        return TAG_EMPTY, 0.0, None
    if value is True or value is False:
        return TAG_BOOL, 1.0 if value else 0.0, None
    if isinstance(value, (int, float)):
        return TAG_NUMBER, float(value), None
    if isinstance(value, str):
        return TAG_STRING, 0.0, value
    if isinstance(value, ExcelError):
        return TAG_ERROR, 0.0, value
    return TAG_OBJECT, 0.0, value


class ColumnarCell(Cell):
    """A cell whose ``value`` is a write-through view over the store.

    Used both for registered formula cells (which need a long-lived
    object carrying the AST and memoised caches) and for the lazy views
    ``Sheet.cell_at`` hands out for pure-value positions.  Either way,
    reading ``.value`` consults the column arrays and assigning it
    forwards there — direct writes can never leave the arrays stale.
    """

    __slots__ = ("_store", "_col", "_row")

    def __init__(
        self,
        store: "ColumnarStore",
        col: int,
        row: int,
        formula_text: str | None = None,
        formula_ast: Node | None = None,
    ):
        self._store = store
        self._col = col
        self._row = row
        self._formula_text = formula_text
        self._formula_ast = formula_ast
        self._references = None
        self._template_key = None

    @property
    def value(self):
        return self._store.read_value(self._col, self._row)

    @value.setter
    def value(self, new_value) -> None:
        self._store.write_through(self._col, self._row, new_value)

    @property
    def position(self) -> tuple[int, int]:
        """The (col, row) this view is bound to."""
        return (self._col, self._row)

    def invalidate_position_caches(self) -> None:
        """Drop memoised state that depends on where the cell sits.

        The R1C1 template key renders relative references against the
        host position; after a structural move the same AST keys
        differently.  Extracted references are absolute — they only
        change when the AST itself is rewritten — so they survive.
        """
        self._template_key = None


class ColumnarStore:
    """Per-sheet columnar backing store with a dict-of-Cells facade."""

    __slots__ = ("_columns", "_formulas", "_count", "epoch")

    def __init__(self) -> None:
        self._columns: dict[int, _Column] = {}
        #: Registered formula cells; their cached values live in the
        #: arrays (write-through), only AST state lives on the object.
        self._formulas: dict[tuple[int, int], ColumnarCell] = {}
        #: Occupied positions: non-EMPTY tags plus formula cells whose
        #: cached value is None (their tag is EMPTY but they exist).
        self._count = 0
        #: Store generation: bumped by whole-store reshapes (structural
        #: edits, clear, plane installs) that move values *between*
        #: columns, which per-column versions cannot express.
        self.epoch = 0

    # -- value plane -----------------------------------------------------------

    def read_value(self, col: int, row: int):
        """Value at (col, row) — the hot-loop read (None when blank)."""
        column = self._columns.get(col)
        if column is None:
            return None
        i = row - 1
        if i >= len(column.tags):
            return None
        tag = column.tags[i]
        if tag == TAG_EMPTY:
            return None
        if tag == TAG_NUMBER:
            return column.values[i]
        if tag == TAG_BOOL:
            return column.values[i] != 0.0
        return column.side[i]

    def _column_for(self, col: int, row: int) -> _Column:
        column = self._columns.get(col)
        if column is None:
            column = self._columns[col] = _Column()
        column.grow_to(row)
        return column

    def _write_raw(self, column: _Column, i: int, value) -> int:
        """Write one value into the arrays; returns the *old* tag."""
        tag, payload, side = _classify(value)
        column.version += 1
        old = column.tags[i]
        if old in _SIDE_TAGS:
            column.side.pop(i, None)
        column.tags[i] = tag
        column.values[i] = payload
        if side is not None:
            column.side[i] = side
        return old

    def write_pure(self, col: int, row: int, value) -> None:
        """``Sheet.set_value`` semantics: a value write replaces whatever
        occupied the position (formula included); None erases it."""
        pos = (col, row)
        formula = self._formulas.pop(pos, None)
        if value is None:
            column = self._columns.get(col)
            if column is None or row - 1 >= len(column.tags):
                if formula is not None:
                    self._count -= 1
                return
            old = self._write_raw(column, row - 1, None)
            if old != TAG_EMPTY or formula is not None:
                self._count -= 1
            return
        column = self._column_for(col, row)
        old = self._write_raw(column, row - 1, value)
        if old == TAG_EMPTY and formula is None:
            self._count += 1

    def write_through(self, col: int, row: int, value) -> None:
        """The view write path (``cell.value = x``).

        On a formula cell this updates the cached value; occupancy is
        keyed by the formula registration, so only the arrays change.
        On a pure-value view it behaves like ``Sheet.set_value`` —
        including ``None`` erasing the cell.
        """
        if (col, row) in self._formulas:
            self._write_raw(self._column_for(col, row), row - 1, value)
        else:
            self.write_pure(col, row, value)

    # -- formula plane ---------------------------------------------------------

    def put_formula(
        self,
        pos: tuple[int, int],
        formula_text: str | None = None,
        formula_ast: Node | None = None,
        value=None,
    ) -> ColumnarCell:
        """Install a formula cell at ``pos`` (cached value reset to
        ``value``, None by default — matching a fresh ``Cell``)."""
        col, row = pos
        column = self._column_for(col, row)
        old = column.tags[row - 1]
        was_occupied = old != TAG_EMPTY or pos in self._formulas
        cell = ColumnarCell(self, col, row, formula_text, formula_ast)
        self._formulas[pos] = cell
        self._write_raw(column, row - 1, value)
        if not was_occupied:
            self._count += 1
        return cell

    def formula_at(self, pos: tuple[int, int]) -> ColumnarCell | None:
        return self._formulas.get(pos)

    def formula_items(self):
        return self._formulas.items()

    @property
    def formula_count(self) -> int:
        return len(self._formulas)

    # -- mapping facade (the dialect Sheet code speaks) ------------------------

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def _occupied(self, pos: tuple[int, int]) -> bool:
        if pos in self._formulas:
            return True
        column = self._columns.get(pos[0])
        if column is None:
            return False
        i = pos[1] - 1
        return i < len(column.tags) and column.tags[i] != TAG_EMPTY

    def __contains__(self, pos) -> bool:
        return self._occupied(pos)

    def get(self, pos, default=None):
        cell = self._formulas.get(pos)
        if cell is not None:
            return cell
        if self._occupied(pos):
            return ColumnarCell(self, pos[0], pos[1])
        return default

    def __getitem__(self, pos):
        cell = self.get(pos)
        if cell is None:
            raise KeyError(pos)
        return cell

    def __setitem__(self, pos, cell) -> None:
        """Adopt a ``Cell`` (or view): formulas register, values inline.

        The cell's current value is read *before* any store mutation, so
        adopting a view of this very store is safe.
        """
        value = cell.value
        if cell.is_formula:
            self.put_formula(
                pos,
                formula_text=cell._formula_text,
                formula_ast=cell._formula_ast,
                value=value,
            )
        else:
            self.write_pure(pos[0], pos[1], value)

    def pop(self, pos, default=None):
        cell = self.get(pos)
        if cell is None:
            return default
        self.write_pure(pos[0], pos[1], None)
        return cell

    def __delitem__(self, pos) -> None:
        if not self._occupied(pos):
            raise KeyError(pos)
        self.write_pure(pos[0], pos[1], None)

    def clear(self) -> None:
        self._columns.clear()
        self._formulas.clear()
        self._count = 0
        self.epoch += 1

    def column_version(self, col: int) -> int:
        """Content-write counter of ``col`` (-1 when the column does not
        exist — distinct from any live version, which starts at 0)."""
        column = self._columns.get(col)
        return -1 if column is None else column.version

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for col, column in self._columns.items():
            tags = column.tags
            for i in range(len(tags)):
                if tags[i]:
                    yield (col, i + 1)
        for pos in self._formulas:
            column = self._columns.get(pos[0])
            if column is None or column.tags[pos[1] - 1] == TAG_EMPTY:
                yield pos

    def items(self) -> Iterator[tuple[tuple[int, int], Cell]]:
        formulas = self._formulas
        for pos in self:
            cell = formulas.get(pos)
            yield pos, (cell if cell is not None else ColumnarCell(self, *pos))

    # -- range iteration -------------------------------------------------------

    def iter_range(self, rng) -> Iterator[tuple[int, int, object]]:
        """Non-blank cells of ``rng`` as (col, row, value), row-major —
        the same geometric order the object store's resolver uses, so
        iteration-order-dependent choices (which error an aggregate
        propagates) are store-independent."""
        columns = []
        for col in range(rng.c1, rng.c2 + 1):
            column = self._columns.get(col)
            if column is not None:
                columns.append((col, column.tags, column.values, column.side))
        if not columns:
            return
        for row in range(rng.r1, rng.r2 + 1):
            i = row - 1
            for col, tags, values, side in columns:
                if i >= len(tags):
                    continue
                tag = tags[i]
                if tag == TAG_EMPTY:
                    continue
                if tag == TAG_NUMBER:
                    yield col, row, values[i]
                elif tag == TAG_BOOL:
                    yield col, row, values[i] != 0.0
                else:
                    yield col, row, side[i]

    def bounds(self) -> tuple[int, int, int, int] | None:
        """Bounding box of occupied positions, or None when empty."""
        min_col = min_row = max_col = max_row = None
        for col, row in self:
            if min_col is None:
                min_col = max_col = col
                min_row = max_row = row
                continue
            if col < min_col:
                min_col = col
            elif col > max_col:
                max_col = col
            if row < min_row:
                min_row = row
            elif row > max_row:
                max_row = row
        if min_col is None:
            return None
        return (min_col, min_row, max_col, max_row)

    # -- raw buffer access (the vectorized evaluator's window) -----------------

    def column_buffers(self, col: int) -> tuple[array, bytearray] | None:
        """The raw (values, tags) buffers of a column, or None."""
        column = self._columns.get(col)
        if column is None:
            return None
        return column.values, column.tags

    def ensure_column(self, col: int, row: int) -> _Column:
        """Grow ``col`` to cover ``row`` and return its :class:`_Column`."""
        return self._column_for(col, row)

    # -- structural edits ------------------------------------------------------

    def structural_edit(self, axis: str, mode: str, index: int, count: int) -> int:
        """Apply a row/column insert/delete to the arrays wholesale.

        Values move as array splices (O(column length) memmoves instead
        of O(cells) dict rebuilds), side tables and the formula registry
        are rekeyed, and registered views are rebound to their post-edit
        coordinates.  Returns the number of occupied positions removed
        with the deleted band (0 for inserts).
        """
        self.epoch += 1
        if axis == "row":
            if mode == "insert":
                self._insert_rows(index, count)
                return 0
            return self._delete_rows(index, count)
        if mode == "insert":
            self._insert_columns(index, count)
            return 0
        return self._delete_columns(index, count)

    def _insert_rows(self, row: int, count: int) -> None:
        i0 = row - 1
        for column in self._columns.values():
            if len(column.tags) <= i0:
                continue
            column.values[i0:i0] = _D_ZERO * count
            column.tags[i0:i0] = bytes(count)
            if column.side:
                column.side = {
                    (i + count if i >= i0 else i): v for i, v in column.side.items()
                }
        self._rekey_formulas(
            lambda pos: (pos[0], pos[1] + count) if pos[1] >= row else pos
        )

    def _delete_rows(self, row: int, count: int) -> int:
        i0, i1 = row - 1, row - 1 + count
        removed = 0
        for pos in self._formulas:
            # Formula cells with a None cached value occupy no tag slot;
            # count them here, the tag scan below covers the rest.
            if row <= pos[1] < row + count:
                column = self._columns.get(pos[0])
                i = pos[1] - 1
                if column is None or i >= len(column.tags) or not column.tags[i]:
                    removed += 1
        for column in self._columns.values():
            n = len(column.tags)
            if n <= i0:
                continue
            band = column.tags[i0:i1]
            removed += len(band) - band.count(0)
            del column.values[i0:i1]
            del column.tags[i0:i1]
            if column.side:
                side: dict[int, object] = {}
                for i, v in column.side.items():
                    if i < i0:
                        side[i] = v
                    elif i >= i1:
                        side[i - count] = v
                column.side = side
        end = row + count - 1

        def move(pos):
            col, r = pos
            if row <= r <= end:
                return None
            return (col, r - count) if r > end else pos

        self._rekey_formulas(move)
        self._count -= removed
        return removed

    def _insert_columns(self, col: int, count: int) -> None:
        self._columns = {
            (c + count if c >= col else c): column
            for c, column in self._columns.items()
        }
        self._rekey_formulas(
            lambda pos: (pos[0] + count, pos[1]) if pos[0] >= col else pos
        )

    def _delete_columns(self, col: int, count: int) -> int:
        end = col + count - 1
        removed = 0
        for pos in self._formulas:
            if col <= pos[0] <= end:
                column = self._columns.get(pos[0])
                i = pos[1] - 1
                if column is None or i >= len(column.tags) or not column.tags[i]:
                    removed += 1
        columns: dict[int, _Column] = {}
        for c, column in self._columns.items():
            if col <= c <= end:
                removed += column.occupied()
            elif c > end:
                columns[c - count] = column
            else:
                columns[c] = column
        self._columns = columns

        def move(pos):
            c, row = pos
            if col <= c <= end:
                return None
            return (c - count, row) if c > end else pos

        self._rekey_formulas(move)
        self._count -= removed
        return removed

    def _rekey_formulas(self, move) -> None:
        formulas: dict[tuple[int, int], ColumnarCell] = {}
        for pos, cell in self._formulas.items():
            new_pos = move(pos)
            if new_pos is None:
                continue
            cell._col, cell._row = new_pos
            formulas[new_pos] = cell
        self._formulas = formulas

    # -- bulk persistence ------------------------------------------------------

    def export_value_columns(self):
        """Yield ``(col, start_row, tags, values, side)`` per column for
        the *pure-value* positions (formula cached values are persisted
        with their formula records).

        ``tags`` is a trimmed bytes run starting at ``start_row``;
        ``values`` the matching float64 bytes; ``side`` maps 0-based
        offsets within the run to their payloads.  Columns with no pure
        values are skipped.
        """
        formula_rows: dict[int, set[int]] = {}
        for (col, row) in self._formulas:
            formula_rows.setdefault(col, set()).add(row - 1)
        for col in sorted(self._columns):
            column = self._columns[col]
            tags = bytearray(column.tags)
            for i in formula_rows.get(col, ()):
                if i < len(tags):
                    tags[i] = TAG_EMPTY
            first = next((i for i, t in enumerate(tags) if t), None)
            if first is None:
                continue
            last = len(tags) - 1
            while tags[last] == TAG_EMPTY:
                last -= 1
            run_tags = bytes(tags[first:last + 1])
            run_values = column.values[first:last + 1]
            side = {
                i - first: v
                for i, v in column.side.items()
                if first <= i <= last and tags[i] in _SIDE_TAGS
            }
            yield col, first + 1, run_tags, run_values, side

    # -- whole-plane shipping (the parallel process-worker payload) ------------

    def export_planes(
        self, cols: "set[int] | None" = None
    ) -> dict[int, tuple[bytes, bytes, dict[int, object]]]:
        """Column raw arrays — formula cached values *included* — as
        picklable bytes: ``{col: (tags, float64_values, side)}``.

        Unlike :meth:`export_value_columns` (snapshot persistence, which
        blanks formula rows), this is the full read surface a parallel
        process worker needs to evaluate a region: clean formula cells'
        cached values must be readable without shipping their formulas.
        ``cols`` restricts the export to the columns a region actually
        reads (its freight optimisation); None exports everything.
        Inverse: :meth:`install_planes`.
        """
        return {
            col: (bytes(column.tags), column.values.tobytes(), dict(column.side))
            for col, column in self._columns.items()
            if cols is None or col in cols
        }

    def install_planes(
        self, planes: dict[int, tuple[bytes, bytes, dict[int, object]]]
    ) -> None:
        """Install :meth:`export_planes` output into this *fresh* store."""
        self.epoch += 1
        for col, (tags, value_bytes, side) in planes.items():
            column = _Column()
            column.tags = bytearray(tags)
            values = array("d")
            values.frombytes(value_bytes)
            column.values = values
            column.side = dict(side)
            self._columns[col] = column
            self._count += len(tags) - tags.count(TAG_EMPTY)

    # -- incremental plane shipping (the persistent-shard delta path) ----------

    def _occupied_in_column(self, col: int) -> int:
        """Occupied positions a single column contributes to ``_count``:
        non-EMPTY tags plus registered formulas whose tag slot is EMPTY
        (or beyond the arrays)."""
        column = self._columns.get(col)
        n = 0 if column is None else column.occupied()
        tags = None if column is None else column.tags
        for (c, row) in self._formulas:
            if c != col:
                continue
            i = row - 1
            if tags is None or i >= len(tags) or not tags[i]:
                n += 1
        return n

    def export_plane_delta(
        self,
        since_versions: dict[int, int],
        cols: "set[int] | None" = None,
    ) -> tuple[dict[int, tuple[bytes, bytes, dict[int, object]]], dict[int, int]]:
        """Planes of the columns whose :attr:`_Column.version` moved past
        ``since_versions`` — the incremental counterpart of
        :meth:`export_planes`.

        Returns ``(planes, versions)``: ``planes`` holds full raw arrays
        only for columns that changed (or that ``since_versions`` has
        never seen); ``versions`` stamps every selected live column with
        its current version, so the caller can feed it straight back in
        next time.  ``cols`` restricts the scan to a shard's read
        closure; None scans everything.  Inverse: :meth:`apply_plane_delta`.
        """
        planes: dict[int, tuple[bytes, bytes, dict[int, object]]] = {}
        versions: dict[int, int] = {}
        for col, column in self._columns.items():
            if cols is not None and col not in cols:
                continue
            versions[col] = column.version
            if since_versions.get(col) != column.version:
                planes[col] = (
                    bytes(column.tags), column.values.tobytes(), dict(column.side)
                )
        return planes, versions

    def apply_plane_delta(
        self, planes: dict[int, tuple[bytes, bytes, dict[int, object]]]
    ) -> None:
        """Replace the named columns with :meth:`export_plane_delta`
        output, in place.

        Unlike :meth:`install_planes` this does *not* bump the store
        epoch — only the replaced columns' versions move, so resident
        lookaside indexes over untouched columns stay fresh.  Registered
        formula views survive (the column objects mutate, the registry is
        untouched) and occupancy is recounted per replaced column.
        """
        for col, (tags, value_bytes, side) in planes.items():
            before = self._occupied_in_column(col)
            column = self._columns.get(col)
            if column is None:
                column = self._columns[col] = _Column()
            column.tags = bytearray(tags)
            values = array("d")
            values.frombytes(value_bytes)
            column.values = values
            column.side = dict(side)
            column.version += 1
            self._count += self._occupied_in_column(col) - before

    # -- typed result columns (the parallel worker → parent merge path) --------

    def pack_result_columns(self, positions):
        """Pack the cached values of formula ``positions`` into typed
        column runs: ``[(col, rows, tags, float64_values, side_pairs)]``
        with ``side_pairs`` as ``(index_into_rows, payload)`` tuples.

        The worker-side half of the parallel result protocol — shipping
        tag+plane bytes instead of per-cell Python objects keeps the
        return payload ~9 bytes per number.  Inverse:
        :meth:`merge_result_columns`.
        """
        by_col: dict[int, list[int]] = {}
        for col, row in positions:
            by_col.setdefault(col, []).append(row)
        packed = []
        for col in sorted(by_col):
            rows = sorted(by_col[col])
            column = self._columns[col]
            tags = bytearray(len(rows))
            values = array("d", bytes(8 * len(rows)))
            side = []
            for k, row in enumerate(rows):
                i = row - 1
                tag = column.tags[i]
                tags[k] = tag
                values[k] = column.values[i]
                if tag in _SIDE_TAGS:
                    side.append((k, column.side[i]))
            packed.append((col, rows, bytes(tags), values.tobytes(), side))
        return packed

    def merge_result_columns(self, packed) -> None:
        """Install :meth:`pack_result_columns` output from a worker.

        Only *formula* positions are merged (occupancy is keyed by the
        formula registration, so ``_count`` is untouched) — this is the
        cached-value write of ``cell.value = x`` done as array stores.
        """
        for col, rows, tags, value_bytes, side in packed:
            values = array("d")
            values.frombytes(value_bytes)
            column = self._column_for(col, rows[-1])
            column.version += 1
            ctags, cvalues, cside = column.tags, column.values, column.side
            for k in range(len(rows)):
                i = rows[k] - 1
                if ctags[i] in _SIDE_TAGS:
                    cside.pop(i, None)
                ctags[i] = tags[k]
                cvalues[i] = values[k]
            for k, payload in side:
                cside[rows[k] - 1] = payload

    def import_column(self, col: int, start_row: int, tags: bytes,
                      values: array, side: dict[int, object]) -> None:
        """Bulk-install one exported column run (inverse of
        :meth:`export_value_columns`); positions must not be occupied."""
        if len(tags) != len(values):
            raise ValueError("columnar run: tags/values length mismatch")
        column = self._column_for(col, start_row + len(tags) - 1)
        column.version += 1
        i0 = start_row - 1
        column.tags[i0:i0 + len(tags)] = tags
        column.values[i0:i0 + len(values)] = values
        for i, v in side.items():
            column.side[i0 + i] = v
        self._count += len(tags) - tags.count(TAG_EMPTY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarStore({self._count} cells, {len(self._columns)} columns, "
            f"{len(self._formulas)} formulas)"
        )
